module anton3

go 1.21
