# Mirrors .github/workflows/ci.yml so contributors run the exact CI
# commands locally. `make ci` is the whole pipeline.

GO ?= go

.PHONY: build test test-short alloc-gate bench bench-parallel lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The CI fast lane: reduced-size (not skipped) tests under the race
# detector, the allocation gate, plus the netsweep CLI smoke.
test-short:
	$(GO) test -short -race ./...
	$(MAKE) alloc-gate
	$(GO) run ./cmd/anton3 netsweep -shapes 2x2x2 -loads 0.5,2 -npkts 8 -nwarm 2 -q > /dev/null

# The allocation gate: testing.AllocsPerRun regression tests pinning the
# steady-state machine.Send (request and response classes) and the synth
# harness inner loop at 0 allocs/op. Run without -race: the detector's
# instrumentation allocates, so the tests skip themselves there.
alloc-gate:
	$(GO) test -run 'AllocFree' -count=1 ./internal/machine ./internal/synth

# The CI bench lane: every paper artifact once, the hot-path micro-bench
# report (BENCH_hotpath.json: ns/op + allocs/op per PR), the shard-scaling
# report, then a full parallel `all` run refreshing BENCH_runner.json.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' ./...
	$(GO) test -run '^$$' -bench 'SendHotPath|SendResponseHotPath|Netsweep$$' -benchmem -count=1 ./internal/machine ./internal/synth | $(GO) run ./cmd/benchjson > BENCH_hotpath.json
	$(MAKE) bench-parallel
	$(GO) run ./cmd/anton3 all -json BENCH_runner.json > /dev/null

# The shard-scaling report: one 512-node netsweep point simulated at
# 1/2/4 kernel shards (byte-identical output, wall clock only). The
# shards=1 over shards=4 ns/op ratio in BENCH_parallel.json is the
# parallel-simulation speedup; meaningful on a multicore runner, which is
# why CI's bench lane auto-commits the refreshed copy.
bench-parallel:
	$(GO) test -run '^$$' -bench 'NetsweepShards' -benchmem -count=1 -timeout 1800s ./internal/synth | $(GO) run ./cmd/benchjson > BENCH_parallel.json

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

ci: lint build test-short bench
