# Mirrors .github/workflows/ci.yml so contributors run the exact CI
# commands locally. `make ci` is the whole pipeline.

GO ?= go

.PHONY: build test test-short bench lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The CI fast lane: reduced-size (not skipped) tests under the race
# detector, plus the netsweep CLI smoke.
test-short:
	$(GO) test -short -race ./...
	$(GO) run ./cmd/anton3 netsweep -shapes 2x2x2 -loads 0.5,2 -npkts 8 -nwarm 2 -q > /dev/null

# The CI bench lane: every paper artifact once, then a full parallel
# `all` run refreshing BENCH_runner.json.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' ./...
	$(GO) run ./cmd/anton3 all -json BENCH_runner.json > /dev/null

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

ci: lint build test-short bench
