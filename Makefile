# Mirrors .github/workflows/ci.yml so contributors run the exact CI
# commands locally. `make ci` is the whole pipeline.

GO ?= go

.PHONY: build test test-short alloc-gate bench bench-parallel bench-saturate bench-md bench-faults lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The CI fast lane: reduced-size (not skipped) tests under the race
# detector, the allocation gate, plus the netsweep, saturate, faultsweep
# and MD timestep CLI smokes (the saturate, faultsweep and fig12 smokes
# also diff sharded vs sequential output — shard-count invariance end to
# end; the faultsweep smoke pins a dead-link cell with rerouting live),
# the cache smoke (cold + warm -cache runs byte-identical to uncached,
# warm run executing zero probes), and the telemetry smoke (-metrics
# output minus its 'telemetry' lines byte-identical to the plain run and
# to itself at -shards 2; -trace-events emits a valid Chrome trace-event
# document).
test-short:
	$(GO) test -short -race ./...
	$(MAKE) alloc-gate
	$(GO) run ./cmd/anton3 netsweep -shapes 2x2x2 -loads 0.5,2 -npkts 8 -nwarm 2 -q > /dev/null
	$(GO) run ./cmd/anton3 saturate -shapes 2x2x2 -loads 0.5,2 -npkts 8 -nwarm 2 -q > /tmp/anton3-sat-seq.txt
	$(GO) run ./cmd/anton3 saturate -shapes 2x2x2 -loads 0.5,2 -npkts 8 -nwarm 2 -q -shards 2 > /tmp/anton3-sat-sh2.txt
	diff /tmp/anton3-sat-seq.txt /tmp/anton3-sat-sh2.txt
	$(GO) run ./cmd/anton3 faultsweep -shapes 2x2x2 -loads 0.5,2 -npkts 8 -nwarm 2 -faults "0,0,0:x+:dead" -q > /tmp/anton3-fault-seq.txt
	$(GO) run ./cmd/anton3 faultsweep -shapes 2x2x2 -loads 0.5,2 -npkts 8 -nwarm 2 -faults "0,0,0:x+:dead" -q -shards 2 > /tmp/anton3-fault-sh2.txt
	diff /tmp/anton3-fault-seq.txt /tmp/anton3-fault-sh2.txt
	$(GO) run ./cmd/anton3 fig12 -atoms 3000 -steps 2 -q > /tmp/anton3-md-seq.txt
	$(GO) run ./cmd/anton3 fig12 -atoms 3000 -steps 2 -q -shards 2 > /tmp/anton3-md-sh2.txt
	diff /tmp/anton3-md-seq.txt /tmp/anton3-md-sh2.txt
	@cdir=$$(mktemp -d); \
	$(GO) run ./cmd/anton3 saturate -shapes 2x2x2 -loads 0.5,2 -npkts 8 -nwarm 2 -q -cache -cachedir "$$cdir" -json /tmp/anton3-sat-cold.json > /tmp/anton3-sat-cold.txt && \
	$(GO) run ./cmd/anton3 saturate -shapes 2x2x2 -loads 0.5,2 -npkts 8 -nwarm 2 -q -cache -cachedir "$$cdir" -json /tmp/anton3-sat-warm.json > /tmp/anton3-sat-warm.txt && \
	diff /tmp/anton3-sat-seq.txt /tmp/anton3-sat-cold.txt && \
	diff /tmp/anton3-sat-seq.txt /tmp/anton3-sat-warm.txt && \
	python3 -c "import json; c=json.load(open('/tmp/anton3-sat-cold.json'))['cache']; w=json.load(open('/tmp/anton3-sat-warm.json'))['cache']; assert c['misses']>0 and c['hits']==0, c; assert w['hits']>0 and w['misses']==0, w; print('cache smoke: cold', c, '-> warm', w)"
	$(GO) run ./cmd/anton3 saturate -shapes 2x2x2 -loads 0.5,2 -npkts 8 -nwarm 2 -q -metrics > /tmp/anton3-sat-met.txt
	grep -v '^telemetry' /tmp/anton3-sat-met.txt | diff - /tmp/anton3-sat-seq.txt
	grep -q '^telemetry ' /tmp/anton3-sat-met.txt
	$(GO) run ./cmd/anton3 saturate -shapes 2x2x2 -loads 0.5,2 -npkts 8 -nwarm 2 -q -metrics -shards 2 > /tmp/anton3-sat-met2.txt
	diff /tmp/anton3-sat-met.txt /tmp/anton3-sat-met2.txt
	$(GO) run ./cmd/anton3 saturate -shapes 2x2x2 -loads 0.5,2 -npkts 8 -nwarm 2 -q -trace-events /tmp/anton3-trace.json > /dev/null
	python3 -c "import json; ev=json.load(open('/tmp/anton3-trace.json'))['traceEvents']; assert any(e['ph']=='X' for e in ev), 'no slices'; print('trace smoke:', len(ev), 'events')"

# The allocation gate: testing.AllocsPerRun regression tests pinning the
# steady-state machine.Send (request and response classes), the synth
# harness inner loop and the closed-loop saturate point at 0 allocs/op,
# plus the MD timestep budget (allocs/step must not scale with atoms).
# Run without -race: the detector's instrumentation allocates, so the
# tests skip themselves there.
alloc-gate:
	$(GO) test -run 'AllocFree|TimestepAllocBudget' -count=1 ./internal/machine ./internal/synth ./internal/flow

# The CI bench lane: every paper artifact once, the hot-path micro-bench
# report (BENCH_hotpath.json: ns/op + allocs/op per PR, gated against the
# committed copy — a SendHotPath or Netsweep regression >10% fails the
# lane), the shard-scaling report, the saturation report, then a full
# parallel `all` run refreshing BENCH_runner.json. The fresh hotpath JSON
# lands in a temp file first so the committed baseline survives a failed
# gate for diagnosis (and isn't truncated before benchjson reads it).
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' ./...
	$(GO) test -run '^$$' -bench 'SendHotPath|SendResponseHotPath|Netsweep$$' -benchmem -count=1 ./internal/machine ./internal/synth | $(GO) run ./cmd/benchjson -gate BENCH_hotpath.json -gate-bench SendHotPath,Netsweep > BENCH_hotpath.json.tmp
	mv BENCH_hotpath.json.tmp BENCH_hotpath.json
	$(MAKE) bench-parallel
	$(MAKE) bench-saturate
	$(MAKE) bench-faults
	$(MAKE) bench-md
	$(GO) run ./cmd/anton3 all -json BENCH_runner.json > /dev/null

# The shard-scaling report: one 512-node netsweep point simulated at
# 1/2/4 kernel shards (byte-identical output, wall clock only). The
# shards=1 over shards=4 ns/op ratio in BENCH_parallel.json is the
# parallel-simulation speedup; meaningful only on a multicore runner,
# which is why CI's bench lane auto-commits the refreshed copy — and why
# a single-core host (the common dev container) writes its numbers to
# /tmp instead of clobbering the committed multicore baseline, and skips
# the gate (1-core ns/op against a multicore baseline is noise, not a
# regression signal). Multicore hosts gate NetsweepShards against the
# committed copy, same temp-file pattern as the hotpath lane.
bench-parallel:
	@ncpu=$$(getconf _NPROCESSORS_ONLN); \
	if [ "$$ncpu" -le 1 ]; then \
		echo "bench-parallel: 1-core host — writing /tmp/BENCH_parallel.json, keeping committed multicore baseline, skipping gate"; \
		$(GO) test -run '^$$' -bench 'NetsweepShards' -benchmem -count=1 -timeout 1800s ./internal/synth | $(GO) run ./cmd/benchjson > /tmp/BENCH_parallel.json; \
	else \
		$(GO) test -run '^$$' -bench 'NetsweepShards' -benchmem -count=1 -timeout 1800s ./internal/synth | $(GO) run ./cmd/benchjson -gate BENCH_parallel.json -gate-bench NetsweepShards > BENCH_parallel.json.tmp && \
		mv BENCH_parallel.json.tmp BENCH_parallel.json; \
	fi

# The saturation report: one closed-loop cell timing plus the per-policy
# saturation knees on the adversarial bit-complement pattern (reported as
# the knee_load custom metric, captured into the artifact's "extra" map).
# The knee SPREAD across policies is the head-of-line-blocking evidence
# the per-VC queue model exists to expose; it is committed per PR so the
# routing story is tracked over time like the perf numbers.
bench-saturate:
	$(GO) test -run '^$$' -bench 'SaturatePoint|SaturationKnee' -benchtime=1x -benchmem -count=1 -timeout 1800s ./internal/flow | $(GO) run ./cmd/benchjson > BENCH_saturation.json

# The fault-degradation report: per-policy bit-complement saturation knees
# under the drawn link-fault severity grid (degraded bandwidth, one dead
# link, four dead links, a directed plane cut), as knee metrics and shifts
# vs the healthy baseline. Committed per PR next to BENCH_saturation.json:
# the knees quantify graceful degradation, the shifts are the fault-aware
# rerouting story tracked over time. Gated like the hotpath lane: a
# FaultKneeShift slowdown >10% vs the committed baseline fails the run,
# and the fresh JSON lands in a temp file first so the baseline survives
# a failed gate for diagnosis.
bench-faults:
	$(GO) test -run '^$$' -bench 'FaultKneeShift' -benchtime=1x -benchmem -count=1 -timeout 1800s ./internal/flow | $(GO) run ./cmd/benchjson -gate BENCH_faults.json -gate-bench FaultKneeShift > BENCH_faults.json.tmp
	mv BENCH_faults.json.tmp BENCH_faults.json

# The MD timestep report: ns/step for one 8000-atom water cell at 1/2/4
# kernel shards (byte-identical results, wall clock only — the shards=1
# over shards=4 ratio is the MD speedup of the parallel executive), plus
# the closed-loop backpressure rows: simulated step duration and parked
# injection counts per queue depth, the MD-traffic counterpart of the
# synthetic knees in BENCH_saturation.json. Like bench-parallel, a
# single-core host writes to /tmp so its shard timings never overwrite
# the committed multicore artifact.
bench-md:
	@ncpu=$$(getconf _NPROCESSORS_ONLN); \
	if [ "$$ncpu" -le 1 ]; then \
		echo "bench-md: 1-core host — writing /tmp/BENCH_md.json, keeping committed multicore baseline"; \
		$(GO) test -run '^$$' -bench 'TimestepShards|MDBackpressure' -benchmem -count=1 -timeout 1800s ./internal/machine | $(GO) run ./cmd/benchjson > /tmp/BENCH_md.json; \
	else \
		$(GO) test -run '^$$' -bench 'TimestepShards|MDBackpressure' -benchmem -count=1 -timeout 1800s ./internal/machine | $(GO) run ./cmd/benchjson > BENCH_md.json; \
	fi

# staticcheck runs when installed (CI installs it; the target stays green
# on machines without it rather than failing or fetching a dependency).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed, skipping (CI runs it)"; fi

ci: lint build test-short bench
