// Fencepipeline demonstrates the Section II-C dataflow primitives directly:
// counted writes carry data, blocking reads consume it as it arrives, and a
// hop-limited GC-to-GC network fence closes the phase — the same
// fence-then-unload pattern the PPIM pipeline uses every time step.
package main

import (
	"fmt"

	"anton3/internal/fence"
	"anton3/internal/machine"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

func main() {
	shape := topo.Shape{X: 2, Y: 2, Z: 2}
	m := machine.New(machine.DefaultConfig(shape))
	const accAddr = 100

	// Step 1: every node's GC 0 sends an accumulating counted write to
	// GC 1 of each 1-hop neighbor (stand-ins for stream-set forces being
	// summed into a remote quad). In a 2x2x2 torus each node has 3
	// distinct neighbors, each reachable by two physical channels.
	start := m.K.Now()
	for i := 0; i < shape.Nodes(); i++ {
		src := m.GC(shape.CoordOf(i), 0)
		for j := 0; j < shape.Nodes(); j++ {
			if shape.HopDist(shape.CoordOf(i), shape.CoordOf(j)) != 1 {
				continue
			}
			dst := m.GC(shape.CoordOf(j), 1)
			src.CountedAccum(dst, accAddr, [4]uint32{1, uint32(i), 0, 0})
		}
	}

	// Step 2: receivers use blocking reads with a known threshold where
	// the count is predictable (each node expects 3 neighbor writes)...
	for j := 0; j < shape.Nodes(); j++ {
		node := shape.CoordOf(j)
		gc := m.GC(node, 1)
		gc.BlockingRead(accAddr, 3, func(q [4]uint32) {
			fmt.Printf("node %v: accumulated %d writes at %7.1f ns (sum=%d)\n",
				node, q[0], m.K.Now().Nanoseconds(), q[1])
		})
	}

	// Step 3: ...and a 1-hop GC-to-GC network fence closes the phase for
	// flows where the packet count is NOT predictable — once the fence
	// completes at a node, everything its neighbors sent before their
	// fences has landed (and, per Section V-E, all remote SRAM writes are
	// complete: the barrier is also a memory fence).
	var barrierDone sim.Time
	id := m.StartFence(fence.GCtoGC, 1, func(n *machine.Node, at sim.Time) {
		if at > barrierDone {
			barrierDone = at
		}
	})
	m.K.Run()
	m.FinishFence(id)
	fmt.Printf("1-hop fence closed the phase at %.1f ns after issue\n",
		(barrierDone - start).Nanoseconds())
}
