// Watersim runs a parallel water MD simulation on an 8-node machine and
// reports per-step wall-clock time with compression off and on, plus the
// wire-traffic statistics behind the speedup — the Figure 9 experiment as a
// library user would run it.
package main

import (
	"fmt"

	"anton3/internal/core"
	"anton3/internal/md"
	"anton3/internal/sim"
	"anton3/internal/topo"
	"anton3/internal/traffic"
)

func main() {
	const atoms = 16000
	const steps = 3

	for _, comp := range []core.CompressConfig{
		{},
		{INZ: true},
		{INZ: true, Pcache: true},
	} {
		m := core.NewMachineWith(core.Shape8, comp)
		sys := core.NewWater(atoms, 42)
		e := core.NewEngine(m, sys)
		var last float64
		for i := 0; i < steps; i++ {
			last = e.RunStep().Duration.Nanoseconds()
		}
		st := m.TotalWireStats()
		fmt.Printf("%-12s step %6.0f ns   wire %6.2f Mbit   reduction %5.1f%%\n",
			comp.EnabledString(), last, float64(st.WireBits)/1e6, 100*st.Reduction())
		if err := m.CheckChannelSync(); err != nil {
			panic(err)
		}
	}

	// The untimed replayer measures compression alone, at any scale.
	sys := md.NewWater(atoms, 300, sim.NewRand(7))
	r := traffic.NewReplayer(topo.Shape{X: 2, Y: 2, Z: 2}, sys.Box,
		core.CompressConfig{INZ: true, Pcache: true})
	for i := 0; i < 4; i++ {
		r.ReplayStep(sys)
		sys.Step()
	}
	fmt.Printf("replayer: %d channels, hit rate %.1f%%, reduction %.1f%%\n",
		r.Channels(), 100*r.CacheStats().HitRate(), 100*r.Stats().Reduction())

	// Validate the decomposition against the golden model while we're at
	// it: forces computed the distributed way must match exactly.
	d := md.NewDecomposition(topo.Shape{X: 2, Y: 2, Z: 2}, sys.Box)
	dist := md.DistributedForces(sys, d)
	worst := 0.0
	for i := range dist {
		dd := dist[i].Sub(sys.Force[i])
		if e := dd.Norm2(); e > worst {
			worst = e
		}
	}
	fmt.Printf("distributed-vs-golden force error: %.2e (should be ~1e-20)\n", worst)
}
