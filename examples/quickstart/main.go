// Quickstart: build a small Anton 3 machine, measure a counted-write
// ping-pong and a network fence barrier — the two latency primitives the
// paper's evaluation leads with.
package main

import (
	"fmt"

	"anton3/internal/core"
)

func main() {
	m := core.NewMachine(core.Shape8)

	// A counted write of 16 bytes bounces between GCs on opposite corners
	// of the 2x2x2 torus; blocking reads provide the synchronization.
	a := m.GC(core.Shape8.CoordOf(0), 0)
	b := m.GC(core.Shape8.CoordOf(7), 0)
	pp := m.PingPong(a, b, 16)
	fmt.Printf("ping-pong: %d hop(s), one-way end-to-end latency %.1f ns\n",
		pp.Hops, pp.OneWay.Nanoseconds())

	// A GC-to-GC network fence at the machine diameter is a global
	// barrier that also acts as a memory fence (Section V-E).
	bar := m.Barrier(core.Shape8.Diameter())
	fmt.Printf("global barrier (%d hops): %.1f ns\n", bar.Hops, bar.Latency.Nanoseconds())

	// On the 128-node machine of the paper the same calls reproduce
	// Figure 5 and Figure 11; see cmd/anton3.
}
