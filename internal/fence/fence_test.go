package fence

import "testing"

func TestOutputMask(t *testing.T) {
	m := OutputMask(0b1010)
	if m.Has(0) || !m.Has(1) || m.Has(2) || !m.Has(3) {
		t.Fatal("Has broken")
	}
	if m.Count() != 2 {
		t.Fatalf("Count = %d, want 2", m.Count())
	}
	if OutputMask(0).Count() != 0 {
		t.Fatal("empty mask count")
	}
}

func TestMergeFiresAtExpected(t *testing.T) {
	// The Figure 10b example: an input port expecting fences from two
	// upstream paths fires a single multicast after the second arrival.
	m := NewMergeUnit("in0", 0)
	m.Configure(3, 2, OutputMask(0b0110))
	if fire, _ := m.Arrive(3); fire {
		t.Fatal("fired after first of two arrivals")
	}
	if m.Pending(3) != 1 {
		t.Fatalf("pending = %d", m.Pending(3))
	}
	fire, mask := m.Arrive(3)
	if !fire || mask != OutputMask(0b0110) {
		t.Fatalf("fire=%v mask=%b", fire, mask)
	}
}

func TestMergeCounterResetsAfterFire(t *testing.T) {
	// "When the fence packet is sent out, the counter is reset to zero" —
	// the same counter serves the next fence with this ID.
	m := NewMergeUnit("in0", 0)
	m.Configure(0, 3, 1)
	for round := 0; round < 4; round++ {
		for i := 0; i < 2; i++ {
			if fire, _ := m.Arrive(0); fire {
				t.Fatalf("round %d fired early", round)
			}
		}
		if fire, _ := m.Arrive(0); !fire {
			t.Fatalf("round %d did not fire", round)
		}
		if m.Pending(0) != 0 {
			t.Fatalf("round %d counter not reset", round)
		}
	}
}

func TestMergeIndependentIDs(t *testing.T) {
	m := NewMergeUnit("in0", 0)
	m.Configure(1, 2, 1)
	m.Configure(2, 1, 2)
	if fire, _ := m.Arrive(1); fire {
		t.Fatal("fence 1 fired early")
	}
	if fire, mask := m.Arrive(2); !fire || mask != 2 {
		t.Fatal("fence 2 should fire independently")
	}
	if fire, _ := m.Arrive(1); !fire {
		t.Fatal("fence 1 should fire on second arrival")
	}
}

func TestMergeUnconfiguredPanics(t *testing.T) {
	m := NewMergeUnit("in0", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("unconfigured arrival should panic")
		}
	}()
	m.Arrive(9)
}

func TestCounterBudgetEnforced(t *testing.T) {
	m := NewMergeUnit("in0", 4)
	for id := 0; id < 4; id++ {
		m.Configure(id, 1, 1)
	}
	if m.InUse() != 4 {
		t.Fatalf("InUse = %d", m.InUse())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exceeding the counter budget should panic")
		}
	}()
	m.Configure(5, 1, 1)
}

func TestReleaseRecyclesCounters(t *testing.T) {
	m := NewMergeUnit("in0", 2)
	m.Configure(0, 1, 1)
	m.Configure(1, 1, 1)
	m.Release(0)
	m.Configure(2, 1, 1) // must not panic
	if m.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", m.InUse())
	}
}

func TestReconfigureExistingID(t *testing.T) {
	m := NewMergeUnit("in0", 1)
	m.Configure(0, 1, 1)
	m.Configure(0, 2, 3) // reconfigure in place, not a new counter
	if fire, _ := m.Arrive(0); fire {
		t.Fatal("reconfigured expected count ignored")
	}
}

func TestAllocatorLimit(t *testing.T) {
	var a Allocator
	ids := map[int]bool{}
	for i := 0; i < MaxConcurrent; i++ {
		id := a.Acquire(nil)
		if id < 0 || ids[id] {
			t.Fatalf("bad id %d", id)
		}
		ids[id] = true
	}
	if a.InFlight() != MaxConcurrent {
		t.Fatalf("InFlight = %d", a.InFlight())
	}
	// The 15th fence must block (software overlap limit, Section V-D).
	var granted []int
	if id := a.Acquire(func(id int) { granted = append(granted, id) }); id != -1 {
		t.Fatalf("15th fence should block, got id %d", id)
	}
	a.ReleaseID(3)
	if len(granted) != 1 || granted[0] != 3 {
		t.Fatalf("waiter grant = %v, want [3]", granted)
	}
}

func TestAllocatorReleaseValidation(t *testing.T) {
	var a Allocator
	defer func() {
		if recover() == nil {
			t.Fatal("releasing unused ID should panic")
		}
	}()
	a.ReleaseID(0)
}

func TestMaxConcurrentIsFourteen(t *testing.T) {
	if MaxConcurrent != 14 {
		t.Fatal("the paper says up to 14 concurrent fences")
	}
}

func TestPatternString(t *testing.T) {
	if GCtoGC.String() != "GC-to-GC" || GCtoICB.String() != "GC-to-ICB" {
		t.Fatal("Pattern.String broken")
	}
}

func TestConfigureInvalidExpected(t *testing.T) {
	m := NewMergeUnit("in0", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("zero expected count should panic")
		}
	}()
	m.Configure(0, 0, 1)
}
