// Package fence implements the network fence of Section V: an in-network
// synchronization primitive built from fence packets that routers merge at
// input ports (a counter per fence reaching a preconfigured expected count
// releases one multicast copy per output in a preconfigured output mask).
// Receipt of a fence packet tells the receiver that every packet sent before
// that fence, by every participating source, has arrived.
//
// This package holds the pure pieces: the per-port merge unit, fence
// patterns, and the adapter flow control that bounds concurrent fences. The
// machine simulator composes these into the node-level wavefront described
// in DESIGN.md.
package fence

import "fmt"

// MaxConcurrent is the number of outstanding network fences the hardware
// supports (Section V-D). The network adapters implement flow control that
// limits injection so the Edge Router needs only 96 counters per input port.
const MaxConcurrent = 14

// Pattern names a pre-defined source/destination component-type pair.
type Pattern uint8

// Fence patterns used by MD software (Section V-A).
const (
	// GCtoGC synchronizes all Geometry Cores; with hops = machine diameter
	// it is the global barrier (Section V-E).
	GCtoGC Pattern = iota
	// GCtoICB tells Interaction Control Blocks that all stream-set
	// positions sent before the fence have arrived.
	GCtoICB
)

func (p Pattern) String() string {
	if p == GCtoGC {
		return "GC-to-GC"
	}
	return "GC-to-ICB"
}

// OutputMask is a bitmask of router output ports a merged fence multicasts
// to; bit j set means output port j receives a copy.
type OutputMask uint32

// Has reports whether port j is in the mask.
func (m OutputMask) Has(j int) bool { return m&(1<<uint(j)) != 0 }

// Count returns the number of ports in the mask.
func (m OutputMask) Count() int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

// portState is one (input port, VC) fence context: counter + configuration.
type portState struct {
	expected uint16
	mask     OutputMask
	count    uint16
}

// MergeUnit is the fence logic of one router input port for one VC class:
// an array of fence counters indexed by fence ID, each with a preconfigured
// expected count and output mask (Figure 10a). Only fence packets from the
// same VC can be merged, so routers instantiate one MergeUnit per (input
// port, VC).
type MergeUnit struct {
	name     string
	counters map[int]*portState
	limit    int
}

// NewMergeUnit builds a merge unit with the hardware counter budget. A
// limit of 0 uses the Edge Router budget of 96 counters.
func NewMergeUnit(name string, limit int) *MergeUnit {
	if limit == 0 {
		limit = 96
	}
	return &MergeUnit{name: name, counters: make(map[int]*portState), limit: limit}
}

// Configure installs the expected count and output mask for fence id.
// Software preconfigures these per fence pattern (Section V-B).
func (m *MergeUnit) Configure(id int, expected int, mask OutputMask) {
	if expected <= 0 {
		panic("fence: expected count must be positive")
	}
	if _, ok := m.counters[id]; !ok && len(m.counters) >= m.limit {
		panic(fmt.Sprintf("fence %s: counter array exhausted (%d counters); adapter flow control failed", m.name, m.limit))
	}
	m.counters[id] = &portState{expected: uint16(expected), mask: mask}
}

// Release frees the counter for fence id (the adapter-level flow control
// recycles counters once a fence completes).
func (m *MergeUnit) Release(id int) { delete(m.counters, id) }

// InUse reports how many fence counters are live.
func (m *MergeUnit) InUse() int { return len(m.counters) }

// Arrive merges one incoming fence packet for fence id. When the counter
// reaches the expected count it resets to zero and Arrive returns
// (true, mask): the caller transmits exactly one fence packet to each output
// port in the mask. Otherwise it returns (false, 0) and the packet is
// consumed (merged).
func (m *MergeUnit) Arrive(id int) (fire bool, mask OutputMask) {
	st, ok := m.counters[id]
	if !ok {
		panic(fmt.Sprintf("fence %s: arrival for unconfigured fence %d", m.name, id))
	}
	st.count++
	if st.count < st.expected {
		return false, 0
	}
	st.count = 0 // counter resets when the fence packet is sent out
	return true, st.mask
}

// Pending returns the current counter value for fence id (diagnostics).
func (m *MergeUnit) Pending(id int) int {
	if st, ok := m.counters[id]; ok {
		return int(st.count)
	}
	return 0
}

// Allocator is the adapter flow-control mechanism bounding concurrent
// fences machine-wide. Injection of a new fence blocks (returns false)
// until an ID frees up.
type Allocator struct {
	inUse   [MaxConcurrent]bool
	waiting []func(id int)
}

// Acquire returns a free fence ID, or queues fn to run when one frees and
// returns -1.
func (a *Allocator) Acquire(fn func(id int)) int {
	for id, used := range a.inUse {
		if !used {
			a.inUse[id] = true
			if fn != nil {
				fn(id)
			}
			return id
		}
	}
	a.waiting = append(a.waiting, fn)
	return -1
}

// ReleaseID returns an ID to the pool, immediately handing it to the oldest
// waiter if any.
func (a *Allocator) ReleaseID(id int) {
	if id < 0 || id >= MaxConcurrent || !a.inUse[id] {
		panic("fence: releasing an ID that is not in use")
	}
	if len(a.waiting) > 0 {
		fn := a.waiting[0]
		a.waiting = a.waiting[1:]
		if fn != nil {
			fn(id)
		}
		return
	}
	a.inUse[id] = false
}

// InFlight reports how many fence IDs are outstanding.
func (a *Allocator) InFlight() int {
	n := 0
	for _, u := range a.inUse {
		if u {
			n++
		}
	}
	return n
}
