package core

import "testing"

func TestQuickstartFlow(t *testing.T) {
	// The README quickstart, as a test: ping-pong and a barrier.
	m := NewMachine(Shape8)
	a := m.GC(Shape8.CoordOf(0), 0)
	b := m.GC(Shape8.CoordOf(7), 0)
	pp := m.PingPong(a, b, 8)
	if pp.OneWay <= 0 {
		t.Fatal("no latency measured")
	}
	bar := m.Barrier(Shape8.Diameter())
	if bar.Latency <= 0 {
		t.Fatal("no barrier latency")
	}
}

func TestEngineFlow(t *testing.T) {
	m := NewMachineWith(Shape8, CompressConfig{INZ: true, Pcache: true})
	sys := NewWater(3000, 9)
	e := NewEngine(m, sys)
	if r := e.RunStep(); r.Duration <= 0 {
		t.Fatal("step did not run")
	}
	if err := m.CheckChannelSync(); err != nil {
		t.Fatal(err)
	}
}

func TestShapes(t *testing.T) {
	if Shape128.Nodes() != 128 || Shape8.Nodes() != 8 || Shape512.Nodes() != 512 {
		t.Fatal("paper shapes wrong")
	}
	if DefaultLatencies().GCSendCycles <= 0 {
		t.Fatal("latencies not exposed")
	}
}
