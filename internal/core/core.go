// Package core is the front door of the Anton 3 network library: it ties
// the network primitives (INZ, particle cache, network fence, counted
// write / blocking read) and the machine simulator together behind a small
// construction API. Examples and tools program against this package;
// research code that needs the internals imports the specific subsystem
// packages directly.
package core

import (
	"anton3/internal/chip"
	"anton3/internal/machine"
	"anton3/internal/md"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// Re-exported configuration types.
type (
	// Machine is a simulated Anton 3 machine.
	Machine = machine.Machine
	// Config describes a machine.
	Config = machine.Config
	// GC is the Geometry Core endpoint handle.
	GC = machine.GC
	// Shape is a torus shape.
	Shape = topo.Shape
	// CompressConfig selects INZ / particle cache.
	CompressConfig = serdes.CompressConfig
	// System is an MD chemical system.
	System = md.System
	// Engine drives the MD timestep pipeline on a machine.
	Engine = machine.Engine
)

// Paper machine shapes.
var (
	// Shape128 is the 4x4x8 measurement machine of Figures 5 and 11.
	Shape128 = topo.Shape{X: 4, Y: 4, Z: 8}
	// Shape8 is the 2x2x2 compression benchmark machine of Figure 9.
	Shape8 = topo.Shape{X: 2, Y: 2, Z: 2}
	// Shape512 is the largest Anton 3 machine (8x8x8).
	Shape512 = topo.Shape{X: 8, Y: 8, Z: 8}
)

// NewMachine builds a machine with production defaults (2.8 GHz clock,
// calibrated latencies, compression on) for the given torus shape.
func NewMachine(shape Shape) *Machine {
	return machine.New(machine.DefaultConfig(shape))
}

// NewMachineWith builds a machine with explicit compression settings.
func NewMachineWith(shape Shape, comp CompressConfig) *Machine {
	cfg := machine.DefaultConfig(shape)
	cfg.Compress = comp
	return machine.New(cfg)
}

// NewWater builds a thermalized water-like system of n atoms at 300 K.
func NewWater(n int, seed uint64) *System {
	return md.NewWater(n, 300, sim.NewRand(seed))
}

// NewEngine attaches an MD system to a machine's timestep pipeline.
func NewEngine(m *Machine, sys *System) *Engine {
	return machine.NewEngine(m, sys, machine.DefaultTimestepConfig())
}

// DefaultLatencies exposes the calibrated latency set (see DESIGN.md §4).
func DefaultLatencies() chip.Latencies { return chip.DefaultLatencies() }
