// Package experiments regenerates every table and figure of the paper's
// evaluation. Each function returns the rows/series the paper reports plus
// a text rendering; cmd/anton3, the root benchmarks, and EXPERIMENTS.md all
// drive these same entry points.
package experiments

import (
	"fmt"
	"strings"

	"anton3/internal/area"
	"anton3/internal/chip"
	"anton3/internal/machine"
	"anton3/internal/md"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/stats"
	"anton3/internal/topo"
	"anton3/internal/trace"
	"anton3/internal/traffic"
)

// Shape128 is the paper's measurement machine: 4 x 4 x 8 = 128 nodes.
var Shape128 = topo.Shape{X: 4, Y: 4, Z: 8}

// Shape8 is the compression benchmark machine: 2 x 2 x 2 = 8 nodes.
var Shape8 = topo.Shape{X: 2, Y: 2, Z: 2}

// ---------------------------------------------------------------- Figure 5

// Fig5Point is one hop-count sample of the latency curve.
type Fig5Point struct {
	Hops    int
	AvgNs   float64
	PaperNs float64 // 55.9 + 34.2*h (h >= 1)
}

// Fig5Result is the end-to-end latency experiment.
type Fig5Result struct {
	Points []Fig5Point
	Fit    stats.LinFit // fitted over hops >= 1
}

// Fig5 measures average one-way end-to-end latency versus inter-node hops
// on the 128-node machine with pairsPerHop sampled GC pairs per distance.
// rng picks the sampled pairs; the paper runs use sim.NewRand(Fig5Seed).
func Fig5(rng *sim.Rand, pairsPerHop int) Fig5Result {
	samples := fig5SamplePairs(rng, pairsPerHop)
	perHop := make([][]float64, len(samples))
	for h, pairs := range samples {
		perHop[h] = fig5MeasureHop(pairs)
	}
	return fig5Assemble(perHop)
}

// fig5Pair is one sampled GC pair of the Figure 5 sweep.
type fig5Pair struct {
	Src, Dst topo.Coord
	GCA, GCB int
}

// fig5SamplePairs draws the per-hop pair samples. The draw sequence (hop
// major; src, dst, both GC indices per pair) is pinned: it must consume
// rng exactly as the paper runs always have, so the sharded runner jobs
// reproduce the historical Fig5 numbers digit for digit.
func fig5SamplePairs(rng *sim.Rand, pairsPerHop int) [][]fig5Pair {
	gcs := chip.New(sim.NewClock(2800), chip.DefaultLatencies()).GCs()
	out := make([][]fig5Pair, Shape128.Diameter()+1)
	for h := range out {
		pairs := make([]fig5Pair, pairsPerHop)
		for p := range pairs {
			src := Shape128.CoordOf(rng.Intn(Shape128.Nodes()))
			dst := pickAtDistance(rng, Shape128, src, h)
			pairs[p] = fig5Pair{Src: src, Dst: dst, GCA: rng.Intn(gcs), GCB: rng.Intn(gcs)}
		}
		out[h] = pairs
	}
	return out
}

// fig5MeasureHop ping-pongs every sampled pair of one hop count, each on a
// private machine — the unit of work one runner sub-job performs.
func fig5MeasureHop(pairs []fig5Pair) []float64 {
	lats := make([]float64, 0, len(pairs))
	for _, pr := range pairs {
		m := machine.New(machine.DefaultConfig(Shape128))
		a := m.GC(pr.Src, pr.GCA)
		b := m.GC(pr.Dst, pr.GCB)
		r := m.PingPong(a, b, 12)
		lats = append(lats, r.OneWay.Nanoseconds())
	}
	return lats
}

// fig5Assemble folds per-hop latency samples into the figure.
func fig5Assemble(perHop [][]float64) Fig5Result {
	var res Fig5Result
	var xs, ys []float64
	for h, lats := range perHop {
		avg := stats.Mean(lats)
		paper := 0.0
		if h >= 1 {
			paper = 55.9 + 34.2*float64(h)
			xs = append(xs, float64(h))
			ys = append(ys, avg)
		}
		res.Points = append(res.Points, Fig5Point{Hops: h, AvgNs: avg, PaperNs: paper})
	}
	res.Fit = stats.Fit(xs, ys)
	return res
}

func pickAtDistance(rng *sim.Rand, s topo.Shape, src topo.Coord, h int) topo.Coord {
	candidates := s.WithinHops(src, h)
	var exact []topo.Coord
	for _, c := range candidates {
		if s.HopDist(src, c) == h {
			exact = append(exact, c)
		}
	}
	if len(exact) == 0 {
		panic(fmt.Sprintf("experiments: no node at distance %d", h))
	}
	return exact[rng.Intn(len(exact))]
}

// Render formats the figure as text.
func (r Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: average one-way end-to-end latency vs inter-node hops (128 nodes)\n")
	fmt.Fprintf(&b, "%4s %12s %12s\n", "hops", "measured ns", "paper fit ns")
	for _, p := range r.Points {
		paper := "-"
		if p.PaperNs > 0 {
			paper = fmt.Sprintf("%.1f", p.PaperNs)
		}
		fmt.Fprintf(&b, "%4d %12.1f %12s\n", p.Hops, p.AvgNs, paper)
	}
	fmt.Fprintf(&b, "fit: %s   (paper: y = 55.9 + 34.2*x)\n", r.Fit)
	return b.String()
}

// ---------------------------------------------------------------- Figure 6

// Fig6Stage is one component of the minimum-latency breakdown.
type Fig6Stage struct {
	Name string
	Ns   float64
}

// Fig6Result is the latency breakdown.
type Fig6Result struct {
	Stages     []Fig6Stage
	TotalNs    float64
	MeasuredNs float64 // ping-pong measurement of the same path
}

// Fig6 decomposes the minimum 1-hop end-to-end latency by component and
// cross-checks against a measured ping-pong on the same path.
func Fig6() Fig6Result {
	m := machine.New(machine.DefaultConfig(Shape128))
	g := m.Geom
	clk := m.Clock
	lat := m.Config().Lat
	cs := chip.ChannelSpec{Dim: topo.X, Dir: -1, Slice: 0}
	core := packet.CoreID{Tile: topo.MeshCoord{U: 0, V: g.EdgeRowFor(cs)}}

	cyc := func(n int64) float64 { return clk.Cycles(n).Nanoseconds() }
	edgeHopNs := cyc(lat.EdgeHopCycles)
	ser := 192.0 / (float64(chip.LanesPerSlice*topo.SerdesGbps) * 60 / 64) // ns for a 24B packet

	stages := []Fig6Stage{
		{"GC send (SW issue + inject)", cyc(lat.GCSendCycles)},
		{"Core network (1 U hop)", cyc(lat.CoreUCycles)},
		{"Row Adapter", cyc(lat.RACycles)},
		{"Edge Routers, source (2 hops)", 2 * edgeHopNs},
		{"Channel Adapter tx (INZ/frame)", cyc(lat.CATxCycles)},
		{"Serialization (2 flits)", ser},
		{"SERDES + wire", lat.ChannelFixed.Nanoseconds()},
		{"Channel Adapter rx", cyc(lat.CARxCycles)},
		{"Edge Routers, dest (2 hops)", 2 * edgeHopNs},
		{"Row Adapter", cyc(lat.RACycles)},
		{"Core network (1 U hop)", cyc(lat.CoreUCycles)},
		{"SRAM write + counter", cyc(lat.MemWriteCycles)},
		{"Blocking read wake", cyc(lat.WakeCycles)},
	}
	var total float64
	for _, s := range stages {
		total += s.Ns
	}

	a := m.GCAt(topo.Coord{X: 0}, core)
	b := m.GCAt(topo.Coord{X: 3}, core) // one X- wraparound hop
	r := m.PingPong(a, b, 16)
	return Fig6Result{Stages: stages, TotalNs: total, MeasuredNs: r.OneWay.Nanoseconds()}
}

// Render formats the breakdown.
func (r Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: breakdown of minimum inter-node end-to-end latency\n")
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "  %-34s %6.2f ns\n", s.Name, s.Ns)
	}
	fmt.Fprintf(&b, "  %-34s %6.2f ns (paper: 55 ns)\n", "TOTAL (model)", r.TotalNs)
	fmt.Fprintf(&b, "  %-34s %6.2f ns\n", "measured ping-pong one-way", r.MeasuredNs)
	return b.String()
}

// --------------------------------------------------------------- Figure 9a

// Fig9aPoint is one atom-count sample.
type Fig9aPoint struct {
	Atoms         int
	INZOnly       float64 // traffic reduction, 0..1
	INZPlusPcache float64
	PcacheHitRate float64
	PaperINZLo    float64
	PaperINZHi    float64
	PaperBothLo   float64
	PaperBothHi   float64
}

// Fig9a measures traffic reduction on the 8-node machine across atom
// counts, with warmup steps excluded from the measurement window.
func Fig9a(sizes []int, warm, measure int) []Fig9aPoint {
	var out []Fig9aPoint
	for _, n := range sizes {
		pt := Fig9aPoint{Atoms: n,
			PaperINZLo: 0.32, PaperINZHi: 0.40,
			PaperBothLo: 0.45, PaperBothHi: 0.62}
		for _, mode := range []serdes.CompressConfig{
			{INZ: true},
			{INZ: true, Pcache: true},
		} {
			sys := md.NewWater(n, 300, sim.NewRand(1234))
			r := traffic.NewReplayer(Shape8, sys.Box, mode)
			for i := 0; i < warm; i++ {
				r.ReplayStep(sys)
				sys.Step()
			}
			before := r.Snapshot()
			for i := 0; i < measure; i++ {
				r.ReplayStep(sys)
				sys.Step()
			}
			st := traffic.Delta(r.Stats(), before)
			if mode.Pcache {
				pt.INZPlusPcache = st.Reduction()
				pt.PcacheHitRate = r.CacheStats().HitRate()
			} else {
				pt.INZOnly = st.Reduction()
			}
		}
		out = append(out, pt)
	}
	return out
}

// RenderFig9a formats the series.
func RenderFig9a(pts []Fig9aPoint) string {
	var b strings.Builder
	b.WriteString("Figure 9a: reduction in bits transmitted over channels (8 nodes, water)\n")
	fmt.Fprintf(&b, "%8s %10s %14s %10s   paper bands\n", "atoms", "inz", "inz+pcache", "hit rate")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8d %9.1f%% %13.1f%% %9.1f%%   inz %.0f-%.0f%%, both %.0f-%.0f%%\n",
			p.Atoms, 100*p.INZOnly, 100*p.INZPlusPcache, 100*p.PcacheHitRate,
			100*p.PaperINZLo, 100*p.PaperINZHi, 100*p.PaperBothLo, 100*p.PaperBothHi)
	}
	return b.String()
}

// --------------------------------------------------------------- Figure 9b

// Fig9bPoint is one atom-count speedup sample.
type Fig9bPoint struct {
	Atoms            int
	StepOffNs        float64
	StepOnNs         float64
	Speedup          float64
	PaperLo, PaperHi float64 // 1.18 - 1.62 across the paper's sizes
}

// Fig9b measures application-level speedup from compression: timestep
// pipeline time with compression off vs on, per atom count. shards runs
// each machine across that many kernel shards (machine.Config.Shards);
// output is byte-identical at every value, 0 or 1 is sequential.
func Fig9b(sizes []int, steps, shards int) []Fig9bPoint {
	var out []Fig9bPoint
	for _, n := range sizes {
		var offNs, onNs float64
		for _, comp := range []serdes.CompressConfig{{}, {INZ: true, Pcache: true}} {
			cfg := machine.DefaultConfig(Shape8)
			cfg.Compress = comp
			cfg.Shards = shards
			m := machine.New(cfg)
			sys := md.NewWater(n, 300, sim.NewRand(777))
			e := machine.NewEngine(m, sys, machine.DefaultTimestepConfig())
			var last machine.StepResult
			for i := 0; i < steps; i++ {
				last = e.RunStep()
			}
			if comp.Pcache {
				onNs = last.Duration.Nanoseconds()
			} else {
				offNs = last.Duration.Nanoseconds()
			}
		}
		out = append(out, Fig9bPoint{
			Atoms: n, StepOffNs: offNs, StepOnNs: onNs,
			Speedup: offNs / onNs, PaperLo: 1.18, PaperHi: 1.62,
		})
	}
	return out
}

// RenderFig9b formats the series.
func RenderFig9b(pts []Fig9bPoint) string {
	var b strings.Builder
	b.WriteString("Figure 9b: MD speedup with compression enabled (8 nodes, water)\n")
	fmt.Fprintf(&b, "%8s %12s %12s %9s\n", "atoms", "step off ns", "step on ns", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8d %12.0f %12.0f %8.2fx   (paper band %.2f-%.2f)\n",
			p.Atoms, p.StepOffNs, p.StepOnNs, p.Speedup, p.PaperLo, p.PaperHi)
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 11

// Fig11Point is one barrier sample.
type Fig11Point struct {
	Hops    int
	Ns      float64
	PaperNs float64
}

// Fig11Result is the fence barrier experiment.
type Fig11Result struct {
	Points []Fig11Point
	Fit    stats.LinFit // over hops >= 1
}

// Fig11 measures GC-to-GC fence barrier latency across hop counts on the
// 128-node machine.
func Fig11() Fig11Result {
	ns := make([]float64, Shape128.Diameter()+1)
	for h := range ns {
		ns[h] = fig11MeasureHop(h)
	}
	return fig11Assemble(ns)
}

// fig11MeasureHop runs one hop count's barrier on a private machine — the
// unit of work one runner sub-job performs.
func fig11MeasureHop(h int) float64 {
	m := machine.New(machine.DefaultConfig(Shape128))
	return m.Barrier(h).Latency.Nanoseconds()
}

// fig11Assemble folds per-hop barrier latencies into the figure.
func fig11Assemble(ns []float64) Fig11Result {
	var res Fig11Result
	var xs, ys []float64
	for h, v := range ns {
		paper := 51.5
		if h >= 1 {
			paper = 91.2 + 51.8*float64(h)
			xs = append(xs, float64(h))
			ys = append(ys, v)
		}
		res.Points = append(res.Points, Fig11Point{Hops: h, Ns: v, PaperNs: paper})
	}
	res.Fit = stats.Fit(xs, ys)
	return res
}

// Render formats the figure.
func (r Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11: network fence barrier latency (128 nodes, GC-to-GC)\n")
	fmt.Fprintf(&b, "%4s %12s %12s\n", "hops", "measured ns", "paper ns")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%4d %12.1f %12.1f\n", p.Hops, p.Ns, p.PaperNs)
	}
	fmt.Fprintf(&b, "fit: %s   (paper: y = 91.2 + 51.8*x)\n", r.Fit)
	return b.String()
}

// ---------------------------------------------------------------- Figure 12

// Fig12Result is the machine activity experiment.
type Fig12Result struct {
	Atoms      int
	StepOffNs  float64
	StepOnNs   float64
	PlotOff    string
	PlotOn     string
	SummaryOff string
	SummaryOn  string
}

// Fig12 runs the paper's 32,751-atom water system on 8 nodes with
// compression off and on, recording machine activity. shards runs each
// machine across that many kernel shards with byte-identical output.
func Fig12(atoms, steps, shards int) Fig12Result {
	res := Fig12Result{Atoms: atoms}
	for _, comp := range []serdes.CompressConfig{{}, {INZ: true, Pcache: true}} {
		cfg := machine.DefaultConfig(Shape8)
		cfg.Compress = comp
		cfg.Shards = shards
		m := machine.New(cfg)
		sys := md.NewWater(atoms, 300, sim.NewRand(777))
		e := machine.NewEngine(m, sys, machine.DefaultTimestepConfig())
		for i := 0; i < steps-1; i++ {
			e.RunStep() // warm the caches, untraced
		}
		rec := trace.NewRecorder()
		e.AttachChannelTrace(rec)
		last := e.RunStep()
		if comp.Pcache {
			res.StepOnNs = last.Duration.Nanoseconds()
			res.PlotOn = rec.Render(40)
			res.SummaryOn = rec.Summary()
		} else {
			res.StepOffNs = last.Duration.Nanoseconds()
			res.PlotOff = rec.Render(40)
			res.SummaryOff = rec.Summary()
		}
	}
	return res
}

// Render formats the activity plots.
func (r Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: machine activity, %d-atom water on 8 nodes\n", r.Atoms)
	fmt.Fprintf(&b, "\n(a) compression disabled — step %.0f ns (paper ~2000 ns)\n%s%s",
		r.StepOffNs, r.PlotOff, r.SummaryOff)
	fmt.Fprintf(&b, "\n(b) compression enabled — step %.0f ns (paper ~900 ns)\n%s%s",
		r.StepOnNs, r.PlotOn, r.SummaryOn)
	return b.String()
}

// -------------------------------------------------- MD backpressure sweep

// MDQueueDepths are the per-VC ingress queue depths (flits) of the MD
// backpressure sweep, deepest first. The first entry is the effectively
// unbounded baseline every inflation percentage is measured against:
// closed-loop with deep queues isolates the store-and-forward relay model
// from actual credit starvation, so the shallower rows show pure
// endpoint backpressure.
var MDQueueDepths = []int{256, 16, 4}

// MDSweepPoint is one (queue depth) cell of one policy's MD sweep.
type MDSweepPoint struct {
	Policy       string  `json:"policy"`
	QueueFlits   int     `json:"queue_flits"`
	StepNs       float64 `json:"step_ns"`
	ParkedPos    int64   `json:"parked_positions"`
	ParkedFrc    int64   `json:"parked_forces"`
	InflationPct float64 `json:"inflation_pct"` // step-time inflation vs the deep baseline
}

// MDSweepPolicy runs real MD timesteps closed-loop against bounded per-VC
// ingress queues under one routing policy, across MDQueueDepths. Where the
// saturate grid measures synthetic knees, this measures what the actual
// position-multicast and force-return phases of a timestep do to the same
// flow-control machinery: how many injections the network refuses
// (parked), and how much the step stretches when queues shrink. shards
// runs each machine sharded with byte-identical output.
func MDSweepPolicy(pol route.Policy, atoms, steps, shards int) []MDSweepPoint {
	out := make([]MDSweepPoint, 0, len(MDQueueDepths))
	var baseNs float64
	for _, depth := range MDQueueDepths {
		cfg := machine.DefaultConfig(Shape8)
		cfg.Policy = pol
		cfg.Shards = shards
		cfg.VCQueueFlits = depth
		m := machine.New(cfg)
		sys := md.NewWater(atoms, 300, sim.NewRand(777))
		e := machine.NewEngine(m, sys, machine.DefaultTimestepConfig())
		var last machine.StepResult
		var parkedPos, parkedFrc int64
		for i := 0; i < steps; i++ {
			last = e.RunStep()
			parkedPos += last.ParkedPositions
			parkedFrc += last.ParkedForces
		}
		pt := MDSweepPoint{
			Policy:     pol.Name(),
			QueueFlits: depth,
			StepNs:     last.Duration.Nanoseconds(),
			ParkedPos:  parkedPos,
			ParkedFrc:  parkedFrc,
		}
		if baseNs == 0 {
			baseNs = pt.StepNs
		}
		pt.InflationPct = 100 * (pt.StepNs/baseNs - 1)
		out = append(out, pt)
	}
	return out
}

// RenderMDSweep formats one policy's depth sweep.
func RenderMDSweep(atoms, steps int, pts []MDSweepPoint) string {
	var b strings.Builder
	if len(pts) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "MD backpressure: %s over %d-atom water, %d steps (8 nodes, closed loop)\n",
		pts[0].Policy, atoms, steps)
	fmt.Fprintf(&b, "%10s %12s %11s %12s %12s\n",
		"vcq flits", "step ns", "inflation", "parked pos", "parked frc")
	for _, p := range pts {
		fmt.Fprintf(&b, "%10d %12.0f %10.1f%% %12d %12d\n",
			p.QueueFlits, p.StepNs, p.InflationPct, p.ParkedPos, p.ParkedFrc)
	}
	return b.String()
}

// ------------------------------------------------------------------ Tables

// Tables renders Tables I, II and III.
func Tables() string {
	var b strings.Builder
	b.WriteString("Table I: key features of the three Anton ASICs\n")
	b.WriteString(area.FormatTableI())
	b.WriteByte('\n')
	counts := area.ProductionCounts()
	b.WriteString(area.FormatComponents("Table II: network component die area", area.TableII(counts)))
	b.WriteByte('\n')
	b.WriteString(area.FormatComponents("Table III: network feature costs", area.TableIII(counts)))
	return b.String()
}
