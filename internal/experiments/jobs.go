package experiments

import (
	"fmt"
	"strings"
	"sync"

	"anton3/internal/fault"
	"anton3/internal/flow"
	"anton3/internal/resultstore"
	"anton3/internal/route"
	"anton3/internal/runner"
	"anton3/internal/sim"
	"anton3/internal/synth"
	"anton3/internal/telemetry"
	"anton3/internal/topo"
	"anton3/internal/trace"
)

// Fig5Seed is the pair-sampling seed of the paper runs of Figure 5.
const Fig5Seed = 99

// Params sizes every experiment job. The zero value is not useful; start
// from DefaultParams (the sizes cmd/anton3 has always used) and override.
type Params struct {
	Fig5Pairs    int   // sampled GC pairs per hop count
	Fig9aSizes   []int // atom counts for the traffic-reduction sweep
	Fig9aWarm    int   // warmup steps excluded from the fig9a window
	Fig9aMeasure int   // measured steps in the fig9a window
	Fig9bSizes   []int // atom counts for the speedup sweep
	Fig9bSteps   int   // timesteps per fig9b sample
	Fig12Atoms   int   // the paper's activity-plot system size
	Fig12Steps   int   // timesteps for fig12 (last one is traced)

	AblPredictorAtoms int   // predictor-order ablation system size
	AblPcacheAtoms    int   // pcache size-sweep system size
	AblPcacheSizes    []int // pcache capacities swept
	AblINZAtoms       int   // INZ interleave ablation system size
	AblDimWrites      int   // writes per node in the dimension-order ablation

	NetShapes  []topo.Shape // netsweep torus shapes (one job per shape x pattern)
	NetLoads   []float64    // offered loads swept per cell
	NetPackets int          // measured packets per node per run
	NetWarmup  int          // per-node packets injected before measurement
	// NetShards shards each netsweep machine across that many kernels
	// (conservative-lookahead parallel simulation; see machine.Config.
	// Shards). Output is byte-identical at every value; 0 or 1 is the
	// sequential machine. Saturate cells shard with the same value.
	NetShards int

	// Saturate gates the closed-loop saturation grid (anton3 saturate):
	// the jobs are appended to the registry only when set, so the `all`
	// output stream stays byte-identical to older trees.
	Saturate bool
	// SatShapes/SatLoads/SatPackets/SatWarmup size the saturate grid the
	// way the Net* fields size netsweep; packets and warmup are per node
	// at unit load (the closed-loop harness scales them with the load so
	// the offered horizon stays load-independent).
	SatShapes  []topo.Shape
	SatLoads   []float64
	SatPackets int
	SatWarmup  int
	// SatQueueFlits and SatInjDepth configure the per-VC ingress queue
	// depth and per-source injection window; 0 takes the flow package
	// defaults (bandwidth-delay-product queues, 8-slot windows).
	SatQueueFlits int
	SatInjDepth   int

	// MDShards shards each timestep-engine machine (fig9b, fig12, mdsweep)
	// across that many kernels, the way NetShards does for netsweep.
	// Output is byte-identical at every value; 0 or 1 is sequential.
	MDShards int
	// MDSweep gates the closed-loop MD backpressure grid (anton3 mdsweep):
	// like Saturate, the jobs only join the registry when set, so the
	// `all` output stream stays byte-identical to older trees.
	MDSweep bool
	// MDAtoms and MDSteps size each mdsweep cell.
	MDAtoms int
	MDSteps int

	// FaultSweep gates the link-fault knee-shift grid (anton3 faultsweep):
	// like Saturate, the jobs only join the registry when set. Cells reuse
	// the saturate grid's shapes, loads, budgets and queue depths.
	FaultSweep bool
	// FaultSeed seeds the drawn fault-severity grid (fault.SeverityGrid):
	// which links each severity degrades or kills is a deterministic
	// function of (shape, FaultSeed).
	FaultSeed uint64
	// FaultPlan, when non-empty, replaces the drawn grid with two rows —
	// the healthy baseline and this custom plan (fault.Parse syntax). The
	// CLI validates it against every selected shape before jobs build.
	FaultPlan string

	// Cache, when non-nil, memoizes the grid cells (netsweep, saturate,
	// mdsweep) at two levels: whole cells short-circuit through
	// runner.Job.CacheKey, and the saturate cells additionally memoize
	// every closed-loop point — sweep loads and knee-search probes —
	// inside flow. Results are a pure function of (config, seed), so
	// caching changes wall time and the -json cache counters only, never
	// a byte of output. nil (the default) runs everything.
	Cache *resultstore.Store

	// Metrics arms the deterministic telemetry layer on the sweep cells
	// (netsweep, saturate, faultsweep): curves carry counter/histogram
	// summaries and renders append "telemetry" lines. Metrics-on cells
	// cache under "+tel" kinds, so they never share entries with plain
	// runs of the same configuration.
	Metrics bool
	// Trace, when non-nil, arms packet-lifecycle tracing on the same
	// cells; each cell drains its tracks into the sink under its job
	// name. Traced cells never cache — a hit would skip the simulated
	// work whose lifecycle the trace records.
	Trace *telemetry.TraceSink
}

// DefaultParams returns the paper-scale configuration.
func DefaultParams() Params {
	return Params{
		Fig5Pairs:    6,
		Fig9aSizes:   []int{8000, 16000, 32751, 65000, 131000},
		Fig9aWarm:    3,
		Fig9aMeasure: 4,
		Fig9bSizes:   []int{8000, 16000, 32751, 65000},
		Fig9bSteps:   3,
		Fig12Atoms:   32751,
		Fig12Steps:   3,

		AblPredictorAtoms: 8000,
		AblPcacheAtoms:    32751,
		AblPcacheSizes:    []int{256, 512, 1024, 2048, 4096},
		AblINZAtoms:       8000,
		AblDimWrites:      60,

		// The paper's 128-node measurement machine plus the 512-node
		// production scale; 8x8x16 (1024 nodes) is a -shapes flag away.
		NetShapes:  []topo.Shape{{X: 4, Y: 4, Z: 8}, {X: 8, Y: 8, Z: 8}},
		NetLoads:   []float64{0.5, 1, 2, 3, 4},
		NetPackets: 96,
		NetWarmup:  32,

		SatShapes:  []topo.Shape{{X: 4, Y: 4, Z: 8}, {X: 8, Y: 8, Z: 8}},
		SatLoads:   []float64{0.5, 1, 2, 3, 4},
		SatPackets: 96,
		SatWarmup:  32,

		MDAtoms: 8000,
		MDSteps: 2,

		FaultSeed: 1,
	}
}

// fig5Jobs shards the Figure 5 hop sweep: pair samples are drawn in the
// historical rng order (lazily, once, on whichever worker needs them
// first), each hop count measures on its own worker (hidden sub-jobs),
// and a reducer assembles the figure — so the runner load-balances the
// sweep with output identical to the sequential run.
func fig5Jobs(p Params) []runner.Job {
	samples := sync.OnceValue(func() [][]fig5Pair {
		return fig5SamplePairs(sim.NewRand(Fig5Seed), p.Fig5Pairs)
	})
	hops := Shape128.Diameter() + 1
	jobs := make([]runner.Job, 0, hops+1)
	needs := make([]string, hops)
	for h := 0; h < hops; h++ {
		h := h
		name := fmt.Sprintf("fig5/h%d", h)
		needs[h] = name
		jobs = append(jobs, runner.Job{
			Name: name, Seed: Fig5Seed, Cost: 0.4, Hidden: true,
			Run: func(*sim.Rand) (runner.Output, error) {
				return runner.Output{Data: fig5MeasureHop(samples()[h])}, nil
			}})
	}
	jobs = append(jobs, runner.Job{
		Name: "fig5", Seed: Fig5Seed, Cost: 0.01, Needs: needs,
		Reduce: func(_ *sim.Rand, in []runner.Result) (runner.Output, error) {
			perHop := make([][]float64, len(in))
			for i, res := range in {
				if res.Err != "" {
					return runner.Output{}, fmt.Errorf("%s: %s", res.Name, res.Err)
				}
				perHop[i] = res.Data.([]float64)
			}
			r := fig5Assemble(perHop)
			return runner.Output{Text: r.Render(), Data: r}, nil
		}})
	return jobs
}

// fig11Jobs shards the Figure 11 barrier sweep the same way.
func fig11Jobs() []runner.Job {
	hops := Shape128.Diameter() + 1
	jobs := make([]runner.Job, 0, hops+1)
	needs := make([]string, hops)
	for h := 0; h < hops; h++ {
		h := h
		name := fmt.Sprintf("fig11/h%d", h)
		needs[h] = name
		jobs = append(jobs, runner.Job{
			Name: name, Seed: 5, Cost: 0.12, Hidden: true,
			Run: func(*sim.Rand) (runner.Output, error) {
				return runner.Output{Data: fig11MeasureHop(h)}, nil
			}})
	}
	jobs = append(jobs, runner.Job{
		Name: "fig11", Seed: 5, Cost: 0.01, Needs: needs,
		Reduce: func(_ *sim.Rand, in []runner.Result) (runner.Output, error) {
			ns := make([]float64, len(in))
			for i, res := range in {
				if res.Err != "" {
					return runner.Output{}, fmt.Errorf("%s: %s", res.Name, res.Err)
				}
				ns[i] = res.Data.(float64)
			}
			r := fig11Assemble(ns)
			return runner.Output{Text: r.Render(), Data: r}, nil
		}})
	return jobs
}

// cellKey builds a grid cell's cache key under the observability gates:
// metrics-on cells move to a "+tel" kind (payload and stdout then carry
// telemetry), and traced cells don't cache at all — a cell hit would
// skip the simulation whose lifecycle the trace records.
func cellKey(p Params, kind string, seed uint64, cfg any) resultstore.Key {
	if p.Trace != nil {
		return resultstore.Key{}
	}
	if p.Metrics {
		kind += "+tel"
	}
	return resultstore.KeyFor(kind, seed, cfg)
}

// cellRecorder returns a fresh per-cell trace recorder when tracing is
// armed, nil otherwise; cellDrain hands the filled recorder to the sink
// under the cell's job name.
func cellRecorder(p Params) *trace.Recorder {
	if p.Trace == nil {
		return nil
	}
	return trace.NewRecorder()
}

func cellDrain(p Params, name string, rec *trace.Recorder) {
	if rec != nil {
		p.Trace.Add(name, rec)
	}
}

// cellCache resolves the point-level store a traced cell may use: none —
// point hits would leave holes in the trace — and p.Cache otherwise.
func cellCache(p Params) *resultstore.Store {
	if p.Trace != nil {
		return nil
	}
	return p.Cache
}

// policyNames flattens a policy list into the cache-key config: the
// policy set is part of what a cell's output depends on.
func policyNames(pols []route.Policy) []string {
	names := make([]string, len(pols))
	for i, p := range pols {
		names[i] = p.Name()
	}
	return names
}

// sweepCellCfg is the canonical cache-key config of one open- or
// closed-loop grid cell. Shard and worker counts are deliberately
// absent: cell output is shard-invariant, so a result computed at any
// -shards/-jobs serves every other.
type sweepCellCfg struct {
	Shape    string
	Pattern  string
	Policies []string
	Loads    []float64
	Packets  int
	Warmup   int
	// QueueFlits/InjDepth only apply to closed-loop (saturate) cells;
	// they hold the resolved depths, not the 0 the flags pass for
	// "default", so a default-depth run and an explicit -vcq 64 run
	// share entries.
	QueueFlits int
	InjDepth   int
}

// netsweepJobs registers one job per shape x pattern, each sweeping every
// routing policy across the offered loads. Seeds depend on position only,
// so the grid decomposes freely across workers. Cells are auto-shardable:
// when the pool has idle workers and -autoshard is on, a cell's machine
// runs across the spare cores with byte-identical output (pinned by the
// shard-invariance tier-1 tests). Each cell carries a content-addressed
// cache key, armed when the pool runs with a result store.
func netsweepJobs(p Params) []runner.Job {
	var jobs []runner.Job
	for si, shape := range p.NetShapes {
		for pi, pat := range synth.Patterns() {
			shape, pat := shape, pat
			seed := uint64(7000 + 100*si + pi)
			name := fmt.Sprintf("netsweep/%s/%s", shape, pat.Name)
			run := func(shards int) (runner.Output, error) {
				rec := cellRecorder(p)
				r := synth.SweepOpts(shape, route.Policies(), pat, p.NetLoads, p.NetPackets, p.NetWarmup, seed, shards,
					synth.Opts{Metrics: p.Metrics, Trace: rec})
				cellDrain(p, name, rec)
				return runner.Output{Text: r.Render(), Data: r}, nil
			}
			job := runner.Job{
				Name: name,
				Seed: seed,
				Cost: 0.1 * float64(shape.Nodes()) / 16,
				CacheKey: cellKey(p, "cell/netsweep", seed, sweepCellCfg{
					Shape:    shape.String(),
					Pattern:  pat.Name,
					Policies: policyNames(route.Policies()),
					Loads:    p.NetLoads,
					Packets:  p.NetPackets,
					Warmup:   p.NetWarmup,
				}),
				Run: func(*sim.Rand) (runner.Output, error) {
					return run(p.NetShards)
				}}
			if p.NetShards <= 1 {
				job.ShardRun = func(_ *sim.Rand, shards int) (runner.Output, error) {
					return run(shards)
				}
			}
			jobs = append(jobs, job)
		}
	}
	return jobs
}

// saturateJobs registers the closed-loop saturation grid: one job per
// shape x pattern, each sweeping all four policies (netsweep's trio plus
// credit-echo) across the offered loads and bisecting for each policy's
// saturation knee. Like netsweep cells they pre-draw all randomness from
// the cell seed, so the grid is byte-identical at any worker and shard
// count, and they are auto-shardable the same way. With a result store,
// cells memoize at two grains: the whole cell through its CacheKey, and
// — on a cell miss — every closed-loop point inside flow, so knee
// searches never re-simulate a (policy x pattern x shape x load) probe
// any invocation has seen.
func saturateJobs(p Params) []runner.Job {
	var jobs []runner.Job
	qf, injd := p.SatQueueFlits, p.SatInjDepth
	if qf <= 0 {
		qf = flow.DefaultQueueFlits
	}
	if injd <= 0 {
		injd = flow.DefaultInjDepth
	}
	for si, shape := range p.SatShapes {
		for pi, pat := range synth.Patterns() {
			shape, pat := shape, pat
			seed := uint64(9000 + 100*si + pi)
			name := fmt.Sprintf("saturate/%s/%s", shape, pat.Name)
			run := func(shards int) (runner.Output, error) {
				rec := cellRecorder(p)
				r := flow.SweepOpts(shape, route.SaturatePolicies(), pat, p.SatLoads,
					p.SatPackets, p.SatWarmup, seed, shards, p.SatQueueFlits, p.SatInjDepth, cellCache(p),
					flow.Opts{Metrics: p.Metrics, Trace: rec})
				cellDrain(p, name, rec)
				return runner.Output{Text: r.Render(), Data: r}, nil
			}
			job := runner.Job{
				Name: name,
				Seed: seed,
				// ~4 policies x (sweep + knee probes) of load-scaled
				// closed-loop points: roughly 5x a netsweep cell.
				Cost: 0.5 * float64(shape.Nodes()) / 16,
				CacheKey: cellKey(p, "cell/saturate", seed, sweepCellCfg{
					Shape:      shape.String(),
					Pattern:    pat.Name,
					Policies:   policyNames(route.SaturatePolicies()),
					Loads:      p.SatLoads,
					Packets:    p.SatPackets,
					Warmup:     p.SatWarmup,
					QueueFlits: qf,
					InjDepth:   injd,
				}),
				Run: func(*sim.Rand) (runner.Output, error) {
					return run(p.NetShards)
				}}
			if p.NetShards <= 1 {
				job.ShardRun = func(_ *sim.Rand, shards int) (runner.Output, error) {
					return run(shards)
				}
			}
			jobs = append(jobs, job)
		}
	}
	return jobs
}

// fig9bJob builds the compression-speedup job. The timestep engine runs on
// the sharded executive with byte-identical output, so the job is
// auto-shardable exactly like a netsweep cell: spare cores at dispatch
// become kernel shards.
func fig9bJob(p Params) runner.Job {
	run := func(shards int) (runner.Output, error) {
		pts := Fig9b(p.Fig9bSizes, p.Fig9bSteps, shards)
		return runner.Output{Text: RenderFig9b(pts), Data: pts}, nil
	}
	job := runner.Job{Name: "fig9b", Seed: 4, Cost: 20,
		Run: func(*sim.Rand) (runner.Output, error) {
			return run(p.MDShards)
		}}
	if p.MDShards <= 1 {
		job.ShardRun = func(_ *sim.Rand, shards int) (runner.Output, error) {
			return run(shards)
		}
	}
	return job
}

// fig12Job builds the activity-plot job, auto-shardable like fig9b.
func fig12Job(p Params) runner.Job {
	run := func(shards int) (runner.Output, error) {
		r := Fig12(p.Fig12Atoms, p.Fig12Steps, shards)
		return runner.Output{Text: r.Render(), Data: r}, nil
	}
	job := runner.Job{Name: "fig12", Seed: 6, Cost: 15,
		Run: func(*sim.Rand) (runner.Output, error) {
			return run(p.MDShards)
		}}
	if p.MDShards <= 1 {
		job.ShardRun = func(_ *sim.Rand, shards int) (runner.Output, error) {
			return run(shards)
		}
	}
	return job
}

// mdsweepJobs registers the closed-loop MD backpressure grid: one job per
// routing policy (the saturate quartet), each sweeping the per-VC queue
// depths over real MD timesteps. Every cell pre-draws its randomness from
// the water seed alone, so the grid decomposes freely across workers and
// shards with byte-identical output, and cells auto-shard like netsweep
// cells.
func mdsweepJobs(p Params) []runner.Job {
	var jobs []runner.Job
	for pi, pol := range route.SaturatePolicies() {
		pol := pol
		run := func(shards int) (runner.Output, error) {
			pts := MDSweepPolicy(pol, p.MDAtoms, p.MDSteps, shards)
			return runner.Output{Text: RenderMDSweep(p.MDAtoms, p.MDSteps, pts), Data: pts}, nil
		}
		job := runner.Job{
			Name: fmt.Sprintf("mdsweep/%s", pol.Name()),
			Seed: uint64(9500 + pi),
			// Each cell runs len(MDQueueDepths) full timestep pipelines
			// at the fig9b 8000-atom scale.
			Cost: 10,
			CacheKey: resultstore.KeyFor("cell/mdsweep", uint64(9500+pi), struct {
				Policy string
				Atoms  int
				Steps  int
				Depths []int
			}{pol.Name(), p.MDAtoms, p.MDSteps, MDQueueDepths}),
			Run: func(*sim.Rand) (runner.Output, error) {
				return run(p.MDShards)
			}}
		if p.MDShards <= 1 {
			job.ShardRun = func(_ *sim.Rand, shards int) (runner.Output, error) {
				return run(shards)
			}
		}
		jobs = append(jobs, job)
	}
	return jobs
}

// faultSevs resolves the fault-severity grid one faultsweep cell runs: the
// custom [healthy, plan] pair when Params.FaultPlan is set (the CLI has
// already validated it against every selected shape — a parse failure here
// is a programming error), the drawn grid otherwise.
func faultSevs(p Params, shape topo.Shape) []fault.Severity {
	if p.FaultPlan == "" {
		return fault.SeverityGrid(shape, p.FaultSeed)
	}
	plan, err := fault.Parse(p.FaultPlan)
	if err != nil {
		panic("experiments: unvalidated fault plan: " + err.Error())
	}
	return []fault.Severity{{Name: "healthy"}, {Name: "custom", Plan: *plan}}
}

// faultsweepJobs registers the link-fault knee-shift grid: one job per
// shape x pattern, each locating every saturate policy's knee under every
// severity of the fault grid and reporting the shift against the healthy
// baseline. Severity plans are canonicalized into the cache key, so a
// different -faultseed (different drawn links) or -faults plan can never
// collide with a cached cell; healthy probe points inside flow share
// entries with saturate's.
func faultsweepJobs(p Params) []runner.Job {
	var jobs []runner.Job
	qf, injd := p.SatQueueFlits, p.SatInjDepth
	if qf <= 0 {
		qf = flow.DefaultQueueFlits
	}
	if injd <= 0 {
		injd = flow.DefaultInjDepth
	}
	for si, shape := range p.SatShapes {
		sevs := faultSevs(p, shape)
		canons := make([]string, len(sevs))
		for i, sev := range sevs {
			canons[i] = sev.Name + "=" + sev.Plan.Canon()
		}
		for pi, pat := range synth.Patterns() {
			shape, pat, sevs := shape, pat, sevs
			seed := uint64(9700 + 100*si + pi)
			name := fmt.Sprintf("faultsweep/%s/%s", shape, pat.Name)
			run := func(shards int) (runner.Output, error) {
				rec := cellRecorder(p)
				r := flow.FaultSweepOpts(shape, route.SaturatePolicies(), pat, p.SatLoads,
					p.SatPackets, p.SatWarmup, seed, sevs, shards, p.SatQueueFlits, p.SatInjDepth, cellCache(p),
					flow.Opts{Metrics: p.Metrics, Trace: rec})
				cellDrain(p, name, rec)
				return runner.Output{Text: r.Render(), Data: r}, nil
			}
			job := runner.Job{
				Name: name,
				Seed: seed,
				// len(sevs) saturate-style knee searches per cell.
				Cost: 2.5 * float64(shape.Nodes()) / 16,
				CacheKey: cellKey(p, "cell/faultsweep", seed, struct {
					Shape      string
					Pattern    string
					Policies   []string
					Loads      []float64
					Packets    int
					Warmup     int
					QueueFlits int
					InjDepth   int
					Severities []string
				}{shape.String(), pat.Name, policyNames(route.SaturatePolicies()),
					p.SatLoads, p.SatPackets, p.SatWarmup, qf, injd, canons}),
				Run: func(*sim.Rand) (runner.Output, error) {
					return run(p.NetShards)
				}}
			if p.NetShards <= 1 {
				job.ShardRun = func(_ *sim.Rand, shards int) (runner.Output, error) {
					return run(shards)
				}
			}
			jobs = append(jobs, job)
		}
	}
	return jobs
}

// Jobs returns every table, figure and ablation of the paper as runner
// jobs, in the order cmd/anton3 has always printed them, followed by the
// netsweep policy/pattern grid. Each job owns a private machine and
// kernel, so the set can run on any worker count with byte-identical
// output. Cost hints come from measured paper-scale runtimes and only
// shape dispatch order, never output.
func Jobs(p Params) []runner.Job {
	jobs := []runner.Job{
		{Name: "tables", Seed: 1, Cost: 0.1,
			Run: func(*sim.Rand) (runner.Output, error) {
				return runner.Output{Text: Tables()}, nil
			}},
	}
	jobs = append(jobs, fig5Jobs(p)...)
	jobs = append(jobs,
		runner.Job{Name: "fig6", Seed: 2, Cost: 0.1,
			Run: func(*sim.Rand) (runner.Output, error) {
				r := Fig6()
				return runner.Output{Text: r.Render(), Data: r}, nil
			}},
		runner.Job{Name: "fig9a", Seed: 3, Cost: 30,
			Run: func(*sim.Rand) (runner.Output, error) {
				pts := Fig9a(p.Fig9aSizes, p.Fig9aWarm, p.Fig9aMeasure)
				return runner.Output{Text: RenderFig9a(pts), Data: pts}, nil
			}},
		fig9bJob(p),
	)
	jobs = append(jobs, fig11Jobs()...)
	jobs = append(jobs,
		fig12Job(p),
		runner.Job{Name: "ablation-predictor-order", Seed: 7, Cost: 2,
			Run: func(*sim.Rand) (runner.Output, error) {
				rows := AblationPredictorOrder(p.AblPredictorAtoms, 3, 3)
				return runner.Output{
					Text: RenderAblation(fmt.Sprintf("Ablation: pcache predictor order (%d atoms)", p.AblPredictorAtoms), rows),
					Data: rows,
				}, nil
			}},
		runner.Job{Name: "ablation-pcache-size", Seed: 8, Cost: 10,
			Run: func(*sim.Rand) (runner.Output, error) {
				rows := AblationPcacheSize(p.AblPcacheAtoms, 2, 2, p.AblPcacheSizes)
				return runner.Output{
					Text: RenderAblation(fmt.Sprintf("Ablation: pcache size sweep (%d atoms)", p.AblPcacheAtoms), rows),
					Data: rows,
				}, nil
			}},
		runner.Job{Name: "ablation-inz-interleave", Seed: 9, Cost: 0.5,
			Run: func(*sim.Rand) (runner.Output, error) {
				rows := AblationINZInterleave(p.AblINZAtoms)
				return runner.Output{
					Text: RenderAblation(fmt.Sprintf("Ablation: INZ interleave vs truncation (%d atoms)", p.AblINZAtoms), rows),
					Data: rows,
				}, nil
			}},
		runner.Job{Name: "ablation-fence-vs-pairwise", Seed: 10, Cost: 1,
			Run: func(*sim.Rand) (runner.Output, error) {
				rows := AblationFenceVsPairwise(topo.Shape{X: 4, Y: 4, Z: 8})
				return runner.Output{
					Text: RenderAblation("Ablation: fence vs pairwise barrier (128 nodes)", rows),
					Data: rows,
				}, nil
			}},
		runner.Job{Name: "ablation-dim-orders", Seed: 11, Cost: 1.5,
			Run: func(*sim.Rand) (runner.Output, error) {
				rows := AblationDimOrders(p.AblDimWrites)
				return runner.Output{
					Text: RenderAblation("Ablation: routing policy under uniform-random load", rows),
					Data: rows,
				}, nil
			}},
	)
	jobs = append(jobs, netsweepJobs(p)...)
	if p.Saturate {
		jobs = append(jobs, saturateJobs(p)...)
	}
	if p.MDSweep {
		jobs = append(jobs, mdsweepJobs(p)...)
	}
	if p.FaultSweep {
		jobs = append(jobs, faultsweepJobs(p)...)
	}
	return jobs
}

// SelectJobs filters jobs by subcommand name: a job matches itself or any
// job it was sharded into (name-prefix "<selector>/", which also selects
// the reducer and every netsweep cell), and "ablations" matches every
// ablation-* job. It returns nil when nothing matches.
func SelectJobs(jobs []runner.Job, name string) []runner.Job {
	if name == "all" {
		return jobs
	}
	var out []runner.Job
	for _, j := range jobs {
		if j.Name == name ||
			strings.HasPrefix(j.Name, name+"/") ||
			(name == "ablations" && strings.HasPrefix(j.Name, "ablation-")) {
			out = append(out, j)
		}
	}
	return out
}
