package experiments

import (
	"fmt"
	"strings"

	"anton3/internal/runner"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// Fig5Seed is the pair-sampling seed of the paper runs of Figure 5.
const Fig5Seed = 99

// Params sizes every experiment job. The zero value is not useful; start
// from DefaultParams (the sizes cmd/anton3 has always used) and override.
type Params struct {
	Fig5Pairs    int   // sampled GC pairs per hop count
	Fig9aSizes   []int // atom counts for the traffic-reduction sweep
	Fig9aWarm    int   // warmup steps excluded from the fig9a window
	Fig9aMeasure int   // measured steps in the fig9a window
	Fig9bSizes   []int // atom counts for the speedup sweep
	Fig9bSteps   int   // timesteps per fig9b sample
	Fig12Atoms   int   // the paper's activity-plot system size
	Fig12Steps   int   // timesteps for fig12 (last one is traced)

	AblPredictorAtoms int   // predictor-order ablation system size
	AblPcacheAtoms    int   // pcache size-sweep system size
	AblPcacheSizes    []int // pcache capacities swept
	AblINZAtoms       int   // INZ interleave ablation system size
	AblDimWrites      int   // writes per node in the dimension-order ablation
}

// DefaultParams returns the paper-scale configuration.
func DefaultParams() Params {
	return Params{
		Fig5Pairs:    6,
		Fig9aSizes:   []int{8000, 16000, 32751, 65000, 131000},
		Fig9aWarm:    3,
		Fig9aMeasure: 4,
		Fig9bSizes:   []int{8000, 16000, 32751, 65000},
		Fig9bSteps:   3,
		Fig12Atoms:   32751,
		Fig12Steps:   3,

		AblPredictorAtoms: 8000,
		AblPcacheAtoms:    32751,
		AblPcacheSizes:    []int{256, 512, 1024, 2048, 4096},
		AblINZAtoms:       8000,
		AblDimWrites:      60,
	}
}

// Jobs returns every table, figure and ablation of the paper as runner
// jobs, in the order cmd/anton3 has always printed them. Each job owns a
// private machine and kernel, so the set can run on any worker count with
// byte-identical output. Cost hints come from measured paper-scale
// runtimes and only shape dispatch order, never output.
func Jobs(p Params) []runner.Job {
	return []runner.Job{
		{Name: "tables", Seed: 1, Cost: 0.1,
			Run: func(*sim.Rand) (runner.Output, error) {
				return runner.Output{Text: Tables()}, nil
			}},
		{Name: "fig5", Seed: Fig5Seed, Cost: 3,
			Run: func(rng *sim.Rand) (runner.Output, error) {
				r := Fig5(rng, p.Fig5Pairs)
				return runner.Output{Text: r.Render(), Data: r}, nil
			}},
		{Name: "fig6", Seed: 2, Cost: 0.1,
			Run: func(*sim.Rand) (runner.Output, error) {
				r := Fig6()
				return runner.Output{Text: r.Render(), Data: r}, nil
			}},
		{Name: "fig9a", Seed: 3, Cost: 30,
			Run: func(*sim.Rand) (runner.Output, error) {
				pts := Fig9a(p.Fig9aSizes, p.Fig9aWarm, p.Fig9aMeasure)
				return runner.Output{Text: RenderFig9a(pts), Data: pts}, nil
			}},
		{Name: "fig9b", Seed: 4, Cost: 20,
			Run: func(*sim.Rand) (runner.Output, error) {
				pts := Fig9b(p.Fig9bSizes, p.Fig9bSteps)
				return runner.Output{Text: RenderFig9b(pts), Data: pts}, nil
			}},
		{Name: "fig11", Seed: 5, Cost: 1,
			Run: func(*sim.Rand) (runner.Output, error) {
				r := Fig11()
				return runner.Output{Text: r.Render(), Data: r}, nil
			}},
		{Name: "fig12", Seed: 6, Cost: 15,
			Run: func(*sim.Rand) (runner.Output, error) {
				r := Fig12(p.Fig12Atoms, p.Fig12Steps)
				return runner.Output{Text: r.Render(), Data: r}, nil
			}},
		{Name: "ablation-predictor-order", Seed: 7, Cost: 2,
			Run: func(*sim.Rand) (runner.Output, error) {
				rows := AblationPredictorOrder(p.AblPredictorAtoms, 3, 3)
				return runner.Output{
					Text: RenderAblation(fmt.Sprintf("Ablation: pcache predictor order (%d atoms)", p.AblPredictorAtoms), rows),
					Data: rows,
				}, nil
			}},
		{Name: "ablation-pcache-size", Seed: 8, Cost: 10,
			Run: func(*sim.Rand) (runner.Output, error) {
				rows := AblationPcacheSize(p.AblPcacheAtoms, 2, 2, p.AblPcacheSizes)
				return runner.Output{
					Text: RenderAblation(fmt.Sprintf("Ablation: pcache size sweep (%d atoms)", p.AblPcacheAtoms), rows),
					Data: rows,
				}, nil
			}},
		{Name: "ablation-inz-interleave", Seed: 9, Cost: 0.5,
			Run: func(*sim.Rand) (runner.Output, error) {
				rows := AblationINZInterleave(p.AblINZAtoms)
				return runner.Output{
					Text: RenderAblation(fmt.Sprintf("Ablation: INZ interleave vs truncation (%d atoms)", p.AblINZAtoms), rows),
					Data: rows,
				}, nil
			}},
		{Name: "ablation-fence-vs-pairwise", Seed: 10, Cost: 1,
			Run: func(*sim.Rand) (runner.Output, error) {
				rows := AblationFenceVsPairwise(topo.Shape{X: 4, Y: 4, Z: 8})
				return runner.Output{
					Text: RenderAblation("Ablation: fence vs pairwise barrier (128 nodes)", rows),
					Data: rows,
				}, nil
			}},
		{Name: "ablation-dim-orders", Seed: 11, Cost: 1,
			Run: func(*sim.Rand) (runner.Output, error) {
				rows := AblationDimOrders(p.AblDimWrites)
				return runner.Output{
					Text: RenderAblation("Ablation: randomized vs fixed dimension orders", rows),
					Data: rows,
				}, nil
			}},
	}
}

// SelectJobs filters jobs by subcommand name: a job name matches itself,
// and "ablations" matches every ablation-* job. It returns nil when
// nothing matches.
func SelectJobs(jobs []runner.Job, name string) []runner.Job {
	if name == "all" {
		return jobs
	}
	var out []runner.Job
	for _, j := range jobs {
		if j.Name == name ||
			(name == "ablations" && strings.HasPrefix(j.Name, "ablation-")) {
			out = append(out, j)
		}
	}
	return out
}
