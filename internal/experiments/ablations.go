package experiments

import (
	"fmt"
	"strings"

	"anton3/internal/fixp"
	"anton3/internal/inz"
	"anton3/internal/machine"
	"anton3/internal/md"
	"anton3/internal/pcache"
	"anton3/internal/route"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/topo"
	"anton3/internal/traffic"
)

// The ablation experiments quantify the design choices DESIGN.md calls out.
// Each returns measured rows plus a rendering; the root benchmark file
// exposes one bench per ablation.

// AblationRow is a generic (label, value) result.
type AblationRow struct {
	Label string
	Value float64
	Unit  string
}

// RenderAblation formats rows.
func RenderAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %10.2f %s\n", r.Label, r.Value, r.Unit)
	}
	return b.String()
}

// AblationPredictorOrder compares particle cache predictor orders by
// achieved traffic reduction (quadratic is the hardware choice).
func AblationPredictorOrder(atoms, warm, measure int) []AblationRow {
	var rows []AblationRow
	for _, p := range []struct {
		name string
		pred pcache.Predictor
	}{
		{"constant predictor", pcache.PredictConstant},
		{"linear predictor", pcache.PredictLinear},
		{"quadratic predictor (hw)", pcache.PredictQuadratic},
	} {
		cfg := serdes.CompressConfig{INZ: true, Pcache: true,
			PcacheConfig: pcache.Config{Entries: 1024, Ways: 4, EvictThreshold: 2, Predictor: p.pred}}
		sys := md.NewWater(atoms, 300, sim.NewRand(55))
		r := traffic.NewReplayer(Shape8, sys.Box, cfg)
		for i := 0; i < warm; i++ {
			r.ReplayStep(sys)
			sys.Step()
		}
		before := r.Snapshot()
		for i := 0; i < measure; i++ {
			r.ReplayStep(sys)
			sys.Step()
		}
		red := traffic.Delta(r.Stats(), before).Reduction()
		rows = append(rows, AblationRow{p.name, 100 * red, "% reduction"})
	}
	return rows
}

// AblationPcacheSize sweeps particle cache capacity.
func AblationPcacheSize(atoms, warm, measure int, sizes []int) []AblationRow {
	var rows []AblationRow
	for _, entries := range sizes {
		cfg := serdes.CompressConfig{INZ: true, Pcache: true,
			PcacheConfig: pcache.Config{Entries: entries, Ways: 4, EvictThreshold: 2}}
		sys := md.NewWater(atoms, 300, sim.NewRand(55))
		r := traffic.NewReplayer(Shape8, sys.Box, cfg)
		for i := 0; i < warm; i++ {
			r.ReplayStep(sys)
			sys.Step()
		}
		before := r.Snapshot()
		for i := 0; i < measure; i++ {
			r.ReplayStep(sys)
			sys.Step()
		}
		red := traffic.Delta(r.Stats(), before).Reduction()
		rows = append(rows, AblationRow{fmt.Sprintf("%d entries", entries), 100 * red, "% reduction"})
	}
	return rows
}

// AblationINZInterleave compares bit-interleaved INZ against per-word
// leading-zero truncation on real MD payloads (forces and box-relative
// positions from a thermalized system).
func AblationINZInterleave(atoms int) []AblationRow {
	sys := md.NewWater(atoms, 300, sim.NewRand(55))
	sys.Run(3)
	d := md.NewDecomposition(Shape8, sys.Box)
	var inzBytes, truncBytes, rawBytes int
	for i := 0; i < sys.N; i++ {
		home := d.HomeNode(sys.Pos[i])
		pq := d.RelativeFixed(sys.Pos[i], home).Words()
		fq := fixp.ForceToFixed(sys.Force[i]).Words()
		for _, q := range [][4]uint32{pq, fq} {
			inzBytes += inz.Encode(q).WireBytes()
			truncBytes += inz.TruncateBytes(q)
			rawBytes += inz.RawBytes
		}
	}
	return []AblationRow{
		{"raw payloads", float64(rawBytes) / 1024, "KiB"},
		{"per-word truncation", float64(truncBytes) / 1024, "KiB"},
		{"INZ (interleaved)", float64(inzBytes) / 1024, "KiB"},
	}
}

// AblationFenceVsPairwise compares a network-fence global barrier against a
// naive software barrier built from pairwise counted writes (every node
// writes to every other node, then blocks on N-1 arrivals). The fence's
// decisive advantage is bandwidth — in-network merging makes its cost grow
// with N, not N^2 — which is exactly the paper's motivation for merging
// (Section V-B); latency is reported too.
func AblationFenceVsPairwise(shape topo.Shape) []AblationRow {
	mf := machine.New(machine.DefaultConfig(shape))
	fenceNs := mf.Barrier(shape.Diameter()).Latency.Nanoseconds()
	fenceBits := mf.TotalWireStats().WireBits

	mp := machine.New(machine.DefaultConfig(shape))
	nodes := shape.Nodes()
	var last sim.Time
	remaining := nodes
	for i := 0; i < nodes; i++ {
		self := mp.GC(shape.CoordOf(i), 0)
		self.BlockingRead(40, uint8(nodes-1), func([4]uint32) {
			remaining--
			if t := mp.K.Now(); t > last {
				last = t
			}
		})
	}
	for i := 0; i < nodes; i++ {
		src := mp.GC(shape.CoordOf(i), 0)
		for j := 0; j < nodes; j++ {
			if i == j {
				continue
			}
			dst := mp.GC(shape.CoordOf(j), 0)
			src.CountedWrite(dst, 40, [4]uint32{1})
		}
	}
	mp.K.Run()
	if remaining != 0 {
		panic("experiments: pairwise barrier incomplete")
	}
	pairBits := mp.TotalWireStats().WireBits
	return []AblationRow{
		{"fence barrier latency", fenceNs, "ns"},
		{"pairwise barrier latency", last.Nanoseconds(), "ns"},
		{"fence wire traffic", float64(fenceBits) / 8192, "KiB"},
		{"pairwise wire traffic", float64(pairBits) / 8192, "KiB"},
	}
}

// AblationDimOrders compares the routing policies under a hot
// uniform-random write load on the 128-node machine: time to drain the
// same traffic with fixed XYZ, the paper's randomized six orders, and
// minimal-adaptive routing.
func AblationDimOrders(writesPerNode int) []AblationRow {
	run := func(pol route.Policy) float64 {
		cfg := machine.DefaultConfig(Shape128)
		cfg.Policy = pol
		m := machine.New(cfg)
		rng := sim.NewRand(4242)
		nodes := Shape128.Nodes()
		for i := 0; i < nodes; i++ {
			src := m.GC(Shape128.CoordOf(i), 0)
			for w := 0; w < writesPerNode; w++ {
				dst := m.GC(Shape128.CoordOf(rng.Intn(nodes)), 1)
				src.CountedWrite(dst, uint32(w%1024), [4]uint32{uint32(w), 1, 2, 3})
			}
		}
		return m.K.Run().Nanoseconds()
	}
	return []AblationRow{
		{"fixed XYZ order", run(route.XYZ()), "ns drain"},
		{"randomized 6 orders (hw)", run(route.Random()), "ns drain"},
		{"minimal adaptive", run(route.MinimalAdaptive()), "ns drain"},
	}
}
