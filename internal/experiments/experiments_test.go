package experiments

import (
	"fmt"
	"strings"
	"testing"

	"anton3/internal/runner"
	"anton3/internal/sim"
	"anton3/internal/stats"
	"anton3/internal/testutil"
	"anton3/internal/topo"
)

// sz picks the full-size or -short variant of a test parameter.
var sz = testutil.Size

func TestFig5ShapeMatchesPaper(t *testing.T) {
	r := Fig5(sim.NewRand(Fig5Seed), sz(3, 2))
	if len(r.Points) != 9 {
		t.Fatalf("expected hops 0..8, got %d points", len(r.Points))
	}
	// Slope within 10% of 34.2 ns/hop; linear (R2 high).
	if !stats.Within(r.Fit.Slope, 34.2, 0.10) {
		t.Errorf("slope = %.1f, want 34.2 +/- 10%%", r.Fit.Slope)
	}
	if r.Fit.R2 < 0.98 {
		t.Errorf("latency curve not linear: R2 = %.3f", r.Fit.R2)
	}
	// 0-hop distinctly lower than the h=1 average.
	if r.Points[0].AvgNs >= r.Points[1].AvgNs {
		t.Error("0-hop latency should be lowest")
	}
	if !strings.Contains(r.Render(), "paper: y = 55.9") {
		t.Error("render missing paper reference")
	}
}

func TestFig6BreakdownConsistent(t *testing.T) {
	r := Fig6()
	if !stats.Within(r.TotalNs, 55, 0.12) {
		t.Errorf("breakdown total = %.1f ns, want ~55", r.TotalNs)
	}
	// The sum of the stages must match what the simulator measures on the
	// same path.
	if !stats.Within(r.MeasuredNs, r.TotalNs, 0.05) {
		t.Errorf("measured %.1f ns vs breakdown %.1f ns", r.MeasuredNs, r.TotalNs)
	}
	if len(r.Stages) < 10 {
		t.Error("breakdown too coarse")
	}
}

func TestFig9aBands(t *testing.T) {
	pts := Fig9a([]int{sz(8000, 6000)}, 2, 2)
	p := pts[0]
	if p.INZOnly < 0.28 || p.INZOnly > 0.44 {
		t.Errorf("INZ reduction %.2f outside band", p.INZOnly)
	}
	if p.INZPlusPcache <= p.INZOnly {
		t.Errorf("pcache added nothing: %.2f vs %.2f", p.INZPlusPcache, p.INZOnly)
	}
	if p.INZPlusPcache < 0.40 || p.INZPlusPcache > 0.68 {
		t.Errorf("combined reduction %.2f outside plausible band", p.INZPlusPcache)
	}
	if !strings.Contains(RenderFig9a(pts), "inz+pcache") {
		t.Error("render broken")
	}
}

func TestFig9bSpeedupDirection(t *testing.T) {
	pts := Fig9b([]int{sz(8000, 6000)}, 2, 1)
	if pts[0].Speedup < 1.1 {
		t.Errorf("speedup %.2f, want > 1.1", pts[0].Speedup)
	}
	if !strings.Contains(RenderFig9b(pts), "speedup") {
		t.Error("render broken")
	}
}

func TestFig11MatchesPaper(t *testing.T) {
	r := Fig11()
	if !stats.Within(r.Fit.Slope, 51.8, 0.10) {
		t.Errorf("fence slope = %.1f, want 51.8 +/- 10%%", r.Fit.Slope)
	}
	if !stats.Within(r.Fit.Intercept, 91.2, 0.10) {
		t.Errorf("fence intercept = %.1f, want 91.2 +/- 10%%", r.Fit.Intercept)
	}
	if !stats.Within(r.Points[0].Ns, 51.5, 0.10) {
		t.Errorf("0-hop barrier = %.1f ns, want 51.5", r.Points[0].Ns)
	}
	global := r.Points[len(r.Points)-1]
	if !stats.Within(global.Ns, 504, 0.10) {
		t.Errorf("global barrier = %.1f ns, want ~504", global.Ns)
	}
}

func TestFig12SmallSystem(t *testing.T) {
	// Full 32751-atom runs live in the benchmarks; keep the test fast.
	r := Fig12(sz(6000, 4000), 2, 1)
	if r.StepOffNs <= r.StepOnNs {
		t.Errorf("compression did not speed up the step: %.0f vs %.0f", r.StepOffNs, r.StepOnNs)
	}
	out := r.Render()
	for _, want := range []string{"compression disabled", "compression enabled", "ppim"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTablesRender(t *testing.T) {
	out := Tables()
	for _, want := range []string{"Anton 3", "5914", "Core Routers", "Particle Cache", "14.1%", "1.8%"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q:\n%s", want, out)
		}
	}
}

func TestAblationPredictorOrderMonotone(t *testing.T) {
	// The quadratic predictor needs a full 3-step history before it can
	// beat linear, so short mode shrinks atoms but keeps the warmup.
	rows := AblationPredictorOrder(sz(4000, 3000), 3, 2)
	if len(rows) != 3 {
		t.Fatal("want 3 rows")
	}
	// Quadratic >= linear >= constant in achieved reduction.
	if rows[2].Value < rows[1].Value || rows[1].Value < rows[0].Value {
		t.Fatalf("predictor order not monotone: %+v", rows)
	}
}

func TestAblationPcacheSizeMonotone(t *testing.T) {
	rows := AblationPcacheSize(sz(8000, 5000), 2, 2, []int{64, 1024})
	if rows[1].Value <= rows[0].Value {
		t.Fatalf("bigger cache should reduce more: %+v", rows)
	}
}

func TestAblationINZBeatsTruncation(t *testing.T) {
	rows := AblationINZInterleave(3000)
	raw, trunc, inzb := rows[0].Value, rows[1].Value, rows[2].Value
	if !(inzb < trunc && trunc < raw) {
		t.Fatalf("expected inz < truncation < raw: %+v", rows)
	}
}

func TestAblationFenceBeatsPairwise(t *testing.T) {
	rows := AblationFenceVsPairwise(topo.Shape{X: 4, Y: 4, Z: 8})
	// At 128 nodes the fence wins outright on wire traffic (O(N) vs
	// O(N^2) thanks to in-network merging) and stays competitive or
	// better on latency.
	if rows[2].Value >= rows[3].Value {
		t.Fatalf("fence should use far less bandwidth: %+v", rows)
	}
	// Latency stays the same order (the wavefront is hop-serial while a
	// single pairwise write is pipelined; with all 1152 GCs per node
	// participating, pairwise latency would blow up while the fence's
	// would not change).
	if rows[0].Value > rows[1].Value*1.8 {
		t.Fatalf("fence latency uncompetitive: %+v", rows)
	}
}

func TestAblationDimOrdersHelps(t *testing.T) {
	rows := AblationDimOrders(40)
	// Randomized routing must not be slower than fixed XYZ under load.
	if rows[1].Value > rows[0].Value*1.02 {
		t.Fatalf("randomized orders slower than XYZ: %+v", rows)
	}
}

func TestJobsRegistryShardsAndNetsweep(t *testing.T) {
	p := DefaultParams()
	jobs := Jobs(p)
	names := map[string]bool{}
	for _, j := range jobs {
		names[j.Name] = true
	}
	// Fig5/Fig11 hop sweeps are sharded per hop count plus a reducer.
	for h := 0; h <= Shape128.Diameter(); h++ {
		for _, fig := range []string{"fig5", "fig11"} {
			if !names[fmt.Sprintf("%s/h%d", fig, h)] {
				t.Fatalf("missing shard %s/h%d", fig, h)
			}
		}
	}
	if !names["fig5"] || !names["fig11"] {
		t.Fatal("missing figure reducers")
	}
	// Netsweep covers every shape x pattern, including a 512-node shape.
	if !names["netsweep/8x8x8/tornado"] || !names["netsweep/4x4x8/uniform"] {
		t.Fatalf("missing netsweep jobs: %v", names)
	}

	sel := SelectJobs(jobs, "fig5")
	if len(sel) != Shape128.Diameter()+2 {
		t.Fatalf("SelectJobs(fig5) = %d jobs, want shards + reducer", len(sel))
	}
	if sel[len(sel)-1].Name != "fig5" {
		t.Fatal("reducer must follow its shards")
	}
	sel = SelectJobs(jobs, "netsweep")
	if len(sel) != len(p.NetShapes)*6 {
		t.Fatalf("SelectJobs(netsweep) = %d jobs, want %d", len(sel), len(p.NetShapes)*6)
	}
	if SelectJobs(jobs, "no-such-job") != nil {
		t.Fatal("unknown selector should select nothing")
	}
}

// TestFig5ShardedMatchesDirect pins the sharding refactor: running the
// fig5 sub-jobs + reducer through the runner must reproduce the direct
// Fig5 call digit for digit, at any worker count.
func TestFig5ShardedMatchesDirect(t *testing.T) {
	p := DefaultParams()
	p.Fig5Pairs = sz(2, 1)
	want := Fig5(sim.NewRand(Fig5Seed), p.Fig5Pairs).Render()
	for _, workers := range []int{1, 4} {
		rep, err := runner.Run(SelectJobs(Jobs(p), "fig5"), workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.RenderAll(); got != want+"\n" {
			t.Fatalf("workers=%d: sharded fig5 diverged:\n--- sharded ---\n%s--- direct ---\n%s", workers, got, want)
		}
	}
}

// TestNetsweepSmoke keeps the synthetic-load harness green in the CI fast
// lane: a tiny full-grid sweep through the runner, byte-identical across
// worker counts.
func TestNetsweepSmoke(t *testing.T) {
	p := DefaultParams()
	p.NetShapes = []topo.Shape{{X: 2, Y: 2, Z: 2}}
	p.NetLoads = []float64{0.5, 2}
	p.NetPackets, p.NetWarmup = sz(16, 8), 4
	jobs := SelectJobs(Jobs(p), "netsweep")
	if len(jobs) != 6 {
		t.Fatalf("want 6 pattern jobs, got %d", len(jobs))
	}
	seq, err := runner.Run(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := runner.Run(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.RenderAll() != par.RenderAll() {
		t.Fatal("netsweep output depends on worker count")
	}
	out := seq.RenderAll()
	for _, want := range []string{"uniform", "bitcomp", "transpose", "tornado", "hotspot", "neighbor", "random", "xyz", "adaptive"} {
		if !strings.Contains(out, want) {
			t.Fatalf("netsweep output missing %q:\n%s", want, out)
		}
	}
}
