package experiments

import (
	"strings"
	"testing"

	"anton3/internal/sim"
	"anton3/internal/stats"
	"anton3/internal/testutil"
	"anton3/internal/topo"
)

// sz picks the full-size or -short variant of a test parameter.
var sz = testutil.Size

func TestFig5ShapeMatchesPaper(t *testing.T) {
	r := Fig5(sim.NewRand(Fig5Seed), sz(3, 2))
	if len(r.Points) != 9 {
		t.Fatalf("expected hops 0..8, got %d points", len(r.Points))
	}
	// Slope within 10% of 34.2 ns/hop; linear (R2 high).
	if !stats.Within(r.Fit.Slope, 34.2, 0.10) {
		t.Errorf("slope = %.1f, want 34.2 +/- 10%%", r.Fit.Slope)
	}
	if r.Fit.R2 < 0.98 {
		t.Errorf("latency curve not linear: R2 = %.3f", r.Fit.R2)
	}
	// 0-hop distinctly lower than the h=1 average.
	if r.Points[0].AvgNs >= r.Points[1].AvgNs {
		t.Error("0-hop latency should be lowest")
	}
	if !strings.Contains(r.Render(), "paper: y = 55.9") {
		t.Error("render missing paper reference")
	}
}

func TestFig6BreakdownConsistent(t *testing.T) {
	r := Fig6()
	if !stats.Within(r.TotalNs, 55, 0.12) {
		t.Errorf("breakdown total = %.1f ns, want ~55", r.TotalNs)
	}
	// The sum of the stages must match what the simulator measures on the
	// same path.
	if !stats.Within(r.MeasuredNs, r.TotalNs, 0.05) {
		t.Errorf("measured %.1f ns vs breakdown %.1f ns", r.MeasuredNs, r.TotalNs)
	}
	if len(r.Stages) < 10 {
		t.Error("breakdown too coarse")
	}
}

func TestFig9aBands(t *testing.T) {
	pts := Fig9a([]int{sz(8000, 6000)}, 2, 2)
	p := pts[0]
	if p.INZOnly < 0.28 || p.INZOnly > 0.44 {
		t.Errorf("INZ reduction %.2f outside band", p.INZOnly)
	}
	if p.INZPlusPcache <= p.INZOnly {
		t.Errorf("pcache added nothing: %.2f vs %.2f", p.INZPlusPcache, p.INZOnly)
	}
	if p.INZPlusPcache < 0.40 || p.INZPlusPcache > 0.68 {
		t.Errorf("combined reduction %.2f outside plausible band", p.INZPlusPcache)
	}
	if !strings.Contains(RenderFig9a(pts), "inz+pcache") {
		t.Error("render broken")
	}
}

func TestFig9bSpeedupDirection(t *testing.T) {
	pts := Fig9b([]int{sz(8000, 6000)}, 2)
	if pts[0].Speedup < 1.1 {
		t.Errorf("speedup %.2f, want > 1.1", pts[0].Speedup)
	}
	if !strings.Contains(RenderFig9b(pts), "speedup") {
		t.Error("render broken")
	}
}

func TestFig11MatchesPaper(t *testing.T) {
	r := Fig11()
	if !stats.Within(r.Fit.Slope, 51.8, 0.10) {
		t.Errorf("fence slope = %.1f, want 51.8 +/- 10%%", r.Fit.Slope)
	}
	if !stats.Within(r.Fit.Intercept, 91.2, 0.10) {
		t.Errorf("fence intercept = %.1f, want 91.2 +/- 10%%", r.Fit.Intercept)
	}
	if !stats.Within(r.Points[0].Ns, 51.5, 0.10) {
		t.Errorf("0-hop barrier = %.1f ns, want 51.5", r.Points[0].Ns)
	}
	global := r.Points[len(r.Points)-1]
	if !stats.Within(global.Ns, 504, 0.10) {
		t.Errorf("global barrier = %.1f ns, want ~504", global.Ns)
	}
}

func TestFig12SmallSystem(t *testing.T) {
	// Full 32751-atom runs live in the benchmarks; keep the test fast.
	r := Fig12(sz(6000, 4000), 2)
	if r.StepOffNs <= r.StepOnNs {
		t.Errorf("compression did not speed up the step: %.0f vs %.0f", r.StepOffNs, r.StepOnNs)
	}
	out := r.Render()
	for _, want := range []string{"compression disabled", "compression enabled", "ppim"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTablesRender(t *testing.T) {
	out := Tables()
	for _, want := range []string{"Anton 3", "5914", "Core Routers", "Particle Cache", "14.1%", "1.8%"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q:\n%s", want, out)
		}
	}
}

func TestAblationPredictorOrderMonotone(t *testing.T) {
	// The quadratic predictor needs a full 3-step history before it can
	// beat linear, so short mode shrinks atoms but keeps the warmup.
	rows := AblationPredictorOrder(sz(4000, 3000), 3, 2)
	if len(rows) != 3 {
		t.Fatal("want 3 rows")
	}
	// Quadratic >= linear >= constant in achieved reduction.
	if rows[2].Value < rows[1].Value || rows[1].Value < rows[0].Value {
		t.Fatalf("predictor order not monotone: %+v", rows)
	}
}

func TestAblationPcacheSizeMonotone(t *testing.T) {
	rows := AblationPcacheSize(sz(8000, 5000), 2, 2, []int{64, 1024})
	if rows[1].Value <= rows[0].Value {
		t.Fatalf("bigger cache should reduce more: %+v", rows)
	}
}

func TestAblationINZBeatsTruncation(t *testing.T) {
	rows := AblationINZInterleave(3000)
	raw, trunc, inzb := rows[0].Value, rows[1].Value, rows[2].Value
	if !(inzb < trunc && trunc < raw) {
		t.Fatalf("expected inz < truncation < raw: %+v", rows)
	}
}

func TestAblationFenceBeatsPairwise(t *testing.T) {
	rows := AblationFenceVsPairwise(topo.Shape{X: 4, Y: 4, Z: 8})
	// At 128 nodes the fence wins outright on wire traffic (O(N) vs
	// O(N^2) thanks to in-network merging) and stays competitive or
	// better on latency.
	if rows[2].Value >= rows[3].Value {
		t.Fatalf("fence should use far less bandwidth: %+v", rows)
	}
	// Latency stays the same order (the wavefront is hop-serial while a
	// single pairwise write is pipelined; with all 1152 GCs per node
	// participating, pairwise latency would blow up while the fence's
	// would not change).
	if rows[0].Value > rows[1].Value*1.8 {
		t.Fatalf("fence latency uncompetitive: %+v", rows)
	}
}

func TestAblationDimOrdersHelps(t *testing.T) {
	rows := AblationDimOrders(40)
	// Randomized routing must not be slower than fixed XYZ under load.
	if rows[1].Value > rows[0].Value*1.02 {
		t.Fatalf("randomized orders slower than XYZ: %+v", rows)
	}
}
