package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockGeometry(t *testing.T) {
	// 128 KB of 16-byte quads = 8192 quads.
	if QuadsPerBlock != 8192 {
		t.Fatalf("QuadsPerBlock = %d, want 8192", QuadsPerBlock)
	}
	s := NewSRAM(QuadsPerBlock)
	if s.Quads() != 8192 {
		t.Fatalf("Quads() = %d", s.Quads())
	}
}

func TestPlainReadWrite(t *testing.T) {
	s := NewSRAM(16)
	q := [4]uint32{1, 2, 3, 4}
	s.WriteQuad(5, q)
	if s.ReadQuad(5) != q {
		t.Fatal("read-after-write mismatch")
	}
	if s.Counter(5) != 0 {
		t.Fatal("plain write must not bump counter")
	}
}

func TestCountedWriteIncrements(t *testing.T) {
	s := NewSRAM(16)
	for i := uint8(1); i <= 10; i++ {
		if got := s.CountedWrite(3, [4]uint32{uint32(i)}); got != i {
			t.Fatalf("counter = %d, want %d", got, i)
		}
	}
	if s.ReadQuad(3)[0] != 10 {
		t.Fatal("counted write did not overwrite data")
	}
}

func TestCountedAccumAdds(t *testing.T) {
	s := NewSRAM(16)
	s.CountedAccum(0, [4]uint32{10, ^uint32(4), 0, 1}) // -5 in word 1
	s.CountedAccum(0, [4]uint32{1, 2, 3, 4})
	got := s.ReadQuad(0)
	want := [4]uint32{11, ^uint32(2), 3, 5} // -3 in word 1
	if got != want {
		t.Fatalf("accumulated quad = %v, want %v", got, want)
	}
	if s.Counter(0) != 2 {
		t.Fatalf("counter = %d, want 2", s.Counter(0))
	}
}

func TestCounterWraps(t *testing.T) {
	s := NewSRAM(1)
	for i := 0; i < 256; i++ {
		s.CountedWrite(0, [4]uint32{})
	}
	if s.Counter(0) != 0 {
		t.Fatalf("8-bit counter should wrap to 0, got %d", s.Counter(0))
	}
}

func TestBlockingReadImmediate(t *testing.T) {
	s := NewSRAM(4)
	s.CountedWrite(1, [4]uint32{42})
	fired := false
	ok := s.BlockingRead(1, 1, func(q [4]uint32) {
		fired = true
		if q[0] != 42 {
			t.Errorf("data = %v", q)
		}
	})
	if !ok || !fired {
		t.Fatal("satisfied blocking read should fire synchronously")
	}
}

func TestBlockingReadStallsUntilThreshold(t *testing.T) {
	s := NewSRAM(4)
	var got [4]uint32
	fired := 0
	ok := s.BlockingRead(2, 3, func(q [4]uint32) { fired++; got = q })
	if ok || fired != 0 {
		t.Fatal("unsatisfied read should stall")
	}
	s.CountedAccum(2, [4]uint32{1, 0, 0, 0})
	s.CountedAccum(2, [4]uint32{1, 0, 0, 0})
	if fired != 0 {
		t.Fatal("read fired below threshold")
	}
	s.CountedAccum(2, [4]uint32{1, 0, 0, 0})
	if fired != 1 {
		t.Fatal("read did not fire at threshold")
	}
	// The integrator use case: the read sees the fully accumulated value.
	if got[0] != 3 {
		t.Fatalf("woken read saw %v, want accumulated 3", got)
	}
	if s.PendingReads() != 0 {
		t.Fatal("waiter not cleaned up")
	}
}

func TestMultipleWaitersDifferentThresholds(t *testing.T) {
	s := NewSRAM(4)
	order := []int{}
	s.BlockingRead(0, 1, func([4]uint32) { order = append(order, 1) })
	s.BlockingRead(0, 2, func([4]uint32) { order = append(order, 2) })
	s.BlockingRead(0, 3, func([4]uint32) { order = append(order, 3) })
	s.CountedWrite(0, [4]uint32{})
	s.CountedWrite(0, [4]uint32{})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("wake order = %v, want [1 2]", order)
	}
	if s.PendingReads() != 1 {
		t.Fatalf("pending = %d, want 1", s.PendingReads())
	}
	s.CountedWrite(0, [4]uint32{})
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("wake order = %v", order)
	}
}

func TestClearQuadResetsBoth(t *testing.T) {
	s := NewSRAM(4)
	s.CountedWrite(1, [4]uint32{9, 9, 9, 9})
	s.ClearQuad(1)
	if s.ReadQuad(1) != ([4]uint32{}) || s.Counter(1) != 0 {
		t.Fatal("ClearQuad incomplete")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := NewSRAM(4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access should panic")
		}
	}()
	s.ReadQuad(4)
}

func TestAccumCommutative(t *testing.T) {
	// Force summation must not depend on arrival order (property test).
	f := func(vals []uint32) bool {
		a, b := NewSRAM(1), NewSRAM(1)
		for _, v := range vals {
			a.CountedAccum(0, [4]uint32{v, v * 3, ^v, 1})
		}
		for i := len(vals) - 1; i >= 0; i-- {
			v := vals[i]
			b.CountedAccum(0, [4]uint32{v, v * 3, ^v, 1})
		}
		return a.ReadQuad(0) == b.ReadQuad(0) && a.Counter(0) == b.Counter(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewSRAM(4)
	s.BlockingRead(0, 2, func([4]uint32) {})
	s.CountedWrite(0, [4]uint32{})
	s.CountedWrite(0, [4]uint32{})
	s.CountedAccum(1, [4]uint32{})
	if s.CountedWrites != 3 {
		t.Fatalf("CountedWrites = %d, want 3", s.CountedWrites)
	}
	if s.Wakeups != 1 {
		t.Fatalf("Wakeups = %d, want 1", s.Wakeups)
	}
}
