// Package mem models the globally addressable on-chip SRAM blocks paired
// with each Geometry Core, including the counted-write / blocking-read
// synchronization of Section III-A: every quad (four 32-bit words) has an
// associated 8-bit hardware counter; counted remote writes update the quad
// and atomically increment its counter, and a blocking read of the quad
// stalls until the counter reaches the threshold specified by the read.
//
// The SRAM itself is a pure state machine — waiters fire synchronously when
// their threshold is reached — so the surrounding timing model (the GC and
// memory-port latencies) stays in the chip simulator where it belongs.
package mem

import "fmt"

// QuadBytes is the size of one counted quad: four 32-bit words.
const QuadBytes = 16

// BlockKB is the SRAM block size paired with each GC (Section II-B).
const BlockKB = 128

// QuadsPerBlock is the quad count of a 128 KB block: 8192.
const QuadsPerBlock = BlockKB * 1024 / QuadBytes

type waiter struct {
	threshold uint8
	fn        func([4]uint32)
}

// SRAM is one memory block with per-quad counters.
type SRAM struct {
	quads    [][4]uint32
	counters []uint8
	waiters  map[uint32][]waiter

	// CountedWrites and Wakeups are event counters for traffic accounting.
	CountedWrites uint64
	Wakeups       uint64
}

// NewSRAM builds a block holding quadCount quads (use QuadsPerBlock for the
// hardware size; tests use smaller blocks).
func NewSRAM(quadCount int) *SRAM {
	if quadCount <= 0 {
		panic("mem: quad count must be positive")
	}
	return &SRAM{
		quads:    make([][4]uint32, quadCount),
		counters: make([]uint8, quadCount),
		waiters:  make(map[uint32][]waiter),
	}
}

// Quads reports the block's capacity.
func (s *SRAM) Quads() int { return len(s.quads) }

func (s *SRAM) check(q uint32) {
	if int(q) >= len(s.quads) {
		panic(fmt.Sprintf("mem: quad address %d out of range (%d quads)", q, len(s.quads)))
	}
}

// ReadQuad returns the current quad contents without synchronization.
func (s *SRAM) ReadQuad(q uint32) [4]uint32 {
	s.check(q)
	return s.quads[q]
}

// Counter returns the quad's counter value.
func (s *SRAM) Counter(q uint32) uint8 {
	s.check(q)
	return s.counters[q]
}

// WriteQuad stores data without touching the counter.
func (s *SRAM) WriteQuad(q uint32, data [4]uint32) {
	s.check(q)
	s.quads[q] = data
}

// ClearQuad zeroes the quad and its counter — what integration software does
// before reusing an accumulation slot for the next time step.
func (s *SRAM) ClearQuad(q uint32) {
	s.check(q)
	s.quads[q] = [4]uint32{}
	s.counters[q] = 0
}

// CountedWrite stores data and atomically increments the quad counter,
// waking any blocking reads whose threshold is now met. The 8-bit counter
// wraps, as in hardware; software picks thresholds below 256.
func (s *SRAM) CountedWrite(q uint32, data [4]uint32) uint8 {
	s.check(q)
	s.quads[q] = data
	return s.bump(q)
}

// CountedAccum adds data word-wise (two's-complement) into the quad and
// increments the counter — the per-atom force accumulation form.
func (s *SRAM) CountedAccum(q uint32, data [4]uint32) uint8 {
	s.check(q)
	for i := range data {
		s.quads[q][i] += data[i]
	}
	return s.bump(q)
}

func (s *SRAM) bump(q uint32) uint8 {
	s.CountedWrites++
	s.counters[q]++
	c := s.counters[q]
	if ws := s.waiters[q]; len(ws) > 0 {
		keep := ws[:0]
		for _, w := range ws {
			if c >= w.threshold {
				s.Wakeups++
				w.fn(s.quads[q])
			} else {
				keep = append(keep, w)
			}
		}
		if len(keep) == 0 {
			delete(s.waiters, q)
		} else {
			s.waiters[q] = keep
		}
	}
	return c
}

// BlockingRead delivers the quad to fn once the quad counter has reached
// threshold. If already satisfied it fires synchronously and returns true
// ("from the GC's point of view, this operation is no different than a
// high-latency read"); otherwise the read stalls and fn fires inside the
// CountedWrite/CountedAccum that satisfies it.
func (s *SRAM) BlockingRead(q uint32, threshold uint8, fn func([4]uint32)) bool {
	s.check(q)
	if s.counters[q] >= threshold {
		fn(s.quads[q])
		return true
	}
	s.waiters[q] = append(s.waiters[q], waiter{threshold: threshold, fn: fn})
	return false
}

// PendingReads reports how many blocking reads are stalled (diagnostics).
func (s *SRAM) PendingReads() int {
	n := 0
	for _, ws := range s.waiters {
		n += len(ws)
	}
	return n
}
