// Package area reproduces the paper's bookkeeping tables: the three-ASIC
// feature comparison (Table I), the network components' share of die area
// (Table II), and the implementation cost of the particle cache and network
// fence (Table III). Component counts come from the floorplan configuration
// so the tables stay consistent with any config change; per-instance areas
// are calibrated to the published percentages of the 451 mm^2 die.
package area

import (
	"fmt"
	"strings"

	"anton3/internal/topo"
)

// ASIC describes one generation of Anton ASIC (Table I).
type ASIC struct {
	Name               string
	PowerOnYear        int
	ProcessNm          int
	DieMM2             float64
	ClockGHz           float64
	PairwiseGOPS       int
	SerdesLanes        int
	SerdesGbpsPerLane  float64
	InterNodeBidirGBps int
}

// TableI returns the three Anton generations.
func TableI() []ASIC {
	return []ASIC{
		{"Anton 1", 2008, 90, 305, 0.970, 31, 66, 4.6, 76},
		{"Anton 2", 2013, 40, 408, 1.65, 251, 96, 14, 336},
		{"Anton 3", 2020, 7, 451, 2.80, 5914, 96, 29, 696},
	}
}

// Anton3DieMM2 is the Anton 3 die size.
const Anton3DieMM2 = 451.0

// Per-instance component areas in mm^2, calibrated so the component totals
// match Table II on the production floorplan.
const (
	CoreRouterMM2     = Anton3DieMM2 * 0.094 / 288
	EdgeRouterMM2     = Anton3DieMM2 * 0.014 / 72
	ChannelAdapterMM2 = Anton3DieMM2 * 0.028 / 24
	RowAdapterMM2     = Anton3DieMM2 * 0.005 / 72
)

// Feature costs (Table III): the particle cache is mostly the cache SRAM in
// each Channel Adapter; the fence is the counter arrays in every router.
const (
	PcachePerCAMM2    = Anton3DieMM2 * 0.016 / 24
	FencePerRouterMM2 = Anton3DieMM2 * 0.002 / (288 + 72)
)

// Component is one row of Table II.
type Component struct {
	Name    string
	Count   int
	EachMM2 float64
}

// TotalMM2 returns Count * EachMM2.
func (c Component) TotalMM2() float64 { return float64(c.Count) * c.EachMM2 }

// PercentOfDie returns the component's share of the die.
func (c Component) PercentOfDie() float64 { return 100 * c.TotalMM2() / Anton3DieMM2 }

// Counts derives the network component counts from a chip shape: one Core
// Router per Core Tile, three Edge Routers per Edge Tile (both sides), one
// Channel Adapter per channel slice end, one Row Adapter per edge-tile row
// crossing plus ICB attachments.
type Counts struct {
	CoreRouters     int
	EdgeRouters     int
	ChannelAdapters int
	RowAdapters     int
}

// ProductionCounts are the counts implied by the 24x12 floorplan, matching
// Table II: 288 / 72 / 24 / 72.
func ProductionCounts() Counts {
	tiles := topo.DefaultChipShape.Tiles()
	edgeTiles := 2 * topo.EdgeTileRows
	return Counts{
		CoreRouters:     tiles,
		EdgeRouters:     edgeTiles * topo.ERTRsPerEdge,
		ChannelAdapters: edgeTiles,                          // one CA per edge tile (one channel slice each)
		RowAdapters:     edgeTiles * (1 + topo.ICBsPerEdge), // row crossing + one per ICB
	}
}

// TableII returns the network component area rows for the given counts.
func TableII(c Counts) []Component {
	return []Component{
		{"Core Routers", c.CoreRouters, CoreRouterMM2},
		{"Edge Routers", c.EdgeRouters, EdgeRouterMM2},
		{"Channel Adapters", c.ChannelAdapters, ChannelAdapterMM2},
		{"Row Adapters", c.RowAdapters, RowAdapterMM2},
	}
}

// TableIII returns the network feature cost rows.
func TableIII(c Counts) []Component {
	return []Component{
		{"Particle Cache", c.ChannelAdapters, PcachePerCAMM2},
		{"Network Fence", c.CoreRouters + c.EdgeRouters, FencePerRouterMM2},
	}
}

// TotalPercent sums the die share of a component list.
func TotalPercent(rows []Component) float64 {
	var t float64
	for _, r := range rows {
		t += r.PercentOfDie()
	}
	return t
}

// FormatTableI renders Table I as aligned text.
func FormatTableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %10s %10s\n", "", "Anton 1", "Anton 2", "Anton 3")
	rows := TableI()
	line := func(label, format string, get func(a ASIC) interface{}) {
		fmt.Fprintf(&b, "%-28s", label)
		for _, a := range rows {
			fmt.Fprintf(&b, " %10s", fmt.Sprintf(format, get(a)))
		}
		b.WriteByte('\n')
	}
	line("Power-on Year", "%d", func(a ASIC) interface{} { return a.PowerOnYear })
	line("Process Technology (nm)", "%d", func(a ASIC) interface{} { return a.ProcessNm })
	line("Die Size (mm2)", "%.0f", func(a ASIC) interface{} { return a.DieMM2 })
	line("Clock Rate (GHz)", "%.3g", func(a ASIC) interface{} { return a.ClockGHz })
	line("Max Pairwise GOPS", "%d", func(a ASIC) interface{} { return a.PairwiseGOPS })
	line("Number of SERDES", "%d", func(a ASIC) interface{} { return a.SerdesLanes })
	line("SERDES Per-Lane (Gb/s)", "%.3g", func(a ASIC) interface{} { return a.SerdesGbpsPerLane })
	line("Inter-node Bidir (GB/s)", "%d", func(a ASIC) interface{} { return a.InterNodeBidirGBps })
	return b.String()
}

// FormatComponents renders a Table II/III style component list.
func FormatComponents(title string, rows []Component) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-20s %8s %14s\n", title, "Component", "Count", "% of die")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %8d %13.1f%%\n", r.Name, r.Count, r.PercentOfDie())
	}
	fmt.Fprintf(&b, "%-20s %8s %13.1f%%\n", "Total", "", TotalPercent(rows))
	return b.String()
}
