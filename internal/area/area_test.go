package area

import (
	"strings"
	"testing"
)

func TestProductionCounts(t *testing.T) {
	c := ProductionCounts()
	// Table II's component counts.
	if c.CoreRouters != 288 || c.EdgeRouters != 72 || c.ChannelAdapters != 24 || c.RowAdapters != 72 {
		t.Fatalf("counts = %+v, want 288/72/24/72", c)
	}
}

func TestTableIIPercentages(t *testing.T) {
	rows := TableII(ProductionCounts())
	want := map[string]float64{
		"Core Routers":     9.4,
		"Edge Routers":     1.4,
		"Channel Adapters": 2.8,
		"Row Adapters":     0.5,
	}
	for _, r := range rows {
		if w := want[r.Name]; r.PercentOfDie() < w-0.05 || r.PercentOfDie() > w+0.05 {
			t.Errorf("%s = %.2f%%, want %.1f%%", r.Name, r.PercentOfDie(), w)
		}
	}
	if tot := TotalPercent(rows); tot < 14.05 || tot > 14.15 {
		t.Fatalf("network total = %.2f%%, want 14.1%%", tot)
	}
}

func TestTableIIIPercentages(t *testing.T) {
	rows := TableIII(ProductionCounts())
	if p := rows[0].PercentOfDie(); p < 1.55 || p > 1.65 {
		t.Fatalf("particle cache = %.2f%%, want 1.6%%", p)
	}
	if p := rows[1].PercentOfDie(); p < 0.15 || p > 0.25 {
		t.Fatalf("network fence = %.2f%%, want 0.2%%", p)
	}
	if tot := TotalPercent(rows); tot < 1.75 || tot > 1.85 {
		t.Fatalf("feature total = %.2f%%, want 1.8%%", tot)
	}
}

func TestTableIValues(t *testing.T) {
	rows := TableI()
	if len(rows) != 3 {
		t.Fatal("three generations expected")
	}
	a3 := rows[2]
	if a3.PairwiseGOPS != 5914 || a3.ClockGHz != 2.8 || a3.InterNodeBidirGBps != 696 {
		t.Fatalf("Anton 3 row wrong: %+v", a3)
	}
	// The paper's motivating ratios: ~24x compute, ~2.1x bandwidth A2->A3.
	a2 := rows[1]
	compute := float64(a3.PairwiseGOPS) / float64(a2.PairwiseGOPS)
	bw := float64(a3.InterNodeBidirGBps) / float64(a2.InterNodeBidirGBps)
	if compute < 23 || compute > 25 {
		t.Fatalf("compute scaling = %.1fx, want ~24x", compute)
	}
	if bw < 2.0 || bw > 2.2 {
		t.Fatalf("bandwidth scaling = %.2fx, want ~2.1x", bw)
	}
}

func TestFormatting(t *testing.T) {
	if s := FormatTableI(); !strings.Contains(s, "Anton 3") || !strings.Contains(s, "5914") {
		t.Fatalf("Table I render:\n%s", s)
	}
	s := FormatComponents("Table II", TableII(ProductionCounts()))
	if !strings.Contains(s, "Core Routers") || !strings.Contains(s, "Total") {
		t.Fatalf("Table II render:\n%s", s)
	}
}
