// Package route implements the Anton 3 routing policies of Section III-B:
// minimal oblivious torus routing over the six dimension orders for request
// packets, the XYZ mesh-restricted policy for response packets, and the
// virtual-channel assignment that makes five VCs suffice where torus routing
// would normally need four per class.
package route

import (
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// Virtual channel provisioning (Section III-B2): four request VCs plus a
// single response VC, because responses follow XYZ order and treat the
// torus as a mesh (never using wraparound links), which needs no dateline
// VC switch.
const (
	NumRequestVCs = 4
	ResponseVC    = 4
	NumVCs        = 5
)

// orderGroup splits the six dimension orders into the two rotation classes.
// Orders in different groups can never form a cyclic channel dependency
// with each other once the dateline bit splits each group again, which is
// the structural reason four request VCs suffice.
func orderGroup(o topo.DimOrder) int {
	switch o {
	case topo.OrderXYZ, topo.OrderYZX, topo.OrderZXY:
		return 0
	default:
		return 1
	}
}

// RequestVC returns the VC a request packet occupies given its dimension
// order and whether it has crossed the dateline (wraparound link) in the
// dimension it is currently traversing.
func RequestVC(o topo.DimOrder, crossedDateline bool) int {
	vc := orderGroup(o) * 2
	if crossedDateline {
		vc++
	}
	return vc
}

// PickOrder selects one of the six dimension orders uniformly at random —
// the "routes are randomized independent of network load" policy.
func PickOrder(r *sim.Rand) topo.DimOrder {
	return topo.AllDimOrders[r.Intn(len(topo.AllDimOrders))]
}

// RequestRoute returns the hop sequence for a request packet.
func RequestRoute(s topo.Shape, src, dst topo.Coord, o topo.DimOrder) []topo.Step {
	return topo.Route(s, src, dst, o)
}

// ResponseRoute returns the hop sequence for a response packet: XYZ
// dimension order, never using wraparound links (the torus is treated as a
// mesh), so the path may be non-minimal. The paper accepts this because
// almost all simulation traffic is architected to be request class.
// It appends into buf, so callers with a reusable buffer allocate nothing.
func ResponseRoute(s topo.Shape, src, dst topo.Coord, buf []topo.Step) []topo.Step {
	cur := src
	for {
		st, ok := ResponseNext(cur, dst)
		if !ok {
			return buf
		}
		buf = append(buf, st)
		cur = cur.With(st.Dim, cur.Get(st.Dim)+st.Dir)
	}
}

// ResponseNext returns the next hop of the response route from cur to dst,
// or ok=false at the destination. Because the mesh-restricted route moves
// monotonically dimension by dimension in XYZ order and never wraps, the
// remainder of the route is derivable from the current position alone —
// which is what lets the machine walk responses hop by hop without storing
// a precomputed step list on the packet.
func ResponseNext(cur, dst topo.Coord) (topo.Step, bool) {
	for _, dim := range topo.OrderXYZ {
		a, b := cur.Get(dim), dst.Get(dim)
		if a == b {
			continue
		}
		dir := 1
		if b < a {
			dir = -1
		}
		return topo.Step{Dim: dim, Dir: dir}, true
	}
	return topo.Step{}, false
}

// HopVCs annotates each hop of a request route with its VC, applying the
// dateline rule: a packet starts each dimension on the group's low VC and
// switches to the high VC for the rest of that dimension once it traverses
// the wraparound link (from coordinate max to 0 going +, or 0 to max
// going -).
func HopVCs(s topo.Shape, src topo.Coord, steps []topo.Step, o topo.DimOrder) []int {
	vcs := make([]int, len(steps))
	cur := src
	crossed := false
	var curDim topo.Dim
	first := true
	for i, st := range steps {
		if first || st.Dim != curDim {
			curDim = st.Dim
			crossed = false
			first = false
		}
		vcs[i] = RequestVC(o, crossed)
		next := s.Neighbor(cur, st.Dim, st.Dir)
		// Detect wraparound traversal.
		if st.Dir > 0 && next.Get(st.Dim) < cur.Get(st.Dim) {
			crossed = true
		}
		if st.Dir < 0 && next.Get(st.Dim) > cur.Get(st.Dim) {
			crossed = true
		}
		// The VC for the hop we just took reflects the state *before*
		// crossing; the switch applies from the next hop in this dim.
		cur = next
	}
	return vcs
}
