package route

import (
	"testing"

	"anton3/internal/topo"
)

// EscapeNextAvoid with nil health (or no dead links on the path) must be
// exactly EscapeNext: the healthy escape subnetwork is untouched by the
// fault machinery.
func TestEscapeNextAvoidHealthyMatchesEscapeNext(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	none := HealthFunc(func(topo.Dim, int) bool { return false })
	for _, tie := range []bool{true, false} {
		for i := 0; i < s.Nodes(); i++ {
			for j := 0; j < s.Nodes(); j++ {
				cur, dst := s.CoordOf(i), s.CoordOf(j)
				var committed [3]int8
				a, aok := EscapeNext(s, cur, dst, tie)
				b, bok := EscapeNextAvoid(s, cur, dst, tie, none, &committed)
				if a != b || aok != bok {
					t.Fatalf("EscapeNextAvoid(%v->%v, tie=%v) = %v,%v; EscapeNext = %v,%v",
						cur, dst, tie, b, bok, a, aok)
				}
				if committed != [3]int8{} {
					t.Fatalf("healthy walk committed a direction: %v", committed)
				}
			}
		}
	}
}

// A dead minimal hop reverses the ring direction and commits: the next call
// in the same dimension keeps the reversed direction even though the dead
// link is behind the packet now — bouncing back would livelock.
func TestEscapeNextAvoidReversesAndCommits(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	cur := topo.Coord{}
	dst := topo.Coord{X: 1}
	deadXPlus := HealthFunc(func(d topo.Dim, dir int) bool { return d == topo.X && dir == 1 })

	var committed [3]int8
	st, ok := EscapeNextAvoid(s, cur, dst, true, deadXPlus, &committed)
	if !ok || st.Dim != topo.X || st.Dir != -1 {
		t.Fatalf("first hop = %v, want X-", st)
	}
	if committed[int(topo.X)] != -1 {
		t.Fatalf("X direction not committed: %v", committed)
	}
	// Walk the detour to the destination: 0 -> 3 -> 2 -> 1, all X- hops,
	// each consulting a health view that is only dead at the origin (the
	// fault is link-local, but the commitment must persist).
	healthyElsewhere := HealthFunc(func(topo.Dim, int) bool { return false })
	cur = s.Neighbor(cur, st.Dim, st.Dir)
	for hops := 1; cur != dst; hops++ {
		if hops > s.X {
			t.Fatalf("detour did not terminate; at %v", cur)
		}
		st, ok = EscapeNextAvoid(s, cur, dst, true, healthyElsewhere, &committed)
		if !ok {
			t.Fatalf("no step at %v before reaching %v", cur, dst)
		}
		if st.Dim != topo.X || st.Dir != -1 {
			t.Fatalf("detour hop at %v = %v, want X- (committed)", cur, st)
		}
		cur = s.Neighbor(cur, st.Dim, st.Dir)
	}
	// Dimension order is preserved: with X resolved, Y comes next and its
	// commitment slot is untouched.
	st, ok = EscapeNextAvoid(s, dst, topo.Coord{X: 1, Y: 2}, true, healthyElsewhere, &committed)
	if !ok || st.Dim != topo.Y {
		t.Fatalf("after X resolved, next dim = %v, want Y", st)
	}
}

// Minimal-adaptive routes around a dead link when an alternative minimal
// hop exists, and falls back to its normal preference (leaving the divert
// to the escape path) when every minimal hop is dead.
func TestAdaptiveAvoidsDeadLink(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	p := MinimalAdaptive()
	deadX := HealthFunc(func(d topo.Dim, dir int) bool { return d == topo.X && dir == 1 })
	st, ok := p.NextStep(s, topo.Coord{}, topo.Coord{X: 1, Y: 1}, topo.OrderXYZ, true, nil, deadX)
	if !ok || st.Dim != topo.Y {
		t.Fatalf("adaptive picked %v with X+ dead, want Y+", st)
	}
	// Only minimal hop dead: returns it anyway (flow control handles it).
	st, ok = p.NextStep(s, topo.Coord{}, topo.Coord{X: 1}, topo.OrderXYZ, true, nil, deadX)
	if !ok || st.Dim != topo.X || st.Dir != 1 {
		t.Fatalf("adaptive with only hop dead picked %v, want X+", st)
	}
	// Health must not override congestion semantics: dead filtering
	// composes with the load view.
	loadY := LoadFunc(func(d topo.Dim, dir int) int64 {
		if d == topo.Y {
			return 100
		}
		return 0
	})
	st, ok = p.NextStep(s, topo.Coord{}, topo.Coord{X: 1, Y: 1, Z: 1}, topo.OrderXYZ, true, loadY, deadX)
	if !ok || st.Dim != topo.Z {
		t.Fatalf("adaptive with X+ dead and Y loaded picked %v, want Z+", st)
	}
}
