package route

import (
	"testing"
	"testing/quick"

	"anton3/internal/topo"
)

// TestResponseNextReplaysResponseRoute pins the contract the machine's
// iterative walker depends on: stepping ResponseNext from any point along
// the way reproduces exactly the precomputed ResponseRoute step sequence,
// so responses need no stored route.
func TestResponseNextReplaysResponseRoute(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	f := func(a, b uint16) bool {
		src := s.CoordOf(int(a) % s.Nodes())
		dst := s.CoordOf(int(b) % s.Nodes())
		want := ResponseRoute(s, src, dst, nil)
		cur := src
		for i := 0; ; i++ {
			st, ok := ResponseNext(cur, dst)
			if !ok {
				return i == len(want) && cur == dst
			}
			if i >= len(want) || st != want[i] {
				return false
			}
			// Mesh step: no wraparound, plain coordinate move.
			cur = cur.With(st.Dim, cur.Get(st.Dim)+st.Dir)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResponseRouteAppendsIntoBuf(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	buf := make([]topo.Step, 0, 16)
	got := ResponseRoute(s, topo.Coord{}, topo.Coord{X: 3, Z: 2}, buf)
	if len(got) != 5 {
		t.Fatalf("route length %d, want 5 (3 mesh X hops + 2 Z hops)", len(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("ResponseRoute did not use the provided buffer")
	}
}
