package route

import (
	"fmt"

	"anton3/internal/sim"
	"anton3/internal/topo"
)

// LoadView exposes a congestion signal to adaptive policies: the load on
// the outbound link along (dim, dir) from the node where the routing
// decision is being made. Larger means busier; the unit is up to the
// caller (the machine model reports serialization backlog in picoseconds,
// the router model reports occupied downstream credits). A nil view means
// "no load information" and adaptive policies fall back to a fixed
// preference order.
//
// LoadView is an interface rather than a func type so hot paths can hand a
// long-lived view object (the machine keeps one per node and slice, backed
// by its dense channel table) to every decision without allocating a
// per-decision closure.
type LoadView interface {
	Load(dim topo.Dim, dir int) int64
}

// LoadFunc adapts an ad-hoc function to a LoadView (tests, one-off views).
type LoadFunc func(dim topo.Dim, dir int) int64

// Load implements LoadView.
func (f LoadFunc) Load(dim topo.Dim, dir int) int64 { return f(dim, dir) }

// HealthView exposes link health to fault-aware routing: whether the
// outbound link along (dim, dir) from the node where the decision is being
// made is dead. It parallels LoadView (a long-lived per-node object, no
// per-decision allocation) and a nil view means "all links healthy".
// Degraded-but-alive links are deliberately not surfaced here — adaptive
// policies see them through the load signal instead.
type HealthView interface {
	Dead(dim topo.Dim, dir int) bool
}

// HealthFunc adapts an ad-hoc function to a HealthView (tests).
type HealthFunc func(dim topo.Dim, dir int) bool

// Dead implements HealthView.
func (f HealthFunc) Dead(dim topo.Dim, dir int) bool { return f(dim, dir) }

// Policy is a request-packet routing policy: it picks the dimension order
// recorded on the packet, chooses each hop's output, and assigns virtual
// channels. Implementations must be stateless (one Policy value is shared
// by every node of a machine and by concurrently running machines); all
// randomness comes from the rng the caller passes in.
//
// Response packets are outside the Policy's jurisdiction: they always
// follow the XYZ mesh-restricted route (ResponseRoute) on the dedicated
// response VC, which is what lets the paper provision a single response VC.
type Policy interface {
	// Name identifies the policy in configs, CLI flags and reports.
	Name() string
	// Order picks the dimension order for a new request packet. Policies
	// that randomize draw from rng; deterministic policies must not touch
	// it. Adaptive policies return the order used for VC accounting.
	Order(rng *sim.Rand) topo.DimOrder
	// NextStep chooses the next hop for a request at cur headed to dst.
	// o and plusOnTie are the per-packet decisions made at injection
	// (dimension order and even-ring tie direction); view reports current
	// output-link load and health reports dead links (either possibly
	// nil). It returns ok=false iff cur == dst. Every returned step must
	// be minimal: policies may choose *which* profitable dimension to
	// advance, never to take a non-minimal hop. A policy may still return
	// a dead hop (oblivious policies ignore health entirely; adaptive ones
	// when every minimal hop is dead) — the flow-control layer then
	// diverts the packet onto the fault-avoiding escape path instead.
	NextStep(s topo.Shape, cur, dst topo.Coord, o topo.DimOrder, plusOnTie bool, view LoadView, health HealthView) (topo.Step, bool)
	// Adaptive reports whether NextStep consults the load view. Callers
	// on hot paths use it to skip building a view (a per-decision
	// closure) for oblivious policies, which would ignore it anyway.
	Adaptive() bool
	// VC returns the request VC for a packet labeled with order o whose
	// current dimension has (or has not) crossed its dateline. Assignments
	// must stay within [0, RequestVCs()) and keep the two order rotation
	// groups on disjoint VCs — the structural deadlock-freedom argument of
	// Section III-B2 (property-tested in policy_test.go).
	VC(o topo.DimOrder, crossedDateline bool) int
	// RequestVCs is the number of request VCs the policy provisions. The
	// fence engine sends one fence copy per request VC, so this threads
	// through barrier behavior too.
	RequestVCs() int
}

// oblivious is the family of dimension-order policies: a fixed order, or
// one of the six drawn uniformly per packet when fixed is nil. It ignores
// network load entirely ("routes are randomized independent of network
// load", Section III-B).
type oblivious struct {
	name  string
	fixed *topo.DimOrder
}

// Random returns the paper's production policy: minimal oblivious routing
// with a uniformly random dimension order per request packet. This is the
// machine.Config default.
func Random() Policy { return oblivious{name: "random"} }

// XYZ returns the deterministic dimension-order policy: every request
// follows XYZ, concentrating load instead of spreading it (the DESIGN.md
// routing ablation, formerly the machine.Config.ForceXYZOrder special
// case).
func XYZ() Policy {
	o := topo.OrderXYZ
	return oblivious{name: "xyz", fixed: &o}
}

func (p oblivious) Name() string { return p.name }

func (p oblivious) Order(rng *sim.Rand) topo.DimOrder {
	if p.fixed != nil {
		return *p.fixed
	}
	return PickOrder(rng)
}

func (p oblivious) Adaptive() bool { return false }

func (p oblivious) NextStep(s topo.Shape, cur, dst topo.Coord, o topo.DimOrder, plusOnTie bool, _ LoadView, _ HealthView) (topo.Step, bool) {
	return obliviousNext(s, cur, dst, o, plusOnTie)
}

func (p oblivious) VC(o topo.DimOrder, crossedDateline bool) int {
	return RequestVC(o, crossedDateline)
}

func (p oblivious) RequestVCs() int { return NumRequestVCs }

// obliviousNext advances the first dimension in order o that still
// separates cur from dst, taking the minimal direction around the ring.
// Replaying it hop by hop reproduces topo.RouteTie(s, src, dst, o,
// plusOnTie) exactly: the even-ring tie only occurs on the first hop of a
// dimension, and after that hop the remaining delta commits to the chosen
// direction.
func obliviousNext(s topo.Shape, cur, dst topo.Coord, o topo.DimOrder, plusOnTie bool) (topo.Step, bool) {
	d := s.Delta(cur, dst)
	for _, dim := range o {
		n := d.Get(dim)
		if n == 0 {
			continue
		}
		dir := 1
		if n < 0 {
			dir, n = -1, -n
		}
		if !plusOnTie && 2*n == s.Get(dim) {
			dir = -dir
		}
		return topo.Step{Dim: dim, Dir: dir}, true
	}
	return topo.Step{}, false
}

// CreditSteered marks a Policy whose load view should be the one-hop
// credit lookahead — the downstream per-VC ingress occupancy the sender's
// credit counters mirror — rather than the local serialization backlog.
// The machine model checks for this interface when it builds the view it
// hands to NextStep; on machines without per-VC queues the policy falls
// back to the backlog view and behaves like MinimalAdaptive.
type CreditSteered interface {
	Policy
	// CreditSteered is a marker; it reports nothing and must be cheap.
	CreditSteered()
}

// EscapeNext returns the escape-channel hop from cur toward dst: the
// strict XYZ dimension-order minimal step (plusOnTie resolving even-ring
// direction ties), ok=false at the destination. Credit-based flow control
// (machine.Config.VCQueueFlits) uses it as the Duato-style escape route:
// the escape VC pair admits only these hops, whose channel dependency
// graph — e-cube order plus the dateline VC switch — is acyclic, so the
// escape subnetwork always drains and a blocked packet parked on it can
// always eventually advance, whatever cycles the policy's preferred
// routes form.
func EscapeNext(s topo.Shape, cur, dst topo.Coord, plusOnTie bool) (topo.Step, bool) {
	return obliviousNext(s, cur, dst, topo.OrderXYZ, plusOnTie)
}

// EscapeNextAvoid is the fault-aware escape hop: EscapeNext, except that
// when the minimal direction's link is dead at cur, the packet reverses and
// goes the long way around that ring — and commits to the reversed
// direction in committed[dim] so later hops of the same dimension keep
// going the long way instead of bouncing back into the dead link
// (livelock). The strict X<Y<Z dimension order is preserved — only the
// direction within a ring changes — and each (dim, dir) ring keeps its own
// dateline VC split, so the escape subnetwork's channel dependency graph
// stays acyclic and the Duato drain argument carries over. committed
// persists on the packet (packet.Packet.EscDirs); health may be nil.
//
// A non-minimal detour can visit more nodes than the minimal hop count, so
// unlike EscapeNext the caller must not assume progress strictly decreases
// the remaining distance — termination comes from the committed direction:
// within a dimension the packet moves monotonically around the ring until
// the coordinate matches dst's.
func EscapeNextAvoid(s topo.Shape, cur, dst topo.Coord, plusOnTie bool, health HealthView, committed *[3]int8) (topo.Step, bool) {
	d := s.Delta(cur, dst)
	for _, dim := range topo.OrderXYZ {
		n := d.Get(dim)
		if n == 0 {
			continue
		}
		dir := 1
		if n < 0 {
			dir, n = -1, -n
		}
		if !plusOnTie && 2*n == s.Get(dim) {
			dir = -dir
		}
		if c := committed[int(dim)]; c != 0 {
			dir = int(c)
		} else if health != nil && health.Dead(dim, dir) {
			dir = -dir
			committed[int(dim)] = int8(dir)
		}
		return topo.Step{Dim: dim, Dir: dir}, true
	}
	return topo.Step{}, false
}

// adaptive is the minimal-adaptive policy the paper argues against at
// Anton 3's scale: among the dimensions that still make minimal progress
// (topo.LegalNextSteps), take the one whose output link is least loaded
// right now. With no load information it degenerates to XYZ preference.
// The order label (used only for VC accounting) is fixed to XYZ and no
// rng is consumed.
type adaptive struct{}

// MinimalAdaptive returns the load-adaptive minimal policy: per hop, pick
// the legal next dimension with the lowest output-link load.
func MinimalAdaptive() Policy { return adaptive{} }

func (adaptive) Name() string { return "adaptive" }

func (adaptive) Order(*sim.Rand) topo.DimOrder { return topo.OrderXYZ }

func (adaptive) Adaptive() bool { return true }

func (adaptive) NextStep(s topo.Shape, cur, dst topo.Coord, _ topo.DimOrder, _ bool, view LoadView, health HealthView) (topo.Step, bool) {
	var buf [6]topo.Step
	cands := topo.LegalNextSteps(s, cur, dst, buf[:0])
	if len(cands) == 0 {
		return topo.Step{}, false
	}
	if health != nil {
		// Route around dead links: drop dead candidates, unless every
		// minimal hop is dead — then return the original preference and
		// let flow control divert onto the escape path.
		alive := cands[:0]
		for _, st := range cands {
			if !health.Dead(st.Dim, st.Dir) {
				alive = append(alive, st)
			}
		}
		if len(alive) > 0 {
			cands = alive
		}
	}
	best := cands[0]
	if view != nil {
		bestLoad := view.Load(best.Dim, best.Dir)
		for _, st := range cands[1:] {
			if l := view.Load(st.Dim, st.Dir); l < bestLoad {
				best, bestLoad = st, l
			}
		}
	}
	return best, true
}

func (adaptive) VC(o topo.DimOrder, crossedDateline bool) int {
	return RequestVC(o, crossedDateline)
}

func (adaptive) RequestVCs() int { return NumRequestVCs }

// creditEcho is minimal-adaptive steering on echoed credit state: per hop,
// take the legal dimension whose downstream per-VC ingress queues have the
// most free space (CreditSteered makes the machine supply that view). The
// hop choice logic is MinimalAdaptive's; only the congestion signal
// differs — one hop of lookahead through the credit loop instead of the
// local serialization horizon, so it sees head-of-line blocking forming at
// the neighbor before the local channel backs up.
type creditEcho struct{ adaptive }

// CreditEcho returns the credit-lookahead adaptive policy. It is only
// distinguishable from MinimalAdaptive on machines modeling per-VC ingress
// queues (machine.Config.VCQueueFlits > 0), the closed-loop saturation
// rig's configuration.
func CreditEcho() Policy { return creditEcho{} }

func (creditEcho) Name() string { return "credit-echo" }

func (creditEcho) CreditSteered() {}

// Policies lists the policies of the open-loop netsweep grid, default
// first. (Deliberately without CreditEcho: netsweep machines model no
// per-VC queues, where credit-echo degenerates to MinimalAdaptive, and the
// netsweep report format is pinned byte-for-byte across PRs.)
func Policies() []Policy {
	return []Policy{Random(), XYZ(), MinimalAdaptive()}
}

// SaturatePolicies lists the policies of the closed-loop saturation sweep:
// the netsweep trio plus the credit-echo variant that per-VC queues make
// meaningful.
func SaturatePolicies() []Policy {
	return append(Policies(), CreditEcho())
}

// PolicyByName resolves a policy by its Name, for CLI flags and configs.
func PolicyByName(name string) (Policy, error) {
	for _, p := range SaturatePolicies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("route: unknown policy %q (have random, xyz, adaptive, credit-echo)", name)
}

// Walk replays a policy's hop decisions from src to dst without a network:
// the step sequence a packet would take under a static load view. It is
// the reference used by tests and by callers that need a whole path up
// front (view may be nil).
func Walk(p Policy, s topo.Shape, src, dst topo.Coord, o topo.DimOrder, plusOnTie bool, view LoadView) []topo.Step {
	steps := make([]topo.Step, 0, s.HopDist(src, dst))
	cur := src
	for {
		st, ok := p.NextStep(s, cur, dst, o, plusOnTie, view, nil)
		if !ok {
			return steps
		}
		steps = append(steps, st)
		cur = s.Neighbor(cur, st.Dim, st.Dir)
	}
}
