package route

import (
	"testing"
	"testing/quick"

	"anton3/internal/sim"
	"anton3/internal/topo"
)

func TestVCProvisioning(t *testing.T) {
	// Section III-B2: five VCs total for the Edge Router.
	if NumVCs != 5 || NumRequestVCs != 4 || ResponseVC != 4 {
		t.Fatal("VC provisioning does not match the paper")
	}
}

func TestRequestVCRange(t *testing.T) {
	seen := map[int]bool{}
	for _, o := range topo.AllDimOrders {
		for _, crossed := range []bool{false, true} {
			vc := RequestVC(o, crossed)
			if vc < 0 || vc >= NumRequestVCs {
				t.Fatalf("RequestVC(%v,%v) = %d out of range", o, crossed, vc)
			}
			seen[vc] = true
		}
	}
	if len(seen) != NumRequestVCs {
		t.Fatalf("only %d of %d request VCs used", len(seen), NumRequestVCs)
	}
}

func TestDatelineSwitchesVCUpward(t *testing.T) {
	for _, o := range topo.AllDimOrders {
		lo, hi := RequestVC(o, false), RequestVC(o, true)
		if hi != lo+1 {
			t.Fatalf("order %v: dateline VC %d -> %d, want +1", o, lo, hi)
		}
	}
}

func TestPickOrderUniform(t *testing.T) {
	r := sim.NewRand(1)
	counts := map[topo.DimOrder]int{}
	n := 60000
	for i := 0; i < n; i++ {
		counts[PickOrder(r)]++
	}
	for _, o := range topo.AllDimOrders {
		c := counts[o]
		if c < n/6-n/30 || c > n/6+n/30 {
			t.Fatalf("order %v picked %d of %d (not ~uniform)", o, c, n)
		}
	}
}

func TestResponseRouteNeverWraps(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	f := func(a, b uint16) bool {
		src := s.CoordOf(int(a) % s.Nodes())
		dst := s.CoordOf(int(b) % s.Nodes())
		cur := src
		for _, st := range ResponseRoute(s, src, dst, nil) {
			next := s.Neighbor(cur, st.Dim, st.Dir)
			// A wraparound hop changes the coordinate against the
			// direction of travel.
			if st.Dir > 0 && next.Get(st.Dim) < cur.Get(st.Dim) {
				return false
			}
			if st.Dir < 0 && next.Get(st.Dim) > cur.Get(st.Dim) {
				return false
			}
			cur = next
		}
		return cur == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResponseRouteCanBeNonMinimal(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	src, dst := topo.Coord{X: 0}, topo.Coord{X: 3}
	steps := ResponseRoute(s, src, dst, nil)
	if len(steps) != 3 {
		t.Fatalf("mesh-restricted 0->3 should take 3 hops, got %d", len(steps))
	}
	if s.HopDist(src, dst) != 1 {
		t.Fatal("sanity: torus distance should be 1")
	}
}

func TestResponseRouteXYZOrder(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	steps := ResponseRoute(s, topo.Coord{X: 0, Y: 3, Z: 5}, topo.Coord{X: 2, Y: 1, Z: 7}, nil)
	rank := map[topo.Dim]int{topo.X: 0, topo.Y: 1, topo.Z: 2}
	last := -1
	for _, st := range steps {
		if rank[st.Dim] < last {
			t.Fatalf("response route out of XYZ order: %v", steps)
		}
		last = rank[st.Dim]
	}
}

func TestHopVCsMonotoneWithinDim(t *testing.T) {
	// Within one dimension the VC can only step up (at the dateline),
	// never down; entering a new dimension resets to the low VC.
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	f := func(a, b uint16, oi uint8) bool {
		src := s.CoordOf(int(a) % s.Nodes())
		dst := s.CoordOf(int(b) % s.Nodes())
		o := topo.AllDimOrders[int(oi)%6]
		steps := topo.Route(s, src, dst, o)
		vcs := HopVCs(s, src, steps, o)
		lo := RequestVC(o, false)
		for i := range steps {
			if i > 0 && steps[i].Dim == steps[i-1].Dim && vcs[i] < vcs[i-1] {
				return false
			}
			if i == 0 || steps[i].Dim != steps[i-1].Dim {
				if vcs[i] != lo {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopVCsDatelineExample(t *testing.T) {
	// 0 -> 3 in a 4-ring going + passes 0,1 then... minimal route from 0
	// to 3 is one hop across the wraparound (0 -> 3 going -): VC low for
	// that single hop. Use 1 -> 3: hops 1->2->3, no wrap, all low VC.
	s := topo.Shape{X: 4, Y: 1, Z: 1}
	steps := topo.Route(s, topo.Coord{X: 1}, topo.Coord{X: 3}, topo.OrderXYZ)
	vcs := HopVCs(s, topo.Coord{X: 1}, steps, topo.OrderXYZ)
	for _, vc := range vcs {
		if vc != RequestVC(topo.OrderXYZ, false) {
			t.Fatalf("no-wrap route used dateline VC: %v", vcs)
		}
	}
	// 3 -> 1 going +: hop 3->0 crosses the dateline, then 0->1 must be on
	// the high VC.
	steps = topo.Route(s, topo.Coord{X: 3}, topo.Coord{X: 1}, topo.OrderXYZ)
	vcs = HopVCs(s, topo.Coord{X: 3}, steps, topo.OrderXYZ)
	if len(vcs) != 2 {
		t.Fatalf("route length %d, want 2", len(vcs))
	}
	if vcs[0] != RequestVC(topo.OrderXYZ, false) || vcs[1] != RequestVC(topo.OrderXYZ, true) {
		t.Fatalf("dateline VCs = %v", vcs)
	}
}
