package route

import (
	"testing"
	"testing/quick"

	"anton3/internal/sim"
	"anton3/internal/topo"
)

// TestObliviousWalkMatchesRouteTie pins the bit-identity contract of the
// policy extraction: replaying Random/XYZ per hop must produce exactly the
// hop sequence machine.Send used to precompute via topo.RouteTie.
func TestObliviousWalkMatchesRouteTie(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	pols := []Policy{Random(), XYZ()}
	f := func(a, b uint16, oi uint8, tie bool) bool {
		src := s.CoordOf(int(a) % s.Nodes())
		dst := s.CoordOf(int(b) % s.Nodes())
		o := topo.AllDimOrders[int(oi)%6]
		want := topo.RouteTie(s, src, dst, o, tie)
		for _, p := range pols {
			got := Walk(p, s, src, dst, o, tie, nil)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOrderMatchesPickOrder(t *testing.T) {
	// Random must consume exactly one draw per packet, identically to the
	// seed's route.PickOrder call — the rng-stream compatibility that keeps
	// Fig5/ping-pong numbers unchanged.
	a, b := sim.NewRand(7), sim.NewRand(7)
	p := Random()
	for i := 0; i < 1000; i++ {
		if p.Order(a) != PickOrder(b) {
			t.Fatal("Random.Order diverged from PickOrder")
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("Random.Order consumed a different amount of randomness")
	}
}

func TestXYZOrderDeterministicAndRngFree(t *testing.T) {
	p := XYZ()
	if p.Order(nil) != topo.OrderXYZ {
		t.Fatal("XYZ policy must always return OrderXYZ without touching rng")
	}
	if MinimalAdaptive().Order(nil) != topo.OrderXYZ {
		t.Fatal("adaptive policy must label packets XYZ without touching rng")
	}
}

func TestAdaptiveStaysMinimal(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	p := MinimalAdaptive()
	rng := sim.NewRand(11)
	// A hostile view (random loads) must never push the walk off minimal
	// routes: the walk terminates in exactly HopDist hops.
	view := LoadFunc(func(topo.Dim, int) int64 { return int64(rng.Intn(1000)) })
	f := func(a, b uint16) bool {
		src := s.CoordOf(int(a) % s.Nodes())
		dst := s.CoordOf(int(b) % s.Nodes())
		steps := Walk(p, s, src, dst, topo.OrderXYZ, true, view)
		if len(steps) != s.HopDist(src, dst) {
			return false
		}
		cur := src
		for _, st := range steps {
			cur = s.Neighbor(cur, st.Dim, st.Dir)
		}
		return cur == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveAvoidsLoadedDimension(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	p := MinimalAdaptive()
	// X+ is congested; the first hop must go Y+ instead.
	view := LoadFunc(func(d topo.Dim, dir int) int64 {
		if d == topo.X {
			return 100
		}
		return 0
	})
	st, ok := p.NextStep(s, topo.Coord{}, topo.Coord{X: 1, Y: 1}, topo.OrderXYZ, true, view, nil)
	if !ok || st.Dim != topo.Y {
		t.Fatalf("adaptive picked %v under X congestion, want Y+", st)
	}
	// Without a view it falls back to the XYZ preference.
	st, ok = p.NextStep(s, topo.Coord{}, topo.Coord{X: 1, Y: 1}, topo.OrderXYZ, true, nil, nil)
	if !ok || st.Dim != topo.X {
		t.Fatalf("adaptive without view picked %v, want X+", st)
	}
}

// TestPolicyVCDeadlockSafety is the VC-safety property every policy must
// uphold for the paper's 5-VC provisioning argument to apply: each (order,
// dateline) assignment lands inside [0, RequestVCs()), the dateline switch
// moves to a different VC, and the two order rotation groups never share a
// VC (orders from different groups cannot form a cyclic channel dependency
// only if their VC sets stay disjoint).
func TestPolicyVCDeadlockSafety(t *testing.T) {
	group := func(o topo.DimOrder) int {
		switch o {
		case topo.OrderXYZ, topo.OrderYZX, topo.OrderZXY:
			return 0
		default:
			return 1
		}
	}
	for _, p := range Policies() {
		if n := p.RequestVCs(); n > NumRequestVCs {
			t.Fatalf("%s: provisions %d request VCs, hardware has %d", p.Name(), n, NumRequestVCs)
		}
		vcGroup := map[int]int{} // vc -> rotation group that used it
		for _, o := range topo.AllDimOrders {
			for _, crossed := range []bool{false, true} {
				vc := p.VC(o, crossed)
				if vc < 0 || vc >= p.RequestVCs() {
					t.Fatalf("%s: VC(%v,%v) = %d outside [0,%d)", p.Name(), o, crossed, vc, p.RequestVCs())
				}
				if g, seen := vcGroup[vc]; seen && g != group(o) {
					t.Fatalf("%s: VC %d shared across rotation groups", p.Name(), vc)
				}
				vcGroup[vc] = group(o)
			}
			if p.VC(o, false) == p.VC(o, true) {
				t.Fatalf("%s: dateline crossing must switch VCs (order %v)", p.Name(), o)
			}
		}
	}
}

func TestPolicyRegistry(t *testing.T) {
	ps := Policies()
	if len(ps) < 3 || ps[0].Name() != "random" {
		t.Fatalf("Policies() = %v, want random first of >= 3", ps)
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name()] {
			t.Fatalf("duplicate policy name %q", p.Name())
		}
		seen[p.Name()] = true
		got, err := PolicyByName(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Fatalf("PolicyByName(%q) = %v, %v", p.Name(), got, err)
		}
	}
	if _, err := PolicyByName("warped"); err == nil {
		t.Fatal("unknown policy must error")
	}
}
