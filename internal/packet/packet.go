// Package packet defines the Anton 3 network packet format. Packets are
// small and fixed-size: one or two flits, each flit 192 bits (a 64-bit
// header and a 128-bit payload), enabling fast virtual cut-through flow
// control with 8-flit-per-VC router input queues (Section III-B).
package packet

import (
	"fmt"

	"anton3/internal/sim"
	"anton3/internal/topo"
)

// Flit geometry (Section III-B).
const (
	FlitBits        = 192
	HeaderBits      = 64
	PayloadBits     = 128
	HeaderBytes     = HeaderBits / 8
	PayloadBytes    = PayloadBits / 8
	PayloadWords    = 4
	MaxFlitsPerPkt  = 2
	InputQueueFlits = 8 // per-VC router input queue depth
)

// Class separates the two protocol traffic classes whose independence
// avoids request-response deadlock.
type Class uint8

// Traffic classes.
const (
	Request Class = iota
	Response
)

func (c Class) String() string {
	if c == Request {
		return "request"
	}
	return "response"
}

// Type identifies what a packet carries.
type Type uint8

// Packet types used by the MD application protocol.
const (
	// CountedWrite writes a quad to remote SRAM and increments the quad's
	// counter (Section III-A). Request class.
	CountedWrite Type = iota
	// CountedAccum is a counted write that accumulates (adds) into the
	// quad instead of overwriting — the force-summation form.
	CountedAccum
	// ReadReq asks a remote SRAM for a quad. Request class.
	ReadReq
	// ReadResp returns the quad. Response class.
	ReadResp
	// Position carries an atom position (stream-set export). Request class.
	Position
	// Force carries a computed force back to the atom's GC. Request class
	// (the MD protocol architects almost all traffic as requests).
	Force
	// Fence is a network fence packet (Section V). Request class.
	Fence
	// EndOfStep is the special packet software sends down each channel to
	// advance the particle cache time step counter (Section IV-B1).
	EndOfStep
)

func (t Type) String() string {
	switch t {
	case CountedWrite:
		return "counted-write"
	case CountedAccum:
		return "counted-accum"
	case ReadReq:
		return "read-req"
	case ReadResp:
		return "read-resp"
	case Position:
		return "position"
	case Force:
		return "force"
	case Fence:
		return "fence"
	case EndOfStep:
		return "end-of-step"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Class returns the traffic class for the type.
func (t Type) Class() Class {
	if t == ReadResp {
		return Response
	}
	return Request
}

// CoreID locates a Geometry Core (or other endpoint) on a chip: the tile
// and which of the tile's two GCs.
type CoreID struct {
	Tile topo.MeshCoord
	GC   int // 0 or 1
}

func (c CoreID) String() string { return fmt.Sprintf("%v.gc%d", c.Tile, c.GC) }

// Packet is a network packet. Fields that a real header squeezes into 64
// bits are kept as plain struct members; WireHeaderBytes accounts for the
// on-wire cost.
type Packet struct {
	ID   uint64
	Type Type

	SrcNode topo.Coord
	DstNode topo.Coord
	SrcCore CoreID
	DstCore CoreID

	// Addr is the SRAM quad address for write/read types.
	Addr uint32
	// AtomID tags position/force packets (one of the "static fields" the
	// particle cache replaces with a cache index on hits).
	AtomID uint32
	// Threshold is the blocking-read counter threshold for ReadReq.
	Threshold uint8

	// Payload carries up to four 32-bit words; Words says how many are
	// meaningful. Packets with Words == 0 are single-flit (header only).
	Payload [PayloadWords]uint32
	Words   int

	// Order is the dimension order assigned at injection (requests get a
	// random one of the six; responses are always XYZ).
	Order topo.DimOrder

	// FenceID and FenceHops parameterize fence packets.
	FenceID   int
	FenceHops int

	// Injected is when the packet entered the network, for latency
	// accounting.
	Injected sim.Time
}

// Flits returns the packet's flit count: one for header-only packets, two
// when a payload is attached.
func (p *Packet) Flits() int {
	if p.Words == 0 {
		return 1
	}
	return 2
}

// WireBits is the on-chip cost of the packet in bits.
func (p *Packet) WireBits() int { return p.Flits() * FlitBits }

// Quad returns the payload as a quad value.
func (p *Packet) Quad() [4]uint32 { return p.Payload }

// SetQuad installs a full quad payload.
func (p *Packet) SetQuad(q [4]uint32) {
	p.Payload = q
	p.Words = PayloadWords
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %s %v->%v", p.ID, p.Type, p.SrcNode, p.DstNode)
}
