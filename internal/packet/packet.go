// Package packet defines the Anton 3 network packet format. Packets are
// small and fixed-size: one or two flits, each flit 192 bits (a 64-bit
// header and a 128-bit payload), enabling fast virtual cut-through flow
// control with 8-flit-per-VC router input queues (Section III-B).
package packet

import (
	"fmt"

	"anton3/internal/sim"
	"anton3/internal/topo"
)

// Flit geometry (Section III-B).
const (
	FlitBits        = 192
	HeaderBits      = 64
	PayloadBits     = 128
	HeaderBytes     = HeaderBits / 8
	PayloadBytes    = PayloadBits / 8
	PayloadWords    = 4
	MaxFlitsPerPkt  = 2
	InputQueueFlits = 8 // per-VC router input queue depth
)

// RouteCap is the longest hop list a packet can carry precomputed (see
// Packet.Route); it covers the diameter of every production shape (the
// 512-node 8x8x8 machine's is 12). Longer routes fall back to per-hop
// decisions.
const RouteCap = 24

// Class separates the two protocol traffic classes whose independence
// avoids request-response deadlock.
type Class uint8

// Traffic classes.
const (
	Request Class = iota
	Response
)

func (c Class) String() string {
	if c == Request {
		return "request"
	}
	return "response"
}

// Type identifies what a packet carries.
type Type uint8

// Packet types used by the MD application protocol.
const (
	// CountedWrite writes a quad to remote SRAM and increments the quad's
	// counter (Section III-A). Request class.
	CountedWrite Type = iota
	// CountedAccum is a counted write that accumulates (adds) into the
	// quad instead of overwriting — the force-summation form.
	CountedAccum
	// ReadReq asks a remote SRAM for a quad. Request class.
	ReadReq
	// ReadResp returns the quad. Response class.
	ReadResp
	// Position carries an atom position (stream-set export). Request class.
	Position
	// Force carries a computed force back to the atom's GC. Request class
	// (the MD protocol architects almost all traffic as requests).
	Force
	// Fence is a network fence packet (Section V). Request class.
	Fence
	// EndOfStep is the special packet software sends down each channel to
	// advance the particle cache time step counter (Section IV-B1).
	EndOfStep
)

func (t Type) String() string {
	switch t {
	case CountedWrite:
		return "counted-write"
	case CountedAccum:
		return "counted-accum"
	case ReadReq:
		return "read-req"
	case ReadResp:
		return "read-resp"
	case Position:
		return "position"
	case Force:
		return "force"
	case Fence:
		return "fence"
	case EndOfStep:
		return "end-of-step"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Class returns the traffic class for the type.
func (t Type) Class() Class {
	if t == ReadResp {
		return Response
	}
	return Request
}

// Deliverer receives a packet at its destination endpoint, after the SRAM
// update. Implementations must not retain p past the call: pooled packets
// are recycled as soon as Deliver returns.
type Deliverer interface {
	Deliver(p *Packet)
}

// Accepter is notified when a packet that the network initially refused —
// parked at its first-hop channel for lack of downstream virtual-channel
// credits (WalkParked) — is finally accepted and starts injecting.
// Closed-loop traffic sources use it to free an injection-queue slot and
// resume generation. Only packets whose OnAccept field is set get the
// callback, and only on the parked path: a packet accepted immediately is
// never reported (Send returns with the packet out of WalkParked, which
// tells the caller the same thing synchronously).
type Accepter interface {
	Accepted(p *Packet)
}

// Walker advances a packet through the network. The machine installs itself
// as the walker when it accepts a packet; each timing event then fires the
// packet itself (Packet implements sim.Actor) and the walker interprets the
// packet's embedded walk state. This replaces a chain of per-hop scheduled
// closures with a single reusable handler, which is what makes the
// steady-state hot path allocation-free.
type Walker interface {
	OnPacket(p *Packet)
}

// WalkState says what a packet's next firing means to its Walker.
type WalkState uint8

// Walk states of the machine packet pipeline.
const (
	// WalkIdle: not in flight (freshly built or recycled).
	WalkIdle WalkState = iota
	// WalkTransit: the inject/transit latency has elapsed; cross the
	// outbound channel Out at node Cur.
	WalkTransit
	// WalkArrive: the packet just emerged from a channel at node Cur,
	// having entered through receiver-side channel In; decide the next hop
	// or start ejecting.
	WalkArrive
	// WalkApply: the eject/on-chip latency has elapsed; apply the packet at
	// its destination and deliver.
	WalkApply
	// WalkFenceMerge: the fence per-hop latency has elapsed; merge this
	// fence copy at node Cur on channel In.
	WalkFenceMerge
	// WalkParked: the packet is held by credit flow control (per-VC ingress
	// queues enabled) — parked at the channel chosen in Out/OutVC until the
	// downstream virtual-channel queue returns enough credits. No event is
	// pending for a parked packet; the credit arrival revives it.
	WalkParked
)

// CoreID locates a Geometry Core (or other endpoint) on a chip: the tile
// and which of the tile's two GCs.
type CoreID struct {
	Tile topo.MeshCoord
	GC   int // 0 or 1
}

func (c CoreID) String() string { return fmt.Sprintf("%v.gc%d", c.Tile, c.GC) }

// Packet is a network packet. Fields that a real header squeezes into 64
// bits are kept as plain struct members; WireHeaderBytes accounts for the
// on-wire cost.
type Packet struct {
	ID   uint64
	Type Type

	SrcNode topo.Coord
	DstNode topo.Coord
	SrcCore CoreID
	DstCore CoreID

	// Addr is the SRAM quad address for write/read types.
	Addr uint32
	// AtomID tags position/force packets (one of the "static fields" the
	// particle cache replaces with a cache index on hits).
	AtomID uint32
	// Threshold is the blocking-read counter threshold for ReadReq.
	Threshold uint8

	// Payload carries up to four 32-bit words; Words says how many are
	// meaningful. Packets with Words == 0 are single-flit (header only).
	Payload [PayloadWords]uint32
	Words   int

	// Order is the dimension order assigned at injection (requests get a
	// random one of the six; responses are always XYZ).
	Order topo.DimOrder

	// FenceID and FenceHops parameterize fence packets.
	FenceID   int
	FenceHops int

	// Injected is when the packet entered the network, for latency
	// accounting.
	Injected sim.Time

	// ParkedAt is when credit flow control last parked this packet (at
	// injection or as a transit queue head), read at revival for
	// park-duration telemetry. Zeroed with the rest of the struct when
	// the packet returns to its pool.
	ParkedAt sim.Time

	// Walk state, owned by the Walker while the packet is in flight. Cur is
	// the node the packet is at (or entering) and CurIdx its dense
	// topo.Shape.Index — the machine keeps both in sync so the hot loop
	// indexes flat per-node tables without re-linearizing coordinates. Out
	// and In are dense chip.ChannelSpec indices (chip.ChannelSpec.Index) of
	// the chosen outbound channel and of the receiver-side channel just
	// crossed (-1 at the source). Slice pins the channel slice for the whole
	// walk; Tie is the even-ring direction tie-break fixed at injection.
	Walker Walker
	Done   Deliverer
	Cur    topo.Coord
	CurIdx int32
	State  WalkState
	Out    int8
	In     int8
	Slice  int8
	Tie    bool

	// Route is the packet's precomputed hop list: dense channel-spec
	// indices, one per hop, filled at injection for routes that are a pure
	// function of (src, dst, order, tie) — every oblivious policy and all
	// responses. RoutePos is the next unconsumed hop; RouteLen is the hop
	// count, or -1 when hops are decided per hop instead (adaptive
	// policies, routes longer than RouteCap, or a packet diverted onto an
	// escape channel by credit flow control).
	Route    [RouteCap]int8
	RoutePos int8
	RouteLen int8

	// Virtual-channel walk state, used only when the machine models per-VC
	// ingress queues (machine.Config.VCQueueFlits > 0). VC is the virtual
	// channel whose ingress-queue credits the packet currently holds (or,
	// for a packet still queued at a node, the queue it occupies); OutVC is
	// the VC chosen for the next hop while the packet waits for credits.
	// CurDim and Crossed track the dateline rule that drives the VC
	// assignment: Crossed flips when the packet traverses the wraparound
	// link of the dimension it is traversing and resets on a dimension
	// change, mirroring route.HopVCs.
	VC      int8
	OutVC   int8
	CurDim  int8
	CurDir  int8 // direction of travel within CurDim (+1/-1, 0 before first hop)
	Crossed bool
	// EscDirs records, per torus dimension, the direction this packet has
	// committed to under fault rerouting (0 = uncommitted). Once a dead
	// link forces the escape path to reverse a dimension, the packet must
	// finish that dimension in the reversed direction — bouncing back toward
	// the minimal side would re-meet the dead link and livelock.
	EscDirs [3]int8
	// OnAccept, when set, is notified if this packet parks at its first-hop
	// channel and is later revived by a credit arrival (see Accepter).
	OnAccept Accepter

	// PreRouted marks a request packet whose Order and Tie were assigned
	// by the caller before Send; the machine then skips its own rng draws.
	// Harnesses that run on sharded machines pre-draw routing decisions in
	// the sequential kernel's order so that results do not depend on the
	// shard count.
	PreRouted bool

	// Hist and Inj are the packet's event lineage, maintained by the
	// machine only on sharded runs: the fire times of every past event of
	// this packet's walk (oldest first), and the global setup order of its
	// injection event. Shard kernels in lineage mode use them to order
	// same-timestamp events exactly as a sequential kernel would
	// (sim.Lineaged).
	Hist []sim.Time
	Inj  uint64

	pooled bool
}

// Lineage implements sim.Lineaged.
func (p *Packet) Lineage() ([]sim.Time, uint64) { return p.Hist, p.Inj }

// HistCap is the lineage-chain capacity PushHist sizes a fresh packet's
// history to: enough for the walk of a diameter-12 route (two events per
// hop plus injection and apply) without regrowing.
const HistCap = 32

// PushHist appends t to the packet's lineage chain. The first growth jumps
// straight to HistCap instead of walking the append doubling series, so a
// fresh packet's whole walk costs one history allocation — the dominant
// allocator in sharded runs before this (Pool.Put keeps the capacity, so
// recycled packets pay nothing).
func (p *Packet) PushHist(t sim.Time) {
	if cap(p.Hist) == 0 {
		p.Hist = make([]sim.Time, 0, HistCap)
	}
	p.Hist = append(p.Hist, t)
}

// Act fires the packet's next walk step (sim.Actor).
func (p *Packet) Act() { p.Walker.OnPacket(p) }

// Pool is a packet free list. Get returns a zeroed packet; Put recycles a
// packet obtained from Get and ignores packets built elsewhere, so harness
// code may mix pooled and literal packets freely. Not safe for concurrent
// use — like a Kernel, a Pool belongs to one simulated machine.
type Pool struct {
	free []*Packet
}

// Get returns a zeroed packet, recycling a previously Put one if possible.
func (pl *Pool) Get() *Packet {
	n := len(pl.free) - 1
	if n < 0 {
		return &Packet{pooled: true}
	}
	p := pl.free[n]
	pl.free[n] = nil
	pl.free = pl.free[:n]
	return p
}

// Put recycles p if it came from Get; packets allocated directly are left
// to the garbage collector. p must not be referenced after Put.
func (pl *Pool) Put(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	hist := p.Hist[:0]
	*p = Packet{pooled: true, Hist: hist}
	pl.free = append(pl.free, p)
}

// Size reports the number of pooled packets.
func (pl *Pool) Size() int { return len(pl.free) }

// MoveTo transfers up to n pooled packets from pl to dst and reports how
// many actually moved. Sharded machines recycle a packet into the pool of
// the shard that delivered it, so cross-shard traffic makes per-shard
// pools drift apart run over run; the machine uses MoveTo between runs to
// even them back out, keeping steady-state Get calls allocation-free.
func (pl *Pool) MoveTo(dst *Pool, n int) int {
	moved := 0
	for moved < n {
		i := len(pl.free) - 1
		if i < 0 {
			break
		}
		p := pl.free[i]
		pl.free[i] = nil
		pl.free = pl.free[:i]
		dst.free = append(dst.free, p)
		moved++
	}
	return moved
}

// Flits returns the packet's flit count: one for header-only packets, two
// when a payload is attached.
func (p *Packet) Flits() int {
	if p.Words == 0 {
		return 1
	}
	return 2
}

// WireBits is the on-chip cost of the packet in bits.
func (p *Packet) WireBits() int { return p.Flits() * FlitBits }

// Quad returns the payload as a quad value.
func (p *Packet) Quad() [4]uint32 { return p.Payload }

// SetQuad installs a full quad payload.
func (p *Packet) SetQuad(q [4]uint32) {
	p.Payload = q
	p.Words = PayloadWords
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %s %v->%v", p.ID, p.Type, p.SrcNode, p.DstNode)
}
