package packet

import (
	"testing"

	"anton3/internal/topo"
)

func TestFlitGeometry(t *testing.T) {
	// Section III-B: each flit is 192 bits = 64-bit header + 128-bit payload.
	if FlitBits != HeaderBits+PayloadBits {
		t.Fatal("flit must be header + payload")
	}
	if HeaderBytes != 8 || PayloadBytes != 16 {
		t.Fatalf("header %dB payload %dB, want 8/16", HeaderBytes, PayloadBytes)
	}
}

func TestFlitCount(t *testing.T) {
	p := &Packet{Type: CountedWrite}
	if p.Flits() != 1 {
		t.Fatal("header-only packet should be 1 flit")
	}
	p.SetQuad([4]uint32{1, 2, 3, 4})
	if p.Flits() != 2 {
		t.Fatal("payload packet should be 2 flits")
	}
	if p.WireBits() != 384 {
		t.Fatalf("WireBits = %d, want 384", p.WireBits())
	}
}

func TestClassAssignment(t *testing.T) {
	// Only read responses are response class; the MD protocol architects
	// nearly all traffic as requests (Section III-B2).
	for _, ty := range []Type{CountedWrite, CountedAccum, ReadReq, Position, Force, Fence, EndOfStep} {
		if ty.Class() != Request {
			t.Errorf("%v should be request class", ty)
		}
	}
	if ReadResp.Class() != Response {
		t.Error("ReadResp should be response class")
	}
}

func TestTypeStrings(t *testing.T) {
	if CountedWrite.String() != "counted-write" || Type(200).String() != "Type(200)" {
		t.Fatal("Type.String broken")
	}
	if Request.String() != "request" || Response.String() != "response" {
		t.Fatal("Class.String broken")
	}
}

func TestQuadRoundTrip(t *testing.T) {
	p := &Packet{}
	q := [4]uint32{0xa, 0xb, 0xc, 0xd}
	p.SetQuad(q)
	if p.Quad() != q || p.Words != 4 {
		t.Fatal("SetQuad/Quad mismatch")
	}
}

func TestStringFormat(t *testing.T) {
	p := &Packet{ID: 7, Type: Position,
		SrcNode: topo.Coord{X: 0, Y: 0, Z: 0}, DstNode: topo.Coord{X: 1, Y: 2, Z: 3}}
	want := "pkt#7 position (0,0,0)->(1,2,3)"
	if p.String() != want {
		t.Fatalf("String = %q, want %q", p.String(), want)
	}
	c := CoreID{Tile: topo.MeshCoord{U: 3, V: 4}, GC: 1}
	if c.String() != "[u3,v4].gc1" {
		t.Fatalf("CoreID.String = %q", c.String())
	}
}
