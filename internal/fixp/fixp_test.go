package fixp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPosRoundTrip(t *testing.T) {
	f := func(x, y, z int16) bool {
		v := Vec{float64(x) / 7, float64(y) / 7, float64(z) / 7}
		got := PosToVec(PosToFixed(v))
		tol := 1.5 / PosUnitsPerAngstrom
		return math.Abs(got.X-v.X) < tol && math.Abs(got.Y-v.Y) < tol && math.Abs(got.Z-v.Z) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForceRoundTrip(t *testing.T) {
	v := Vec{12.5, -3.25, 0.0001}
	got := ForceToVec(ForceToFixed(v))
	tol := 1.0 / ForceUnitsPerKcalMolA
	if math.Abs(got.X-v.X) > tol || math.Abs(got.Y-v.Y) > tol || math.Abs(got.Z-v.Z) > tol {
		t.Fatalf("force round trip %v -> %v", v, got)
	}
}

func TestRoundingSymmetric(t *testing.T) {
	// -x must quantize to the negation of x's quantization.
	f := func(milli int32) bool {
		x := float64(milli) / 1000
		return PosToFixed(Vec{X: x}).X == -PosToFixed(Vec{X: -x}).X
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVecAlgebra(t *testing.T) {
	a, b := Vec{1, 2, 3}, Vec{4, 5, 6}
	if a.Add(b) != (Vec{5, 7, 9}) || b.Sub(a) != (Vec{3, 3, 3}) {
		t.Fatal("Add/Sub broken")
	}
	if a.Dot(b) != 32 || a.Scale(2) != (Vec{2, 4, 6}) {
		t.Fatal("Dot/Scale broken")
	}
	if a.Norm2() != 14 {
		t.Fatal("Norm2 broken")
	}
}

func TestFixedWordsRoundTrip(t *testing.T) {
	f := Fixed{X: -100000, Y: 200000, Z: -300000}
	if FixedFromWords(f.Words()) != f {
		t.Fatal("Words/FromWords round trip")
	}
	if f.Words()[3] != 0 {
		t.Fatal("word 3 should be zero (atom identity lives in the header)")
	}
}

func TestFixedCoordAccessors(t *testing.T) {
	f := Fixed{X: 1, Y: 2, Z: 3}
	for c := 0; c < 3; c++ {
		if f.Coord(c) != int32(c+1) {
			t.Fatalf("Coord(%d) = %d", c, f.Coord(c))
		}
		g := f.WithCoord(c, 9)
		if g.Coord(c) != 9 {
			t.Fatal("WithCoord broken")
		}
	}
}

func TestFixedWrapArithmetic(t *testing.T) {
	a := Fixed{X: math.MaxInt32}
	b := Fixed{X: 1}
	if a.Add(b).X != math.MinInt32 {
		t.Fatal("two's-complement wraparound expected")
	}
	if b.Sub(a).X != math.MinInt32+2 {
		t.Fatal("Sub wraparound expected")
	}
}

func TestScalesGiveINZFriendlyMagnitudes(t *testing.T) {
	// A 50 A home-box-relative position must stay under 2^23; a typical
	// 20 kcal/mol/A force under 2^18 — the magnitude regimes DESIGN.md
	// relies on for the compression bands.
	p := PosToFixed(Vec{X: 50})
	if p.X <= 0 || p.X >= 1<<23 {
		t.Fatalf("50 A position = %d units", p.X)
	}
	fr := ForceToFixed(Vec{X: 20})
	if fr.X <= 0 || fr.X >= 1<<18 {
		t.Fatalf("20 kcal/mol/A force = %d units", fr.X)
	}
}
