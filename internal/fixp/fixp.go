// Package fixp provides the fixed-point numeric types used on Anton 3
// datapaths. Atom positions and forces travel the network as signed 32-bit
// words (three or four per flit payload), and the particle cache stores
// position history as 12-bit finite differences, so all network-visible
// arithmetic in this repository is integer.
package fixp

import "fmt"

// PosUnitsPerAngstrom is the global position scale: 2^16 units per angstrom.
// A 32-bit coordinate then spans +/-32768 angstrom — far beyond any chemical
// system Anton 3 runs — with 1.5e-5 angstrom resolution, comparable to the
// fixed-point position format of the real machine. Positions are exported
// relative to the sending node's home-box corner, which keeps the values
// well under 2^25 for the box sizes in the paper's experiments and is what
// gives INZ traction on uncompressed position payloads.
const PosUnitsPerAngstrom = 1 << 16

// ForceUnitsPerKcalMolA is the force scale: 2^13 units per kcal/mol/angstrom.
// Typical per-pair force magnitudes in liquid water (a few to a few tens of
// kcal/mol/A) then occupy 16-19 significant bits, the "small absolute value"
// regime INZ is designed for (Section IV-A).
const ForceUnitsPerKcalMolA = 1 << 13

// Vec is a continuous-space 3-vector (angstrom or kcal/mol/angstrom).
type Vec struct {
	X, Y, Z float64
}

// Add returns v + o.
func (v Vec) Add(o Vec) Vec { return Vec{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec) Sub(o Vec) Vec { return Vec{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v * s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product.
func (v Vec) Dot(o Vec) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Norm2 returns the squared length.
func (v Vec) Norm2() float64 { return v.Dot(v) }

// Fixed is a fixed-point 3-vector as carried in a flit payload.
type Fixed struct {
	X, Y, Z int32
}

func (f Fixed) String() string { return fmt.Sprintf("(%d,%d,%d)", f.X, f.Y, f.Z) }

// Words returns the payload words for this vector (word 3 is zero; atom
// identity travels in the packet header).
func (f Fixed) Words() [4]uint32 {
	return [4]uint32{uint32(f.X), uint32(f.Y), uint32(f.Z), 0}
}

// FixedFromWords reconstructs a vector from payload words.
func FixedFromWords(w [4]uint32) Fixed {
	return Fixed{int32(w[0]), int32(w[1]), int32(w[2])}
}

// Add returns f + o with two's-complement wraparound, matching hardware.
func (f Fixed) Add(o Fixed) Fixed { return Fixed{f.X + o.X, f.Y + o.Y, f.Z + o.Z} }

// Sub returns f - o with two's-complement wraparound.
func (f Fixed) Sub(o Fixed) Fixed { return Fixed{f.X - o.X, f.Y - o.Y, f.Z - o.Z} }

// Coord returns the c-th coordinate (0=X, 1=Y, 2=Z).
func (f Fixed) Coord(c int) int32 {
	switch c {
	case 0:
		return f.X
	case 1:
		return f.Y
	default:
		return f.Z
	}
}

// WithCoord returns a copy with coordinate c replaced.
func (f Fixed) WithCoord(c int, v int32) Fixed {
	switch c {
	case 0:
		f.X = v
	case 1:
		f.Y = v
	default:
		f.Z = v
	}
	return f
}

// PosToFixed quantizes a position in angstrom to the network fixed point.
func PosToFixed(v Vec) Fixed {
	return Fixed{roundToI32(v.X * PosUnitsPerAngstrom),
		roundToI32(v.Y * PosUnitsPerAngstrom),
		roundToI32(v.Z * PosUnitsPerAngstrom)}
}

// PosToVec converts a fixed-point position back to angstrom.
func PosToVec(f Fixed) Vec {
	return Vec{float64(f.X) / PosUnitsPerAngstrom,
		float64(f.Y) / PosUnitsPerAngstrom,
		float64(f.Z) / PosUnitsPerAngstrom}
}

// ForceToFixed quantizes a force in kcal/mol/angstrom.
func ForceToFixed(v Vec) Fixed {
	return Fixed{roundToI32(v.X * ForceUnitsPerKcalMolA),
		roundToI32(v.Y * ForceUnitsPerKcalMolA),
		roundToI32(v.Z * ForceUnitsPerKcalMolA)}
}

// ForceToVec converts a fixed-point force back to kcal/mol/angstrom.
func ForceToVec(f Fixed) Vec {
	return Vec{float64(f.X) / ForceUnitsPerKcalMolA,
		float64(f.Y) / ForceUnitsPerKcalMolA,
		float64(f.Z) / ForceUnitsPerKcalMolA}
}

func roundToI32(x float64) int32 {
	if x >= 0 {
		return int32(x + 0.5)
	}
	return int32(x - 0.5)
}
