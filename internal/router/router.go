// Package router models the Anton 3 router microarchitectures at packet
// granularity: bounded per-VC input queues (8 flits each), credit-based
// virtual cut-through flow control, round-robin output arbitration, and the
// control/datapath split that lets packet data lag its control information.
//
// Two concrete configurations are provided: the dimension-sliced Core Router
// (four sub-routers — TRTR, URTR, 2x VRTR — with 2-cycle U hops and 5-cycle
// V hops) and the Edge Router (3-cycle hops, 5 VCs). The full-machine
// simulator uses these models for latency/contention constants and uses the
// generic Router directly for small assembled networks in tests.
package router

import (
	"fmt"

	"anton3/internal/packet"
	"anton3/internal/sim"
)

// Pipeline constants from Section III-B, in core clock cycles.
const (
	CoreUHopCycles       = 2  // Core Router per-hop latency in the U direction
	CoreVHopCycles       = 5  // ... and in the V direction
	EdgeHopCycles        = 3  // Edge Router per-hop latency
	DatapathLag          = 2  // packet data lags its control information
	FenceCountersPerPort = 96 // Edge Router fence counters per input port (Section V-D)
)

// RouteFunc decides the output port and VC for a packet arriving on inPort.
// The router it runs inside is passed in so adaptive functions can consult
// live congestion state — Occupancy for input-queue pressure and Credits
// for downstream space — while oblivious functions simply ignore it.
type RouteFunc func(r *Router, p *packet.Packet, inPort, inVC int) (outPort, outVC int)

// Sink consumes packets that exit the network at this router.
type Sink func(p *packet.Packet)

// Config parameterizes a Router.
type Config struct {
	Name       string
	Ports      int
	VCs        int
	QueueFlits int   // input queue depth per VC, in flits
	HopCycles  int64 // control pipeline latency per hop
	Clock      sim.Clock
	Route      RouteFunc
}

type creditPeer struct {
	r       *Router
	outPort int
}

type outLink struct {
	dst     *Router
	dstPort int
	wire    sim.Time
	sink    Sink
}

// Router is a generic input-queued VC router.
type Router struct {
	cfg  Config
	k    *sim.Kernel
	hop  sim.Time
	flit sim.Time // serialization time per flit on an output

	queues  [][][]*qent // [port][vc] FIFO of packets
	credits [][]int     // [outPort][vc] downstream queue space, in flits
	outs    []outLink
	peers   []creditPeer // upstream router feeding each input port
	busy    []sim.Time   // per-output serialization horizon
	rrIn    []int        // round-robin pointer per output port
	qfree   []*qent      // recycled queue entries (one live entry per queued packet)

	// Forwarded counts packets sent out each output port.
	Forwarded []uint64
}

type qent struct {
	pkt       *packet.Packet
	arrivedVC int // VC whose queue this entry occupies here (for credits)
	outVC     int // VC assigned for the next hop (set by pickCandidate)
}

// New builds a router attached to kernel k. Output ports start unconnected;
// wire them with Connect or Terminate.
func New(k *sim.Kernel, cfg Config) *Router {
	if cfg.Ports <= 0 || cfg.VCs <= 0 || cfg.QueueFlits <= 0 {
		panic("router: invalid config")
	}
	r := &Router{
		cfg:       cfg,
		k:         k,
		hop:       cfg.Clock.Cycles(cfg.HopCycles),
		flit:      cfg.Clock.Period(),
		queues:    make([][][]*qent, cfg.Ports),
		credits:   make([][]int, cfg.Ports),
		outs:      make([]outLink, cfg.Ports),
		peers:     make([]creditPeer, cfg.Ports),
		busy:      make([]sim.Time, cfg.Ports),
		rrIn:      make([]int, cfg.Ports),
		Forwarded: make([]uint64, cfg.Ports),
	}
	for p := 0; p < cfg.Ports; p++ {
		r.queues[p] = make([][]*qent, cfg.VCs)
		r.credits[p] = make([]int, cfg.VCs)
	}
	return r
}

// Name returns the configured name.
func (r *Router) Name() string { return r.cfg.Name }

// Connect wires output port ap of a to input port bp of b with the given
// wire latency, and initializes a's credits from b's queue depth.
func Connect(a *Router, ap int, b *Router, bp int, wire sim.Time) {
	a.outs[ap] = outLink{dst: b, dstPort: bp, wire: wire}
	b.peers[bp] = creditPeer{r: a, outPort: ap}
	for vc := 0; vc < a.cfg.VCs && vc < b.cfg.VCs; vc++ {
		a.credits[ap][vc] = b.cfg.QueueFlits
	}
}

// Terminate makes output port p an endpoint with unbounded acceptance.
func (r *Router) Terminate(p int, sink Sink) {
	r.outs[p] = outLink{sink: sink}
	for vc := 0; vc < r.cfg.VCs; vc++ {
		r.credits[p][vc] = 1 << 30
	}
}

// Inject delivers a packet to input port p on VC vc. Callers outside the
// network (endpoint injectors) must police queue space themselves via
// CanAccept; routers police each other with credits, so an overflow here is
// a flow-control bug and panics.
func (r *Router) Inject(p, vc int, pkt *packet.Packet) {
	if r.queuedFlits(p, vc)+pkt.Flits() > r.cfg.QueueFlits {
		panic(fmt.Sprintf("router %s: input queue overflow on port %d vc %d", r.cfg.Name, p, vc))
	}
	e := r.getQent()
	e.pkt, e.arrivedVC = pkt, vc
	r.queues[p][vc] = append(r.queues[p][vc], e)
	r.k.After(0, r.pump)
}

// getQent recycles a forwarded queue entry, so steady-state traffic stops
// allocating one per packet per hop.
func (r *Router) getQent() *qent {
	n := len(r.qfree) - 1
	if n < 0 {
		return &qent{}
	}
	e := r.qfree[n]
	r.qfree = r.qfree[:n]
	return e
}

// CanAccept reports whether input port p, VC vc has room for pkt.
func (r *Router) CanAccept(p, vc int, pkt *packet.Packet) bool {
	return r.queuedFlits(p, vc)+pkt.Flits() <= r.cfg.QueueFlits
}

func (r *Router) queuedFlits(p, vc int) int {
	n := 0
	for _, e := range r.queues[p][vc] {
		n += e.pkt.Flits()
	}
	return n
}

// Occupancy reports the flits currently queued on input port p, VC vc —
// the per-port/VC congestion signal adaptive RouteFuncs steer by.
func (r *Router) Occupancy(p, vc int) int { return r.queuedFlits(p, vc) }

// Credits reports the downstream queue space (in flits) available on
// output port out, VC vc. An adaptive RouteFunc picks the output whose
// credits run deepest; a credit-starved output means the next hop's input
// queue is full.
func (r *Router) Credits(out, vc int) int { return r.credits[out][vc] }

// Ports and VCs expose the configured radix for RouteFuncs that scan
// outputs.
func (r *Router) Ports() int { return r.cfg.Ports }
func (r *Router) VCs() int   { return r.cfg.VCs }

// pump advances every output that can make progress. Small port counts make
// the scan cheap; determinism comes from the fixed scan order plus the
// round-robin pointers.
func (r *Router) pump() {
	now := r.k.Now()
	for out := 0; out < r.cfg.Ports; out++ {
		if r.busy[out] > now {
			continue
		}
		if e, in := r.pickCandidate(out); e != nil {
			r.forward(out, in, e)
		}
	}
}

// pickCandidate finds, round-robin over input ports and then VCs, a
// queue-head packet destined for out with sufficient downstream credit.
func (r *Router) pickCandidate(out int) (*qent, int) {
	for i := 0; i < r.cfg.Ports; i++ {
		in := (r.rrIn[out] + i) % r.cfg.Ports
		for vc := 0; vc < r.cfg.VCs; vc++ {
			q := r.queues[in][vc]
			if len(q) == 0 {
				continue
			}
			e := q[0]
			o, ovc := r.cfg.Route(r, e.pkt, in, vc)
			if o != out {
				continue
			}
			if r.credits[out][ovc] < e.pkt.Flits() {
				continue
			}
			r.rrIn[out] = (in + 1) % r.cfg.Ports
			r.queues[in][vc] = q[1:]
			e.outVC = ovc
			return e, in
		}
	}
	return nil, 0
}

func (r *Router) forward(out, in int, e *qent) {
	now := r.k.Now()
	flits := e.pkt.Flits()
	ser := sim.Time(int64(flits)) * r.flit
	r.busy[out] = now + ser
	r.Forwarded[out]++

	// Return credits to our upstream for the queue slots we freed.
	if peer := r.peers[in]; peer.r != nil {
		up, upPort := peer.r, peer.outPort
		up.credits[upPort][e.arrivedVC] += flits
		r.k.After(0, up.pump)
	}

	link := r.outs[out]
	arrival := now + r.hop + ser + link.wire
	pkt, ovc := e.pkt, e.outVC
	e.pkt = nil
	r.qfree = append(r.qfree, e)
	if link.sink != nil {
		r.k.At(arrival, func() { link.sink(pkt) })
	} else if link.dst != nil {
		r.credits[out][ovc] -= flits
		dst, dp := link.dst, link.dstPort
		r.k.At(arrival, func() { dst.Inject(dp, ovc, pkt) })
	} else {
		panic(fmt.Sprintf("router %s: output port %d unconnected", r.cfg.Name, out))
	}
	// Output frees after serialization; try to move more traffic then.
	r.k.At(r.busy[out], r.pump)
}
