package router

import (
	"testing"

	"anton3/internal/packet"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

var clk = sim.NewClock(2800)

// chainRoute forwards everything to port 1 ("east") keeping the VC.
func chainRoute(r *Router, p *packet.Packet, in, vc int) (int, int) { return 1, vc }

// makeChain builds n routers in a line, port 0 = west input, port 1 = east
// output, terminating in a sink that records arrival times.
func makeChain(k *sim.Kernel, n int, hopCycles int64) (first *Router, arrivals *[]sim.Time) {
	var times []sim.Time
	arrivals = &times
	routers := make([]*Router, n)
	for i := range routers {
		routers[i] = New(k, Config{
			Name: "r", Ports: 2, VCs: 2, QueueFlits: packet.InputQueueFlits,
			HopCycles: hopCycles, Clock: clk, Route: chainRoute,
		})
	}
	for i := 0; i+1 < n; i++ {
		Connect(routers[i], 1, routers[i+1], 0, 0)
	}
	routers[n-1].Terminate(1, func(p *packet.Packet) {
		times = append(times, k.Now())
		*arrivals = times
	})
	return routers[0], arrivals
}

func TestSinglePacketLatency(t *testing.T) {
	k := sim.NewKernel()
	first, arrivals := makeChain(k, 3, EdgeHopCycles)
	pkt := &packet.Packet{ID: 1}
	pkt.SetQuad([4]uint32{1, 2, 3, 4}) // 2 flits
	first.Inject(0, 0, pkt)
	k.Run()
	if len(*arrivals) != 1 {
		t.Fatalf("arrivals = %d, want 1", len(*arrivals))
	}
	// Each of 3 routers: 3-cycle hop + 2-flit serialization.
	want := clk.Cycles(3 * (EdgeHopCycles + 2))
	if got := (*arrivals)[0]; got != want {
		t.Fatalf("latency = %v, want %v", got, want)
	}
}

func TestHeaderOnlyFaster(t *testing.T) {
	k := sim.NewKernel()
	first, arrivals := makeChain(k, 2, EdgeHopCycles)
	first.Inject(0, 0, &packet.Packet{ID: 1}) // 1 flit
	k.Run()
	want := clk.Cycles(2 * (EdgeHopCycles + 1))
	if got := (*arrivals)[0]; got != want {
		t.Fatalf("latency = %v, want %v", got, want)
	}
}

func TestOrderingPreserved(t *testing.T) {
	// The network fence depends on this invariant: packets sent along a
	// given path are always delivered in the order sent.
	k := sim.NewKernel()
	first, _ := makeChain(k, 4, EdgeHopCycles)
	var order []uint64
	// Rebuild sink to capture IDs.
	last, _ := makeChain(k, 1, EdgeHopCycles)
	_ = last
	chain := make([]*Router, 4)
	for i := range chain {
		chain[i] = New(k, Config{Name: "c", Ports: 2, VCs: 2,
			QueueFlits: packet.InputQueueFlits, HopCycles: EdgeHopCycles,
			Clock: clk, Route: chainRoute})
	}
	for i := 0; i+1 < 4; i++ {
		Connect(chain[i], 1, chain[i+1], 0, 0)
	}
	chain[3].Terminate(1, func(p *packet.Packet) { order = append(order, p.ID) })
	_ = first
	for i := uint64(0); i < 4; i++ {
		pkt := &packet.Packet{ID: i}
		if i%2 == 0 {
			pkt.SetQuad([4]uint32{1})
		}
		chain[0].Inject(0, 0, pkt)
	}
	k.Run()
	if len(order) != 4 {
		t.Fatalf("delivered %d of 4", len(order))
	}
	for i, id := range order {
		if id != uint64(i) {
			t.Fatalf("out of order delivery: %v", order)
		}
	}
}

func TestBackpressureViaCredits(t *testing.T) {
	// Saturate a 2-router chain with more flits than the downstream queue
	// holds: the upstream must meter injections by credits and never
	// overflow (an overflow panics).
	k := sim.NewKernel()
	a := New(k, Config{Name: "a", Ports: 2, VCs: 2, QueueFlits: 64,
		HopCycles: EdgeHopCycles, Clock: clk, Route: chainRoute})
	b := New(k, Config{Name: "b", Ports: 2, VCs: 2, QueueFlits: packet.InputQueueFlits,
		HopCycles: EdgeHopCycles, Clock: clk, Route: chainRoute})
	Connect(a, 1, b, 0, 0)
	delivered := 0
	b.Terminate(1, func(p *packet.Packet) { delivered++ })
	n := 20
	for i := 0; i < n; i++ {
		pkt := &packet.Packet{ID: uint64(i)}
		pkt.SetQuad([4]uint32{9})
		a.Inject(0, 0, pkt) // a's own queue is deep enough for all 20
	}
	k.Run()
	if delivered != n {
		t.Fatalf("delivered %d of %d under backpressure", delivered, n)
	}
}

func TestSerializationThroughput(t *testing.T) {
	// n 2-flit packets through one router: last arrival ~ hop + n*2 cycles.
	k := sim.NewKernel()
	r := New(k, Config{Name: "r", Ports: 2, VCs: 1, QueueFlits: 1024,
		HopCycles: EdgeHopCycles, Clock: clk, Route: chainRoute})
	var last sim.Time
	count := 0
	r.Terminate(1, func(p *packet.Packet) { last = k.Now(); count++ })
	n := 100
	for i := 0; i < n; i++ {
		pkt := &packet.Packet{ID: uint64(i)}
		pkt.SetQuad([4]uint32{1})
		r.Inject(0, 0, pkt)
	}
	k.Run()
	if count != n {
		t.Fatalf("delivered %d", count)
	}
	want := clk.Cycles(EdgeHopCycles + int64(n)*2)
	if last != want {
		t.Fatalf("drain time = %v, want %v", last, want)
	}
}

func TestInjectOverflowPanics(t *testing.T) {
	k := sim.NewKernel()
	r := New(k, Config{Name: "r", Ports: 2, VCs: 1, QueueFlits: 2,
		HopCycles: 1, Clock: clk, Route: chainRoute})
	r.Terminate(1, func(*packet.Packet) {})
	pkt := func(id uint64) *packet.Packet {
		p := &packet.Packet{ID: id}
		p.SetQuad([4]uint32{1})
		return p
	}
	if !r.CanAccept(0, 0, pkt(0)) {
		t.Fatal("empty queue should accept")
	}
	r.Inject(0, 0, pkt(0))
	if r.CanAccept(0, 0, pkt(1)) {
		t.Fatal("full queue should refuse")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overflow should panic")
		}
	}()
	r.Inject(0, 0, pkt(1))
}

func TestRoundRobinFairness(t *testing.T) {
	// Two input ports competing for one output must interleave.
	k := sim.NewKernel()
	r := New(k, Config{Name: "r", Ports: 3, VCs: 1, QueueFlits: 1024,
		HopCycles: 1, Clock: clk,
		Route: func(r *Router, p *packet.Packet, in, vc int) (int, int) { return 2, vc }})
	var order []uint64
	r.Terminate(2, func(p *packet.Packet) { order = append(order, p.ID) })
	for i := 0; i < 5; i++ {
		r.Inject(0, 0, &packet.Packet{ID: uint64(100 + i)})
		r.Inject(1, 0, &packet.Packet{ID: uint64(200 + i)})
	}
	k.Run()
	if len(order) != 10 {
		t.Fatalf("delivered %d", len(order))
	}
	// Strict alternation after the first grant.
	for i := 2; i < len(order); i++ {
		if (order[i] >= 200) == (order[i-1] >= 200) {
			t.Fatalf("arbitration not fair: %v", order)
		}
	}
}

func TestVCIsolation(t *testing.T) {
	// A packet on VC1 must not be blocked behind a credit-starved VC0.
	k := sim.NewKernel()
	a := New(k, Config{Name: "a", Ports: 2, VCs: 2, QueueFlits: 1024,
		HopCycles: 1, Clock: clk,
		Route: func(r *Router, p *packet.Packet, in, vc int) (int, int) { return 1, vc }})
	b := New(k, Config{Name: "b", Ports: 2, VCs: 2, QueueFlits: 2,
		HopCycles: 1, Clock: clk, Route: chainRoute})
	Connect(a, 1, b, 0, 0)
	var got []uint64
	b.Terminate(1, func(p *packet.Packet) { got = append(got, p.ID) })
	// Fill VC0 beyond downstream capacity, then send one on VC1.
	for i := 0; i < 6; i++ {
		p := &packet.Packet{ID: uint64(i)}
		p.SetQuad([4]uint32{1})
		a.Inject(0, 0, p)
	}
	a.Inject(0, 1, &packet.Packet{ID: 99})
	k.Run()
	if len(got) != 7 {
		t.Fatalf("delivered %d of 7", len(got))
	}
	// The VC1 packet must arrive before the last VC0 packet.
	pos99 := -1
	for i, id := range got {
		if id == 99 {
			pos99 = i
		}
	}
	if pos99 < 0 || pos99 == len(got)-1 {
		t.Fatalf("VC1 packet did not bypass VC0 congestion: %v", got)
	}
}

func TestCoreRouterDesc(t *testing.T) {
	d := CoreRouter()
	if len(d.SubRouters) != 4 || d.MaxPorts != 4 || d.VCs != 2 {
		t.Fatalf("core router desc %+v does not match Section III-B1", d)
	}
	vr := 0
	for _, s := range d.SubRouters {
		if s == VRTR {
			vr++
		}
	}
	if vr != 2 {
		t.Fatal("core router should contain two VRTRs")
	}
	if TRTR.String() != "TRTR" || URTR.String() != "URTR" || VRTR.String() != "VRTR" {
		t.Fatal("SubRouter strings broken")
	}
}

func TestCoreNetworkLatency(t *testing.T) {
	// Per-hop: 2 cycles U, 5 cycles V.
	if CoreHopLatency(clk, false) != clk.Cycles(2) {
		t.Fatal("U hop latency wrong")
	}
	if CoreHopLatency(clk, true) != clk.Cycles(5) {
		t.Fatal("V hop latency wrong")
	}
	want := clk.Cycles(3*2 + 2*5)
	if CoreNetworkLatency(clk, 3, 2) != want {
		t.Fatal("core network latency wrong")
	}
}

func TestNewEdgeRouterConfig(t *testing.T) {
	k := sim.NewKernel()
	r := NewEdgeRouter(k, "ertr", clk, 6, func(r *Router, p *packet.Packet, in, vc int) (int, int) { return 0, vc })
	if r.cfg.VCs != 5 {
		t.Fatalf("edge router VCs = %d, want 5", r.cfg.VCs)
	}
	if r.cfg.QueueFlits != 8 {
		t.Fatalf("edge router queue depth = %d flits, want 8", r.cfg.QueueFlits)
	}
	if r.cfg.HopCycles != 3 {
		t.Fatalf("edge router hop = %d cycles, want 3", r.cfg.HopCycles)
	}
}

func TestFenceCounterBudget(t *testing.T) {
	// Section V-D: 96 fence counters per Edge Router input port.
	if FenceCountersPerPort != 96 {
		t.Fatal("fence counter budget changed")
	}
}

var _ = topo.Coord{} // keep topo linked for future tests

func TestAdaptiveRouteFuncSteersByCredits(t *testing.T) {
	// A Y-shaped network: source router a with two equivalent outputs
	// (ports 1 and 2), each feeding a sink router. The sink behind port 1
	// is congested (tiny queue, slow drain); an adaptive RouteFunc reading
	// Credits must shift traffic to port 2.
	k := sim.NewKernel()
	adaptive := func(r *Router, p *packet.Packet, in, vc int) (int, int) {
		if r.Credits(1, vc) >= r.Credits(2, vc) {
			return 1, vc
		}
		return 2, vc
	}
	a := New(k, Config{Name: "a", Ports: 3, VCs: 1, QueueFlits: 1024,
		HopCycles: 1, Clock: clk, Route: adaptive})
	// The slow branch runs at 1/100th the clock, so its flits serialize
	// 100x slower and its input queue backs up for real.
	slow := New(k, Config{Name: "slow", Ports: 2, VCs: 1, QueueFlits: 4,
		HopCycles: 1, Clock: sim.NewClock(28), Route: chainRoute})
	fast := New(k, Config{Name: "fast", Ports: 2, VCs: 1, QueueFlits: 4,
		HopCycles: 1, Clock: clk, Route: chainRoute})
	Connect(a, 1, slow, 0, 0)
	Connect(a, 2, fast, 0, 0)
	viaSlow, viaFast := 0, 0
	slow.Terminate(1, func(*packet.Packet) { viaSlow++ })
	fast.Terminate(1, func(*packet.Packet) { viaFast++ })
	n := 40
	for i := 0; i < n; i++ {
		pkt := &packet.Packet{ID: uint64(i)}
		pkt.SetQuad([4]uint32{1})
		a.Inject(0, 0, pkt)
	}
	k.Run()
	if viaSlow+viaFast != n {
		t.Fatalf("delivered %d of %d", viaSlow+viaFast, n)
	}
	if viaFast <= viaSlow {
		t.Fatalf("adaptive RouteFunc did not avoid congestion: slow=%d fast=%d", viaSlow, viaFast)
	}
}

func TestOccupancyAndCreditsAccessors(t *testing.T) {
	k := sim.NewKernel()
	a := New(k, Config{Name: "a", Ports: 2, VCs: 2, QueueFlits: 8,
		HopCycles: 1, Clock: clk, Route: chainRoute})
	b := New(k, Config{Name: "b", Ports: 2, VCs: 2, QueueFlits: 8,
		HopCycles: 1, Clock: clk, Route: chainRoute})
	Connect(a, 1, b, 0, 0)
	if a.Ports() != 2 || a.VCs() != 2 {
		t.Fatalf("radix accessors broken: %d ports, %d VCs", a.Ports(), a.VCs())
	}
	if got := a.Credits(1, 0); got != 8 {
		t.Fatalf("initial credits = %d, want downstream queue depth 8", got)
	}
	if got := a.Occupancy(0, 0); got != 0 {
		t.Fatalf("empty occupancy = %d", got)
	}
	p := &packet.Packet{ID: 1}
	p.SetQuad([4]uint32{1}) // 2 flits
	a.Inject(0, 0, p)
	if got := a.Occupancy(0, 0); got != 2 {
		t.Fatalf("occupancy after 2-flit inject = %d, want 2", got)
	}
	k.Run()
}
