package router

import (
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/sim"
)

// SubRouter identifies the three microarchitecturally similar sub-router
// roles of the dimension-sliced Core Router (Section III-B1, Figure 3).
type SubRouter uint8

// Core Router sub-router roles.
const (
	// TRTR connects the GCs and BCs to the network and provides high
	// bandwidth for local communication between those endpoints.
	TRTR SubRouter = iota
	// URTR performs inter-tile routing along the U dimension.
	URTR
	// VRTR performs inter-tile routing along the V dimension; each Core
	// Router instantiates two.
	VRTR
)

func (s SubRouter) String() string {
	switch s {
	case TRTR:
		return "TRTR"
	case URTR:
		return "URTR"
	default:
		return "VRTR"
	}
}

// CoreRouterDesc summarizes the Core Router partitioning: four sub-routers,
// each with at most four ports, following Kim's dimension-sliced approach.
type CoreRouterDesc struct {
	SubRouters []SubRouter
	MaxPorts   int
	VCs        int // two suffice on-chip: request + response
}

// CoreRouter describes the production Core Router.
func CoreRouter() CoreRouterDesc {
	return CoreRouterDesc{
		SubRouters: []SubRouter{TRTR, URTR, VRTR, VRTR},
		MaxPorts:   4,
		VCs:        2,
	}
}

// CoreHopLatency returns the Core Router per-hop latency for travel in U or
// V: two cycles in the U direction, five in the V direction.
func CoreHopLatency(clock sim.Clock, vertical bool) sim.Time {
	if vertical {
		return clock.Cycles(CoreVHopCycles)
	}
	return clock.Cycles(CoreUHopCycles)
}

// CoreNetworkLatency is the queuing-free traversal time for a packet
// crossing uHops U-hops and vHops V-hops of the Core Network.
func CoreNetworkLatency(clock sim.Clock, uHops, vHops int) sim.Time {
	return clock.Cycles(int64(uHops)*CoreUHopCycles + int64(vHops)*CoreVHopCycles)
}

// NewEdgeRouter builds an Edge Router instance: 3-cycle hop latency, five
// VCs (four request + one response), 8-flit input queues.
func NewEdgeRouter(k *sim.Kernel, name string, clock sim.Clock, ports int, routeFn RouteFunc) *Router {
	return New(k, Config{
		Name:       name,
		Ports:      ports,
		VCs:        route.NumVCs,
		QueueFlits: packet.InputQueueFlits,
		HopCycles:  EdgeHopCycles,
		Clock:      clock,
		Route:      routeFn,
	})
}
