package md

import "anton3/internal/fixp"

// ComputeForces evaluates the range-limited pairwise forces (truncated,
// shifted Lennard-Jones) into s.Force and s.Potential. This is the
// computation the PPIMs perform in hardware; the golden model here both
// drives the traffic generators and validates the parallel decomposition.
func (s *System) ComputeForces() {
	s.cells.build(s.Pos)
	for i := range s.Force {
		s.Force[i] = fixp.Vec{}
	}
	s.Potential = 0

	rc2 := Cutoff * Cutoff
	// Energy shift so U(rc) = 0 (keeps NVE drift small with truncation).
	sr6c := pow6(Sigma * Sigma / rc2)
	shift := 4 * Epsilon * (sr6c*sr6c - sr6c)

	for _, pr := range s.cells.pairs {
		if pr[0] == pr[1] {
			s.cellSelf(int(pr[0]), rc2, shift)
		} else {
			s.cellCross(int(pr[0]), int(pr[1]), rc2, shift)
		}
	}
}

func pow6(x float64) float64 { return x * x * x }

// pairForce accumulates the i-j interaction. Returns true if within cutoff.
func (s *System) pairForce(i, j int, rc2, shift float64) {
	d := MinImage(s.Pos[i], s.Pos[j], s.Box)
	r2 := d.Norm2()
	if r2 >= rc2 || r2 == 0 {
		return
	}
	sr2 := Sigma * Sigma / r2
	sr6 := pow6(sr2)
	sr12 := sr6 * sr6
	// F = 24 eps (2 sr12 - sr6) / r^2 * d
	fmag := 24 * Epsilon * (2*sr12 - sr6) / r2
	f := d.Scale(fmag)
	s.Force[i] = s.Force[i].Add(f)
	s.Force[j] = s.Force[j].Sub(f)
	s.Potential += 4*Epsilon*(sr12-sr6) - shift
}

func (s *System) cellSelf(cell int, rc2, shift float64) {
	c := s.cells
	for i := c.heads[cell]; i >= 0; i = c.next[i] {
		for j := c.next[i]; j >= 0; j = c.next[j] {
			s.pairForce(int(i), int(j), rc2, shift)
		}
	}
}

func (s *System) cellCross(ca, cb int, rc2, shift float64) {
	c := s.cells
	for i := c.heads[ca]; i >= 0; i = c.next[i] {
		for j := c.heads[cb]; j >= 0; j = c.next[j] {
			s.pairForce(int(i), int(j), rc2, shift)
		}
	}
}

// PairCount returns the number of in-cutoff pairs, the quantity that sizes
// PPIM work in the timestep model.
func (s *System) PairCount() int {
	s.cells.build(s.Pos)
	rc2 := Cutoff * Cutoff
	count := 0
	tally := func(i, j int) {
		d := MinImage(s.Pos[i], s.Pos[j], s.Box)
		if r2 := d.Norm2(); r2 < rc2 && r2 > 0 {
			count++
		}
	}
	for _, pr := range s.cells.pairs {
		c := s.cells
		if pr[0] == pr[1] {
			for i := c.heads[pr[0]]; i >= 0; i = c.next[i] {
				for j := c.next[i]; j >= 0; j = c.next[j] {
					tally(int(i), int(j))
				}
			}
		} else {
			for i := c.heads[pr[0]]; i >= 0; i = c.next[i] {
				for j := c.heads[pr[1]]; j >= 0; j = c.next[j] {
					tally(int(i), int(j))
				}
			}
		}
	}
	return count
}
