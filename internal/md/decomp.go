package md

import (
	"anton3/internal/fixp"
	"anton3/internal/topo"
)

// Decomposition spatially partitions the box across the machine's nodes:
// each node's home box is a slab product, and an atom is exported (as a
// stream-set atom) to every node whose home box expanded by the cutoff
// contains it — "all nodes on which those atoms might have an interaction"
// (Section II-C). This expanded-box import region guarantees every
// in-cutoff pair is computable on a node holding at least one of the two
// atoms in its home box.
type Decomposition struct {
	Shape topo.Shape
	Box   float64
	w     [3]float64 // slab width per dimension
}

// NewDecomposition builds the partition. It panics if any slab is thinner
// than the cutoff, which would require beyond-neighbor import regions the
// MD protocol does not use.
func NewDecomposition(shape topo.Shape, box float64) *Decomposition {
	d := &Decomposition{Shape: shape, Box: box}
	for i, n := range []int{shape.X, shape.Y, shape.Z} {
		d.w[i] = box / float64(n)
		if n > 1 && d.w[i] < Cutoff {
			panic("md: home box thinner than cutoff; reduce node count or grow the system")
		}
	}
	return d
}

// HomeNode returns the node owning position p.
func (d *Decomposition) HomeNode(p fixp.Vec) topo.Coord {
	ix := d.slab(p.X, 0, d.Shape.X)
	iy := d.slab(p.Y, 1, d.Shape.Y)
	iz := d.slab(p.Z, 2, d.Shape.Z)
	return topo.Coord{X: ix, Y: iy, Z: iz}
}

func (d *Decomposition) slab(x float64, dim, n int) int {
	i := int(x / d.w[dim])
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// BoxOrigin returns the lower corner of a node's home box: positions are
// exported relative to this corner, which is what keeps their fixed-point
// magnitudes small enough for INZ to bite.
func (d *Decomposition) BoxOrigin(c topo.Coord) fixp.Vec {
	return fixp.Vec{
		X: float64(c.X) * d.w[0],
		Y: float64(c.Y) * d.w[1],
		Z: float64(c.Z) * d.w[2],
	}
}

// RelativeFixed quantizes p relative to the home box of c.
func (d *Decomposition) RelativeFixed(p fixp.Vec, c topo.Coord) fixp.Fixed {
	return fixp.PosToFixed(p.Sub(d.BoxOrigin(c)))
}

// dimTargets returns the slab indices along one dimension whose slabs lie
// within cutoff of coordinate x (periodic).
func (d *Decomposition) dimTargets(x float64, dim, n int, out []int) []int {
	out = out[:0]
	w := d.w[dim]
	for k := 0; k < n; k++ {
		lo, hi := float64(k)*w, float64(k+1)*w
		// Periodic distance from x to [lo, hi).
		dist := 0.0
		if x < lo || x >= hi {
			dl := periodicDist(x, lo, d.Box)
			dh := periodicDist(x, hi, d.Box)
			dist = dl
			if dh < dist {
				dist = dh
			}
		}
		if dist <= Cutoff {
			out = append(out, k)
		}
	}
	return out
}

func periodicDist(a, b, box float64) float64 {
	dd := a - b
	if dd < 0 {
		dd = -dd
	}
	if dd > box/2 {
		dd = box - dd
	}
	return dd
}

// ExportTargets returns every node other than home whose expanded home box
// contains p. The scratch slice is reused across calls when non-nil.
func (d *Decomposition) ExportTargets(p fixp.Vec, home topo.Coord, scratch []topo.Coord) []topo.Coord {
	var bufX, bufY, bufZ [8]int
	xs := d.dimTargets(p.X, 0, d.Shape.X, bufX[:0])
	ys := d.dimTargets(p.Y, 1, d.Shape.Y, bufY[:0])
	zs := d.dimTargets(p.Z, 2, d.Shape.Z, bufZ[:0])
	out := scratch[:0]
	for _, x := range xs {
		for _, y := range ys {
			for _, z := range zs {
				c := topo.Coord{X: x, Y: y, Z: z}
				if c != home {
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// Assign buckets atom indices by home node (indexed by Shape.Index).
func (d *Decomposition) Assign(pos []fixp.Vec) [][]int32 {
	buckets := make([][]int32, d.Shape.Nodes())
	for i, p := range pos {
		n := d.Shape.Index(d.HomeNode(p))
		buckets[n] = append(buckets[n], int32(i))
	}
	return buckets
}

// ChannelEdge is one channel crossing of a multicast tree: the packet
// leaves From along Step.
type ChannelEdge struct {
	From topo.Coord
	Step topo.Step
}

// MulticastEdges returns the deduplicated channel crossings of the
// stream-set multicast from home to targets: the union of XYZ
// dimension-order paths, matching the in-network multicast tree hardware
// (footnote 3 of the paper). The same atom therefore crosses the same
// channels every step, which is what makes the per-channel particle caches
// effective.
func MulticastEdges(shape topo.Shape, home topo.Coord, targets []topo.Coord, plusOnTie bool, scratch []ChannelEdge) []ChannelEdge {
	out := scratch[:0]
	have := func(e ChannelEdge) bool {
		for _, x := range out {
			if x == e {
				return true
			}
		}
		return false
	}
	var pathBuf [24]topo.Step
	for _, t := range targets {
		cur := home
		for _, st := range topo.AppendRouteTie(pathBuf[:0], shape, home, t, topo.OrderXYZ, plusOnTie) {
			e := ChannelEdge{From: cur, Step: st}
			if !have(e) {
				out = append(out, e)
			}
			cur = shape.Neighbor(cur, st.Dim, st.Dir)
		}
	}
	return out
}

// DistributedForces computes per-atom forces the way the parallel machine
// does — each node evaluates pairs between its home atoms and its local
// set (home + imports), accumulating force only onto home atoms — and
// returns them in golden-model order. Tests compare this against
// ComputeForces to validate the decomposition and import regions.
func DistributedForces(s *System, d *Decomposition) []fixp.Vec {
	buckets := d.Assign(s.Pos)
	forces := make([]fixp.Vec, s.N)
	rc2 := Cutoff * Cutoff

	// Home node index of every atom, and import lists per node.
	homeIdx := make([]int32, s.N)
	imports := make([][]int32, d.Shape.Nodes())
	var scratch []topo.Coord
	for i, p := range s.Pos {
		home := d.HomeNode(p)
		homeIdx[i] = int32(d.Shape.Index(home))
		scratch = d.ExportTargets(p, home, scratch)
		for _, t := range scratch {
			n := d.Shape.Index(t)
			imports[n] = append(imports[n], int32(i))
		}
	}

	for n := 0; n < d.Shape.Nodes(); n++ {
		home := buckets[n]
		local := make([]int32, 0, len(home)+len(imports[n]))
		local = append(local, home...)
		local = append(local, imports[n]...)
		for _, i := range home {
			for _, j := range local {
				if i == j {
					continue
				}
				jHome := homeIdx[j] == int32(n)
				// Each pair computes exactly once machine-wide: intra-node
				// pairs halve by atom index; cross-node pairs compute on
				// the lower-indexed home node (both homes import the
				// other atom, so either could).
				if jHome && j < i {
					continue
				}
				if !jHome && int32(n) > homeIdx[j] {
					continue
				}
				dd := MinImage(s.Pos[i], s.Pos[j], s.Box)
				r2 := dd.Norm2()
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				sr2 := Sigma * Sigma / r2
				sr6 := pow6(sr2)
				fmag := 24 * Epsilon * (2*sr6*sr6 - sr6) / r2
				f := dd.Scale(fmag)
				// Force on the home atom accumulates locally (stored-set
				// force); the reaction returns to j's GC as a stream-set
				// force, possibly off-chip.
				forces[i] = forces[i].Add(f)
				forces[j] = forces[j].Sub(f)
			}
		}
	}
	return forces
}
