// Package md is the molecular-dynamics substrate that drives the network
// experiments: a from-scratch water-like fluid (single-site Lennard-Jones
// particles at liquid-water molecular density), cell-list range-limited
// force evaluation, and velocity-Verlet integration.
//
// Substitution note (DESIGN.md): the paper's benchmarks run a production
// water model on the real machine. For network purposes what matters is
// (a) how many atoms cross each channel per step, (b) how smooth their
// trajectories are, and (c) the magnitude distribution of positions and
// forces in fixed point. A thermalized LJ fluid at water density reproduces
// all three; bonded terms and electrostatics would change force values by
// O(1) factors without changing any network-level conclusion.
package md

import (
	"fmt"
	"math"

	"anton3/internal/fixp"
	"anton3/internal/sim"
)

// Physical constants and model parameters (units: angstrom, femtosecond,
// amu, kcal/mol).
const (
	// Lennard-Jones parameters of TIP3P water oxygen.
	Sigma   = 3.1506 // angstrom
	Epsilon = 0.1521 // kcal/mol
	Mass    = 18.015 // amu (one particle per water molecule)

	// Density is liquid water's molecular number density (molecules/A^3).
	Density = 0.0334

	// Cutoff is the range-limited interaction radius, a typical MD choice.
	Cutoff = 9.0 // angstrom

	// DT is the integration time step.
	DT = 2.0 // femtosecond

	// KcalPerMolToAccel converts kcal/mol/A/amu to A/fs^2.
	KcalPerMolToAccel = 4.184e-4

	// BoltzmannKcal is kB in kcal/mol/K.
	BoltzmannKcal = 0.0019872
)

// System is one chemical system state.
type System struct {
	N   int
	Box float64 // cubic box side, angstrom

	Pos   []fixp.Vec // wrapped into [0, Box)
	Vel   []fixp.Vec // A/fs
	Force []fixp.Vec // kcal/mol/A

	cells *cellList
	// Potential is the total LJ energy of the last force evaluation.
	Potential float64
	// Steps counts integration steps taken.
	Steps int
}

// BoxForAtoms returns the cubic box side holding n particles at water
// density.
func BoxForAtoms(n int) float64 {
	return math.Cbrt(float64(n) / Density)
}

// NewWater builds a thermalized water-like system of n particles at
// temperature tempK, with positions on a jittered lattice (no overlaps) and
// Maxwell-Boltzmann velocities with zero net momentum.
func NewWater(n int, tempK float64, rng *sim.Rand) *System {
	if n < 8 {
		panic("md: need at least 8 particles")
	}
	s := &System{
		N:     n,
		Box:   BoxForAtoms(n),
		Pos:   make([]fixp.Vec, n),
		Vel:   make([]fixp.Vec, n),
		Force: make([]fixp.Vec, n),
	}
	// Simple cubic lattice with jitter keeps the minimum distance safe.
	perSide := int(math.Ceil(math.Cbrt(float64(n))))
	spacing := s.Box / float64(perSide)
	jitter := spacing * 0.1
	i := 0
	for z := 0; z < perSide && i < n; z++ {
		for y := 0; y < perSide && i < n; y++ {
			for x := 0; x < perSide && i < n; x++ {
				s.Pos[i] = fixp.Vec{
					X: (float64(x)+0.5)*spacing + jitter*(rng.Float64()-0.5),
					Y: (float64(y)+0.5)*spacing + jitter*(rng.Float64()-0.5),
					Z: (float64(z)+0.5)*spacing + jitter*(rng.Float64()-0.5),
				}
				i++
			}
		}
	}

	// Maxwell-Boltzmann velocities.
	sigmaV := math.Sqrt(BoltzmannKcal * tempK * KcalPerMolToAccel / Mass)
	var mom fixp.Vec
	for i := range s.Vel {
		s.Vel[i] = fixp.Vec{
			X: sigmaV * rng.NormFloat64(),
			Y: sigmaV * rng.NormFloat64(),
			Z: sigmaV * rng.NormFloat64(),
		}
		mom = mom.Add(s.Vel[i])
	}
	// Remove center-of-mass drift.
	mom = mom.Scale(1 / float64(n))
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(mom)
	}

	s.cells = newCellList(s.Box, Cutoff)
	s.ComputeForces()
	return s
}

// wrap maps a coordinate into [0, box).
func wrap(x, box float64) float64 {
	x = math.Mod(x, box)
	if x < 0 {
		x += box
	}
	return x
}

// MinImage returns the minimum-image displacement a-b in a periodic box.
func MinImage(a, b fixp.Vec, box float64) fixp.Vec {
	d := a.Sub(b)
	d.X -= box * math.Round(d.X/box)
	d.Y -= box * math.Round(d.Y/box)
	d.Z -= box * math.Round(d.Z/box)
	return d
}

// Temperature returns the instantaneous kinetic temperature in kelvin.
func (s *System) Temperature() float64 {
	var ke float64
	for _, v := range s.Vel {
		ke += v.Norm2()
	}
	// KE = sum 1/2 m v^2 (converted to kcal/mol); T = 2 KE / (3 N kB).
	ke *= 0.5 * Mass / KcalPerMolToAccel
	return 2 * ke / (3 * float64(s.N) * BoltzmannKcal)
}

// KineticEnergy returns the kinetic energy in kcal/mol.
func (s *System) KineticEnergy() float64 {
	var ke float64
	for _, v := range s.Vel {
		ke += v.Norm2()
	}
	return 0.5 * Mass * ke / KcalPerMolToAccel
}

// TotalEnergy returns kinetic + potential, valid right after a step.
func (s *System) TotalEnergy() float64 { return s.KineticEnergy() + s.Potential }

// Momentum returns the total momentum (amu*A/fs).
func (s *System) Momentum() fixp.Vec {
	var p fixp.Vec
	for _, v := range s.Vel {
		p = p.Add(v)
	}
	return p.Scale(Mass)
}

func (s *System) String() string {
	return fmt.Sprintf("md.System{N:%d box:%.1fA T:%.0fK}", s.N, s.Box, s.Temperature())
}
