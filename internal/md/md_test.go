package md

import (
	"math"
	"testing"

	"anton3/internal/sim"
	"anton3/internal/topo"
)

func smallSystem(n int) *System {
	return NewWater(n, 300, sim.NewRand(42))
}

func TestBoxForAtoms(t *testing.T) {
	// 32751 atoms at water density: ~99 A box.
	box := BoxForAtoms(32751)
	if box < 95 || box > 103 {
		t.Fatalf("box = %.1f A, want ~99", box)
	}
}

func TestInitialTemperature(t *testing.T) {
	s := smallSystem(4096)
	temp := s.Temperature()
	if temp < 270 || temp > 330 {
		t.Fatalf("initial T = %.0f K, want ~300", temp)
	}
}

func TestInitialMomentumZero(t *testing.T) {
	s := smallSystem(2048)
	p := s.Momentum()
	if math.Abs(p.X)+math.Abs(p.Y)+math.Abs(p.Z) > 1e-9 {
		t.Fatalf("net momentum %v, want ~0", p)
	}
}

func TestMomentumConserved(t *testing.T) {
	s := smallSystem(512)
	s.Run(20)
	p := s.Momentum()
	if math.Abs(p.X)+math.Abs(p.Y)+math.Abs(p.Z) > 1e-9 {
		t.Fatalf("momentum drifted to %v", p)
	}
}

func TestEnergyConservation(t *testing.T) {
	// NVE drift over 200 steps must be a small fraction of kinetic energy.
	s := smallSystem(1000)
	// Brief equilibration to relax the lattice.
	for i := 0; i < 20; i++ {
		s.Step()
		s.Rescale(300, 0.5)
	}
	e0 := s.TotalEnergy()
	ke := s.KineticEnergy()
	s.Run(200)
	drift := math.Abs(s.TotalEnergy() - e0)
	if drift > 0.02*ke {
		t.Fatalf("energy drift %.3f kcal/mol (%.2f%% of KE) over 200 steps",
			drift, 100*drift/ke)
	}
}

func TestForcesSumToZero(t *testing.T) {
	s := smallSystem(512)
	var sum [3]float64
	for _, f := range s.Force {
		sum[0] += f.X
		sum[1] += f.Y
		sum[2] += f.Z
	}
	for _, c := range sum {
		if math.Abs(c) > 1e-8 {
			t.Fatalf("forces do not sum to zero: %v", sum)
		}
	}
}

func TestMinImageBounds(t *testing.T) {
	s := smallSystem(64)
	for i := 0; i < 50; i++ {
		a, b := s.Pos[i%64], s.Pos[(i*7+3)%64]
		d := MinImage(a, b, s.Box)
		if math.Abs(d.X) > s.Box/2+1e-9 || math.Abs(d.Y) > s.Box/2+1e-9 || math.Abs(d.Z) > s.Box/2+1e-9 {
			t.Fatalf("min image out of range: %v (box %f)", d, s.Box)
		}
	}
}

func TestPairCountReasonable(t *testing.T) {
	// Water-density LJ at 9 A cutoff: each atom sees ~100 neighbors, so
	// pairs ~ N*100/2.
	s := smallSystem(4096)
	pairs := s.PairCount()
	perAtom := 2 * float64(pairs) / float64(s.N)
	if perAtom < 70 || perAtom > 140 {
		t.Fatalf("neighbors per atom = %.0f, want ~100", perAtom)
	}
}

func TestNoOverlapsAfterDynamics(t *testing.T) {
	s := smallSystem(512)
	s.Run(50)
	rmin := s.Box
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			d := MinImage(s.Pos[i], s.Pos[j], s.Box)
			if r := math.Sqrt(d.Norm2()); r < rmin {
				rmin = r
			}
		}
	}
	if rmin < 0.6*Sigma {
		t.Fatalf("atoms overlapped: min distance %.2f A", rmin)
	}
}

func TestPositionsStayInBox(t *testing.T) {
	s := smallSystem(512)
	s.Run(30)
	for i, p := range s.Pos {
		if p.X < 0 || p.X >= s.Box || p.Y < 0 || p.Y >= s.Box || p.Z < 0 || p.Z >= s.Box {
			t.Fatalf("atom %d escaped the box: %v", i, p)
		}
	}
}

func TestRescalePullsTemperature(t *testing.T) {
	s := smallSystem(512)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(2) // heat to ~4x
	}
	for i := 0; i < 30; i++ {
		s.Rescale(300, 0.5)
	}
	if temp := s.Temperature(); temp < 250 || temp > 350 {
		t.Fatalf("rescale failed: T = %.0f", temp)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := NewWater(256, 300, sim.NewRand(7))
	b := NewWater(256, 300, sim.NewRand(7))
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatal("same seed built different systems")
		}
	}
}

// --- Decomposition tests ---

func TestHomeNodePartition(t *testing.T) {
	s := smallSystem(4096)
	shape := topo.Shape{X: 2, Y: 2, Z: 2}
	d := NewDecomposition(shape, s.Box)
	buckets := d.Assign(s.Pos)
	total := 0
	for _, b := range buckets {
		total += len(b)
		// Roughly equal split (lattice + jitter): each of 8 nodes ~512.
		if len(b) < 256 || len(b) > 1024 {
			t.Fatalf("unbalanced bucket: %d", len(b))
		}
	}
	if total != s.N {
		t.Fatalf("partition lost atoms: %d of %d", total, s.N)
	}
}

func TestDecompositionValidatesSlabWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("slab thinner than cutoff should panic")
		}
	}()
	NewDecomposition(topo.Shape{X: 8, Y: 1, Z: 1}, 40) // 5 A slabs
}

func TestExportTargetsCoverInteractions(t *testing.T) {
	// Completeness: for every in-cutoff pair with different homes, each
	// atom must be exported to the other's home node.
	s := smallSystem(2048)
	shape := topo.Shape{X: 2, Y: 2, Z: 2}
	d := NewDecomposition(shape, s.Box)
	rc2 := Cutoff * Cutoff
	var scratch []topo.Coord
	for i := 0; i < s.N; i += 7 { // sample
		hi := d.HomeNode(s.Pos[i])
		for j := 0; j < s.N; j++ {
			if i == j {
				continue
			}
			dd := MinImage(s.Pos[i], s.Pos[j], s.Box)
			if dd.Norm2() >= rc2 {
				continue
			}
			hj := d.HomeNode(s.Pos[j])
			if hi == hj {
				continue
			}
			scratch = d.ExportTargets(s.Pos[i], hi, scratch)
			found := false
			for _, tgt := range scratch {
				if tgt == hj {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("atom %d (home %v) interacts with %d (home %v) but is not exported there",
					i, hi, j, hj)
			}
		}
	}
}

func TestDistributedForcesMatchGolden(t *testing.T) {
	s := smallSystem(2048)
	s.Run(5)
	shape := topo.Shape{X: 2, Y: 2, Z: 2}
	d := NewDecomposition(shape, s.Box)
	dist := DistributedForces(s, d)
	for i := range dist {
		diff := dist[i].Sub(s.Force[i])
		if math.Abs(diff.X)+math.Abs(diff.Y)+math.Abs(diff.Z) > 1e-7 {
			t.Fatalf("atom %d: distributed %v != golden %v", i, dist[i], s.Force[i])
		}
	}
}

func TestMulticastEdgesDeduped(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 2}
	home := topo.Coord{}
	targets := []topo.Coord{
		{X: 1}, {Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1, Z: 1},
	}
	edges := MulticastEdges(shape, home, targets, true, nil)
	seen := map[ChannelEdge]bool{}
	for _, e := range edges {
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
	// XYZ tree: (0,0,0)-X->(1,0,0); (0,0,0)-Y->(0,1,0); (1,0,0)-Y->(1,1,0);
	// (1,1,0)-Z->(1,1,1): 4 edges.
	if len(edges) != 4 {
		t.Fatalf("tree has %d edges, want 4: %v", len(edges), edges)
	}
}

func TestRelativeFixedSmall(t *testing.T) {
	// Positions relative to the home box corner must fit well under 2^26
	// for the systems we simulate, giving INZ leading zeros to remove.
	s := smallSystem(4096)
	shape := topo.Shape{X: 2, Y: 2, Z: 2}
	d := NewDecomposition(shape, s.Box)
	for i, p := range s.Pos {
		home := d.HomeNode(p)
		f := d.RelativeFixed(p, home)
		for c := 0; c < 3; c++ {
			v := f.Coord(c)
			if v < 0 || v >= 1<<26 {
				t.Fatalf("atom %d relative coord %d out of range", i, v)
			}
		}
	}
}

func TestPerStepDisplacementFitsPcache(t *testing.T) {
	// The fixed-point per-step displacement must fit the particle cache's
	// 12-bit difference storage for typical thermal motion.
	s := smallSystem(512)
	s.Run(5)
	maxDelta := 0.0
	for _, v := range s.Vel {
		d := math.Sqrt(v.Norm2()) * DT
		if d > maxDelta {
			maxDelta = d
		}
	}
	units := maxDelta * (1 << 16)
	if units >= 2048 {
		t.Fatalf("per-step displacement %.0f units overflows 12-bit D1", units)
	}
}

func BenchmarkForces32k(b *testing.B) {
	s := NewWater(32768, 300, sim.NewRand(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ComputeForces()
	}
}

func BenchmarkStep4k(b *testing.B) {
	s := NewWater(4096, 300, sim.NewRand(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
