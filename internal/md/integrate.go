package md

import "math"

// Step advances the system one velocity-Verlet time step of DT
// femtoseconds: the same integrate-then-export cycle the GCs run per
// Section II-C (forces in, integration, new positions out).
func (s *System) Step() {
	const half = 0.5 * DT * KcalPerMolToAccel / Mass
	for i := range s.Pos {
		v := s.Vel[i]
		f := s.Force[i]
		v.X += half * f.X
		v.Y += half * f.Y
		v.Z += half * f.Z
		s.Vel[i] = v
		p := s.Pos[i]
		p.X = wrap(p.X+DT*v.X, s.Box)
		p.Y = wrap(p.Y+DT*v.Y, s.Box)
		p.Z = wrap(p.Z+DT*v.Z, s.Box)
		s.Pos[i] = p
	}
	s.ComputeForces()
	for i := range s.Vel {
		v := s.Vel[i]
		f := s.Force[i]
		v.X += half * f.X
		v.Y += half * f.Y
		v.Z += half * f.Z
		s.Vel[i] = v
	}
	s.Steps++
}

// Run advances n steps.
func (s *System) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Rescale applies a velocity-rescaling thermostat pulling the kinetic
// temperature toward tempK with strength alpha in (0,1]; used to
// equilibrate freshly built systems before measurement.
func (s *System) Rescale(tempK, alpha float64) {
	t := s.Temperature()
	if t <= 0 {
		return
	}
	lambda := 1 + alpha*(tempK/t-1)
	if lambda < 0.25 {
		lambda = 0.25
	}
	scale := math.Sqrt(lambda)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(scale)
	}
}
