package md

import "anton3/internal/fixp"

// cellList is a standard linked-cell neighbor structure: the box is divided
// into cells no smaller than the cutoff, so all interacting pairs lie in
// the same or adjacent cells (with periodic wraparound). The cell-pair scan
// list is precomputed once with the half-shell convention, so each pair of
// cells is visited exactly once per force evaluation.
type cellList struct {
	box      float64
	perSide  int
	cellSize float64
	heads    []int32 // first atom index per cell, -1 if empty
	next     []int32 // next atom in cell chain
	pairs    [][2]int32
}

func newCellList(box, cutoff float64) *cellList {
	perSide := int(box / cutoff)
	if perSide < 1 {
		perSide = 1
	}
	c := &cellList{
		box:      box,
		perSide:  perSide,
		cellSize: box / float64(perSide),
		heads:    make([]int32, perSide*perSide*perSide),
	}
	c.buildPairs()
	return c
}

func (c *cellList) buildPairs() {
	n := c.perSide
	// Half shell: 13 of the 26 neighbor offsets; the self pair is (a,a).
	offsets := [][3]int{
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
		{1, 1, 0}, {1, -1, 0}, {1, 0, 1}, {1, 0, -1},
		{0, 1, 1}, {0, 1, -1},
		{1, 1, 1}, {1, 1, -1}, {1, -1, 1}, {1, -1, -1},
	}
	idx := func(x, y, z int) int32 {
		x = (x%n + n) % n
		y = (y%n + n) % n
		z = (z%n + n) % n
		return int32(x + n*(y+n*z))
	}
	seen := make(map[[2]int32]bool)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				a := idx(x, y, z)
				c.pairs = append(c.pairs, [2]int32{a, a})
				for _, o := range offsets {
					b := idx(x+o[0], y+o[1], z+o[2])
					if a == b {
						continue // tiny boxes: offset wraps onto self
					}
					lo, hi := a, b
					if lo > hi {
						lo, hi = hi, lo
					}
					if seen[[2]int32{lo, hi}] {
						continue // tiny boxes: two offsets, one cell
					}
					seen[[2]int32{lo, hi}] = true
					c.pairs = append(c.pairs, [2]int32{a, b})
				}
			}
		}
	}
}

func (c *cellList) cellOf(p fixp.Vec) int {
	ix := int(p.X / c.cellSize)
	iy := int(p.Y / c.cellSize)
	iz := int(p.Z / c.cellSize)
	// Guard the upper boundary (positions exactly at Box wrap to 0).
	if ix >= c.perSide {
		ix = c.perSide - 1
	}
	if iy >= c.perSide {
		iy = c.perSide - 1
	}
	if iz >= c.perSide {
		iz = c.perSide - 1
	}
	return ix + c.perSide*(iy+c.perSide*iz)
}

// build (re)assigns all atoms to cells.
func (c *cellList) build(pos []fixp.Vec) {
	if len(c.next) < len(pos) {
		c.next = make([]int32, len(pos))
	}
	for i := range c.heads {
		c.heads[i] = -1
	}
	for i, p := range pos {
		cell := c.cellOf(p)
		c.next[i] = c.heads[cell]
		c.heads[cell] = int32(i)
	}
}
