package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type point struct {
	Load, Accepted, P99 float64
	Undelivered         int
}

func refPoint() point {
	// Values with awkward decimals: the round-trip must be bit-exact.
	return point{Load: 1.0625, Accepted: 0.9482647382920001, P99: 193.74999999999997}
}

func TestMemoryRoundTrip(t *testing.T) {
	s := OpenMemory()
	k := KeyFor("flow/point", 7, refCfg())
	var out point
	if s.Get(k, &out) {
		t.Fatal("hit on an empty store")
	}
	s.Put(k, refPoint())
	if !s.Get(k, &out) {
		t.Fatal("miss after Put")
	}
	if out != refPoint() {
		t.Fatalf("round trip changed the value: %+v != %+v", out, refPoint())
	}
	if st := s.Stats(); st != (Stats{Hits: 1, Misses: 1, Stored: 1}) {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 stored", st)
	}
}

// TestDiskSurvivesRestart is the cross-invocation contract: a second
// process (modeled as a second Store over the same directory) hits what
// the first stored, bit-exactly.
func TestDiskSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyFor("flow/point", 7, refCfg())
	s1.Put(k, refPoint())

	s2, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	var out point
	if !s2.Get(k, &out) {
		t.Fatal("restarted store missed a disk entry")
	}
	if out != refPoint() {
		t.Fatalf("disk round trip changed the value: %+v != %+v", out, refPoint())
	}
}

// TestCorruptEntryRecovers: truncated and garbage entries must read as
// misses, and the recompute-and-Put path must heal them in place.
func TestCorruptEntryRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyFor("flow/point", 7, refCfg())
	s.Put(k, refPoint())
	path := s.path(k)

	for name, corrupt := range map[string]func() error{
		"truncated": func() error {
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, raw[:len(raw)/2], 0o644)
		},
		"garbage": func() error {
			return os.WriteFile(path, []byte("not a resultstore entry {]"), 0o644)
		},
		"bitflip": func() error {
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			raw[len(raw)-2] ^= 0x20
			return os.WriteFile(path, raw, 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			s.Put(k, refPoint()) // restore a good entry, then damage it
			if err := corrupt(); err != nil {
				t.Fatal(err)
			}
			fresh, err := Open(dir, false) // cold memory tier: must read disk
			if err != nil {
				t.Fatal(err)
			}
			var out point
			if fresh.Get(k, &out) {
				t.Fatal("corrupt entry served a hit")
			}
			fresh.Put(k, refPoint()) // the caller's recompute path
			healed, err := Open(dir, false)
			if err != nil {
				t.Fatal(err)
			}
			if !healed.Get(k, &out) || out != refPoint() {
				t.Fatalf("rewrite did not heal the entry: hit=%v val=%+v", out != point{}, out)
			}
		})
	}
}

// TestSchemaVersionInvalidates: a bump must miss on every old entry —
// via both the key hash and the on-disk tree — without deleting them.
func TestSchemaVersionInvalidates(t *testing.T) {
	dir := t.TempDir()
	old, err := openVersion(dir, false, SchemaVersion)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyFor("flow/point", 7, refCfg())
	old.Put(k, refPoint())

	bumped, err := openVersion(dir, false, SchemaVersion+1)
	if err != nil {
		t.Fatal(err)
	}
	var out point
	if bumped.Get(k, &out) {
		t.Fatal("bumped store hit an old-version entry")
	}
	// The old tree must be untouched, so a not-yet-upgraded binary
	// sharing the directory keeps its cache.
	if _, err := os.Stat(old.path(k)); err != nil {
		t.Fatalf("old entry disturbed by the bumped store: %v", err)
	}
	// Even if an old entry were copied into the new tree byte-for-byte,
	// the version stamped in its header must reject it.
	stale := bumped.path(k)
	if err := os.MkdirAll(filepath.Dir(stale), 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(old.path(k))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stale, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if bumped.Get(k, &out) {
		t.Fatal("bumped store accepted an entry stamped with the old version")
	}
}

func TestReadonlyNeverWrites(t *testing.T) {
	dir := t.TempDir()
	rw, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyFor("flow/point", 7, refCfg())
	rw.Put(k, refPoint())

	ro, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	var out point
	if !ro.Get(k, &out) {
		t.Fatal("readonly store missed an existing entry")
	}
	k2 := KeyFor("flow/point", 8, refCfg())
	ro.Put(k2, refPoint())
	if ro.Get(k2, &out) {
		t.Fatal("readonly store served its own Put")
	}
	if st := ro.Stats(); st.Stored != 0 {
		t.Fatalf("readonly store counted %d stores", st.Stored)
	}
	// A readonly store over a directory that does not exist must open
	// (and miss) rather than create it.
	missing := filepath.Join(dir, "nope")
	ro2, err := Open(missing, true)
	if err != nil {
		t.Fatal(err)
	}
	if ro2.Get(k, &out) {
		t.Fatal("hit from a nonexistent directory")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatal("readonly open created the cache directory")
	}
}

// TestConcurrentAccess exercises racing readers and writers over shared
// and distinct keys; run under -race in the CI fast lane.
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	const workers, keys = 8, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				cfg := refCfg()
				cfg.Load = float64(i % keys)
				k := KeyFor("flow/point", uint64(i%keys), cfg)
				var out point
				if s.Get(k, &out) {
					if out.Load != cfg.Load {
						t.Errorf("worker %d: key %s returned load %v, want %v", w, k, out.Load, cfg.Load)
						return
					}
				} else {
					s.Put(k, point{Load: cfg.Load})
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.Hits == 0 || st.Stored == 0 {
		t.Fatalf("concurrent run produced no traffic: %+v", st)
	}
}

func TestDistinctKindsDistinctEntries(t *testing.T) {
	s := OpenMemory()
	for i := 0; i < 4; i++ {
		s.Put(KeyFor(fmt.Sprintf("kind%d", i), 1, refCfg()), i)
	}
	for i := 0; i < 4; i++ {
		var out int
		if !s.Get(KeyFor(fmt.Sprintf("kind%d", i), 1, refCfg()), &out) || out != i {
			t.Fatalf("kind%d entry lost or crossed: got %d", i, out)
		}
	}
}
