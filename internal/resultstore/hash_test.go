package resultstore

import "testing"

type probeCfg struct {
	Shape, Policy, Pattern string
	QueueFlits, InjDepth   int
	Load                   float64
	Packets, Warmup        int
}

func refCfg() probeCfg {
	return probeCfg{
		Shape: "4x4x8", Policy: "xyz", Pattern: "bitcomp",
		QueueFlits: 64, InjDepth: 8,
		Load: 1.5, Packets: 96, Warmup: 32,
	}
}

// goldenRefKey pins the canonical hash across process restarts, Go
// versions and hosts: the disk tier is only sound if today's binary
// derives the same key yesterday's binary stored under. If this test
// ever fails after an intentional encoding change, bump SchemaVersion
// and re-pin — never re-pin without the bump.
const goldenRefKey = "flow/point/2ce2d2a0e36d701bc1b44f82e5c614425bc72a2188f0e40ffc42c484e12365b2"

func TestKeyGoldenStability(t *testing.T) {
	if got := KeyFor("flow/point", 21, refCfg()).String(); got != goldenRefKey {
		t.Fatalf("canonical key drifted:\n got  %s\n want %s\n(an intentional encoding change must bump SchemaVersion)", got, goldenRefKey)
	}
}

func TestKeySensitivity(t *testing.T) {
	base := KeyFor("flow/point", 21, refCfg())
	if k := KeyFor("flow/point", 22, refCfg()); k == base {
		t.Fatal("seed change did not change the key")
	}
	if k := KeyFor("cell/netsweep", 21, refCfg()); k == base {
		t.Fatal("kind change did not change the key")
	}
	cfg := refCfg()
	cfg.Load = 1.5000000000000002 // one ulp
	if k := KeyFor("flow/point", 21, cfg); k == base {
		t.Fatal("one-ulp float change did not change the key")
	}
	if k := keyForV(SchemaVersion+1, "flow/point", 21, refCfg()); k == base {
		t.Fatal("schema version bump did not change the key")
	}
}

// TestKeyMapOrderIndependent pins the canonicalization the issue names:
// maps hash by sorted entry encoding, never by iteration order.
func TestKeyMapOrderIndependent(t *testing.T) {
	a := map[string][]float64{}
	b := map[string][]float64{}
	entries := map[string][]float64{
		"loads": {0.5, 1, 2, 3, 4}, "warm": {32}, "pkts": {96}, "knee": {1.086},
	}
	for k, v := range entries {
		a[k] = v
	}
	for _, k := range []string{"warm", "knee", "loads", "pkts"} {
		b[k] = entries[k]
	}
	ka, kb := KeyFor("t", 0, a), KeyFor("t", 0, b)
	if ka != kb {
		t.Fatalf("equal maps hashed differently: %s vs %s", ka, kb)
	}
	b["loads"] = []float64{0.5, 1, 2, 3}
	if KeyFor("t", 0, b) == ka {
		t.Fatal("changed map value did not change the key")
	}
}

// TestKeyStructLayoutIndependent: field declaration order (and therefore
// memory layout and padding) must not leak into the hash — only the
// (name, value) set counts.
func TestKeyStructLayoutIndependent(t *testing.T) {
	type ordered struct {
		A int8
		B int64
		C string
	}
	type shuffled struct {
		C string
		B int64
		A int8
		u uint32 // unexported scratch must not participate
	}
	ka := KeyFor("t", 0, ordered{A: 7, B: 9, C: "x"})
	kb := KeyFor("t", 0, shuffled{A: 7, B: 9, C: "x", u: 0xdead})
	if ka != kb {
		t.Fatalf("same (name, value) set hashed differently across layouts: %s vs %s", ka, kb)
	}
	if KeyFor("t", 0, &ordered{A: 7, B: 9, C: "x"}) != ka {
		t.Fatal("pointer-to-config hashed differently from config")
	}
}

func TestKeyUnhashablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("hashing a func field did not panic")
		}
	}()
	KeyFor("t", 0, struct{ F func() }{F: func() {}})
}

func TestZeroKeyInvalid(t *testing.T) {
	var k Key
	if k.Valid() {
		t.Fatal("zero Key reports Valid")
	}
	s := OpenMemory()
	s.Put(k, 42)
	var out int
	if s.Get(k, &out) {
		t.Fatal("zero Key hit the store")
	}
	if st := s.Stats(); st.Stored != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("zero-key traffic counted: %+v", st)
	}
}
