package resultstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"
	"reflect"
	"sort"
)

// SchemaVersion names the semantics of everything behind a cache key: the
// simulator's output for a (kind, config, seed) triple AND the stored
// entry encoding. Bump it whenever a change alters any experiment's
// output for an unchanged config — timing-model fixes, RNG stream
// changes, render tweaks — or changes the entry format. The version is
// mixed into every key hash and names the on-disk tree (v1/, v2/, ...),
// so a bump invalidates the whole store cleanly: old entries are never
// read again, never deleted in place, and an old binary pointed at the
// same directory keeps hitting its own tree.
const SchemaVersion = 1

// Key addresses one memoized result: a kind label (which experiment
// function produced it) plus the canonical hash of (schema version, kind,
// seed, config). The zero Key is invalid and means "don't cache".
type Key struct {
	kind string
	sum  [sha256.Size]byte
}

// Valid reports whether the key addresses anything (non-zero).
func (k Key) Valid() bool { return k.kind != "" }

// String renders the key as "kind/hex", the form used in the store's
// memory index and on-disk layout.
func (k Key) String() string { return k.kind + "/" + hex.EncodeToString(k.sum[:]) }

// KeyFor builds the content-addressed key of one experiment result:
// kind labels the producing function ("flow/point", "cell/netsweep"),
// seed is the experiment's RNG seed, and cfg is its full configuration.
// cfg is hashed canonically — structs by sorted exported field name, maps
// by sorted encoded entries, floats by IEEE-754 bits, every value behind
// an explicit type tag — so the hash never depends on map iteration
// order, struct memory layout/padding, or field declaration order. Two
// configs hash equal iff they carry the same values; channels, funcs and
// other unhashable kinds panic (a programming error in the caller, not
// a data condition).
//
// The config must capture EVERYTHING the result depends on besides the
// seed and SchemaVersion. Deliberately excluded by convention: shard and
// worker counts, which the simulator guarantees never change a result.
func KeyFor(kind string, seed uint64, cfg any) Key {
	return keyForV(SchemaVersion, kind, seed, cfg)
}

// keyForV is KeyFor with an explicit schema version, split out so the
// invalidation tests can prove a version bump changes every hash.
func keyForV(version int, kind string, seed uint64, cfg any) Key {
	h := sha256.New()
	io.WriteString(h, "anton3/resultstore\x00")
	writeUint64(h, uint64(version))
	io.WriteString(h, kind)
	h.Write([]byte{0})
	writeUint64(h, seed)
	hashValue(h, reflect.ValueOf(cfg))
	k := Key{kind: kind}
	h.Sum(k.sum[:0])
	return k
}

// Type tags keep the encoding prefix-free across kinds: without them,
// e.g. the string "AB" and the two-element byte slice {65,66} could
// collide.
const (
	tagNil = iota + 1
	tagFalse
	tagTrue
	tagInt
	tagUint
	tagFloat
	tagString
	tagSlice
	tagMap
	tagStruct
)

func writeUint64(w io.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

// hashValue canonically encodes v into h. hash.Hash writers never fail,
// so no error plumbing.
func hashValue(h hash.Hash, v reflect.Value) {
	if !v.IsValid() {
		h.Write([]byte{tagNil})
		return
	}
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			h.Write([]byte{tagTrue})
		} else {
			h.Write([]byte{tagFalse})
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		h.Write([]byte{tagInt})
		writeUint64(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		h.Write([]byte{tagUint})
		writeUint64(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		// IEEE bits of the float64 value: exact, and float32 configs
		// hash equal to their exact float64 widening.
		h.Write([]byte{tagFloat})
		writeUint64(h, math.Float64bits(v.Float()))
	case reflect.String:
		h.Write([]byte{tagString})
		writeUint64(h, uint64(v.Len()))
		io.WriteString(h, v.String())
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			// nil and empty slices hash equal: both mean "no elements".
			h.Write([]byte{tagSlice})
			writeUint64(h, 0)
			return
		}
		h.Write([]byte{tagSlice})
		writeUint64(h, uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			hashValue(h, v.Index(i))
		}
	case reflect.Map:
		// Entries are encoded standalone and sorted bytewise, so the
		// hash is independent of iteration (= insertion + randomization)
		// order.
		h.Write([]byte{tagMap})
		writeUint64(h, uint64(v.Len()))
		entries := make([][]byte, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			eh := sha256.New()
			hashValue(eh, iter.Key())
			hashValue(eh, iter.Value())
			entries = append(entries, eh.Sum(nil))
		}
		sort.Slice(entries, func(a, b int) bool {
			for i := range entries[a] {
				if entries[a][i] != entries[b][i] {
					return entries[a][i] < entries[b][i]
				}
			}
			return false
		})
		for _, e := range entries {
			h.Write(e)
		}
	case reflect.Struct:
		// Exported fields by sorted name: declaration order, padding and
		// unexported scratch fields never leak into the hash.
		t := v.Type()
		type field struct {
			name string
			idx  int
		}
		fields := make([]field, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			if f := t.Field(i); f.IsExported() {
				fields = append(fields, field{f.Name, i})
			}
		}
		sort.Slice(fields, func(a, b int) bool { return fields[a].name < fields[b].name })
		h.Write([]byte{tagStruct})
		writeUint64(h, uint64(len(fields)))
		for _, f := range fields {
			h.Write([]byte{tagString})
			writeUint64(h, uint64(len(f.name)))
			io.WriteString(h, f.name)
			hashValue(h, v.Field(f.idx))
		}
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			h.Write([]byte{tagNil})
			return
		}
		hashValue(h, v.Elem())
	default:
		panic(fmt.Sprintf("resultstore: cannot hash %s in a cache key config", v.Kind()))
	}
}
