// Package resultstore is the content-addressed result cache behind the
// sweep experiments: every experiment in this repository is a pure
// function of (configuration, seed), so its result can be stored once
// and replayed forever. A Store memoizes JSON-serializable results under
// canonical Keys (see KeyFor) in two tiers — an in-process map, and an
// optional on-disk index shared across invocations — and turns repeated
// sweep work (knee-search probes re-visiting a load rung, a re-run of an
// identical grid) into cache hits.
//
// The headline guarantee is correctness, not speed: a cached result is
// byte-for-byte the value the computation produced (strings exactly;
// float64 fields bit-exactly, since encoding/json emits the shortest
// round-tripping decimal), keys capture the full config and seed, and
// SchemaVersion versions both the hash and the disk layout so stale
// entries can never serve a changed simulator. A corrupt or truncated
// disk entry is indistinguishable from a miss: the caller recomputes and
// the rewrite heals the entry.
//
// Concurrency: a Store is safe for concurrent readers and writers.
// Distinct processes may share one cache directory — entries are written
// to a temp file and renamed into place, and identical keys always carry
// identical payloads, so racing writers are idempotent.
package resultstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Stats counts a store's traffic since it was opened. Misses count Get
// calls that found nothing (including corrupt disk entries) — under a
// cache-wired sweep, the number of results actually computed.
type Stats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Stored int64 `json:"stored"`
}

// Store is a two-tier content-addressed result cache. The zero value is
// not usable; Open or OpenMemory construct one.
type Store struct {
	dir      string // versioned root ("<cachedir>/v1"); "" = memory-only
	readonly bool
	version  int

	mu  sync.RWMutex
	mem map[string][]byte // Key.String() -> stored payload (JSON)

	hits, misses, stored atomic.Int64
}

// Open returns a store backed by dir (created if missing) plus an
// in-process memory tier. Entries live under dir/v<SchemaVersion>/, so a
// schema bump starts from an empty tree without touching old entries.
// readonly stores consult both tiers but never write anything — not even
// the memory tier, so Stats.Stored stays 0 and repeated Gets of an
// uncached key stay misses.
func Open(dir string, readonly bool) (*Store, error) {
	return openVersion(dir, readonly, SchemaVersion)
}

// openVersion is Open with an explicit schema version, split out so the
// invalidation tests can prove a bump misses cleanly.
func openVersion(dir string, readonly bool, version int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: empty cache directory")
	}
	root := filepath.Join(dir, fmt.Sprintf("v%d", version))
	if !readonly {
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
	}
	return &Store{dir: root, readonly: readonly, version: version, mem: make(map[string][]byte)}, nil
}

// OpenMemory returns a store with no disk tier: entries live for the
// process only. Tests and future daemon workers use it; the CLI always
// opens a directory.
func OpenMemory() *Store {
	return &Store{version: SchemaVersion, mem: make(map[string][]byte)}
}

// Stats snapshots the store's traffic counters.
func (s *Store) Stats() Stats {
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Stored: s.stored.Load()}
}

// Get looks k up in the memory tier, then on disk, and decodes the
// stored payload into out (a pointer, as for json.Unmarshal). It reports
// whether a valid entry was found; any disk-entry damage — truncation,
// garbage, a checksum mismatch, undecodable JSON — counts as a miss, so
// the caller's recompute-and-Put path heals the entry.
func (s *Store) Get(k Key, out any) bool {
	if !k.Valid() {
		return false
	}
	id := k.String()
	s.mu.RLock()
	payload, ok := s.mem[id]
	s.mu.RUnlock()
	if !ok && s.dir != "" {
		payload, ok = s.readDisk(k)
		if ok && !s.readonly {
			s.mu.Lock()
			s.mem[id] = payload
			s.mu.Unlock()
		}
	}
	if ok {
		if err := json.Unmarshal(payload, out); err == nil {
			s.hits.Add(1)
			return true
		}
	}
	s.misses.Add(1)
	return false
}

// Put stores v under k in both tiers. Best-effort by design: marshal or
// disk errors drop the entry silently (the result is still returned to
// the caller; only future hits are lost), and readonly stores ignore Put
// entirely.
func (s *Store) Put(k Key, v any) {
	if !k.Valid() || s.readonly {
		return
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return
	}
	id := k.String()
	s.mu.Lock()
	s.mem[id] = payload
	s.mu.Unlock()
	s.stored.Add(1)
	if s.dir != "" {
		s.writeDisk(k, payload)
	}
}

// entryHeader begins every disk entry: a format marker, the entry's
// schema version, and the hex SHA-256 of the JSON payload that follows
// the newline. The checksum turns any partial write or bit damage into a
// detectable miss instead of a wrong result.
const entryMagic = "anton3-resultstore"

// path shards entries by the first hash byte under a per-kind directory:
// <root>/<kind>/<hex[:2]>/<hex>.json.
func (s *Store) path(k Key) string {
	h := hex.EncodeToString(k.sum[:])
	return filepath.Join(s.dir, filepath.FromSlash(k.kind), h[:2], h+".json")
}

func (s *Store) readDisk(k Key) ([]byte, bool) {
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		return nil, false
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	var magic, sum string
	var version int
	if _, err := fmt.Sscanf(string(raw[:nl]), "%s v%d %s", &magic, &version, &sum); err != nil {
		return nil, false
	}
	payload := raw[nl+1:]
	if magic != entryMagic || version != s.version || sum != payloadSum(payload) {
		return nil, false
	}
	return payload, true
}

func (s *Store) writeDisk(k Key, payload []byte) {
	path := s.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s v%d %s\n", entryMagic, s.version, payloadSum(payload))
	buf.Write(payload)
	// Temp file + rename: concurrent readers see the old entry or the
	// complete new one, never a torn write.
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}
