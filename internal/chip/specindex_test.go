package chip

import (
	"testing"

	"anton3/internal/topo"
)

func TestChannelSpecIndexRoundTrip(t *testing.T) {
	seen := make(map[int]bool)
	for _, d := range []topo.Dim{topo.X, topo.Y, topo.Z} {
		for _, dir := range []int{1, -1} {
			for sl := 0; sl < Slices; sl++ {
				cs := ChannelSpec{Dim: d, Dir: dir, Slice: sl}
				i := cs.Index()
				if i < 0 || i >= NumChannelSpecs {
					t.Fatalf("%v index %d out of range", cs, i)
				}
				if seen[i] {
					t.Fatalf("%v index %d collides", cs, i)
				}
				seen[i] = true
				if got := ChannelSpecAt(i); got != cs {
					t.Fatalf("ChannelSpecAt(%d) = %v, want %v", i, got, cs)
				}
			}
		}
	}
	if len(seen) != NumChannelSpecs {
		t.Fatalf("enumerated %d specs, want %d", len(seen), NumChannelSpecs)
	}
}

// TestAllChannelSpecsAscendingIndex pins the compatibility contract of the
// dense encoding: AllChannelSpecs enumerates in ascending Index order for
// every shape, so code that switched from spec lists to dense tables
// visits channels in the historical order.
func TestAllChannelSpecsAscendingIndex(t *testing.T) {
	for _, s := range []topo.Shape{
		{X: 4, Y: 4, Z: 8}, {X: 4, Y: 4, Z: 1}, {X: 1, Y: 1, Z: 2}, {X: 8, Y: 8, Z: 16},
	} {
		last := -1
		for _, cs := range AllChannelSpecs(s) {
			if cs.Index() <= last {
				t.Fatalf("shape %v: spec %v index %d not ascending after %d", s, cs, cs.Index(), last)
			}
			last = cs.Index()
		}
	}
}

func TestChannelSpecOpposite(t *testing.T) {
	cs := ChannelSpec{Dim: topo.Y, Dir: -1, Slice: 1}
	op := cs.Opposite()
	if op.Dim != topo.Y || op.Dir != 1 || op.Slice != 1 {
		t.Fatalf("Opposite(%v) = %v", cs, op)
	}
	if op.Opposite() != cs {
		t.Fatal("Opposite is not an involution")
	}
}
