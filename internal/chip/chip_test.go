package chip

import (
	"testing"

	"anton3/internal/packet"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

func testGeom() *Geometry {
	return New(sim.NewClock(2800), DefaultLatencies())
}

func TestGCCount(t *testing.T) {
	g := testGeom()
	if g.GCs() != 576 {
		t.Fatalf("GCs = %d, want 576 (24x12 tiles x 2)", g.GCs())
	}
}

func TestCoreIndexRoundTrip(t *testing.T) {
	g := testGeom()
	for i := 0; i < g.GCs(); i++ {
		if g.IndexOfCore(g.CoreIDByIndex(i)) != i {
			t.Fatalf("core index round trip failed at %d", i)
		}
	}
}

func TestCoreIndexPanics(t *testing.T) {
	g := testGeom()
	defer func() {
		if recover() == nil {
			t.Fatal("out of range GC index should panic")
		}
	}()
	g.CoreIDByIndex(g.GCs())
}

func TestEdgeRowsDistinctPerDirection(t *testing.T) {
	g := testGeom()
	seen := map[int]ChannelSpec{}
	for _, d := range []topo.Dim{topo.X, topo.Y, topo.Z} {
		rPlus := g.EdgeRowFor(ChannelSpec{Dim: d, Dir: 1})
		rMinus := g.EdgeRowFor(ChannelSpec{Dim: d, Dir: -1})
		// Opposite directions of one dimension sit on adjacent rows
		// (Figure 4).
		if rMinus-rPlus != 1 {
			t.Fatalf("dim %v: rows %d/%d not adjacent", d, rPlus, rMinus)
		}
		for _, r := range []int{rPlus, rMinus} {
			if prev, dup := seen[r]; dup {
				t.Fatalf("row %d shared by %v and dim %v", r, prev, d)
			}
			seen[r] = ChannelSpec{Dim: d, Dir: 1}
			if r < 0 || r >= topo.EdgeTileRows {
				t.Fatalf("row %d out of range", r)
			}
		}
	}
}

func TestInjectLatencyEdgeProximity(t *testing.T) {
	g := testGeom()
	cs := ChannelSpec{Dim: topo.X, Dir: -1, Slice: 0} // left side
	near := packet.CoreID{Tile: topo.MeshCoord{U: 0, V: g.EdgeRowFor(cs)}}
	far := packet.CoreID{Tile: topo.MeshCoord{U: 23, V: 0}}
	if g.InjectLatency(near, cs) >= g.InjectLatency(far, cs) {
		t.Fatal("edge-adjacent core should inject faster")
	}
}

func TestMinInjectEjectBudget(t *testing.T) {
	// The minimum end-to-end path of Figure 6: edge-adjacent cores, one
	// hop. Inject + channel-fixed + serialization + eject + wake should
	// land near 55 ns (within 10%).
	g := testGeom()
	cs := ChannelSpec{Dim: topo.X, Dir: -1, Slice: 0}
	core := packet.CoreID{Tile: topo.MeshCoord{U: 0, V: g.EdgeRowFor(cs)}}
	total := g.InjectLatency(core, cs) + g.Lat.ChannelFixed +
		g.EjectLatency(cs, core) + g.WakeLatency() +
		441*sim.Picosecond // 2-flit serialization at slice rate ~ 0.9ns... placeholder
	ns := total.Nanoseconds()
	if ns < 49 || ns > 61 {
		t.Fatalf("min end-to-end budget = %.1f ns, want ~55", ns)
	}
}

func TestTransitSameSideOnly(t *testing.T) {
	g := testGeom()
	in := ChannelSpec{Dim: topo.X, Dir: 1, Slice: 0}
	out := ChannelSpec{Dim: topo.Y, Dir: -1, Slice: 0}
	lat := g.TransitLatency(in, out)
	if lat <= 0 {
		t.Fatal("transit latency must be positive")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-side transit should panic")
		}
	}()
	g.TransitLatency(in, ChannelSpec{Dim: topo.Y, Dir: -1, Slice: 1})
}

func TestOnChipLatencySymmetricUV(t *testing.T) {
	g := testGeom()
	a := packet.CoreID{Tile: topo.MeshCoord{U: 2, V: 3}}
	b := packet.CoreID{Tile: topo.MeshCoord{U: 10, V: 8}}
	if g.OnChipLatency(a, b) != g.OnChipLatency(b, a) {
		t.Fatal("on-chip latency should be symmetric")
	}
	// 0-hop (same tile): just send + write.
	want := g.Clock.Cycles(g.Lat.GCSendCycles + g.Lat.MemWriteCycles)
	if g.OnChipLatency(a, a) != want {
		t.Fatal("same-tile latency wrong")
	}
}

func TestAllChannelSpecs(t *testing.T) {
	full := AllChannelSpecs(topo.Shape{X: 4, Y: 4, Z: 8})
	if len(full) != 12 {
		t.Fatalf("full torus: %d specs, want 12 (6 dirs x 2 slices)", len(full))
	}
	flat := AllChannelSpecs(topo.Shape{X: 4, Y: 4, Z: 1})
	if len(flat) != 8 {
		t.Fatalf("z=1 torus: %d specs, want 8", len(flat))
	}
}

func TestLanesPerSlice(t *testing.T) {
	if LanesPerSlice != 8 || Slices != 2 {
		t.Fatal("slice provisioning changed: 16 lanes/neighbor = 2 slices of 8")
	}
}

func TestChannelSpecString(t *testing.T) {
	cs := ChannelSpec{Dim: topo.Z, Dir: -1, Slice: 1}
	if cs.String() != "Z-.s1" {
		t.Fatalf("String = %q", cs.String())
	}
	if cs.Side() != topo.Right {
		t.Fatal("slice 1 should be right side")
	}
}
