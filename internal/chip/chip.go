// Package chip models the Anton 3 ASIC floorplan (Section II-B, Figure 1):
// a 24x12 array of Core Tiles flanked by 12 Edge Tiles on each side. It
// provides the geometry and queuing-free path latencies that the machine
// simulator composes with the contention models (channels, ICBs, PPIM rows).
//
// The Core Network itself is modeled analytically (per-hop cycle counts
// along the U->V dimension-order route) rather than per-router: the paper's
// bottlenecks are the channels and the edge networks, and Figure 12 shows
// the on-chip fabric comfortably over-provisioned. The Edge Routers' hop
// latency and the adapters appear explicitly in every path.
package chip

import (
	"fmt"

	"anton3/internal/packet"
	"anton3/internal/router"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// Slices is the number of physical channel slices per torus neighbor
// (Section V-C): each neighbor's 16 lanes are two slices of 8, one per edge
// network side, so a dimension turn never crosses the Core Tile array.
const Slices = 2

// LanesPerSlice is the SERDES lane count of one channel slice.
const LanesPerSlice = topo.SerdesPerNeighbor / Slices

// ChannelSpec locates one channel slice on the chip.
type ChannelSpec struct {
	Dim   topo.Dim
	Dir   int // +1 or -1
	Slice int // 0 (left edge network) or 1 (right)
}

func (c ChannelSpec) String() string {
	s := "+"
	if c.Dir < 0 {
		s = "-"
	}
	return fmt.Sprintf("%v%s.s%d", c.Dim, s, c.Slice)
}

// Side returns which edge network hosts this slice.
func (c ChannelSpec) Side() topo.Side {
	if c.Slice == 0 {
		return topo.Left
	}
	return topo.Right
}

// NumChannelSpecs is the size of the dense channel-spec index space of one
// chip: 3 dimensions x 2 directions x Slices slices. Machine-level code
// keys per-node channel tables by ChannelSpec.Index instead of maps; shapes
// with a flat dimension simply leave those table entries nil.
const NumChannelSpecs = 3 * 2 * Slices

// Index returns c's dense index in [0, NumChannelSpecs). The encoding is
// (dim, dir, slice) lexicographic with +1 before -1, matching the
// enumeration order of AllChannelSpecs, so iterating a dense table in index
// order visits specs exactly as the historical spec lists did.
func (c ChannelSpec) Index() int {
	d := 0
	if c.Dir < 0 {
		d = 1
	}
	return (int(c.Dim)*2+d)*Slices + c.Slice
}

// ChannelSpecAt inverts ChannelSpec.Index.
func ChannelSpecAt(i int) ChannelSpec {
	if i < 0 || i >= NumChannelSpecs {
		panic("chip: channel spec index out of range")
	}
	sl := i % Slices
	i /= Slices
	dir := 1
	if i%2 == 1 {
		dir = -1
	}
	return ChannelSpec{Dim: topo.Dim(i / 2), Dir: dir, Slice: sl}
}

// Opposite returns the receiver-side spec of the same physical link: the
// channel on the neighboring chip that points back toward the sender.
func (c ChannelSpec) Opposite() ChannelSpec {
	c.Dir = -c.Dir
	return c
}

// Latencies collects the calibrated fixed latencies of the path model. All
// cycle counts are core-clock cycles at Clock; DESIGN.md section 4 explains
// how they were chosen to reproduce the paper's measured endpoints (55 ns
// minimum end-to-end, 34.2 ns per hop, 51.5/51.8 ns fence numbers).
type Latencies struct {
	// GCSendCycles covers software issuing the remote write and injection
	// through the TRTR (no communication library: a handful of cycles).
	GCSendCycles int64
	// MemWriteCycles is SRAM write plus counter update at the destination.
	MemWriteCycles int64
	// WakeCycles is blocking-read wakeup: counter match to GC pipeline
	// restart with the data.
	WakeCycles int64
	// RACycles is the Row Adapter crossing (core network <-> edge network).
	RACycles int64
	// CATxCycles / CARxCycles are the Channel Adapter compression /
	// decompression stages (INZ is single-cycle; framing dominates).
	CATxCycles int64
	CARxCycles int64
	// ChannelFixed is SERDES serializer+CDR latency plus wire flight per
	// channel crossing.
	ChannelFixed sim.Time
	// EdgeHopCycles, CoreUCycles, CoreVCycles are router per-hop costs.
	EdgeHopCycles int64
	CoreUCycles   int64
	CoreVCycles   int64
	// FenceMergeCycles is the input-port fence counter update.
	FenceMergeCycles int64
	// FenceGatherCycles / FenceScatterCycles are the intra-chip fence
	// collection and distribution trees over the core network (all 576 GCs
	// to the edge and back).
	FenceGatherCycles  int64
	FenceScatterCycles int64
	// FenceHopExtraCycles is the additional per-torus-hop cost of a fence
	// relative to a unicast message: the fence floods every valid path
	// (both slices, all request VCs, all edge-network columns) and waits
	// for the slowest copy at every merge point.
	FenceHopExtraCycles int64
	// FenceRemoteFixedCycles is the one-time pipeline-fill cost a fence
	// pays when it first crosses onto the torus (fence injection across
	// all VCs and both slices, edge-network flood setup). It is why the
	// paper's linear fit intercept (91.2 ns) exceeds the 0-hop barrier
	// latency (51.5 ns).
	FenceRemoteFixedCycles int64
}

// DefaultLatencies is the calibration used by every experiment.
func DefaultLatencies() Latencies {
	return Latencies{
		GCSendCycles:           16,
		MemWriteCycles:         4,
		WakeCycles:             20,
		RACycles:               4,
		CATxCycles:             6,
		CARxCycles:             6,
		ChannelFixed:           26_900 * sim.Picosecond,
		EdgeHopCycles:          router.EdgeHopCycles,
		CoreUCycles:            router.CoreUHopCycles,
		CoreVCycles:            router.CoreVHopCycles,
		FenceMergeCycles:       4,
		FenceGatherCycles:      64,
		FenceScatterCycles:     40,
		FenceHopExtraCycles:    57,
		FenceRemoteFixedCycles: 112,
	}
}

// Geometry is the floorplan of one ASIC.
type Geometry struct {
	Shape topo.ChipShape
	Clock sim.Clock
	Lat   Latencies
}

// New builds the production geometry.
func New(clock sim.Clock, lat Latencies) *Geometry {
	return &Geometry{Shape: topo.DefaultChipShape, Clock: clock, Lat: lat}
}

// GCs returns the number of Geometry Cores on the chip.
func (g *Geometry) GCs() int { return g.Shape.Tiles() * topo.GCsPerTile }

// CoreIDByIndex enumerates GCs in a fixed order.
func (g *Geometry) CoreIDByIndex(i int) packet.CoreID {
	if i < 0 || i >= g.GCs() {
		panic("chip: GC index out of range")
	}
	return packet.CoreID{Tile: g.Shape.CoordOf(i / topo.GCsPerTile), GC: i % topo.GCsPerTile}
}

// IndexOfCore inverts CoreIDByIndex.
func (g *Geometry) IndexOfCore(c packet.CoreID) int {
	return g.Shape.Index(c.Tile)*topo.GCsPerTile + c.GC
}

// EdgeRowFor maps a channel spec to the edge-network row of its Channel
// Adapter. The six directions spread over the 12 edge tile rows so that the
// two directions of one dimension sit on adjacent rows (Figure 4).
func (g *Geometry) EdgeRowFor(cs ChannelSpec) int {
	rows := topo.EdgeTileRows
	block := rows / 3 // rows per dimension
	base := int(cs.Dim) * block
	r := base + 1 // +dir row
	if cs.Dir < 0 {
		r = base + 2 // adjacent row for the opposite direction
	}
	if r >= rows {
		r = rows - 1
	}
	return r
}

// uHopsToSide counts Core Network U hops from a tile to a chip side
// (leaving the array counts as one hop into the edge network's RA column).
func (g *Geometry) uHopsToSide(t topo.MeshCoord, side topo.Side) int {
	if side == topo.Left {
		return t.U + 1
	}
	return g.Shape.Cols - t.U
}

// edgeHops counts Edge Router hops between two rows of one edge network:
// the row distance plus two column hops (in via a routing column, out via
// the channel column — Figure 4's partitioning).
func edgeHops(rowA, rowB int) int {
	d := rowA - rowB
	if d < 0 {
		d = -d
	}
	return d + 2
}

// InjectLatency is the queuing-free time for a packet from a GC issuing a
// send to the packet reaching the Channel Adapter of cs, exclusive of the
// channel itself: GC send + U hops + RA + edge network hops + CA tx.
func (g *Geometry) InjectLatency(core packet.CoreID, cs ChannelSpec) sim.Time {
	u := g.uHopsToSide(core.Tile, cs.Side())
	eh := edgeHops(core.Tile.V, g.EdgeRowFor(cs))
	cycles := g.Lat.GCSendCycles +
		int64(u)*g.Lat.CoreUCycles +
		g.Lat.RACycles +
		int64(eh)*g.Lat.EdgeHopCycles +
		g.Lat.CATxCycles
	return g.Clock.Cycles(cycles)
}

// EjectLatency is the time from a packet emerging from the channel of cs to
// the destination SRAM write completing: CA rx + edge hops + RA + U hops +
// memory write.
func (g *Geometry) EjectLatency(cs ChannelSpec, core packet.CoreID) sim.Time {
	u := g.uHopsToSide(core.Tile, cs.Side())
	eh := edgeHops(g.EdgeRowFor(cs), core.Tile.V)
	cycles := g.Lat.CARxCycles +
		int64(eh)*g.Lat.EdgeHopCycles +
		g.Lat.RACycles +
		int64(u)*g.Lat.CoreUCycles +
		g.Lat.MemWriteCycles
	return g.Clock.Cycles(cycles)
}

// TransitLatency is the intermediate-hop cost on one chip: CA rx of the
// inbound channel, edge network transit to the outbound channel's CA, CA
// tx. Same-side transits stay within one edge network; cross-side transits
// route along an edge tile row... which the slice provisioning makes
// unnecessary: every direction has a slice on both sides, so the machine
// always picks the outbound slice on the inbound side.
func (g *Geometry) TransitLatency(in, out ChannelSpec) sim.Time {
	if in.Side() != out.Side() {
		panic("chip: cross-side transit should never be needed; pick the outbound slice on the inbound side")
	}
	eh := edgeHops(g.EdgeRowFor(in), g.EdgeRowFor(out))
	cycles := g.Lat.CARxCycles +
		int64(eh)*g.Lat.EdgeHopCycles +
		g.Lat.CATxCycles
	return g.Clock.Cycles(cycles)
}

// OnChipLatency is GC-to-SRAM latency within one chip: GC send + U->V
// dimension-order core network route + memory write.
func (g *Geometry) OnChipLatency(src, dst packet.CoreID) sim.Time {
	uh, vh := topo.UVHops(src.Tile, dst.Tile)
	cycles := g.Lat.GCSendCycles +
		int64(uh)*g.Lat.CoreUCycles +
		int64(vh)*g.Lat.CoreVCycles +
		g.Lat.MemWriteCycles
	return g.Clock.Cycles(cycles)
}

// WakeLatency is the blocking-read wakeup cost at the destination GC.
func (g *Geometry) WakeLatency() sim.Time { return g.Clock.Cycles(g.Lat.WakeCycles) }

// GatherLatency is the intra-chip fence collection tree: last GC fence
// issue to a merged fence at the edge networks.
func (g *Geometry) GatherLatency() sim.Time {
	return g.Clock.Cycles(g.Lat.GCSendCycles + g.Lat.FenceGatherCycles)
}

// ScatterLatency is the intra-chip fence distribution: merged fence at the
// edge back to a counted write landing in every GC's SRAM, including the
// blocking-read wake.
func (g *Geometry) ScatterLatency() sim.Time {
	return g.Clock.Cycles(g.Lat.FenceScatterCycles + g.Lat.MemWriteCycles + g.Lat.WakeCycles)
}

// FenceHopExtra is the additional per-torus-hop fence cost (see Latencies).
func (g *Geometry) FenceHopExtra() sim.Time {
	return g.Clock.Cycles(g.Lat.FenceHopExtraCycles)
}

// AllChannelSpecs enumerates the chip's channel slices for the dimensions
// present in machine shape s (a dimension of extent 1 has no channels).
func AllChannelSpecs(s topo.Shape) []ChannelSpec {
	var specs []ChannelSpec
	for _, d := range []topo.Dim{topo.X, topo.Y, topo.Z} {
		if s.Get(d) < 2 {
			continue
		}
		for _, dir := range []int{1, -1} {
			for sl := 0; sl < Slices; sl++ {
				specs = append(specs, ChannelSpec{Dim: d, Dir: dir, Slice: sl})
			}
		}
	}
	return specs
}
