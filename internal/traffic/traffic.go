// Package traffic replays MD position/force streams through per-channel
// Channel Adapter compression pipelines and counts wire bits — the
// methodology behind Figure 9a, which the paper also collected from its
// full-system simulator rather than hardware counters.
//
// The replay is untimed: compression ratios depend only on the packet
// streams each channel carries, not on when packets arrive, so this runs
// orders of magnitude faster than the timed engine and scales to the
// largest atom counts in the figure.
package traffic

import (
	"anton3/internal/chip"
	"anton3/internal/fixp"
	"anton3/internal/md"
	"anton3/internal/packet"
	"anton3/internal/pcache"
	"anton3/internal/serdes"
	"anton3/internal/topo"
)

// Replayer owns one compressor per channel slice of the machine and feeds
// them the traffic a decomposed MD step generates. The table is dense —
// indexed by node index x chip.ChannelSpec.Index — so the per-packet replay
// path is a couple of multiplies instead of a map lookup; entries stay nil
// until a channel first carries traffic.
type Replayer struct {
	shape  topo.Shape
	decomp *md.Decomposition
	cfg    serdes.CompressConfig
	comps  []*serdes.Compressor // [node*chip.NumChannelSpecs + spec.Index()]
	live   int                  // non-nil entries

	// scratch buffers reused across atoms
	targets []topo.Coord
	edges   []md.ChannelEdge
	steps   []topo.Step
	// pkt is the reusable transmit packet: Compressor.Transmit only reads
	// it (and hands back the same instance), so one scratch packet serves
	// the whole replay instead of one allocation per channel crossing.
	pkt packet.Packet
}

// NewReplayer builds the per-channel pipelines for a system decomposed
// across shape.
func NewReplayer(shape topo.Shape, box float64, cfg serdes.CompressConfig) *Replayer {
	return &Replayer{
		shape:  shape,
		decomp: md.NewDecomposition(shape, box),
		cfg:    cfg,
		comps:  make([]*serdes.Compressor, shape.Nodes()*chip.NumChannelSpecs),
	}
}

// Decomposition exposes the partition (shared with the timed engine).
func (r *Replayer) Decomposition() *md.Decomposition { return r.decomp }

func (r *Replayer) comp(node int, dim topo.Dim, dir, slice int) *serdes.Compressor {
	i := node*chip.NumChannelSpecs + chip.ChannelSpec{Dim: dim, Dir: dir, Slice: slice}.Index()
	c := r.comps[i]
	if c == nil {
		c = serdes.NewCompressor(r.cfg)
		r.comps[i] = c
		r.live++
	}
	return c
}

// ReplayStep pushes one time step of traffic through the channels:
// stream-set position exports along each atom's multicast tree, stream-set
// force returns from every remote node that computed with the atom, and
// the end-of-step packet on every live channel.
func (r *Replayer) ReplayStep(s *md.System) {
	d := r.decomp
	for i := 0; i < s.N; i++ {
		pos := s.Pos[i]
		home := d.HomeNode(pos)
		r.targets = d.ExportTargets(pos, home, r.targets)
		if len(r.targets) == 0 {
			continue
		}
		rel := d.RelativeFixed(pos, home)
		slice := i & 1
		// Stable per-atom direction tie-break (2-wide rings reach the
		// same neighbor both ways): stability keeps each atom on the
		// same channels every step so the particle caches stay warm.
		plusOnTie := i&2 != 0

		// Position export: once per multicast tree edge.
		r.edges = md.MulticastEdges(r.shape, home, r.targets, plusOnTie, r.edges)
		for _, e := range r.edges {
			r.pkt = packet.Packet{Type: packet.Position, AtomID: uint32(i)}
			r.pkt.SetQuad(rel.Words())
			r.comp(r.shape.Index(e.From), e.Step.Dim, e.Step.Dir, slice).Transmit(&r.pkt)
		}

		// Stream-set force returns: each target computed a partial force
		// for this atom and sends it back point-to-point (XYZ route).
		// Payload magnitude is the atom's force — the right scale for
		// compression purposes even though each remote holds a partial.
		ff := fixp.ForceToFixed(s.Force[i])
		for _, tgt := range r.targets {
			cur := tgt
			r.steps = topo.AppendRouteTie(r.steps[:0], r.shape, tgt, home, topo.OrderXYZ, plusOnTie)
			for _, st := range r.steps {
				r.pkt = packet.Packet{Type: packet.Force, AtomID: uint32(i)}
				r.pkt.SetQuad(ff.Words())
				r.comp(r.shape.Index(cur), st.Dim, st.Dir, slice).Transmit(&r.pkt)
				cur = r.shape.Neighbor(cur, st.Dim, st.Dir)
			}
		}
	}

	// End-of-step marker down every channel that carried traffic.
	r.pkt = packet.Packet{Type: packet.EndOfStep}
	for _, c := range r.comps {
		if c != nil {
			c.Transmit(&r.pkt)
		}
	}
}

// Stats aggregates over every channel.
func (r *Replayer) Stats() serdes.Stats {
	var t serdes.Stats
	for _, c := range r.comps {
		if c == nil {
			continue
		}
		st := c.Stats()
		t.Packets += st.Packets
		t.WireBits += st.WireBits
		t.BaselineBits += st.BaselineBits
		t.PositionBits += st.PositionBits
		t.ForceBits += st.ForceBits
		t.OtherBits += st.OtherBits
		t.PcacheHits += st.PcacheHits
		t.PcacheMisses += st.PcacheMisses
		t.RawINZPayloads += st.RawINZPayloads
	}
	return t
}

// CacheStats aggregates particle cache outcomes over every channel.
func (r *Replayer) CacheStats() pcache.Stats {
	var t pcache.Stats
	for _, c := range r.comps {
		if c == nil {
			continue
		}
		st := c.CacheStats()
		t.Hits += st.Hits
		t.Misses += st.Misses
		t.Allocs += st.Allocs
		t.Evictions += st.Evictions
		t.AllocFails += st.AllocFails
	}
	return t
}

// ResetStats zeroes wire accounting (e.g., after cache warmup) while
// keeping cache contents. Implemented by swapping in fresh counters is not
// possible on the shared Compressor, so warmup is handled by callers
// measuring deltas instead; this helper returns a snapshot for that.
func (r *Replayer) Snapshot() serdes.Stats { return r.Stats() }

// Channels reports how many channel slices carried traffic.
func (r *Replayer) Channels() int { return r.live }

// InSync verifies every channel's cache pair.
func (r *Replayer) InSync() bool {
	for _, c := range r.comps {
		if c != nil && !c.InSync() {
			return false
		}
	}
	return true
}

// Delta subtracts an earlier snapshot from a later one.
func Delta(later, earlier serdes.Stats) serdes.Stats {
	return serdes.Stats{
		Packets:        later.Packets - earlier.Packets,
		WireBits:       later.WireBits - earlier.WireBits,
		BaselineBits:   later.BaselineBits - earlier.BaselineBits,
		PositionBits:   later.PositionBits - earlier.PositionBits,
		ForceBits:      later.ForceBits - earlier.ForceBits,
		OtherBits:      later.OtherBits - earlier.OtherBits,
		PcacheHits:     later.PcacheHits - earlier.PcacheHits,
		PcacheMisses:   later.PcacheMisses - earlier.PcacheMisses,
		RawINZPayloads: later.RawINZPayloads - earlier.RawINZPayloads,
	}
}
