// Package traffic replays MD position/force streams through per-channel
// Channel Adapter compression pipelines and counts wire bits — the
// methodology behind Figure 9a, which the paper also collected from its
// full-system simulator rather than hardware counters.
//
// The replay is untimed: compression ratios depend only on the packet
// streams each channel carries, not on when packets arrive, so this runs
// orders of magnitude faster than the timed engine and scales to the
// largest atom counts in the figure.
package traffic

import (
	"anton3/internal/fixp"
	"anton3/internal/md"
	"anton3/internal/packet"
	"anton3/internal/pcache"
	"anton3/internal/serdes"
	"anton3/internal/topo"
)

type chanKey struct {
	node  int
	dim   topo.Dim
	dir   int
	slice int
}

// Replayer owns one compressor per channel slice of the machine and feeds
// them the traffic a decomposed MD step generates.
type Replayer struct {
	shape  topo.Shape
	decomp *md.Decomposition
	cfg    serdes.CompressConfig
	comps  map[chanKey]*serdes.Compressor

	// scratch buffers reused across atoms
	targets []topo.Coord
	edges   []md.ChannelEdge
}

// NewReplayer builds the per-channel pipelines for a system decomposed
// across shape.
func NewReplayer(shape topo.Shape, box float64, cfg serdes.CompressConfig) *Replayer {
	return &Replayer{
		shape:  shape,
		decomp: md.NewDecomposition(shape, box),
		cfg:    cfg,
		comps:  make(map[chanKey]*serdes.Compressor),
	}
}

// Decomposition exposes the partition (shared with the timed engine).
func (r *Replayer) Decomposition() *md.Decomposition { return r.decomp }

func (r *Replayer) comp(k chanKey) *serdes.Compressor {
	c, ok := r.comps[k]
	if !ok {
		c = serdes.NewCompressor(r.cfg)
		r.comps[k] = c
	}
	return c
}

// ReplayStep pushes one time step of traffic through the channels:
// stream-set position exports along each atom's multicast tree, stream-set
// force returns from every remote node that computed with the atom, and
// the end-of-step packet on every live channel.
func (r *Replayer) ReplayStep(s *md.System) {
	d := r.decomp
	for i := 0; i < s.N; i++ {
		pos := s.Pos[i]
		home := d.HomeNode(pos)
		r.targets = d.ExportTargets(pos, home, r.targets)
		if len(r.targets) == 0 {
			continue
		}
		rel := d.RelativeFixed(pos, home)
		slice := i & 1
		// Stable per-atom direction tie-break (2-wide rings reach the
		// same neighbor both ways): stability keeps each atom on the
		// same channels every step so the particle caches stay warm.
		plusOnTie := i&2 != 0

		// Position export: once per multicast tree edge.
		r.edges = md.MulticastEdges(r.shape, home, r.targets, plusOnTie, r.edges)
		for _, e := range r.edges {
			k := chanKey{r.shape.Index(e.From), e.Step.Dim, e.Step.Dir, slice}
			p := &packet.Packet{Type: packet.Position, AtomID: uint32(i)}
			p.SetQuad(rel.Words())
			r.comp(k).Transmit(p)
		}

		// Stream-set force returns: each target computed a partial force
		// for this atom and sends it back point-to-point (XYZ route).
		// Payload magnitude is the atom's force — the right scale for
		// compression purposes even though each remote holds a partial.
		ff := fixp.ForceToFixed(s.Force[i])
		for _, tgt := range r.targets {
			cur := tgt
			for _, st := range topo.RouteTie(r.shape, tgt, home, topo.OrderXYZ, plusOnTie) {
				k := chanKey{r.shape.Index(cur), st.Dim, st.Dir, slice}
				p := &packet.Packet{Type: packet.Force, AtomID: uint32(i)}
				p.SetQuad(ff.Words())
				r.comp(k).Transmit(p)
				cur = r.shape.Neighbor(cur, st.Dim, st.Dir)
			}
		}
	}

	// End-of-step marker down every channel that carried traffic.
	for _, c := range r.comps {
		c.Transmit(&packet.Packet{Type: packet.EndOfStep})
	}
}

// Stats aggregates over every channel.
func (r *Replayer) Stats() serdes.Stats {
	var t serdes.Stats
	for _, c := range r.comps {
		st := c.Stats()
		t.Packets += st.Packets
		t.WireBits += st.WireBits
		t.BaselineBits += st.BaselineBits
		t.PositionBits += st.PositionBits
		t.ForceBits += st.ForceBits
		t.OtherBits += st.OtherBits
		t.PcacheHits += st.PcacheHits
		t.PcacheMisses += st.PcacheMisses
		t.RawINZPayloads += st.RawINZPayloads
	}
	return t
}

// CacheStats aggregates particle cache outcomes over every channel.
func (r *Replayer) CacheStats() pcache.Stats {
	var t pcache.Stats
	for _, c := range r.comps {
		st := c.CacheStats()
		t.Hits += st.Hits
		t.Misses += st.Misses
		t.Allocs += st.Allocs
		t.Evictions += st.Evictions
		t.AllocFails += st.AllocFails
	}
	return t
}

// ResetStats zeroes wire accounting (e.g., after cache warmup) while
// keeping cache contents. Implemented by swapping in fresh counters is not
// possible on the shared Compressor, so warmup is handled by callers
// measuring deltas instead; this helper returns a snapshot for that.
func (r *Replayer) Snapshot() serdes.Stats { return r.Stats() }

// Channels reports how many channel slices carried traffic.
func (r *Replayer) Channels() int { return len(r.comps) }

// InSync verifies every channel's cache pair.
func (r *Replayer) InSync() bool {
	for _, c := range r.comps {
		if !c.InSync() {
			return false
		}
	}
	return true
}

// Delta subtracts an earlier snapshot from a later one.
func Delta(later, earlier serdes.Stats) serdes.Stats {
	return serdes.Stats{
		Packets:        later.Packets - earlier.Packets,
		WireBits:       later.WireBits - earlier.WireBits,
		BaselineBits:   later.BaselineBits - earlier.BaselineBits,
		PositionBits:   later.PositionBits - earlier.PositionBits,
		ForceBits:      later.ForceBits - earlier.ForceBits,
		OtherBits:      later.OtherBits - earlier.OtherBits,
		PcacheHits:     later.PcacheHits - earlier.PcacheHits,
		PcacheMisses:   later.PcacheMisses - earlier.PcacheMisses,
		RawINZPayloads: later.RawINZPayloads - earlier.RawINZPayloads,
	}
}
