package traffic

import (
	"testing"

	"anton3/internal/md"
	"anton3/internal/pcache"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/testutil"
	"anton3/internal/topo"
)

var shape8 = topo.Shape{X: 2, Y: 2, Z: 2}

// sz picks the full-size or -short variant of a test parameter.
var sz = testutil.Size

// run replays steps of a shared trajectory through a fresh replayer with
// the given compression config, measuring after warmup.
func run(t *testing.T, n, warm, measure int, cfg serdes.CompressConfig) serdes.Stats {
	t.Helper()
	s := md.NewWater(n, 300, sim.NewRand(11))
	r := NewReplayer(shape8, s.Box, cfg)
	for i := 0; i < warm; i++ {
		r.ReplayStep(s)
		s.Step()
	}
	before := r.Snapshot()
	for i := 0; i < measure; i++ {
		r.ReplayStep(s)
		s.Step()
	}
	if !r.InSync() {
		t.Fatal("channel caches desynchronized")
	}
	return Delta(r.Stats(), before)
}

func TestBaselineNoReduction(t *testing.T) {
	st := run(t, 3000, 1, 2, serdes.CompressConfig{})
	if st.Reduction() != 0 {
		t.Fatalf("baseline reduction = %v", st.Reduction())
	}
	if st.Packets == 0 {
		t.Fatal("no traffic generated")
	}
}

func TestINZAloneInPaperBand(t *testing.T) {
	// Figure 9a: INZ alone reduces off-chip traffic by 32-40%.
	st := run(t, sz(8000, 5000), 1, sz(3, 2), serdes.CompressConfig{INZ: true})
	red := st.Reduction()
	if red < 0.28 || red > 0.44 {
		t.Fatalf("INZ-only reduction = %.2f, want within ~32-40%% band", red)
	}
}

func TestINZPlusPcacheBeatsINZ(t *testing.T) {
	n, measure := sz(8000, 5000), sz(3, 2)
	inz := run(t, n, 2, measure, serdes.CompressConfig{INZ: true})
	both := run(t, n, 2, measure, serdes.CompressConfig{INZ: true, Pcache: true})
	if both.Reduction() <= inz.Reduction()+0.05 {
		t.Fatalf("pcache adds too little: inz=%.2f both=%.2f",
			inz.Reduction(), both.Reduction())
	}
	// Paper band at low atom counts: 45-62% total.
	if both.Reduction() < 0.40 || both.Reduction() > 0.68 {
		t.Fatalf("inz+pcache reduction = %.2f outside plausible band", both.Reduction())
	}
}

func TestPcacheBenefitShrinksWithAtomCount(t *testing.T) {
	// "The traffic reduction due to the particle cache decreases with
	// larger atom counts because more atoms per node result in a higher
	// cache miss rate." A channel's working set grows as N^(2/3) (it is a
	// boundary slab), so test-sized systems exercise the effect with a
	// proportionally smaller cache; the full-size experiment in
	// EXPERIMENTS.md uses the hardware 1024 entries with the paper's atom
	// counts.
	pc := pcache.Config{Entries: 256, Ways: 4, EvictThreshold: 2}
	small := run(t, sz(4000, 3000), 2, 2, serdes.CompressConfig{INZ: true, Pcache: true, PcacheConfig: pc})
	large := run(t, sz(24000, 16000), 2, 2, serdes.CompressConfig{INZ: true, Pcache: true, PcacheConfig: pc})
	if large.Reduction() >= small.Reduction()-0.02 {
		t.Fatalf("reduction should shrink with size: small=%.2f large=%.2f",
			small.Reduction(), large.Reduction())
	}
}

func TestHitRateDropsWithAtomCount(t *testing.T) {
	steps := sz(4, 3)
	s := md.NewWater(sz(8000, 6000), 300, sim.NewRand(3))
	r := NewReplayer(shape8, s.Box, serdes.CompressConfig{INZ: true, Pcache: true})
	for i := 0; i < steps; i++ {
		r.ReplayStep(s)
		s.Step()
	}
	hrSmall := r.CacheStats().HitRate()

	s2 := md.NewWater(sz(48000, 32000), 300, sim.NewRand(3))
	r2 := NewReplayer(shape8, s2.Box, serdes.CompressConfig{INZ: true, Pcache: true})
	for i := 0; i < steps; i++ {
		r2.ReplayStep(s2)
		s2.Step()
	}
	hrLarge := r2.CacheStats().HitRate()
	if hrSmall < 0.5 {
		t.Fatalf("small-system hit rate = %.2f, want high", hrSmall)
	}
	if hrLarge >= hrSmall {
		t.Fatalf("hit rate should drop with atom count: %.2f -> %.2f", hrSmall, hrLarge)
	}
}

func TestChannelsMatchTopology(t *testing.T) {
	s := md.NewWater(3000, 300, sim.NewRand(5))
	r := NewReplayer(shape8, s.Box, serdes.CompressConfig{})
	r.ReplayStep(s)
	// 8 nodes x 6 directions x 2 slices = 96 channel slices at most; a
	// 2x2x2 machine uses all directions.
	if r.Channels() != 96 {
		t.Fatalf("channels = %d, want 96", r.Channels())
	}
}

func TestPositionAndForceBitsBothPresent(t *testing.T) {
	st := run(t, 3000, 0, 2, serdes.CompressConfig{})
	if st.PositionBits == 0 || st.ForceBits == 0 {
		t.Fatalf("missing traffic class: pos=%d force=%d", st.PositionBits, st.ForceBits)
	}
	// Force returns outnumber position exports (point-to-point vs tree),
	// consistent with the machine activity plots showing both directions
	// busy.
	if st.ForceBits < st.PositionBits/2 {
		t.Fatalf("force bits %d implausibly small vs position bits %d",
			st.ForceBits, st.PositionBits)
	}
}

func TestDeltaArithmetic(t *testing.T) {
	a := serdes.Stats{Packets: 10, WireBits: 100, BaselineBits: 200}
	b := serdes.Stats{Packets: 4, WireBits: 40, BaselineBits: 80}
	d := Delta(a, b)
	if d.Packets != 6 || d.WireBits != 60 || d.BaselineBits != 120 {
		t.Fatalf("delta = %+v", d)
	}
}
