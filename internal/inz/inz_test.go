package inz

import (
	"testing"
	"testing/quick"
)

func TestFoldWordExamples(t *testing.T) {
	cases := []struct{ in, want uint32 }{
		{0, 0},
		// +1: sign 0, value bits unchanged, shifted up one.
		{1, 2},
		// -1 = 0xffffffff: sign 1, value bits 0x7fffffff invert to 0, LSB 1.
		{0xffffffff, 1},
		// -2 = 0xfffffffe: value 0x7ffffffe -> ^ 0x7fffffff = 1 -> 0b11.
		{0xfffffffe, 3},
	}
	for _, c := range cases {
		if got := FoldWord(c.in); got != c.want {
			t.Errorf("FoldWord(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestFoldSmallMagnitudesSmall(t *testing.T) {
	// The whole point of the fold: |v| < 2^20 must fold below 2^21.
	for _, v := range []int32{-1 << 20, -12345, -1, 0, 1, 12345, 1<<20 - 1} {
		f := FoldWord(uint32(v))
		if f >= 1<<21 {
			t.Errorf("FoldWord(%d) = %#x, not small", v, f)
		}
	}
}

func TestFoldRoundTrip(t *testing.T) {
	f := func(w uint32) bool { return UnfoldWord(FoldWord(w)) == w }
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint32, m8 uint8) bool {
		m := int(m8)%4 + 1
		words := []uint32{a, b, c, d}[:m]
		hi, lo := interleave(words)
		got := deinterleave(hi, lo, m)
		for i := range words {
			if got[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeAllZero(t *testing.T) {
	e := Encode([4]uint32{})
	if e.WireBytes() != 0 || e.Raw {
		t.Fatalf("zero payload should cost 0 bytes, got %d raw=%v", e.WireBytes(), e.Raw)
	}
	if Decode(e) != [4]uint32{} {
		t.Fatal("zero payload round trip failed")
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint32) bool {
		quad := [4]uint32{a, b, c, d}
		return Decode(Encode(quad)) == quad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRoundTripSmallValues(t *testing.T) {
	// The common case the encoding optimizes for: small signed values.
	f := func(a, b, c, d int16) bool {
		quad := [4]int32{int32(a), int32(b), int32(c), int32(d)}
		return DecodeSigned(EncodeSigned(quad)) == quad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeNeverExceedsRaw(t *testing.T) {
	f := func(a, b, c, d uint32) bool {
		return Encode([4]uint32{a, b, c, d}).WireBytes() <= RawBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeSmallValuesCompress(t *testing.T) {
	// Four values below 2^11 fold below 2^12, interleave into 48 bits,
	// +2 tag bits = 50 bits -> 7 bytes (vs 16 raw).
	e := EncodeSigned([4]int32{100, -200, 300, -400})
	if e.Raw {
		t.Fatal("small payload must not abandon")
	}
	if e.WireBytes() > 7 {
		t.Fatalf("small payload cost %d bytes, want <= 7", e.WireBytes())
	}
}

func TestEncodePaperExample(t *testing.T) {
	// Figure 7's shape: two-word payload (words 2,3 zero), 8 bytes of input
	// compressing so that 5 bytes of leading zeros are eliminated, i.e. the
	// result occupies 3 bytes. Two words with ~11 significant folded bits
	// interleave into <=22 bits, +2 = 24 bits = 3 bytes.
	e := EncodeSigned([4]int32{-321, 654, 0, 0})
	if e.Raw || e.WireBytes() != 3 {
		t.Fatalf("two-small-word payload = %d bytes raw=%v, want 3 bytes", e.WireBytes(), e.Raw)
	}
}

func TestEncodeAbandon(t *testing.T) {
	// Four full-range words interleave to >126 bits -> abandoned, 16 bytes.
	quad := [4]uint32{0xdeadbeef, 0xcafebabe, 0x12345678, 0x9abcdef0}
	e := Encode(quad)
	if !e.Raw || e.WireBytes() != 16 {
		t.Fatalf("full-entropy payload: raw=%v bytes=%d, want raw 16", e.Raw, e.WireBytes())
	}
	if Decode(e) != quad {
		t.Fatal("raw round trip failed")
	}
}

func TestEncodeBoundary126Bits(t *testing.T) {
	// Vector exactly 128 bits (126 significant + 2 tag) must NOT abandon.
	// Four words each with bit 30 set (folded bit 31... careful: fold shifts
	// up). Use folded values directly: choose inputs whose folds have bit 31
	// clear but bit 30 set. FoldWord(v)=v<<1 for positive v, so v=2^29 gives
	// fold 2^30: interleaved top position = 30*4+3 = 123, +2 = 126 bits. OK.
	quad := [4]uint32{1 << 29, 1 << 29, 1 << 29, 1 << 29}
	e := Encode(quad)
	if e.Raw {
		t.Fatal("126-bit vector must not abandon")
	}
	if Decode(e) != quad {
		t.Fatal("round trip failed")
	}
	// Positive v=2^30 folds to 2^31: top position 31*4+3=127, +2=129 -> abandon.
	quad2 := [4]uint32{1 << 30, 1 << 30, 1 << 30, 1 << 30}
	if !Encode(quad2).Raw {
		t.Fatal("129-bit vector must abandon")
	}
}

func TestEncodeSingleWord(t *testing.T) {
	// Only word 0 non-zero: k=0, vector = fold<<2.
	e := Encode([4]uint32{5, 0, 0, 0})
	if e.Raw || e.WireBytes() != 1 {
		t.Fatalf("tiny single word = %d bytes, want 1", e.WireBytes())
	}
	if got := Decode(e); got != [4]uint32{5, 0, 0, 0} {
		t.Fatalf("round trip = %v", got)
	}
}

func TestEncodeHighWordOnly(t *testing.T) {
	// Only word 3 non-zero: k=3, zero words below still interleave.
	quad := [4]uint32{0, 0, 0, 7}
	e := Encode(quad)
	if e.Raw {
		t.Fatal("should not abandon")
	}
	if Decode(e) != quad {
		t.Fatal("round trip failed")
	}
}

func TestDecodeRawLength(t *testing.T) {
	quad := [4]uint32{1, 2, 3, 4}
	raw := Encoded{Data: rawBytes(quad), Raw: true}
	if Decode(raw) != quad {
		t.Fatal("rawBytes/Decode mismatch")
	}
}

func TestMonotoneByteCount(t *testing.T) {
	// Larger magnitudes can never cost fewer bytes for single-word loads.
	prev := 0
	for shift := 0; shift < 31; shift++ {
		e := Encode([4]uint32{1 << shift, 0, 0, 0})
		if e.WireBytes() < prev {
			t.Fatalf("byte count not monotone at shift %d", shift)
		}
		prev = e.WireBytes()
	}
}

func TestTruncateBytesNeverBeatsRawByMuch(t *testing.T) {
	f := func(a, b, c, d uint32) bool {
		n := TruncateBytes([4]uint32{a, b, c, d})
		return n >= 1 && n <= RawBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveBeatsTruncateOnCorrelatedMagnitudes(t *testing.T) {
	// The ablation claim from DESIGN.md: equal-magnitude words favor INZ.
	quad := [4]uint32{1<<20 - 1, 1<<20 - 3, 1<<20 - 7, 1<<20 - 5}
	inzBytes := Encode(quad).WireBytes()
	truncBytes := TruncateBytes(quad)
	if inzBytes >= truncBytes {
		t.Fatalf("INZ %dB should beat truncation %dB on correlated payloads", inzBytes, truncBytes)
	}
}

func BenchmarkEncodeSmall(b *testing.B) {
	quad := [4]uint32{^uint32(99), 200, ^uint32(299), 400}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(quad)
	}
}

func BenchmarkEncodeFullEntropy(b *testing.B) {
	quad := [4]uint32{0xdeadbeef, 0xcafebabe, 0x12345678, 0x9abcdef0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(quad)
	}
}

func BenchmarkDecodeSmall(b *testing.B) {
	e := Encode([4]uint32{^uint32(99), 200, ^uint32(299), 400})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decode(e)
	}
}
