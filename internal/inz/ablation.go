package inz

import "math/bits"

// TruncateBytes models the obvious alternative to INZ — per-word sign-fold
// plus independent leading-zero-byte truncation, with a 2-bit length tag per
// word — and returns only the wire byte count (the DESIGN.md INZ-interleave
// ablation compares aggregate byte counts, not wire formats).
//
// Interleaving wins whenever word magnitudes are correlated: four 20-bit
// values cost 4x3=12 bytes truncated but only ceil((4*20+2)/8)=11 bytes
// interleaved, and the gap grows as magnitudes shrink.
func TruncateBytes(quad [WordsPerQuad]uint32) int {
	total := 1 // 8-bit header: 2-bit length per word
	for _, w := range quad {
		f := FoldWord(w)
		total += (32 - bits.LeadingZeros32(f) + 7) / 8
	}
	if total > RawBytes {
		return RawBytes
	}
	return total
}
