// Package inz implements Interleaved Non-Zero encoding (Section IV-A), the
// Anton 3 payload compression scheme for flit payloads of up to four signed
// 32-bit words. The encoding maximizes leading zeros so that the most
// significant zero bytes can be dropped when payloads are packed into
// fixed-length channel frames:
//
//  1. the most significant non-zero word k is determined (0-4 non-zero words);
//  2. each word is sign-folded: the sign bit moves to the LSB and the
//     remaining bits are conditionally inverted (the paper's invert_word);
//  3. words 0..k are interleaved bitwise, so the leading zeros of all words
//     pool at the top of the vector;
//  4. the 2-bit value k is concatenated at the least-significant end;
//  5. the number of significant bytes is counted. If the vector exceeds 128
//     bits the encoding is abandoned and the original 16 bytes are sent
//     (the "16 valid bytes" special case).
//
// In hardware this is a single-cycle operation at 2.8 GHz; here it is a pair
// of pure functions with an exact round-trip property.
package inz

import "math/bits"

// WordsPerQuad is the payload width: one flit carries a 128-bit payload of
// four 32-bit words.
const WordsPerQuad = 4

// RawBytes is the size of an uncompressed payload.
const RawBytes = 4 * WordsPerQuad

// Encoded is the result of compressing one payload.
type Encoded struct {
	// Data holds the significant bytes of the encoded vector,
	// least-significant byte first. Empty means an all-zero payload.
	Data []byte
	// Raw reports that encoding was abandoned (vector exceeded 128 bits)
	// and Data holds the original 16 payload bytes verbatim.
	Raw bool
}

// WireBytes is the number of payload bytes that must cross the channel.
func (e Encoded) WireBytes() int { return len(e.Data) }

// FoldWord moves the sign bit of w to the least significant position and
// conditionally inverts the value bits, exactly as the paper's
// SystemVerilog invert_word:
//
//	return {{31{w[31]}} ^ w[30:0], w[31]};
//
// Small negative numbers, which have many leading ones, become small
// positive-looking values with many leading zeros.
func FoldWord(w uint32) uint32 {
	sign := w >> 31
	mask := uint32(0)
	if sign == 1 {
		mask = 0x7fffffff
	}
	return ((w&0x7fffffff)^mask)<<1 | sign
}

// UnfoldWord inverts FoldWord.
func UnfoldWord(f uint32) uint32 {
	sign := f & 1
	v := f >> 1
	if sign == 1 {
		v ^= 0x7fffffff
	}
	return v | sign<<31
}

// interleave spreads bit b of word j to position b*m + j of a 128-bit
// vector, for the m = len(words) low words of the payload.
func interleave(words []uint32) (hi, lo uint64) {
	m := len(words)
	for j, w := range words {
		for w != 0 {
			b := bits.TrailingZeros32(w)
			w &^= 1 << b
			pos := b*m + j
			if pos < 64 {
				lo |= 1 << pos
			} else {
				hi |= 1 << (pos - 64)
			}
		}
	}
	return hi, lo
}

// deinterleave inverts interleave for an m-word vector.
func deinterleave(hi, lo uint64, m int) []uint32 {
	words := make([]uint32, m)
	for lo != 0 {
		pos := bits.TrailingZeros64(lo)
		lo &^= 1 << pos
		words[pos%m] |= 1 << (pos / m)
	}
	for hi != 0 {
		pos := bits.TrailingZeros64(hi) + 64
		hi &^= 1 << (pos - 64)
		words[pos%m] |= 1 << (pos / m)
	}
	return words
}

// Encode compresses a four-word payload.
func Encode(quad [WordsPerQuad]uint32) Encoded {
	// Most significant non-zero word.
	k := -1
	for i := WordsPerQuad - 1; i >= 0; i-- {
		if quad[i] != 0 {
			k = i
			break
		}
	}
	if k < 0 {
		// No non-zero words: zero payload bytes on the wire.
		return Encoded{}
	}

	folded := make([]uint32, k+1)
	for i := 0; i <= k; i++ {
		folded[i] = FoldWord(quad[i])
	}
	hi, lo := interleave(folded)

	sig := significantBits(hi, lo)
	total := sig + 2 // the 2-bit k tag at the LSB end
	if total > 128 {
		// Abandon: send the original payload, 16 valid bytes.
		return Encoded{Data: rawBytes(quad), Raw: true}
	}

	// vector = interleaved << 2 | k
	vhi := hi<<2 | lo>>62
	vlo := lo<<2 | uint64(k)
	n := (total + 7) / 8
	data := make([]byte, n)
	for i := 0; i < n; i++ {
		var b byte
		if i < 8 {
			b = byte(vlo >> (8 * i))
		} else {
			b = byte(vhi >> (8 * (i - 8)))
		}
		data[i] = b
	}
	return Encoded{Data: data}
}

func significantBits(hi, lo uint64) int {
	if hi != 0 {
		return 128 - bits.LeadingZeros64(hi)
	}
	return 64 - bits.LeadingZeros64(lo)
}

func rawBytes(quad [WordsPerQuad]uint32) []byte {
	data := make([]byte, RawBytes)
	for i, w := range quad {
		data[4*i+0] = byte(w)
		data[4*i+1] = byte(w >> 8)
		data[4*i+2] = byte(w >> 16)
		data[4*i+3] = byte(w >> 24)
	}
	return data
}

// Decode reconstructs the payload from its wire form. It accepts anything
// Encode produces; malformed input of a legal length decodes to some
// payload (garbage in, garbage out — the hardware has no checksums at this
// layer either, CRC protection lives on the channel frame).
func Decode(e Encoded) [WordsPerQuad]uint32 {
	var quad [WordsPerQuad]uint32
	if e.Raw {
		for i := 0; i < WordsPerQuad; i++ {
			quad[i] = uint32(e.Data[4*i]) | uint32(e.Data[4*i+1])<<8 |
				uint32(e.Data[4*i+2])<<16 | uint32(e.Data[4*i+3])<<24
		}
		return quad
	}
	if len(e.Data) == 0 {
		return quad
	}
	var vhi, vlo uint64
	for i, b := range e.Data {
		if i < 8 {
			vlo |= uint64(b) << (8 * i)
		} else {
			vhi |= uint64(b) << (8 * (i - 8))
		}
	}
	k := int(vlo & 3)
	hi := vhi >> 2
	lo := vlo>>2 | vhi<<62
	folded := deinterleave(hi, lo, k+1)
	for i, f := range folded {
		quad[i] = UnfoldWord(f)
	}
	return quad
}

// EncodeSigned is Encode for signed payloads (positions, forces, charges).
func EncodeSigned(quad [WordsPerQuad]int32) Encoded {
	var u [WordsPerQuad]uint32
	for i, v := range quad {
		u[i] = uint32(v)
	}
	return Encode(u)
}

// DecodeSigned is Decode returning signed words.
func DecodeSigned(e Encoded) [WordsPerQuad]int32 {
	u := Decode(e)
	var s [WordsPerQuad]int32
	for i, v := range u {
		s[i] = int32(v)
	}
	return s
}
