package topo

import "testing"

func TestDefaultChipShape(t *testing.T) {
	cs := DefaultChipShape
	if cs.Tiles() != 288 {
		t.Fatalf("core tiles = %d, want 288 (24x12, the Core Router count of Table II)", cs.Tiles())
	}
	if !cs.Valid() {
		t.Fatal("default chip shape invalid")
	}
}

func TestChipIndexRoundTrip(t *testing.T) {
	cs := ChipShape{Cols: 5, Rows: 3}
	for i := 0; i < cs.Tiles(); i++ {
		if cs.Index(cs.CoordOf(i)) != i {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestChipIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range mesh Index did not panic")
		}
	}()
	DefaultChipShape.Index(MeshCoord{U: CoreCols, V: 0})
}

func TestNearestSide(t *testing.T) {
	cs := DefaultChipShape
	side, hops := cs.NearestSide(MeshCoord{U: 0, V: 5})
	if side != Left || hops != 1 {
		t.Fatalf("leftmost tile: side=%v hops=%d, want left/1", side, hops)
	}
	side, hops = cs.NearestSide(MeshCoord{U: 23, V: 5})
	if side != Right || hops != 1 {
		t.Fatalf("rightmost tile: side=%v hops=%d, want right/1", side, hops)
	}
	// Middle-left tile U=11: 12 hops to the left, 13 to the right.
	side, hops = cs.NearestSide(MeshCoord{U: 11, V: 0})
	if side != Left || hops != 12 {
		t.Fatalf("U=11: side=%v hops=%d, want left/12", side, hops)
	}
}

func TestUVHops(t *testing.T) {
	u, v := UVHops(MeshCoord{2, 3}, MeshCoord{7, 1})
	if u != 5 || v != 2 {
		t.Fatalf("UVHops = %d,%d, want 5,2", u, v)
	}
}

func TestSideFor(t *testing.T) {
	for _, d := range []Dim{X, Y, Z} {
		if SideFor(d, 1) != Right || SideFor(d, -1) != Left {
			t.Fatalf("SideFor(%v) asymmetric assignment broken", d)
		}
	}
}

func TestSerdesConstantsConsistent(t *testing.T) {
	// 96 lanes spread over 6 neighbors = 16 per neighbor (Section II-B).
	if SerdesLanes != 6*SerdesPerNeighbor {
		t.Fatalf("%d lanes != 6 x %d", SerdesLanes, SerdesPerNeighbor)
	}
	// Total bidirectional bandwidth: 96 lanes x 29 Gb/s x 2 dirs = 5568 Gb/s
	// = 696 GB/s, matching Table I.
	gBps := SerdesLanes * SerdesGbps * 2 / 8
	if gBps != 696 {
		t.Fatalf("total bidir bandwidth = %d GB/s, want 696", gBps)
	}
}

func TestSideString(t *testing.T) {
	if Left.String() != "left" || Right.String() != "right" {
		t.Fatal("Side.String broken")
	}
}
