package topo

import (
	"testing"
	"testing/quick"
)

var paperShape = Shape{X: 4, Y: 4, Z: 8} // the 128-node machine of the paper

func TestShapeNodes(t *testing.T) {
	if n := paperShape.Nodes(); n != 128 {
		t.Fatalf("4x4x8 nodes = %d, want 128", n)
	}
	if n := (Shape{8, 8, 8}).Nodes(); n != 512 {
		t.Fatalf("8x8x8 nodes = %d, want 512 (max Anton 3 machine)", n)
	}
}

func TestShapeDiameter(t *testing.T) {
	// Paper: the 8-hop case is the global barrier across the 4x4x8 machine.
	if d := paperShape.Diameter(); d != 8 {
		t.Fatalf("4x4x8 diameter = %d, want 8", d)
	}
	if d := (Shape{2, 2, 2}).Diameter(); d != 3 {
		t.Fatalf("2x2x2 diameter = %d, want 3", d)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	s := Shape{3, 4, 5}
	for i := 0; i < s.Nodes(); i++ {
		c := s.CoordOf(i)
		if s.Index(c) != i {
			t.Fatalf("Index(CoordOf(%d)) = %d", i, s.Index(c))
		}
	}
}

func TestIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Index outside shape did not panic")
		}
	}()
	(Shape{2, 2, 2}).Index(Coord{2, 0, 0})
}

func TestWrap(t *testing.T) {
	s := Shape{4, 4, 8}
	cases := []struct{ in, want Coord }{
		{Coord{4, 0, 0}, Coord{0, 0, 0}},
		{Coord{-1, 0, 0}, Coord{3, 0, 0}},
		{Coord{0, 5, -9}, Coord{0, 1, 7}},
	}
	for _, c := range cases {
		if got := s.Wrap(c.in); got != c.want {
			t.Errorf("Wrap(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHopDistSymmetric(t *testing.T) {
	s := Shape{4, 4, 8}
	f := func(a, b uint16) bool {
		ca := s.CoordOf(int(a) % s.Nodes())
		cb := s.CoordOf(int(b) % s.Nodes())
		return s.HopDist(ca, cb) == s.HopDist(cb, ca)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopDistTriangle(t *testing.T) {
	s := Shape{4, 4, 8}
	f := func(a, b, c uint16) bool {
		ca := s.CoordOf(int(a) % s.Nodes())
		cb := s.CoordOf(int(b) % s.Nodes())
		cc := s.CoordOf(int(c) % s.Nodes())
		return s.HopDist(ca, cc) <= s.HopDist(ca, cb)+s.HopDist(cb, cc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopDistWraparound(t *testing.T) {
	s := Shape{4, 4, 8}
	if d := s.HopDist(Coord{0, 0, 0}, Coord{3, 0, 0}); d != 1 {
		t.Fatalf("wraparound X dist = %d, want 1", d)
	}
	if d := s.HopDist(Coord{0, 0, 0}, Coord{0, 0, 7}); d != 1 {
		t.Fatalf("wraparound Z dist = %d, want 1", d)
	}
	if d := s.HopDist(Coord{0, 0, 0}, Coord{2, 2, 4}); d != 8 {
		t.Fatalf("antipodal dist = %d, want 8", d)
	}
}

func TestNeighborInverse(t *testing.T) {
	s := Shape{4, 4, 8}
	s.ForEach(func(c Coord) {
		for _, d := range []Dim{X, Y, Z} {
			fwd := s.Neighbor(c, d, 1)
			if back := s.Neighbor(fwd, d, -1); back != c {
				t.Fatalf("neighbor inverse broken at %v dim %v", c, d)
			}
		}
	})
}

func TestNeighborTwoRing(t *testing.T) {
	// In a 2-wide dimension, + and - reach the same node (noted in DESIGN
	// for the 2x2x2 compression machine).
	s := Shape{2, 2, 2}
	c := Coord{0, 0, 0}
	if s.Neighbor(c, X, 1) != s.Neighbor(c, X, -1) {
		t.Fatal("2-ring +X and -X should coincide")
	}
}

func TestWithinHops(t *testing.T) {
	s := Shape{4, 4, 8}
	got := s.WithinHops(Coord{0, 0, 0}, 1)
	// self + 6 neighbors (all distinct in a 4x4x8 torus)
	if len(got) != 7 {
		t.Fatalf("WithinHops(1) = %d nodes, want 7", len(got))
	}
	all := s.WithinHops(Coord{1, 2, 3}, s.Diameter())
	if len(all) != s.Nodes() {
		t.Fatalf("WithinHops(diameter) = %d, want %d", len(all), s.Nodes())
	}
}

func TestDeltaMinimal(t *testing.T) {
	s := Shape{4, 4, 8}
	f := func(a, b uint16) bool {
		ca := s.CoordOf(int(a) % s.Nodes())
		cb := s.CoordOf(int(b) % s.Nodes())
		d := s.Delta(ca, cb)
		// Applying the delta must land on b.
		end := s.Wrap(Coord{ca.X + d.X, ca.Y + d.Y, ca.Z + d.Z})
		if end != cb {
			return false
		}
		// And each component must be minimal.
		return abs(d.X) <= s.X/2 && abs(d.Y) <= s.Y/2 && abs(d.Z) <= s.Z/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoordGetWith(t *testing.T) {
	c := Coord{1, 2, 3}
	for _, d := range []Dim{X, Y, Z} {
		want := map[Dim]int{X: 1, Y: 2, Z: 3}[d]
		if c.Get(d) != want {
			t.Fatalf("Get(%v) = %d, want %d", d, c.Get(d), want)
		}
		c2 := c.With(d, 9)
		if c2.Get(d) != 9 {
			t.Fatalf("With(%v) did not set", d)
		}
		if c2.Get(d.next()) == 9 && c.Get(d.next()) != 9 {
			t.Fatalf("With(%v) clobbered another dim", d)
		}
	}
}

func (d Dim) next() Dim { return (d + 1) % 3 }

func TestDimString(t *testing.T) {
	if X.String() != "X" || Y.String() != "Y" || Z.String() != "Z" {
		t.Fatal("Dim.String broken")
	}
	if Dim(9).String() != "Dim(9)" {
		t.Fatal("invalid Dim.String broken")
	}
}
