// Package topo describes the two network topologies of an Anton 3 machine:
// the inter-node 3D torus (dimensions X, Y, Z) and the on-chip 2D mesh
// (dimensions U, V — the paper uses U/V precisely to avoid confusion with the
// torus dimensions). It provides coordinates, wraparound distances, minimal
// route enumeration and the six dimension orders used by the oblivious
// routing policy.
package topo

import "fmt"

// Dim identifies one torus dimension.
type Dim uint8

// The three torus dimensions.
const (
	X Dim = iota
	Y
	Z
)

func (d Dim) String() string {
	switch d {
	case X:
		return "X"
	case Y:
		return "Y"
	case Z:
		return "Z"
	}
	return fmt.Sprintf("Dim(%d)", uint8(d))
}

// Coord is a node position within the torus.
type Coord struct {
	X, Y, Z int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// Get returns the coordinate along d.
func (c Coord) Get(d Dim) int {
	switch d {
	case X:
		return c.X
	case Y:
		return c.Y
	default:
		return c.Z
	}
}

// With returns a copy of c with the coordinate along d replaced by v.
func (c Coord) With(d Dim, v int) Coord {
	switch d {
	case X:
		c.X = v
	case Y:
		c.Y = v
	default:
		c.Z = v
	}
	return c
}

// Shape is the size of the torus in each dimension. Anton 3 machines comprise
// up to 512 nodes; the 128-node machine in the paper is 4 x 4 x 8.
type Shape struct {
	X, Y, Z int
}

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.X, s.Y, s.Z) }

// Nodes reports the total node count.
func (s Shape) Nodes() int { return s.X * s.Y * s.Z }

// Get returns the extent along d.
func (s Shape) Get(d Dim) int {
	switch d {
	case X:
		return s.X
	case Y:
		return s.Y
	default:
		return s.Z
	}
}

// Valid reports whether every dimension is at least 1.
func (s Shape) Valid() bool { return s.X >= 1 && s.Y >= 1 && s.Z >= 1 }

// Contains reports whether c is a legal coordinate in s.
func (s Shape) Contains(c Coord) bool {
	return c.X >= 0 && c.X < s.X && c.Y >= 0 && c.Y < s.Y && c.Z >= 0 && c.Z < s.Z
}

// Wrap maps an arbitrary integer coordinate into the torus.
func (s Shape) Wrap(c Coord) Coord {
	return Coord{mod(c.X, s.X), mod(c.Y, s.Y), mod(c.Z, s.Z)}
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// Index linearizes c (X fastest) for use as a slice index.
func (s Shape) Index(c Coord) int {
	if !s.Contains(c) {
		panic(fmt.Sprintf("topo: coord %v outside shape %v", c, s))
	}
	return c.X + s.X*(c.Y+s.Y*c.Z)
}

// CoordOf is the inverse of Index.
func (s Shape) CoordOf(i int) Coord {
	if i < 0 || i >= s.Nodes() {
		panic(fmt.Sprintf("topo: index %d outside shape %v", i, s))
	}
	x := i % s.X
	i /= s.X
	return Coord{x, i % s.Y, i / s.Y}
}

// dimDist returns the minimal signed step count from a to b along a ring of
// size n: the result is in (-n/2, n/2]. Positive means the + direction.
// For even rings the tie (distance exactly n/2) resolves to +.
func dimDist(a, b, n int) int {
	d := mod(b-a, n)
	if 2*d > n {
		d -= n
	}
	return d
}

// Delta returns the minimal signed per-dimension steps from a to b.
func (s Shape) Delta(a, b Coord) Coord {
	return Coord{
		dimDist(a.X, b.X, s.X),
		dimDist(a.Y, b.Y, s.Y),
		dimDist(a.Z, b.Z, s.Z),
	}
}

// HopDist returns the minimal number of inter-node hops between a and b.
func (s Shape) HopDist(a, b Coord) int {
	d := s.Delta(a, b)
	return abs(d.X) + abs(d.Y) + abs(d.Z)
}

// Diameter is the maximum HopDist between any node pair: the hop count of a
// machine-spanning fence or barrier.
func (s Shape) Diameter() int {
	return s.X/2 + s.Y/2 + s.Z/2
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Neighbor returns the node one hop from c along d in direction dir (+1/-1).
func (s Shape) Neighbor(c Coord, d Dim, dir int) Coord {
	if dir != 1 && dir != -1 {
		panic("topo: direction must be +1 or -1")
	}
	return s.Wrap(c.With(d, c.Get(d)+dir))
}

// ForEach calls fn for every coordinate in the shape in Index order.
func (s Shape) ForEach(fn func(Coord)) {
	for i := 0; i < s.Nodes(); i++ {
		fn(s.CoordOf(i))
	}
}

// WithinHops returns all coordinates at torus distance <= h from c,
// including c itself, in Index order.
func (s Shape) WithinHops(c Coord, h int) []Coord {
	var out []Coord
	s.ForEach(func(o Coord) {
		if s.HopDist(c, o) <= h {
			out = append(out, o)
		}
	})
	return out
}
