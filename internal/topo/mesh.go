package topo

import "fmt"

// The on-chip Core Network is a 2D mesh of Core Routers. The paper names its
// dimensions U (horizontal, 24 columns of Core Tiles) and V (vertical,
// 12 rows) to keep them distinct from the torus dimensions.

// Anton 3 floorplan constants (Section II-B).
const (
	CoreCols     = 24 // Core Tile columns per ASIC
	CoreRows     = 12 // Core Tile rows per ASIC
	EdgeTileRows = 12 // Edge Tiles per side
	EdgeCols     = 3  // Edge Router columns per Edge Network
	GCsPerTile   = 2  // Geometry Cores per Core Tile
	PPIMsPerTile = 2  // Pairwise Point Interaction Modules per Core Tile
	ICBsPerEdge  = 2  // Interaction Control Blocks per Edge Tile
	ERTRsPerEdge = 3  // Edge Routers per Edge Tile

	// SERDES provisioning (Table I / Section II-B).
	SerdesLanes       = 96 // bi-directional lanes per ASIC
	SerdesPerNeighbor = 16 // lanes to each of the six torus neighbors
	SerdesGbps        = 29 // per-lane, per-direction bandwidth
)

// Side identifies which edge of the chip an Edge Network is on.
type Side uint8

// Chip sides.
const (
	Left Side = iota
	Right
)

func (sd Side) String() string {
	if sd == Left {
		return "left"
	}
	return "right"
}

// MeshCoord locates a Core Tile on the on-chip mesh: U is the column
// (0..CoreCols-1, increasing left to right), V is the row (0..CoreRows-1).
type MeshCoord struct {
	U, V int
}

func (m MeshCoord) String() string { return fmt.Sprintf("[u%d,v%d]", m.U, m.V) }

// ChipShape is the dimensions of one chip's Core Tile array. Tests use
// scaled-down shapes; production Anton 3 is DefaultChipShape.
type ChipShape struct {
	Cols, Rows int
}

// DefaultChipShape is the real Anton 3 floorplan: 24 x 12 Core Tiles.
var DefaultChipShape = ChipShape{Cols: CoreCols, Rows: CoreRows}

// Valid reports whether the shape has at least one tile.
func (cs ChipShape) Valid() bool { return cs.Cols >= 1 && cs.Rows >= 1 }

// Tiles reports the Core Tile count.
func (cs ChipShape) Tiles() int { return cs.Cols * cs.Rows }

// Contains reports whether m is a legal tile coordinate.
func (cs ChipShape) Contains(m MeshCoord) bool {
	return m.U >= 0 && m.U < cs.Cols && m.V >= 0 && m.V < cs.Rows
}

// Index linearizes m (U fastest).
func (cs ChipShape) Index(m MeshCoord) int {
	if !cs.Contains(m) {
		panic(fmt.Sprintf("topo: mesh coord %v outside chip %dx%d", m, cs.Cols, cs.Rows))
	}
	return m.U + cs.Cols*m.V
}

// CoordOf is the inverse of Index.
func (cs ChipShape) CoordOf(i int) MeshCoord {
	if i < 0 || i >= cs.Tiles() {
		panic("topo: tile index out of range")
	}
	return MeshCoord{U: i % cs.Cols, V: i / cs.Cols}
}

// NearestSide reports which chip edge the tile is closer to (ties go Left)
// and the number of U hops to reach it. Packets targeting remote ASICs are
// routed directly to either edge of the chip, traveling along U only
// (Section III-B1).
func (cs ChipShape) NearestSide(m MeshCoord) (Side, int) {
	toLeft := m.U + 1 // hops to leave the array on the left
	toRight := cs.Cols - m.U
	if toLeft <= toRight {
		return Left, toLeft
	}
	return Right, toRight
}

// UVHops returns the U and V hop counts of the on-chip U->V dimension-order
// route between two tiles.
func UVHops(a, b MeshCoord) (uHops, vHops int) {
	return abs(a.U - b.U), abs(a.V - b.V)
}

// SideFor returns the chip side whose Edge Network owns the channel for
// torus direction (d, dir). Anton 3 splits the six directions between the
// two Edge Networks; we assign +X,+Y,+Z to the Right side and -X,-Y,-Z to
// the Left, a symmetric split that keeps per-side SERDES counts equal
// (3 neighbors x 16 lanes = 48 lanes per side).
func SideFor(d Dim, dir int) Side {
	if dir > 0 {
		return Right
	}
	return Left
}
