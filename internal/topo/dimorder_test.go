package topo

import (
	"testing"
	"testing/quick"
)

func TestAllDimOrdersValid(t *testing.T) {
	seen := make(map[DimOrder]bool)
	for i, o := range AllDimOrders {
		if !o.Valid() {
			t.Fatalf("order %d (%v) invalid", i, o)
		}
		if seen[o] {
			t.Fatalf("duplicate order %v", o)
		}
		seen[o] = true
		if o.Index() != i {
			t.Fatalf("Index(%v) = %d, want %d", o, o.Index(), i)
		}
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 distinct orders, got %d", len(seen))
	}
}

func TestDimOrderInvalid(t *testing.T) {
	bad := DimOrder{X, X, Y}
	if bad.Valid() {
		t.Fatal("XXY should be invalid")
	}
	if bad.Index() != -1 {
		t.Fatal("invalid order should have Index -1")
	}
}

func TestDimOrderString(t *testing.T) {
	if OrderZYX.String() != "ZYX" {
		t.Fatalf("String = %q", OrderZYX.String())
	}
}

func TestRouteReachesDestination(t *testing.T) {
	s := Shape{4, 4, 8}
	f := func(a, b uint16, oi uint8) bool {
		src := s.CoordOf(int(a) % s.Nodes())
		dst := s.CoordOf(int(b) % s.Nodes())
		o := AllDimOrders[int(oi)%6]
		nodes := RouteNodes(s, src, dst, o)
		return nodes[len(nodes)-1] == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteMinimal(t *testing.T) {
	s := Shape{4, 4, 8}
	f := func(a, b uint16, oi uint8) bool {
		src := s.CoordOf(int(a) % s.Nodes())
		dst := s.CoordOf(int(b) % s.Nodes())
		o := AllDimOrders[int(oi)%6]
		return len(Route(s, src, dst, o)) == s.HopDist(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteDimensionOrder(t *testing.T) {
	// Once a route leaves a dimension it must never return to it.
	s := Shape{4, 4, 8}
	f := func(a, b uint16, oi uint8) bool {
		src := s.CoordOf(int(a) % s.Nodes())
		dst := s.CoordOf(int(b) % s.Nodes())
		o := AllDimOrders[int(oi)%6]
		steps := Route(s, src, dst, o)
		rank := map[Dim]int{o[0]: 0, o[1]: 1, o[2]: 2}
		last := -1
		for _, st := range steps {
			r := rank[st.Dim]
			if r < last {
				return false
			}
			last = r
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteSameDirectionPerDim(t *testing.T) {
	// Minimal routing never doubles back within a dimension.
	s := Shape{4, 4, 8}
	f := func(a, b uint16, oi uint8) bool {
		src := s.CoordOf(int(a) % s.Nodes())
		dst := s.CoordOf(int(b) % s.Nodes())
		o := AllDimOrders[int(oi)%6]
		dir := map[Dim]int{}
		for _, st := range Route(s, src, dst, o) {
			if prev, ok := dir[st.Dim]; ok && prev != st.Dir {
				return false
			}
			dir[st.Dim] = st.Dir
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteExample(t *testing.T) {
	s := Shape{4, 4, 8}
	steps := Route(s, Coord{0, 0, 0}, Coord{1, 3, 2}, OrderXYZ)
	// X: +1 (1 hop); Y: 0->3 is -1 with wraparound (1 hop); Z: +2 (2 hops).
	want := []Step{{X, 1}, {Y, -1}, {Z, 1}, {Z, 1}}
	if len(steps) != len(want) {
		t.Fatalf("route = %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("route = %v, want %v", steps, want)
		}
	}
}

func TestRouteZeroLength(t *testing.T) {
	s := Shape{4, 4, 8}
	c := Coord{2, 2, 2}
	if len(Route(s, c, c, OrderXYZ)) != 0 {
		t.Fatal("self-route should be empty")
	}
	nodes := RouteNodes(s, c, c, OrderXYZ)
	if len(nodes) != 1 || nodes[0] != c {
		t.Fatal("self RouteNodes should be [c]")
	}
}

func TestStepString(t *testing.T) {
	if (Step{X, 1}).String() != "X+" || (Step{Z, -1}).String() != "Z-" {
		t.Fatal("Step.String broken")
	}
}

func TestLegalNextStepsMinimal(t *testing.T) {
	s := Shape{4, 4, 8}
	f := func(a, b uint16) bool {
		cur := s.CoordOf(int(a) % s.Nodes())
		dst := s.CoordOf(int(b) % s.Nodes())
		steps := LegalNextSteps(s, cur, dst, nil)
		if cur == dst {
			return len(steps) == 0
		}
		if len(steps) == 0 {
			return false
		}
		h := s.HopDist(cur, dst)
		for _, st := range steps {
			next := s.Neighbor(cur, st.Dim, st.Dir)
			// Every candidate must strictly reduce the remaining distance.
			if s.HopDist(next, dst) != h-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLegalNextStepsTieReturnsBothDirections(t *testing.T) {
	s := Shape{4, 1, 1}
	steps := LegalNextSteps(s, Coord{0, 0, 0}, Coord{2, 0, 0}, nil)
	want := []Step{{X, 1}, {X, -1}}
	if len(steps) != 2 || steps[0] != want[0] || steps[1] != want[1] {
		t.Fatalf("tie candidates = %v, want %v", steps, want)
	}
}

func TestLegalNextStepsOrderedAndReusesBuf(t *testing.T) {
	s := Shape{4, 4, 8}
	buf := make([]Step, 0, 6)
	steps := LegalNextSteps(s, Coord{0, 0, 0}, Coord{1, 1, 1}, buf)
	want := []Step{{X, 1}, {Y, 1}, {Z, 1}}
	if len(steps) != 3 {
		t.Fatalf("steps = %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("steps = %v, want %v", steps, want)
		}
	}
	if &steps[0] != &buf[:1][0] {
		t.Fatal("LegalNextSteps should append into the caller's buffer")
	}
}
