package topo

import "fmt"

// DimOrder is a permutation of the three torus dimensions. Request packets on
// Anton 3 follow a dimension-order route using any of the six possible
// orders, chosen at random per packet independent of load ("minimal,
// oblivious routing"); response packets are restricted to XYZ.
type DimOrder [3]Dim

// The six dimension orders of Section III-B2.
var (
	OrderXYZ = DimOrder{X, Y, Z}
	OrderXZY = DimOrder{X, Z, Y}
	OrderYXZ = DimOrder{Y, X, Z}
	OrderYZX = DimOrder{Y, Z, X}
	OrderZXY = DimOrder{Z, X, Y}
	OrderZYX = DimOrder{Z, Y, X}
)

// AllDimOrders lists every dimension order; index into it with a value in
// [0,6) to pick one at random.
var AllDimOrders = [6]DimOrder{OrderXYZ, OrderXZY, OrderYXZ, OrderYZX, OrderZXY, OrderZYX}

func (o DimOrder) String() string {
	return fmt.Sprintf("%s%s%s", o[0], o[1], o[2])
}

// Valid reports whether o is a permutation of {X, Y, Z}.
func (o DimOrder) Valid() bool {
	var seen [3]bool
	for _, d := range o {
		if d > Z || seen[d] {
			return false
		}
		seen[d] = true
	}
	return true
}

// Index returns the position of o in AllDimOrders, or -1 if invalid.
func (o DimOrder) Index() int {
	for i, v := range AllDimOrders {
		if v == o {
			return i
		}
	}
	return -1
}

// Step is one inter-node hop of a route.
type Step struct {
	Dim Dim
	Dir int // +1 or -1
}

func (st Step) String() string {
	if st.Dir > 0 {
		return st.Dim.String() + "+"
	}
	return st.Dim.String() + "-"
}

// Route returns the sequence of hops from src to dst in shape s following
// dimension order o, taking the minimal direction around each ring (ties on
// even rings go to +, matching Shape.Delta).
func Route(s Shape, src, dst Coord, o DimOrder) []Step {
	if !o.Valid() {
		panic("topo: invalid dimension order")
	}
	d := s.Delta(src, dst)
	steps := make([]Step, 0, s.HopDist(src, dst))
	for _, dim := range o {
		n := d.Get(dim)
		dir := 1
		if n < 0 {
			dir, n = -1, -n
		}
		for i := 0; i < n; i++ {
			steps = append(steps, Step{Dim: dim, Dir: dir})
		}
	}
	return steps
}

// RouteTie is Route with an explicit direction choice for distance ties:
// in an even ring, a node exactly n/2 away is minimally reachable in either
// direction, and hardware load-balances across both physical links.
// plusOnTie selects the + direction for such ties (Route always picks +).
func RouteTie(s Shape, src, dst Coord, o DimOrder, plusOnTie bool) []Step {
	return AppendRouteTie(make([]Step, 0, s.HopDist(src, dst)), s, src, dst, o, plusOnTie)
}

// AppendRouteTie is RouteTie appending into buf, for callers replaying
// many routes with a reusable buffer.
func AppendRouteTie(buf []Step, s Shape, src, dst Coord, o DimOrder, plusOnTie bool) []Step {
	if !o.Valid() {
		panic("topo: invalid dimension order")
	}
	d := s.Delta(src, dst)
	for _, dim := range o {
		n := d.Get(dim)
		size := s.Get(dim)
		dir := 1
		if n < 0 {
			dir, n = -1, -n
		}
		if !plusOnTie && n > 0 && 2*n == size {
			dir = -dir
		}
		for i := 0; i < n; i++ {
			buf = append(buf, Step{Dim: dim, Dir: dir})
		}
	}
	return buf
}

// LegalNextSteps appends to buf the minimal next hops from cur toward dst:
// for every dimension whose coordinate still differs, the step in the
// minimal direction around that ring. On an even ring exactly halfway
// around, both directions are minimal and both are returned (+ first).
// Results are ordered X, Y, Z, so callers that index or tie-break by
// position get a deterministic choice. The result is empty iff cur == dst.
//
// This is the candidate set an adaptive routing policy chooses from: any
// returned step keeps the route minimal.
func LegalNextSteps(s Shape, cur, dst Coord, buf []Step) []Step {
	d := s.Delta(cur, dst)
	for _, dim := range OrderXYZ {
		n := d.Get(dim)
		if n == 0 {
			continue
		}
		dir := 1
		if n < 0 {
			dir, n = -1, -n
		}
		buf = append(buf, Step{Dim: dim, Dir: dir})
		if 2*n == s.Get(dim) {
			buf = append(buf, Step{Dim: dim, Dir: -dir})
		}
	}
	return buf
}

// RouteNodes returns the node sequence visited by Route, starting with src
// and ending with dst.
func RouteNodes(s Shape, src, dst Coord, o DimOrder) []Coord {
	steps := Route(s, src, dst, o)
	nodes := make([]Coord, 0, len(steps)+1)
	nodes = append(nodes, src)
	cur := src
	for _, st := range steps {
		cur = s.Neighbor(cur, st.Dim, st.Dir)
		nodes = append(nodes, cur)
	}
	return nodes
}
