package flow

import (
	"reflect"
	"testing"

	"anton3/internal/route"
	"anton3/internal/synth"
	"anton3/internal/topo"
)

// TestSaturateShardCountInvariance is the tier-1 guarantee behind running
// `anton3 saturate` with -shards: a closed-loop grid must be byte-identical
// at every shard count. It is a harder case than the netsweep analog:
// besides same-picosecond channel ties, the closed loop's credit returns,
// head-of-line unparks and source revivals are all runtime events whose
// relative order lineage must pin. All four policies run, including the
// credit-steered one whose per-hop decisions read live credit state.
func TestSaturateShardCountInvariance(t *testing.T) {
	shape := topo.Shape{X: 4, Y: 4, Z: 4}
	pols := route.SaturatePolicies()
	// Transpose adds same-node packets (no routing draw); tornado at load 3
	// saturates, exercising parking, escape hops and source backpressure.
	pats := []synth.Pattern{synth.Uniform(), synth.Tornado(), synth.Transpose()}
	loads := []float64{1, 3}
	packets, warmup := 12, 4
	if testing.Short() {
		pols = []route.Policy{route.Random(), route.CreditEcho()}
		pats = pats[1:]
		loads = loads[1:]
	}
	for _, pol := range pols {
		for _, pat := range pats {
			ref := make([]Point, 0, len(loads))
			h := NewHarness(shape, pol, 1, 0, 0)
			for _, load := range loads {
				ref = append(ref, h.RunPoint(pat, load, packets, warmup, 77))
			}
			for _, shards := range []int{2, 4} {
				hs := NewHarness(shape, pol, shards, 0, 0)
				for li, load := range loads {
					if got := hs.RunPoint(pat, load, packets, warmup, 77); got != ref[li] {
						t.Fatalf("%s/%s load %.1f: point at %d shards %+v, want %+v",
							pol.Name(), pat.Name, load, shards, got, ref[li])
					}
				}
			}
		}
	}
}

// TestSaturateSweepShardInvariance runs the full sweep+knee pipeline (the
// saturate cell as the runner executes it) at several shard counts and
// requires identical results and identical rendered bytes.
func TestSaturateSweepShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestSaturateShardCountInvariance in short mode")
	}
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	pols := route.SaturatePolicies()
	loads := []float64{0.5, 2}
	ref := Sweep(shape, pols, synth.Tornado(), loads, 16, 4, 99, 1, 0, 0, nil)
	refText := ref.Render()
	for _, shards := range []int{2, 4} {
		got := Sweep(shape, pols, synth.Tornado(), loads, 16, 4, 99, shards, 0, 0, nil)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("sweep at %d shards differs:\n%s\nvs\n%s", shards, got.Render(), refText)
		}
		if got.Render() != refText {
			t.Fatalf("render at %d shards not byte-identical", shards)
		}
	}
}

// TestShardedSaturateStress drives the window/outbox protocol with uneven
// shard counts at a saturating load over several seeds; under -race it is
// the regression test for the credit messages' happens-before edges.
func TestShardedSaturateStress(t *testing.T) {
	shape := topo.Shape{X: 4, Y: 4, Z: 4}
	shardCounts := []int{2, 3, 5, 8}
	seeds := []uint64{1, 42}
	if testing.Short() {
		shardCounts = []int{3, 8}
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		ref := Run(shape, route.Random(), synth.Tornado(), 3, 16, 4, seed, 1)
		for _, shards := range shardCounts {
			h := NewHarness(shape, route.Random(), shards, 0, 0)
			// Two points per harness so reuse and sharding compose.
			for i := 0; i < 2; i++ {
				if got := h.RunPoint(synth.Tornado(), 3, 16, 4, seed); got != ref {
					t.Fatalf("seed %d shards %d: %+v, want %+v", seed, shards, got, ref)
				}
			}
		}
	}
}
