// Package flow is the closed-loop network-evaluation subsystem: the
// classic interconnect saturation methodology (offered vs. accepted
// throughput under endpoint backpressure, with a located saturation knee)
// applied to the Anton 3 torus. It complements internal/synth's open-loop
// netsweep rig: where netsweep times a fixed packet set, flow runs the
// machine with bounded per-VC ingress queues (machine.Config.VCQueueFlits)
// and finite source injection windows, so the network can refuse traffic —
// and the refusal, not just the latency, is the measurement.
//
// Every random choice is pre-drawn from the cell seed through
// synth.Schedule (packet.PreRouted), and all runtime actors carry lineage,
// so a sweep is byte-identical across worker counts, machine reuse, and
// kernel shard counts — the same guarantee netsweep has.
package flow

import (
	"math"
	"sort"

	"anton3/internal/fault"
	"anton3/internal/machine"
	"anton3/internal/packet"
	"anton3/internal/resultstore"
	"anton3/internal/route"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/synth"
	"anton3/internal/telemetry"
	"anton3/internal/topo"
	"anton3/internal/trace"
)

// Defaults for the closed-loop rig. The per-VC ingress queue is sized to
// the channel's bandwidth-delay product, not the router's 8-flit input
// queues: a credit loop spans serialization plus two wire flights
// (~2 x 26.9 ns), and a queue shallower than wire-rate x loop time would
// throttle every VC far below channel capacity — the Channel Adapter "has
// enough buffering that the channel itself is the backpressure point"
// (Section V-C), and 64 flits is that much buffering with a small margin.
// The injection window is 8 packets per source.
const (
	DefaultQueueFlits = 64
	DefaultInjDepth   = 8
)

// Point is the closed-loop measurement at one nominal offered load.
//
// Offered is the realized offered rate: the traffic the sources *wanted*
// to inject, in the netsweep load unit (192-bit reference packets per
// channel-slice serialization interval per node), measured over the
// pre-drawn schedule horizon. Accepted is what the network actually took:
// the same unit over the horizon of real network entries. Below
// saturation the two are equal; past it, sources stall on refused credits
// and Accepted plateaus at the network's capacity. Latency is measured
// from the intended injection instant, so source-queue waiting time counts
// — the classic closed-loop latency that diverges at saturation.
//
// Undelivered is a safety net: nonzero only if the run wedged (packets
// left parked with no credits ever coming). The machine's escape VC pair
// makes that structurally impossible — mixed per-packet dimension orders
// would otherwise close buffer cycles under bounded queues — so a nonzero
// value indicates a flow-control regression; the property tests pin it at
// zero and a wedged point counts as saturated.
type Point struct {
	Load        float64 `json:"load"`
	Offered     float64 `json:"offered"`
	Accepted    float64 `json:"accepted"`
	AvgNs       float64 `json:"avg_ns"`
	P99Ns       float64 `json:"p99_ns"`
	Undelivered int     `json:"undelivered,omitempty"`
}

// Ratio is the accepted/offered fraction, the saturation detector's input.
func (p Point) Ratio() float64 { return p.Accepted / p.Offered }

// Harness runs closed-loop measurements on one long-lived machine: one
// (shape, policy, shard count) triple serves any number of (pattern, load,
// seed) points via RunPoint, allocation-free in steady state like the
// netsweep harness.
type Harness struct {
	m     *machine.Machine
	shape topo.Shape
	core  packet.CoreID
	base  sim.Time // serialization time of the reference packet (load unit)
	injQ  int      // injection-window depth per source, in packets

	total  int
	warmup int
	sched  synth.Schedule

	emits []emitter
	srcs  []source

	// Per-shard measurement state: network entries happen on the source
	// node's shard, deliveries on the destination node's shard; each shard
	// writes its own accumulators and the point statistics reduce them with
	// order-insensitive operations (sum, max, sort).
	sinks     []sink
	lats      [][]float64
	delivered []int64
	entered   []int64
	lastEntry []sim.Time
	all       []float64

	// PointsRun counts the points this harness actually simulated over
	// its lifetime — cache hits are excluded — so the knee-search and
	// warm-cache tests can pin probe budgets.
	PointsRun int

	// Cache, when non-nil, memoizes every RunPoint result in the store,
	// content-addressed by (shape, policy, pattern, queue depths, load,
	// per-node budgets, seed) — see resultstore.KeyFor. A hit returns
	// the recorded Point without touching the machine; results are
	// bit-identical either way because a point is a pure function of
	// that key (the shard count deliberately stays out of it — the
	// machine's shard-invariance guarantee makes results shared across
	// shard counts). Set it right after NewHarness, before any point
	// runs.
	Cache *resultstore.Store

	// keyCfg carries the harness-constant part of the cache key.
	keyCfg pointKeyCfg

	// faultCanon is the canonical fault-plan string of a fault harness
	// (empty on healthy ones). When set, cache keys switch to the
	// fault-carrying key config so faulted results can never collide with
	// healthy ones — and healthy harnesses keep their PR 8 keys untouched.
	faultCanon string

	// Telemetry state (EnableMetrics): metrics gates the layer, telAgg
	// accumulates every point's merged telemetry block over the harness's
	// lifetime (cache replays included — a hit merges the recorded
	// block), ptTel holds the most recent point's block, and lastEnd the
	// most recent run's final event timestamp (the heatmap's busy-time
	// normalizer). All value types: zero per-point allocations.
	metrics bool
	telAgg  telemetry.Shard
	ptTel   telemetry.Shard
	lastEnd sim.Time
}

// telPoint is the cache record of a metrics-enabled point: the Point
// plus the run's merged telemetry block, stored under the "+tel" key
// kind so metrics-off replays never see (or miss on) telemetry data.
type telPoint struct {
	P   Point           `json:"p"`
	Tel telemetry.Shard `json:"tel"`
}

// pointKeyCfg is the full configuration a closed-loop point depends on
// besides its seed; it becomes the canonical cache-key config.
type pointKeyCfg struct {
	Shape      string
	Policy     string
	Pattern    string
	QueueFlits int
	InjDepth   int
	Load       float64
	Packets    int
	Warmup     int
}

// faultPointKeyCfg is pointKeyCfg plus the canonical fault plan. It is a
// separate struct — used only when a plan is active — so healthy points
// hash exactly the field set they always did (resultstore hashes field
// names and values, not the struct type), keeping every pre-fault cache
// key byte-identical, while any one-link or one-trip-time difference in a
// plan lands in Faults and produces a distinct key.
type faultPointKeyCfg struct {
	Shape      string
	Policy     string
	Pattern    string
	QueueFlits int
	InjDepth   int
	Load       float64
	Packets    int
	Warmup     int
	Faults     string
}

// NewHarness builds the closed-loop measurement machine: compression off
// (network-only timing), per-VC ingress queues of queueFlits flits,
// injection windows of injDepth packets, sharded across the given kernel
// count (0 or 1 = sequential). queueFlits and injDepth of 0 take the
// package defaults.
func NewHarness(shape topo.Shape, policy route.Policy, shards, queueFlits, injDepth int) *Harness {
	return NewFaultHarness(shape, policy, shards, queueFlits, injDepth, nil)
}

// NewFaultHarness is NewHarness with a link-fault plan applied to the
// machine (nil or empty = healthy, identical to NewHarness). The load unit
// (h.base) is always the healthy serialization time — serdes degradation
// applies inside transmit, not SerializeTime — so offered loads on a
// degraded network mean the same thing they mean on a healthy one, and
// knee shifts are measured in a fixed unit.
func NewFaultHarness(shape topo.Shape, policy route.Policy, shards, queueFlits, injDepth int, plan *fault.Plan) *Harness {
	if queueFlits <= 0 {
		queueFlits = DefaultQueueFlits
	}
	if injDepth <= 0 {
		injDepth = DefaultInjDepth
	}
	mcfg := machine.DefaultConfig(shape)
	mcfg.Compress = serdes.CompressConfig{} // raw wire timing
	mcfg.Policy = policy
	mcfg.Shards = shards
	mcfg.VCQueueFlits = queueFlits
	if !plan.Empty() {
		mcfg.Faults = plan
	}
	m := machine.New(mcfg)
	refCh := m.Node(shape.CoordOf(0)).ChannelSpecs()[0]
	h := &Harness{
		m:     m,
		shape: shape,
		core:  m.GC(shape.CoordOf(0), 0).ID,
		base:  m.Node(shape.CoordOf(0)).Channel(refCh).SerializeTime(synth.RefPacketBits),
		injQ:  injDepth,
		keyCfg: pointKeyCfg{
			Shape:      shape.String(),
			Policy:     policy.Name(),
			QueueFlits: queueFlits,
			InjDepth:   injDepth,
		},
	}
	if !plan.Empty() {
		h.faultCanon = plan.Canon()
	}
	P := m.NumShards()
	h.sinks = make([]sink, P)
	h.lats = make([][]float64, P)
	h.delivered = make([]int64, P)
	h.entered = make([]int64, P)
	h.lastEntry = make([]sim.Time, P)
	for s := range h.sinks {
		h.sinks[s] = sink{h: h, shard: int32(s)}
	}
	return h
}

// EnableMetrics arms the telemetry layer for every subsequent point:
// the machine gets per-shard counter/histogram blocks, and each point's
// merged block lands in the harness accumulator (Telemetry). Call right
// after NewHarness; metrics-on points cache under a distinct key kind.
func (h *Harness) EnableMetrics() {
	h.metrics = true
	h.m.EnableTelemetry()
}

// AttachTrace arms packet-lifecycle tracing on the harness machine with
// the given track prefix (DrainTrace collects the spans).
func (h *Harness) AttachTrace(prefix string) { h.m.AttachPacketTrace(prefix) }

// DrainTrace moves all recorded packet-lifecycle spans into dst.
func (h *Harness) DrainTrace(dst *trace.Recorder) { h.m.DrainPacketTrace(dst) }

// Telemetry returns the harness-lifetime accumulated telemetry block
// (zero-valued unless EnableMetrics was called).
func (h *Harness) Telemetry() *telemetry.Shard { return &h.telAgg }

// QueueFlits reports the machine's per-VC ingress queue depth.
func (h *Harness) QueueFlits() int { return h.m.Config().VCQueueFlits }

// InjDepth reports the per-source injection-window depth.
func (h *Harness) InjDepth() int { return h.injQ }

// source is one node's closed-loop traffic generator. Its injection window
// holds at most injQ packets that the network has refused (parked at their
// first-hop channel for lack of credits); when the window is full, the
// offered process backs up into backlog and drains — in schedule order —
// as acceptances free slots.
type source struct {
	h       *Harness
	node    int32
	shard   int32
	parked  int32 // packets currently refused by the network
	backlog int32 // offered instants that found the window full
	sent    int32 // packets emitted so far (next flat = node*total + sent)
}

// Accepted frees an injection-window slot (packet.Accepter): the parked
// packet started injecting. Backlogged offered instants drain while the
// window has room.
func (s *source) Accepted(p *packet.Packet) {
	h := s.h
	h.noteEntry(int(s.shard), h.m.NodeKernel(p.SrcNode).Now())
	s.parked--
	for s.backlog > 0 && int(s.parked) < h.injQ {
		s.backlog--
		h.emit(s)
	}
}

// emitter fires one offered instant of one node's schedule: a
// setup-scheduled sim.Actor (one per node, scheduled once per instant), so
// the closed-loop steady state carries no closures and the emission events
// keep global setup order — the property the shard-invariance of the rig
// rests on.
type emitter struct {
	h    *Harness
	node int32
}

// Act offers the node's next packet to its source.
func (e *emitter) Act() {
	s := &e.h.srcs[e.node]
	if int(s.parked) >= e.h.injQ || s.backlog > 0 {
		s.backlog++
		return
	}
	e.h.emit(s)
}

// emit builds and sends the source's next scheduled packet. A packet the
// network accepts immediately is a network entry now; a refused one parks
// (packet.WalkParked) and enters when its Accepted callback fires.
func (h *Harness) emit(s *source) {
	flat := int(s.node)*h.total + int(s.sent)
	s.sent++
	src := h.shape.CoordOf(int(s.node))
	dst := h.shape.CoordOf(int(h.sched.Dsts[flat]))
	p := h.m.NewPacketAt(src)
	atom := uint32(flat)
	p.Type = packet.Position
	p.SrcNode, p.DstNode = src, dst
	p.SrcCore, p.DstCore = h.core, h.core
	p.AtomID = atom
	p.SetQuad([4]uint32{atom, 0xfeed, 0xbeef, 0xcafe})
	p.PreRouted = true
	p.Order = h.sched.Orders[flat]
	p.Tie = atom&2 != 0
	p.Inj = uint64(flat)
	p.OnAccept = s
	h.m.Send(p, &h.sinks[h.m.ShardOf(dst)])
	if p.State == packet.WalkParked {
		s.parked++
	} else {
		h.noteEntry(int(s.shard), h.m.NodeKernel(src).Now())
	}
}

// noteEntry records one network entry on a shard's accumulators.
func (h *Harness) noteEntry(shard int, now sim.Time) {
	h.entered[shard]++
	if now > h.lastEntry[shard] {
		h.lastEntry[shard] = now
	}
}

// sink records deliveries landing on one shard (packet.Deliverer).
type sink struct {
	h     *Harness
	shard int32
}

// Deliver records one delivered packet; latency runs from the packet's
// intended injection instant, so source stalling is charged to it.
func (s *sink) Deliver(p *packet.Packet) {
	h := s.h
	h.delivered[s.shard]++
	flat := int(p.AtomID)
	if flat%h.total < h.warmup {
		return
	}
	now := h.m.NodeKernel(p.DstNode).Now()
	h.lats[s.shard] = append(h.lats[s.shard], (now - h.sched.Times[flat]).Nanoseconds())
}

// RunPoint offers Pattern traffic at one nominal load through the
// closed-loop sources and measures what the network accepted. The machine
// is reset to the seed; every random choice derives from the seed alone
// (synth.Schedule pre-draw + packet.PreRouted), so results are byte-stable
// across hosts, worker counts, machine reuse, and shard counts.
//
// packets and warmup are per node at unit load and scale up with the
// offered load, so the offered time horizon is load-independent
// (~packets x the reference serialization interval). Without the scaling,
// high-load runs would finish offering before backpressure could
// propagate — the network's queues would absorb the whole burst and every
// load would read as accepted. With it, a saturated run is always several
// queue-fill times long, which is what lets entry stalling (the accepted
// throughput signal) reach steady state.
func (h *Harness) RunPoint(pat synth.Pattern, load float64, packets, warmup int, seed uint64) Point {
	if load <= 0 || packets <= 0 {
		panic("flow: load and packet count must be positive")
	}
	if h.Cache == nil {
		return h.runPoint(pat, load, packets, warmup, seed)
	}
	cfg := h.keyCfg
	cfg.Pattern = pat.Name
	cfg.Load = load
	cfg.Packets, cfg.Warmup = packets, warmup
	key := h.pointKey(seed, cfg)
	if h.metrics {
		// Metrics-on points store (Point, telemetry block) under the
		// "+tel" kind; a hit replays the block into the accumulator so
		// warm sweeps report identical telemetry.
		var rec telPoint
		if h.Cache.Get(key, &rec) {
			h.ptTel = rec.Tel
			h.telAgg.Merge(&rec.Tel)
			return rec.P
		}
		pt := h.runPoint(pat, load, packets, warmup, seed)
		h.Cache.Put(key, telPoint{P: pt, Tel: h.ptTel})
		return pt
	}
	var pt Point
	if h.Cache.Get(key, &pt) {
		return pt
	}
	pt = h.runPoint(pat, load, packets, warmup, seed)
	h.Cache.Put(key, pt)
	return pt
}

// pointKey builds the cache key for one fully specified point: the plain
// pointKeyCfg on a healthy harness (byte-identical to every key minted
// before fault injection existed), the fault-carrying config otherwise.
func (h *Harness) pointKey(seed uint64, cfg pointKeyCfg) resultstore.Key {
	kind := "flow/point"
	if h.metrics {
		// Metrics-on records carry the telemetry block alongside the
		// Point; a distinct kind keeps the two namespaces disjoint.
		kind = "flow/point+tel"
	}
	if h.faultCanon == "" {
		return resultstore.KeyFor(kind, seed, cfg)
	}
	return resultstore.KeyFor(kind, seed, faultPointKeyCfg{
		Shape:      cfg.Shape,
		Policy:     cfg.Policy,
		Pattern:    cfg.Pattern,
		QueueFlits: cfg.QueueFlits,
		InjDepth:   cfg.InjDepth,
		Load:       cfg.Load,
		Packets:    cfg.Packets,
		Warmup:     cfg.Warmup,
		Faults:     h.faultCanon,
	})
}

// runPoint is the simulation body of RunPoint (cache misses land here).
func (h *Harness) runPoint(pat synth.Pattern, load float64, packets, warmup int, seed uint64) Point {
	h.PointsRun++
	if scale := math.Max(1, load); scale > 1 {
		packets = int(math.Ceil(float64(packets) * scale))
		warmup = int(math.Ceil(float64(warmup) * scale))
	}
	h.m.Reset(seed)
	h.total = warmup + packets
	h.warmup = warmup
	nodes := h.shape.Nodes()
	total := h.total
	for s := range h.lats {
		h.lats[s] = h.lats[s][:0]
		h.delivered[s] = 0
		h.entered[s] = 0
		h.lastEntry[s] = 0
	}

	intendedEnd := h.sched.Draw(h.m, h.shape, pat, float64(h.base)/load, total, seed)

	if cap(h.srcs) < nodes {
		h.srcs = make([]source, nodes)
		h.emits = make([]emitter, nodes)
	}
	h.srcs = h.srcs[:nodes]
	h.emits = h.emits[:nodes]
	for i := 0; i < nodes; i++ {
		h.srcs[i] = source{h: h, node: int32(i), shard: int32(h.m.ShardOf(h.shape.CoordOf(i)))}
		h.emits[i] = emitter{h: h, node: int32(i)}
	}

	// Offer the schedule in node-major (setup sequence) order, each
	// instant on the kernel of the shard owning its source node.
	for i := 0; i < nodes; i++ {
		kern := h.m.NodeKernel(h.shape.CoordOf(i))
		for k := 0; k < total; k++ {
			kern.AtActor(h.sched.Times[i*total+k], &h.emits[i])
		}
	}

	// Lineage ordering at EVERY shard count (including one): credit
	// arrivals revive parked packets from foreign events, where lineage
	// rank and plain schedule order legitimately disagree — so the
	// single-shard run adopts the content-based order too, and all shard
	// counts produce identical bytes.
	h.m.ForceLineageRun()
	h.lastEnd = h.m.Run()

	if c := h.m.Telemetry(); c != nil {
		h.m.CollectChannelBusy()
		h.ptTel = *c.Merged()
		h.telAgg.Merge(&h.ptTel)
	}

	var entered, delivered int64
	var lastEntry sim.Time
	h.all = h.all[:0]
	for s := range h.lats {
		h.all = append(h.all, h.lats[s]...)
		entered += h.entered[s]
		delivered += h.delivered[s]
		if h.lastEntry[s] > lastEntry {
			lastEntry = h.lastEntry[s]
		}
	}

	pt := Point{
		Load: load,
		// Realized offered rate over the schedule horizon; the per-node
		// average, in the netsweep load unit.
		Offered:     float64(total) * float64(h.base) / float64(intendedEnd),
		Undelivered: nodes*total - int(delivered),
	}
	if lastEntry > 0 {
		pt.Accepted = float64(entered) / float64(nodes) * float64(h.base) / float64(lastEntry)
	}
	lats := h.all
	if len(lats) > 0 {
		sort.Float64s(lats)
		var sum float64
		for _, l := range lats {
			sum += l
		}
		pt.AvgNs = sum / float64(len(lats))
		pt.P99Ns = lats[len(lats)*99/100]
	}
	return pt
}

// Run measures one closed-loop point on a private machine (one-shot form
// of a Harness point; sweeps reuse a Harness instead).
func Run(shape topo.Shape, policy route.Policy, pat synth.Pattern, load float64, packets, warmup int, seed uint64, shards int) Point {
	h := NewHarness(shape, policy, shards, 0, 0)
	return h.RunPoint(pat, load, packets, warmup, seed)
}
