package flow

import (
	"testing"

	"anton3/internal/fault"
	"anton3/internal/resultstore"
	"anton3/internal/route"
	"anton3/internal/synth"
	"anton3/internal/telemetry"
	"anton3/internal/testutil"
	"anton3/internal/topo"
)

// telemetryPoint runs one metrics-armed closed-loop point and returns the
// merged telemetry block.
func telemetryPoint(shape topo.Shape, pol route.Policy, shards int, plan *fault.Plan) telemetry.Shard {
	h := NewFaultHarness(shape, pol, shards, 0, 0, plan)
	h.EnableMetrics()
	h.RunPoint(synth.Tornado(), 3, 12, 4, 77)
	return *h.Telemetry()
}

// TestTelemetryShardInvariance is the telemetry half of the tier-1 shard
// guarantee: every counter and every histogram bucket of a metrics-armed
// point must be identical at every shard count — healthy, and with a
// fault tripping mid-run (the hard case: the trip reroutes parked packets
// on one shard, so any shard-order dependence in the park/unpark/detour
// accounting would split the blocks). Shard is a comparable value type,
// so the assertion is plain ==.
func TestTelemetryShardInvariance(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	plans := map[string]*fault.Plan{
		"healthy": nil,
		"mid-run": mustPlan(t, "0,0,1:z+:dead@200ns"),
	}
	pols := route.SaturatePolicies()
	if testing.Short() {
		pols = []route.Policy{route.Random(), route.CreditEcho()}
	}
	for name, plan := range plans {
		for _, pol := range pols {
			ref := telemetryPoint(shape, pol, 1, plan)
			if ref.Ctr[telemetry.CtrInjected] == 0 {
				t.Fatalf("%s/%s: telemetry recorded no injections", name, pol.Name())
			}
			for _, shards := range []int{2, 4} {
				if got := telemetryPoint(shape, pol, shards, plan); got != ref {
					t.Fatalf("%s/%s: telemetry at %d shards differs:\n got %+v\nwant %+v",
						name, pol.Name(), shards, got, ref)
				}
			}
		}
	}
}

// TestTelemetrySweepShardInvariance runs a whole metrics-armed sweep cell —
// swept loads, knee search, telemetry summary, hottest-links heatmap — at
// several shard counts and requires byte-identical rendered output,
// "telemetry" lines included.
func TestTelemetrySweepShardInvariance(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	loads := []float64{0.5, 2}
	pols := []route.Policy{route.Random(), route.CreditEcho()}
	opts := Opts{Metrics: true}
	ref := SweepOpts(shape, pols, synth.Tornado(), loads, 8, 2, 42, 1, 0, 0, nil, opts)
	refText := ref.Render()
	for _, shards := range []int{2, 4} {
		got := SweepOpts(shape, pols, synth.Tornado(), loads, 8, 2, 42, shards, 0, 0, nil, opts)
		if got.Render() != refText {
			t.Fatalf("metrics render at %d shards not byte-identical:\n%s\nvs\n%s",
				shards, got.Render(), refText)
		}
	}
}

// TestTelemetryCacheReplay pins the cache discipline of metrics-on points:
// a warm run must simulate nothing (the "+tel" record short-circuits) yet
// report the exact telemetry block of the cold run, because the hit
// replays the stored block into the harness accumulator.
func TestTelemetryCacheReplay(t *testing.T) {
	store, err := resultstore.Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	run := func() (*Harness, Point, telemetry.Shard) {
		h := NewHarness(shape, route.Random(), 1, 0, 0)
		h.Cache = store
		h.EnableMetrics()
		pt := h.RunPoint(synth.Tornado(), 2, 8, 2, 7)
		return h, pt, *h.Telemetry()
	}
	_, coldPt, coldTel := run()
	warm, warmPt, warmTel := run()
	if warm.PointsRun != 0 {
		t.Fatalf("warm run simulated %d points, want 0 (cache hit)", warm.PointsRun)
	}
	if warmPt != coldPt {
		t.Fatalf("warm point %+v != cold point %+v", warmPt, coldPt)
	}
	if warmTel != coldTel {
		t.Fatalf("replayed telemetry differs:\n got %+v\nwant %+v", warmTel, coldTel)
	}
	if coldTel.Ctr[telemetry.CtrInjected] == 0 {
		t.Fatal("cold run recorded no injections")
	}
}

// TestMetricsSaturatePointAllocFree extends the steady-state alloc gate to
// the metrics-armed point: counter bumps, histogram observes, park/unpark
// accounting and the per-point merge must all run off preallocated state,
// so -metrics never costs an allocation on the hot path.
func TestMetricsSaturatePointAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	h := NewHarness(topo.Shape{X: 4, Y: 4, Z: 8}, route.Random(), 1, 0, 0)
	h.EnableMetrics()
	pat := synth.Tornado()
	point := func() {
		h.RunPoint(pat, 2, 16, 4, 7)
	}
	for i := 0; i < 3; i++ {
		point()
	}
	if n := testing.AllocsPerRun(5, point); n != 0 {
		t.Fatalf("metrics-on saturate point allocates %.1f times/op in steady state, want 0", n)
	}
}
