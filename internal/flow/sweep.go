package flow

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"anton3/internal/chip"
	"anton3/internal/resultstore"
	"anton3/internal/route"
	"anton3/internal/sim"
	"anton3/internal/synth"
	"anton3/internal/telemetry"
	"anton3/internal/topo"
	"anton3/internal/trace"
)

// Opts gates the optional observability layers of a sweep cell; the
// zero value runs exactly the pre-telemetry pipeline.
type Opts struct {
	// Metrics arms per-(policy x pattern) telemetry: counters and
	// latency/park histograms accumulated across every point (swept
	// loads and knee probes), surfaced as Curve.Tel plus "telemetry"
	// render lines and a channel-utilization heatmap at the knee.
	Metrics bool
	// Trace, when non-nil, collects packet-lifecycle spans from every
	// policy's machine into the recorder (tracks are prefixed with the
	// policy name, so policies never collide).
	Trace *trace.Recorder
}

// SatRatio is the saturation detector: a point whose accepted/offered
// ratio falls below it (or that wedged) counts as saturated. Below
// saturation the closed-loop rig reproduces the offered schedule exactly
// and the ratio sits at 1.0, so the knee is sharp.
const SatRatio = 0.95

// KneeIters is the bisection depth of the saturation search; with it the
// knee is located to (hi-lo)/2^KneeIters of the initial bracket.
const KneeIters = 6

// kneeDoublings bounds the bracket expansion when no swept load saturated.
const kneeDoublings = 3

// Saturated reports whether a point is past the saturation knee.
func Saturated(pt Point) bool {
	return pt.Undelivered > 0 || pt.Accepted < SatRatio*pt.Offered
}

// Curve is one policy's closed-loop curve under one pattern, with the
// bisection-located saturation knee.
type Curve struct {
	Policy string `json:"policy"`
	// Knee is the saturation load located by bisection, in offered-load
	// units. KneeLB marks a lower bound: the search never found a
	// saturated load within its doubling budget.
	Knee   float64 `json:"knee"`
	KneeLB bool    `json:"knee_lb,omitempty"`
	Points []Point `json:"points"`
	// Tel is the per-(policy x pattern) telemetry digest over every
	// point of this curve; Heat the top-k hottest links at the knee.
	// Both nil unless the sweep ran with Opts.Metrics.
	Tel  *telemetry.Summary `json:"telemetry,omitempty"`
	Heat []ChannelHeat      `json:"heat,omitempty"`
}

// ChannelHeat is one link's utilization in the knee-probe heatmap.
type ChannelHeat struct {
	Node string  `json:"node"`
	Spec string  `json:"spec"`
	Util float64 `json:"util"`
}

// probeSeed scrambles a probe load into the cell seed so knee probes get
// streams disjoint from the sweep points and from each other.
func probeSeed(seed uint64, load float64) uint64 {
	x := math.Float64bits(load) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return seed ^ 0x73617475726174 ^ x // "saturat"
}

// findKnee locates the saturation knee given the swept points: a coarse
// geometric bracket stage followed by bisection. The bracket comes from
// the sweep (last unsaturated, first saturated load); if nothing swept
// saturated, the knee — if reachable at all — lies on the doubling ladder
// lo*2^1 .. lo*2^kneeDoublings, and the bracket stage binary-searches the
// ladder in log space instead of walking it bottom-up. The bottom-up walk
// spent one probe per rung and maxed out (kneeDoublings probes) exactly on
// the hardest-to-saturate cells; the log-space search pins the first
// saturated rung (or proves there is none) in ceil(log2(kneeDoublings+1))
// probes. Saturation is monotone in offered load, so the rung found is the
// same one the walk would have found — each probe load draws its own seed
// from the load value alone, the ladder rungs are exact power-of-two
// multiples, and the bisection stage then runs on an identical bracket:
// knee values are bit-for-bit unchanged, only the probe count drops.
func findKnee(h *Harness, pat synth.Pattern, pts []Point, packets, warmup int, seed uint64) (float64, bool) {
	probe := func(load float64) bool {
		return Saturated(h.RunPoint(pat, load, packets, warmup, probeSeed(seed, load)))
	}
	if len(pts) == 0 {
		return 0, true
	}
	var lo, hi float64
	for _, pt := range pts {
		if Saturated(pt) {
			hi = pt.Load
			break
		}
		lo = pt.Load
	}
	if hi == 0 {
		// Geometric bracket stage: find the first saturated rung
		// base*2^r, r in 1..kneeDoublings, by log-space binary search.
		base := lo
		first := -1
		loR, hiR := 1, kneeDoublings
		for loR <= hiR {
			mid := (loR + hiR) / 2
			if probe(math.Ldexp(base, mid)) {
				first = mid
				hiR = mid - 1
			} else {
				loR = mid + 1
			}
		}
		if first < 0 {
			// The whole ladder ran unsaturated: report its top as a
			// lower bound, as the exhausted bottom-up walk always did.
			return math.Ldexp(base, kneeDoublings), true
		}
		lo, hi = math.Ldexp(base, first-1), math.Ldexp(base, first)
	}
	for i := 0; i < KneeIters; i++ {
		mid := (lo + hi) / 2
		if probe(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2, false
}

// SweepPattern measures one pattern across every policy and offered load
// on the given shape, then locates each policy's saturation knee. All
// policies at one load share one seed, so they face byte-identical offered
// traffic (paired comparison); cells of one policy share one machine
// (reset between loads), which keeps the sweep's steady state
// allocation-free. Loads must be ascending.
//
// cache, when non-nil, memoizes every point — the swept loads and the
// knee-search probes — so a re-run of the same cell, or a knee search
// revisiting a load another invocation probed, short-circuits to the
// recorded Point with bit-identical curves and knees. nil runs
// everything, exactly as before the store existed.
func SweepPattern(shape topo.Shape, policies []route.Policy, pat synth.Pattern, loads []float64, packets, warmup int, seed uint64, shards, queueFlits, injDepth int, cache *resultstore.Store) []Curve {
	return SweepPatternOpts(shape, policies, pat, loads, packets, warmup, seed, shards, queueFlits, injDepth, cache, Opts{})
}

// SweepPatternOpts is SweepPattern with the observability layer gates.
func SweepPatternOpts(shape topo.Shape, policies []route.Policy, pat synth.Pattern, loads []float64, packets, warmup int, seed uint64, shards, queueFlits, injDepth int, cache *resultstore.Store, opts Opts) []Curve {
	curves := make([]Curve, len(policies))
	for pi, pol := range policies {
		c := Curve{Policy: pol.Name()}
		h := NewHarness(shape, pol, shards, queueFlits, injDepth)
		h.Cache = cache
		if opts.Metrics {
			h.EnableMetrics()
		}
		if opts.Trace != nil {
			h.AttachTrace(pol.Name())
		}
		for li, load := range loads {
			c.Points = append(c.Points, h.RunPoint(
				pat, load, packets, warmup, seed+uint64(li)*9176,
			))
		}
		c.Knee, c.KneeLB = findKnee(h, pat, c.Points, packets, warmup, seed)
		if opts.Metrics {
			// Snapshot the curve digest before the heatmap probe runs
			// (the probe's telemetry belongs to the heatmap, not the
			// curve totals).
			sum := h.Telemetry().Summary()
			c.Tel = &sum
			c.Heat = kneeHeat(h, pat, c.Knee, packets, warmup, seed)
		}
		if opts.Trace != nil {
			h.DrainTrace(opts.Trace)
		}
		curves[pi] = c
	}
	return curves
}

// heatTopK bounds the hottest-links digest.
const heatTopK = 4

// kneeHeat runs one fresh (deliberately uncached — the heatmap reads
// machine channel state, not a Point) probe at the knee load and
// digests per-channel serialization busy time into the top-k hottest
// links, each normalized by the run's end timestamp. Deterministic:
// busy times are simulated integers and ties break on the dense
// (node, spec) walk order.
func kneeHeat(h *Harness, pat synth.Pattern, knee float64, packets, warmup int, seed uint64) []ChannelHeat {
	if knee <= 0 {
		return nil
	}
	h.runPoint(pat, knee, packets, warmup, probeSeed(seed, knee))
	end := h.lastEnd
	if end <= 0 {
		return nil
	}
	var heats []ChannelHeat
	h.m.ChannelBusy(func(node topo.Coord, spec chip.ChannelSpec, busy sim.Time) {
		if busy > 0 {
			heats = append(heats, ChannelHeat{
				Node: node.String(),
				Spec: spec.String(),
				Util: float64(busy) / float64(end),
			})
		}
	})
	sort.SliceStable(heats, func(i, j int) bool { return heats[i].Util > heats[j].Util })
	if len(heats) > heatTopK {
		heats = heats[:heatTopK]
	}
	return heats
}

// Result is one pattern x shape table of the saturate experiment.
type Result struct {
	Shape      string  `json:"shape"`
	Nodes      int     `json:"nodes"`
	Pattern    string  `json:"pattern"`
	QueueFlits int     `json:"queue_flits"`
	InjDepth   int     `json:"inj_depth"`
	Curves     []Curve `json:"curves"`
}

// Sweep runs SweepPattern and packages the result for reports.
func Sweep(shape topo.Shape, policies []route.Policy, pat synth.Pattern, loads []float64, packets, warmup int, seed uint64, shards, queueFlits, injDepth int, cache *resultstore.Store) Result {
	return SweepOpts(shape, policies, pat, loads, packets, warmup, seed, shards, queueFlits, injDepth, cache, Opts{})
}

// SweepOpts is Sweep with the observability layer gates.
func SweepOpts(shape topo.Shape, policies []route.Policy, pat synth.Pattern, loads []float64, packets, warmup int, seed uint64, shards, queueFlits, injDepth int, cache *resultstore.Store, opts Opts) Result {
	if queueFlits <= 0 {
		queueFlits = DefaultQueueFlits
	}
	if injDepth <= 0 {
		injDepth = DefaultInjDepth
	}
	return Result{
		Shape:      shape.String(),
		Nodes:      shape.Nodes(),
		Pattern:    pat.Name,
		QueueFlits: queueFlits,
		InjDepth:   injDepth,
		Curves:     SweepPatternOpts(shape, policies, pat, loads, packets, warmup, seed, shards, queueFlits, injDepth, cache, opts),
	}
}

// Render formats the table: one row per offered load with an
// accepted-throughput/p99 column pair per policy, the located saturation
// knees underneath, and any wedged (deadlocked) cells called out.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Saturate: pattern %s on %s (%d nodes) — closed-loop accepted throughput vs offered load (%d-flit VC queues, %d-slot sources)\n",
		r.Pattern, r.Shape, r.Nodes, r.QueueFlits, r.InjDepth)
	fmt.Fprintf(&b, "%8s", "offered")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, " %15s %9s", c.Policy+" acc", "p99")
	}
	b.WriteByte('\n')
	if len(r.Curves) == 0 {
		return b.String()
	}
	var wedged []string
	for i := range r.Curves[0].Points {
		fmt.Fprintf(&b, "%8.3f", r.Curves[0].Points[i].Offered)
		for _, c := range r.Curves {
			pt := c.Points[i]
			fmt.Fprintf(&b, " %15.3f %9.1f", pt.Accepted, pt.P99Ns)
			if pt.Undelivered > 0 {
				wedged = append(wedged, fmt.Sprintf("%s@%.3g(%d stuck)", c.Policy, pt.Load, pt.Undelivered))
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("saturation knee:")
	for _, c := range r.Curves {
		lb := ""
		if c.KneeLB {
			lb = ">="
		}
		fmt.Fprintf(&b, "  %s %s%.3f", c.Policy, lb, c.Knee)
	}
	b.WriteByte('\n')
	if len(wedged) > 0 {
		fmt.Fprintf(&b, "deadlocked cells: %s\n", strings.Join(wedged, ", "))
	}
	// Telemetry lines come last and always start with "telemetry" at
	// column 0, so a metrics-on run's primary output stays byte-identical
	// to a metrics-off run after `grep -v '^telemetry'`.
	for _, c := range r.Curves {
		if c.Tel == nil {
			continue
		}
		b.WriteString(c.Tel.Line(c.Policy))
		b.WriteByte('\n')
		if len(c.Heat) > 0 {
			fmt.Fprintf(&b, "telemetry hotlinks %s @ knee %.3f:", c.Policy, c.Knee)
			for _, hh := range c.Heat {
				fmt.Fprintf(&b, "  %s %s %.1f%%", hh.Node, hh.Spec, 100*hh.Util)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
