package flow

import (
	"fmt"
	"reflect"
	"testing"

	"anton3/internal/fault"
	"anton3/internal/route"
	"anton3/internal/synth"
	"anton3/internal/testutil"
	"anton3/internal/topo"
)

// mustPlan parses a fault-plan spec or fails the test.
func mustPlan(t testing.TB, spec string) *fault.Plan {
	t.Helper()
	plan, err := fault.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return plan
}

// TestFaultPointShardInvariance is the faulted half of the tier-1 shard
// guarantee: closed-loop points on a machine with dead links — static, and
// tripping mid-run — must be byte-identical at every shard count. The
// mid-run trip is the hard case: it fires as a kernel event on the shard
// owning the link and reroutes the packets parked there, so any wall-clock
// or shard-order dependence in the trip path would split the results.
func TestFaultPointShardInvariance(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	plans := map[string]*fault.Plan{
		"static":  mustPlan(t, "0,0,1:z+:dead;1,1,0:x-:bw/4,lat*2"),
		"mid-run": mustPlan(t, "0,0,1:z+:dead@200ns"),
	}
	pols := route.SaturatePolicies()
	if testing.Short() {
		pols = []route.Policy{route.Random(), route.CreditEcho()}
	}
	for name, plan := range plans {
		for _, pol := range pols {
			ref := NewFaultHarness(shape, pol, 1, 0, 0, plan).
				RunPoint(synth.Tornado(), 3, 12, 4, 77)
			for _, shards := range []int{2, 4} {
				h := NewFaultHarness(shape, pol, shards, 0, 0, plan)
				if got := h.RunPoint(synth.Tornado(), 3, 12, 4, 77); got != ref {
					t.Fatalf("%s/%s: point at %d shards %+v, want %+v",
						name, pol.Name(), shards, got, ref)
				}
			}
		}
	}
}

// TestFaultSweepShardInvariance runs a whole faultsweep cell — the severity
// grid, knee searches and shift table the runner executes — at several shard
// counts and requires identical results and identical rendered bytes.
func TestFaultSweepShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestFaultPointShardInvariance in short mode")
	}
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	sevs := []fault.Severity{
		{Name: "healthy"},
		{Name: "dead1", Plan: *mustPlan(t, "0,0,1:z+:dead")},
	}
	loads := []float64{0.5, 2}
	ref := FaultSweep(shape, route.SaturatePolicies(), synth.Tornado(), loads, 16, 4, 99, sevs, 1, 0, 0, nil)
	refText := ref.Render()
	for _, shards := range []int{2, 4} {
		got := FaultSweep(shape, route.SaturatePolicies(), synth.Tornado(), loads, 16, 4, 99, sevs, shards, 0, 0, nil)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("faultsweep at %d shards differs:\n%s\nvs\n%s", shards, got.Render(), refText)
		}
		if got.Render() != refText {
			t.Fatalf("render at %d shards not byte-identical", shards)
		}
	}
}

// TestSeverityGridNeverWedges runs every severity of the drawn grid, under
// every policy, at a load past the healthy knee and requires zero
// undelivered packets: the grid's multi-link rows are constructed so a
// committed detour can never hit a second dead link, so a faultsweep knee
// always measures saturation, never a wedge.
func TestSeverityGridNeverWedges(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, sev := range fault.SeverityGrid(shape, seed) {
			plan := sev.Plan
			for _, pol := range route.SaturatePolicies() {
				h := NewFaultHarness(shape, pol, 1, 0, 0, &plan)
				pt := h.RunPoint(synth.BitComplement(), 3, 12, 4, 55)
				if pt.Undelivered != 0 {
					t.Errorf("seed %d %s/%s (%s): %d undelivered at load 3",
						seed, sev.Name, pol.Name(), plan.Canon(), pt.Undelivered)
				}
			}
		}
	}
}

// TestFaultSaturatePointAllocFree extends the steady-state alloc gate to
// the fault path: dead-link avoidance in every hop choice, escape-pair
// detours with direction commitments, and rerouted parked packets must all
// run off the machine's preallocated state — the faultsweep grid runs this
// loop thousands of times per cell.
func TestFaultSaturatePointAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	plan := mustPlan(t, "0,0,0:z+:dead;2,2,4:x+:bw/2")
	h := NewFaultHarness(topo.Shape{X: 4, Y: 4, Z: 8}, route.Random(), 1, 0, 0, plan)
	pat := synth.Tornado()
	point := func() {
		h.RunPoint(pat, 2, 16, 4, 7)
	}
	for i := 0; i < 3; i++ {
		point()
	}
	if n := testing.AllocsPerRun(5, point); n != 0 {
		t.Fatalf("faulted saturate point allocates %.1f times/op in steady state, want 0", n)
	}
}

// TestHealthyKeyUnchangedByFaultSupport pins the healthy cache key from
// inside the flow package: a healthy harness must mint the exact key it
// minted before fault support existed (the same golden constant
// resultstore's own TestKeyGoldenStability pins), so every cached healthy
// point survives this feature.
func TestHealthyKeyUnchangedByFaultSupport(t *testing.T) {
	const golden = "flow/point/2ce2d2a0e36d701bc1b44f82e5c614425bc72a2188f0e40ffc42c484e12365b2"
	h := NewHarness(topo.Shape{X: 4, Y: 4, Z: 8}, route.XYZ(), 1, 0, 0)
	cfg := h.keyCfg
	cfg.Pattern = "bitcomp"
	cfg.Load = 1.5
	cfg.Packets, cfg.Warmup = 96, 32
	if got := h.pointKey(21, cfg).String(); got != golden {
		t.Fatalf("healthy point key drifted:\n got %s\nwant %s", got, golden)
	}
}

// TestFaultKeySensitivity requires the fault plan to be load-bearing in the
// cache key: a faulted harness must never share keys with a healthy one,
// and plans differing in a single link — or only in one link's trip time —
// must hash apart.
func TestFaultKeySensitivity(t *testing.T) {
	shape := topo.Shape{X: 4, Y: 4, Z: 8}
	specs := []string{
		"",                            // healthy
		"0,0,0:z+:dead",               // one dead link
		"0,0,1:z+:dead",               // same, one link over
		"0,0,0:z+:dead@100ns",         // same link, now a scheduled trip
		"0,0,0:z+:dead@101ns",         // one picosecond bucket later
		"0,0,0:z+:dead;1,0,0:x-:bw/2", // one extra degraded link
	}
	keys := make(map[string]string)
	for _, spec := range specs {
		var plan *fault.Plan
		if spec != "" {
			plan = mustPlan(t, spec)
		}
		h := NewFaultHarness(shape, route.XYZ(), 1, 0, 0, plan)
		cfg := h.keyCfg
		cfg.Pattern = "bitcomp"
		cfg.Load = 1.5
		cfg.Packets, cfg.Warmup = 96, 32
		key := h.pointKey(21, cfg).String()
		if prev, dup := keys[key]; dup {
			t.Fatalf("plans %q and %q share cache key %s", prev, spec, key)
		}
		keys[key] = spec
	}
}

// BenchmarkFaultKneeShift runs the committed faultsweep artifact: for every
// policy, the bit-complement saturation knee under the drawn severity grid,
// reported as absolute knees and percent shifts vs the healthy baseline.
// BENCH_faults.json carries these numbers — the graceful-degradation
// evidence next to BENCH_saturation.json's healthy knees.
func BenchmarkFaultKneeShift(b *testing.B) {
	shape := topo.Shape{X: 4, Y: 4, Z: 8}
	loads := []float64{0.5, 1, 2, 3, 4}
	sevs := fault.SeverityGrid(shape, 1)
	for _, pol := range route.SaturatePolicies() {
		b.Run(fmt.Sprintf("bitcomp/%s", pol.Name()), func(b *testing.B) {
			var c FaultCurve
			for i := 0; i < b.N; i++ {
				res := FaultSweep(shape, []route.Policy{pol}, synth.BitComplement(),
					loads, 96, 32, 9700, sevs, 1, 0, 0, nil)
				c = res.Curves[0]
			}
			b.ReportMetric(c.Healthy, "healthy_knee")
			for _, row := range c.Rows {
				if row.Faults == "" {
					continue
				}
				b.ReportMetric(row.Knee, row.Severity+"_knee")
				b.ReportMetric(row.ShiftPct, row.Severity+"_shift_pct")
			}
		})
	}
}
