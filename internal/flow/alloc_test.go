package flow

import (
	"fmt"
	"testing"

	"anton3/internal/route"
	"anton3/internal/synth"
	"anton3/internal/testutil"
	"anton3/internal/topo"
)

// TestSaturatePointAllocFree pins a whole steady-state closed-loop point —
// reset the reused machine, draw the schedule, run sources against credit
// backpressure (parks, escape hops, credit messages, source revivals),
// reduce the statistics — at zero heap allocations once the harness's
// buffers, packet pools, credit-message pools and queue rings have grown
// to the point's size. This is the per-(shape, policy) loop anton3
// saturate runs per offered load.
func TestSaturatePointAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	h := NewHarness(topo.Shape{X: 4, Y: 4, Z: 8}, route.Random(), 1, 0, 0)
	pat := synth.Tornado() // saturating: the park/unpark/credit path is hot
	point := func() {
		h.RunPoint(pat, 2, 16, 4, 7)
	}
	for i := 0; i < 3; i++ {
		point()
	}
	if n := testing.AllocsPerRun(5, point); n != 0 {
		t.Fatalf("saturate point allocates %.1f times/op in steady state, want 0", n)
	}
}

// TestShardedSaturatePointAllocFree extends the steady-state gate to the
// sharded credit path: lineage-tracked credit messages crossing shard
// boundaries through the window outboxes, parked-packet revivals from
// foreign events, and the per-window batch drains all recycle through
// per-shard free lists (rebalanced between runs), so a warmed sharded
// closed-loop point allocates nothing. Tornado traffic is directional, so
// the per-shard pools drain asymmetrically mid-run — the hardest case for
// the free-list rebalancing; the warmup loop is long enough for the pool
// totals to grow to every shard's peak demand.
func TestShardedSaturatePointAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	pat := synth.Tornado()
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			h := NewHarness(topo.Shape{X: 4, Y: 4, Z: 8}, route.Random(), shards, 0, 0)
			point := func() {
				h.RunPoint(pat, 2, 16, 4, 7)
			}
			for i := 0; i < 16; i++ {
				point()
			}
			if n := testing.AllocsPerRun(5, point); n != 0 {
				t.Fatalf("sharded saturate point allocates %.1f times/op in steady state, want 0", n)
			}
		})
	}
}

// BenchmarkSaturatePoint times one closed-loop cell (128 nodes, tornado at
// 2x the knee, random policy) in sweep steady state on the reused machine,
// exactly as anton3 saturate runs one offered-load point.
func BenchmarkSaturatePoint(b *testing.B) {
	h := NewHarness(topo.Shape{X: 4, Y: 4, Z: 8}, route.Random(), 1, 0, 0)
	pat := synth.Tornado()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.RunPoint(pat, 2, 16, 4, 7)
	}
}

// BenchmarkSaturationKnee runs the full knee search per policy on the
// bit-complement pattern (adversarial with routing freedom, so policies
// genuinely differ) and reports the located knee as a custom metric. The
// committed BENCH_saturation.json artifact carries these knees: the
// policy-dependent spread is the head-of-line-blocking evidence the per-VC
// queue model exists to expose.
func BenchmarkSaturationKnee(b *testing.B) {
	shape := topo.Shape{X: 4, Y: 4, Z: 8}
	loads := []float64{0.5, 1, 2, 3, 4}
	for _, pol := range route.SaturatePolicies() {
		b.Run(fmt.Sprintf("bitcomp/%s", pol.Name()), func(b *testing.B) {
			var knee float64
			for i := 0; i < b.N; i++ {
				curves := SweepPattern(shape, []route.Policy{pol}, synth.BitComplement(),
					loads, 96, 32, 7000, 1, 0, 0, nil)
				knee = curves[0].Knee
			}
			b.ReportMetric(knee, "knee_load")
		})
	}
}
