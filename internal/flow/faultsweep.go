package flow

import (
	"fmt"
	"strings"

	"anton3/internal/fault"
	"anton3/internal/resultstore"
	"anton3/internal/route"
	"anton3/internal/synth"
	"anton3/internal/telemetry"
	"anton3/internal/topo"
)

// The faultsweep experiment measures graceful degradation: for each routing
// policy it locates the saturation knee of the healthy network and of the
// same network under a grid of link-fault severities (degraded bandwidth,
// degraded latency, one dead link, several dead links), and reports each
// faulted knee as a shift against the healthy baseline. The methodology is
// the saturate experiment's — same closed-loop rig, same swept loads, same
// per-load seeds, so the healthy row shares cache entries (and bytes) with
// saturate cells of the same shape and pattern.

// FaultRow is one fault severity's knee for one policy.
type FaultRow struct {
	// Severity is the grid row name ("healthy", "dead1", ...); Faults is
	// the canonical plan it denotes (empty for the healthy baseline).
	Severity string  `json:"severity"`
	Faults   string  `json:"faults,omitempty"`
	Knee     float64 `json:"knee"`
	KneeLB   bool    `json:"knee_lb,omitempty"`
	// ShiftPct is the knee shift vs the healthy baseline in percent:
	// (healthy - knee) / healthy x 100, so positive means degraded.
	ShiftPct float64 `json:"shift_pct"`
}

// FaultCurve is one policy's knee across the severity grid.
type FaultCurve struct {
	Policy string `json:"policy"`
	// Healthy is the baseline knee (duplicated from the "healthy" row for
	// convenience of report readers).
	Healthy float64    `json:"healthy_knee"`
	Rows    []FaultRow `json:"rows"`
	// Tel aggregates telemetry across every severity of this policy
	// (nil unless the sweep ran with Opts.Metrics); the fault-reroute
	// counter is the mid-run-trip visibility the grid exists for.
	Tel *telemetry.Summary `json:"telemetry,omitempty"`
}

// FaultResult is one pattern x shape table of the faultsweep experiment.
type FaultResult struct {
	Shape      string       `json:"shape"`
	Nodes      int          `json:"nodes"`
	Pattern    string       `json:"pattern"`
	QueueFlits int          `json:"queue_flits"`
	InjDepth   int          `json:"inj_depth"`
	Curves     []FaultCurve `json:"curves"`
}

// FaultSweep locates every policy's saturation knee under every severity in
// the grid. The first severity with an empty plan (conventionally sevs[0],
// "healthy") is the baseline all shifts are measured against; if the grid
// carries no healthy row, shifts are reported as zero. Swept loads and knee
// probes reuse the saturate experiment's seeding, so the healthy cells are
// bit-identical to — and cache-shared with — saturate's. Loads must be
// ascending, as in SweepPattern.
func FaultSweep(shape topo.Shape, policies []route.Policy, pat synth.Pattern, loads []float64, packets, warmup int, seed uint64, sevs []fault.Severity, shards, queueFlits, injDepth int, cache *resultstore.Store) FaultResult {
	return FaultSweepOpts(shape, policies, pat, loads, packets, warmup, seed, sevs, shards, queueFlits, injDepth, cache, Opts{})
}

// FaultSweepOpts is FaultSweep with the observability layer gates.
// Telemetry aggregates per policy across the whole severity grid; trace
// tracks are prefixed "<policy>/<severity>" so every harness stays
// distinguishable.
func FaultSweepOpts(shape topo.Shape, policies []route.Policy, pat synth.Pattern, loads []float64, packets, warmup int, seed uint64, sevs []fault.Severity, shards, queueFlits, injDepth int, cache *resultstore.Store, opts Opts) FaultResult {
	if queueFlits <= 0 {
		queueFlits = DefaultQueueFlits
	}
	if injDepth <= 0 {
		injDepth = DefaultInjDepth
	}
	res := FaultResult{
		Shape:      shape.String(),
		Nodes:      shape.Nodes(),
		Pattern:    pat.Name,
		QueueFlits: queueFlits,
		InjDepth:   injDepth,
		Curves:     make([]FaultCurve, len(policies)),
	}
	for pi, pol := range policies {
		c := FaultCurve{Policy: pol.Name(), Rows: make([]FaultRow, 0, len(sevs))}
		var agg telemetry.Shard
		for _, sev := range sevs {
			plan := sev.Plan
			h := NewFaultHarness(shape, pol, shards, queueFlits, injDepth, &plan)
			h.Cache = cache
			if opts.Metrics {
				h.EnableMetrics()
			}
			if opts.Trace != nil {
				h.AttachTrace(pol.Name() + "/" + sev.Name)
			}
			var pts []Point
			for li, load := range loads {
				pts = append(pts, h.RunPoint(
					pat, load, packets, warmup, seed+uint64(li)*9176,
				))
			}
			row := FaultRow{Severity: sev.Name, Faults: plan.Canon()}
			row.Knee, row.KneeLB = findKnee(h, pat, pts, packets, warmup, seed)
			if row.Faults == "" && c.Healthy == 0 {
				c.Healthy = row.Knee
			}
			c.Rows = append(c.Rows, row)
			if opts.Metrics {
				agg.Merge(h.Telemetry())
			}
			if opts.Trace != nil {
				h.DrainTrace(opts.Trace)
			}
		}
		if opts.Metrics {
			sum := agg.Summary()
			c.Tel = &sum
		}
		for ri := range c.Rows {
			if c.Healthy > 0 {
				c.Rows[ri].ShiftPct = (c.Healthy - c.Rows[ri].Knee) / c.Healthy * 100
			}
		}
		res.Curves[pi] = c
	}
	return res
}

// Render formats the table: one row per fault severity with a knee/shift
// column pair per policy, followed by a legend spelling out each severity's
// fault plan.
func (r FaultResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Faultsweep: pattern %s on %s (%d nodes) — saturation knee under link faults (%d-flit VC queues, %d-slot sources)\n",
		r.Pattern, r.Shape, r.Nodes, r.QueueFlits, r.InjDepth)
	fmt.Fprintf(&b, "%10s", "severity")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, " %12s %8s", c.Policy+" knee", "shift")
	}
	b.WriteByte('\n')
	if len(r.Curves) == 0 {
		return b.String()
	}
	for ri := range r.Curves[0].Rows {
		fmt.Fprintf(&b, "%10s", r.Curves[0].Rows[ri].Severity)
		for _, c := range r.Curves {
			row := c.Rows[ri]
			lb := " "
			if row.KneeLB {
				lb = ">"
			}
			fmt.Fprintf(&b, " %s%11.3f %7.1f%%", lb, row.Knee, row.ShiftPct)
		}
		b.WriteByte('\n')
	}
	b.WriteString("fault plans:\n")
	for ri := range r.Curves[0].Rows {
		row := r.Curves[0].Rows[ri]
		plan := row.Faults
		if plan == "" {
			plan = "(none)"
		}
		fmt.Fprintf(&b, "  %-8s %s\n", row.Severity, plan)
	}
	for _, c := range r.Curves {
		if c.Tel == nil {
			continue
		}
		b.WriteString(c.Tel.Line(c.Policy))
		b.WriteByte('\n')
	}
	return b.String()
}
