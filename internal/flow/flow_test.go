package flow

import (
	"testing"

	"anton3/internal/route"
	"anton3/internal/synth"
	"anton3/internal/topo"
)

// TestAcceptedNeverExceedsOffered is the load-conservation property of the
// closed-loop rig: sources can only delay traffic, never invent it, so at
// every cleanly drained load point the accepted rate is bounded by the
// realized offered rate. (Structurally: every network entry happens at or
// after its intended instant, so the entry horizon can only stretch.)
func TestAcceptedNeverExceedsOffered(t *testing.T) {
	shape := topo.Shape{X: 4, Y: 4, Z: 8}
	loads := []float64{0.5, 1, 2, 4}
	pats := []synth.Pattern{synth.Uniform(), synth.Tornado(), synth.BitComplement()}
	pols := route.SaturatePolicies()
	if testing.Short() {
		loads = []float64{0.5, 2}
		pats = pats[1:]
		pols = pols[:2]
	}
	for _, pol := range pols {
		h := NewHarness(shape, pol, 1, 0, 0)
		for _, pat := range pats {
			for _, load := range loads {
				pt := h.RunPoint(pat, load, 24, 8, 11)
				if pt.Undelivered != 0 {
					t.Errorf("%s/%s load %.1f: %d packets undelivered (escape channels should prevent wedging)",
						pol.Name(), pat.Name, load, pt.Undelivered)
					continue
				}
				if pt.Accepted > pt.Offered*(1+1e-12) {
					t.Errorf("%s/%s load %.1f: accepted %.6f exceeds offered %.6f",
						pol.Name(), pat.Name, load, pt.Accepted, pt.Offered)
				}
				if pt.Accepted <= 0 || pt.Offered <= 0 {
					t.Errorf("%s/%s load %.1f: non-positive rates %+v", pol.Name(), pat.Name, load, pt)
				}
			}
		}
	}
}

// TestAcceptedMonotoneToSaturation pins the shape of the accepted-
// throughput curve: below the knee the network keeps up exactly (ratio 1,
// so accepted tracks offered and is strictly increasing), and the first
// saturated point still accepts no less than the last unsaturated one
// would require... the classic curve rises to the knee.
func TestAcceptedMonotoneToSaturation(t *testing.T) {
	shape := topo.Shape{X: 4, Y: 4, Z: 8}
	loads := []float64{0.25, 0.5, 1, 2, 3}
	h := NewHarness(shape, route.Random(), 1, 0, 0)
	prev := 0.0
	for _, load := range loads {
		pt := h.RunPoint(synth.Uniform(), load, 24, 8, 11)
		if Saturated(pt) {
			break
		}
		if pt.Accepted < prev {
			t.Fatalf("accepted throughput fell below the knee: %.4f after %.4f at load %.2f",
				pt.Accepted, prev, load)
		}
		if pt.Ratio() < 0.999 {
			t.Fatalf("unsaturated point at load %.2f has ratio %.4f, want ~1", load, pt.Ratio())
		}
		prev = pt.Accepted
	}
	if prev == 0 {
		t.Fatal("every load point read as saturated; the sweep never sampled the linear region")
	}
}

// TestClosedLoopMatchesOpenLoopUncongested cross-validates the credit
// flow-control layer against the established open-loop model: with ingress
// queues too deep to ever refuse a packet, the closed-loop rig offers the
// exact same pre-drawn schedule as the netsweep harness and the per-VC
// queue machinery must add zero delay — identical packets, identical
// delivery times, identical latency statistics.
func TestClosedLoopMatchesOpenLoopUncongested(t *testing.T) {
	shape := topo.Shape{X: 4, Y: 4, Z: 4}
	pat := synth.Uniform()
	var seed uint64 = 7

	// RunPoint scales its per-node budget by the load (2x here), so the
	// open-loop reference runs the scaled counts directly.
	closed := NewHarness(shape, route.Random(), 1, 1<<20, 0). // no queue ever fills
									RunPoint(pat, 2, 24, 8, seed)
	open := synth.NewHarness(shape, route.Random(), 1).
		RunPoint(pat, 2, 48, 16, seed)

	if closed.Undelivered != 0 {
		t.Fatalf("uncongested closed loop left %d packets undelivered", closed.Undelivered)
	}
	if closed.AvgNs != open.AvgNs || closed.P99Ns != open.P99Ns {
		t.Fatalf("closed loop with unbounded queues diverged from open loop:\n  closed avg %.4f p99 %.4f\n  open   avg %.4f p99 %.4f",
			closed.AvgNs, closed.P99Ns, open.AvgNs, open.P99Ns)
	}
	if closed.Ratio() < 0.999999 {
		t.Fatalf("uncongested closed loop ratio %.8f, want 1", closed.Ratio())
	}
}

// TestHarnessReuseMatchesFresh checks the machine-reuse path: points run
// on one long-lived harness must equal one-shot runs on private machines,
// including when seeds and loads change between points.
func TestHarnessReuseMatchesFresh(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	pol := route.Random()
	h := NewHarness(shape, pol, 1, 0, 0)
	cells := []struct {
		load float64
		seed uint64
	}{{1, 5}, {4, 6}, {1, 5}, {2, 9}}
	for _, cell := range cells {
		reused := h.RunPoint(synth.Uniform(), cell.load, 10, 3, cell.seed)
		fresh := Run(shape, pol, synth.Uniform(), cell.load, 10, 3, cell.seed, 1)
		if reused != fresh {
			t.Fatalf("load %.1f seed %d: reused harness %+v, fresh machine %+v",
				cell.load, cell.seed, reused, fresh)
		}
	}
}

// TestKneeSearch checks the bisection: on a pattern/policy pair with a
// clear saturation point the knee lands inside the bracketing sweep loads,
// the bracket endpoints disagree about saturation, and the result is
// reproducible.
func TestKneeSearch(t *testing.T) {
	shape := topo.Shape{X: 4, Y: 4, Z: 8}
	loads := []float64{0.5, 1, 2, 4}
	// The offered span must cover several queue-fill times for saturation
	// to register, which sets the per-node packet budget's floor.
	packets, warmup := 96, 32
	curves := SweepPattern(shape, []route.Policy{route.XYZ()}, synth.BitComplement(),
		loads, packets, warmup, 21, 1, 0, 0, nil)
	c := curves[0]
	if c.KneeLB {
		t.Fatalf("bitcomp/xyz reported knee lower bound %.3f; expected a located knee", c.Knee)
	}
	var lo, hi float64
	for _, pt := range c.Points {
		if Saturated(pt) {
			hi = pt.Load
			break
		}
		lo = pt.Load
	}
	if hi == 0 {
		t.Fatalf("sweep found no saturated point: %+v", c.Points)
	}
	if c.Knee <= lo || c.Knee >= hi {
		t.Fatalf("knee %.3f outside bracket (%.3f, %.3f)", c.Knee, lo, hi)
	}
	if testing.Short() {
		return
	}
	again := SweepPattern(shape, []route.Policy{route.XYZ()}, synth.BitComplement(),
		loads, packets, warmup, 21, 1, 0, 0, nil)
	if again[0].Knee != c.Knee {
		t.Fatalf("knee not reproducible: %.6f vs %.6f", again[0].Knee, c.Knee)
	}
}

// TestRenderStable pins the report shape: a header, one row per load, a
// knee footer.
func TestRenderStable(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 2}
	r := Sweep(shape, route.SaturatePolicies()[:2], synth.Uniform(),
		[]float64{0.5, 2}, 6, 2, 3, 1, 0, 0, nil)
	text := r.Render()
	for _, want := range []string{"Saturate: pattern uniform", "offered", "random acc", "xyz acc", "saturation knee:"} {
		if !contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
