package flow

import (
	"math"
	"testing"

	"anton3/internal/route"
	"anton3/internal/synth"
	"anton3/internal/topo"
)

// TestKneeBracketProbeBudget pins the geometric bracket stage's probe
// budget: when no swept load saturated, the first saturated rung of the
// doubling ladder (or the proof that none exists) costs exactly
// ceil(log2(kneeDoublings+1)) probes — the log-space binary search — not
// the one-probe-per-rung bottom-up walk it replaced. The lower-bound value
// itself must be the ladder top, the same load the exhausted walk
// reported.
func TestKneeBracketProbeBudget(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 2}
	pat := synth.Uniform()
	h := NewHarness(shape, route.XYZ(), 1, 0, 0)
	packets, warmup := 8, 2
	loads := []float64{0.02, 0.04}
	var pts []Point
	for li, load := range loads {
		pts = append(pts, h.RunPoint(pat, load, packets, warmup, 21+uint64(li)*9176))
	}
	for _, pt := range pts {
		if Saturated(pt) {
			t.Fatalf("load %.3f saturated; the test needs an all-unsaturated sweep", pt.Load)
		}
	}
	before := h.PointsRun
	knee, lb := findKnee(h, pat, pts, packets, warmup, 21)
	probes := h.PointsRun - before
	if !lb {
		t.Fatalf("expected a knee lower bound, got located knee %.3f", knee)
	}
	if want := math.Ldexp(loads[len(loads)-1], kneeDoublings); knee != want {
		t.Fatalf("knee lower bound %.3f, want ladder top %.3f", knee, want)
	}
	if probes != 2 {
		t.Fatalf("bracket stage ran %d probes, want 2 (log-space search of the %d-rung ladder)", probes, kneeDoublings)
	}
}
