package flow

import (
	"reflect"
	"testing"

	"anton3/internal/resultstore"
	"anton3/internal/route"
	"anton3/internal/synth"
	"anton3/internal/topo"
)

// sweepThrough runs the reference saturate cell of these tests through
// SweepPattern with the given store (nil = uncached).
func sweepThrough(cache *resultstore.Store) []Curve {
	return SweepPattern(
		topo.Shape{X: 2, Y: 2, Z: 4},
		[]route.Policy{route.XYZ(), route.Random()},
		synth.BitComplement(),
		[]float64{0.5, 1, 2, 4},
		24, 8, 21, 1, 0, 0, cache,
	)
}

// TestWarmCacheProbeBudget pins the resultstore's payoff on a saturate
// cell: a warm-cache sweep must simulate at least 25% fewer points than
// the cold sweep (in fact zero — every swept load and every knee-search
// probe replays from the store), and its curves, knees included, must be
// bit-identical to both the cold run and an uncached run. The store is
// reopened between the cold and warm sweeps, so the hit rate also proves
// key stability across a process restart.
func TestWarmCacheProbeBudget(t *testing.T) {
	base := sweepThrough(nil)

	dir := t.TempDir()
	cold, err := resultstore.Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	coldCurves := sweepThrough(cold)
	cs := cold.Stats()
	if cs.Misses == 0 || cs.Hits != 0 {
		t.Fatalf("cold run stats %+v, want misses>0 and hits==0", cs)
	}
	if cs.Stored != cs.Misses {
		t.Fatalf("cold run stored %d of %d misses; every miss must heal the store", cs.Stored, cs.Misses)
	}

	warm, err := resultstore.Open(dir, false) // fresh Store = simulated restart
	if err != nil {
		t.Fatal(err)
	}
	warmCurves := sweepThrough(warm)
	ws := warm.Stats()

	// The simulated-point count is the miss count: every miss runs the
	// machine, every hit replays a recorded Point.
	if 4*ws.Misses > 3*cs.Misses {
		t.Fatalf("warm run simulated %d points vs cold %d; want >=25%% fewer", ws.Misses, cs.Misses)
	}
	if ws.Misses != 0 {
		t.Errorf("warm run simulated %d points, want 0 (identical cell, fully recorded)", ws.Misses)
	}
	if ws.Hits != cs.Misses {
		t.Errorf("warm run hit %d entries, want every one of the cold run's %d", ws.Hits, cs.Misses)
	}

	if !reflect.DeepEqual(base, coldCurves) {
		t.Errorf("cold cached curves differ from uncached curves")
	}
	if !reflect.DeepEqual(base, warmCurves) {
		t.Errorf("warm cached curves differ from uncached curves")
	}
	for i := range base {
		if base[i].Knee != warmCurves[i].Knee || base[i].KneeLB != warmCurves[i].KneeLB {
			t.Errorf("policy %s: warm knee %v (lb=%v) != uncached %v (lb=%v)",
				base[i].Policy, warmCurves[i].Knee, warmCurves[i].KneeLB, base[i].Knee, base[i].KneeLB)
		}
	}
}

// TestCacheSharedAcrossLoadsWithinRun checks the fine grain of the
// memoization: within a single cold sweep, a knee probe landing on a load
// another invocation already recorded is a hit, not a re-simulation — the
// store keys on the point config, not on the sweep that asked.
func TestCacheSharedAcrossLoadsWithinRun(t *testing.T) {
	store := resultstore.OpenMemory()
	sweepThrough(store)
	first := store.Stats()
	sweepThrough(store)
	second := store.Stats()
	if got := second.Misses - first.Misses; got != 0 {
		t.Fatalf("second identical sweep simulated %d points, want 0", got)
	}
	if second.Hits-first.Hits != first.Misses {
		t.Fatalf("second sweep hits %d, want %d (one per recorded point)",
			second.Hits-first.Hits, first.Misses)
	}
}
