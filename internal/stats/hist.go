package stats

import "math/bits"

// LogHist is a fixed-size log2-bucketed histogram of non-negative int64
// samples. Bucket i holds samples whose bit length is i: bucket 0 is the
// value 0, bucket i (i >= 1) covers [2^(i-1), 2^i). The layout is a flat
// value type — no pointers, no maps — so shards can each own one, update
// it allocation-free on the hot path, and merge by bucket-wise addition
// in shard order with a byte-identical result at any shard count.
type LogHist struct {
	N       uint64     `json:"n"`
	Sum     uint64     `json:"sum"`
	Buckets [65]uint64 `json:"buckets"`
}

// Observe records one sample. Negative samples clamp to 0 — they can
// only arise from a caller bug, and a histogram is the wrong place to
// crash a simulation.
func (h *LogHist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.N++
	h.Sum += uint64(v)
	h.Buckets[bits.Len64(uint64(v))]++
}

// Merge folds o into h bucket-wise. Merging is commutative and
// associative, but callers merge in shard order anyway so derived
// reports stay byte-identical trivially.
func (h *LogHist) Merge(o *LogHist) {
	h.N += o.N
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observed sample (0 when empty).
func (h *LogHist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Quantile returns an estimate of the q-th quantile (q in [0, 1]) by
// walking the cumulative bucket counts and interpolating linearly inside
// the containing bucket's value range. Exact for bucket boundaries,
// within a factor of 2 inside a bucket — the resolution the log2 layout
// buys. Returns 0 for an empty histogram.
func (h *LogHist) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based; q=0 maps to the first sample.
	target := q * float64(h.N)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo, hi := bucketRange(i)
			frac := (target - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	// Unreachable when N matches the bucket totals; be safe anyway.
	_, hi := bucketRange(64)
	return hi
}

// bucketRange returns the [lo, hi) value range of bucket i as floats.
func bucketRange(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (i - 1)), float64(uint64(1)<<(i-1)) * 2
}
