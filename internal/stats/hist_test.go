package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestLogHistEmpty(t *testing.T) {
	var h LogHist
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Fatalf("empty Mean = %v, want 0", got)
	}
}

func TestLogHistBucketing(t *testing.T) {
	var h LogHist
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1 << 40} {
		h.Observe(v)
	}
	// Bucket 0 is the value 0, bucket i covers [2^(i-1), 2^i): so 1→b1,
	// {2,3}→b2, {4,7}→b3, 8→b4, 1<<40→b41.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 41: 1}
	for i, n := range h.Buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if h.N != 8 {
		t.Fatalf("N = %d, want 8", h.N)
	}
}

func TestLogHistNegativeClamps(t *testing.T) {
	var h LogHist
	h.Observe(-5)
	if h.Buckets[0] != 1 || h.Sum != 0 {
		t.Fatalf("negative sample not clamped to 0: buckets[0]=%d sum=%d", h.Buckets[0], h.Sum)
	}
}

func TestLogHistQuantileExactBoundaries(t *testing.T) {
	var h LogHist
	// 100 samples all equal to 16: every quantile lands inside bucket 5
	// ([16, 32)) and interpolates within it.
	for i := 0; i < 100; i++ {
		h.Observe(16)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 16 || got > 32 {
			t.Fatalf("Quantile(%v) = %v, want within [16,32]", q, got)
		}
	}
}

func TestLogHistQuantileMonotone(t *testing.T) {
	var h LogHist
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		h.Observe(rng.Int63n(1 << 30))
	}
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone: q=%v got %v < prev %v", q, got, prev)
		}
		prev = got
	}
}

// Quantile estimates must bracket the true order statistic within one
// log2 bucket (factor of 2), the histogram's designed resolution.
func TestLogHistQuantileWithinBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h LogHist
	samples := make([]int64, 5000)
	for i := range samples {
		samples[i] = rng.Int63n(1 << 20)
		h.Observe(samples[i])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		idx := int(q*float64(len(samples))) - 1
		if idx < 0 {
			idx = 0
		}
		truth := float64(samples[idx])
		got := h.Quantile(q)
		if truth > 0 && (got < truth/2 || got > truth*2) {
			t.Fatalf("Quantile(%v) = %v, true order stat %v: outside one bucket", q, got, truth)
		}
	}
}

// Merging split histograms in any order must be byte-identical to
// observing everything in one histogram — the property the sharded
// telemetry merge depends on.
func TestLogHistMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var whole LogHist
	parts := make([]LogHist, 4)
	for i := 0; i < 4000; i++ {
		v := rng.Int63n(1 << 35)
		whole.Observe(v)
		parts[i%4].Observe(v)
	}
	var fwd, rev LogHist
	for i := range parts {
		fwd.Merge(&parts[i])
	}
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Merge(&parts[i])
	}
	if fwd != whole || rev != whole {
		t.Fatal("merged histograms differ from whole-stream histogram")
	}
}
