// Package stats provides the small statistical helpers the experiment
// harnesses need: means, linear least-squares fits, and utilization
// accounting.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// LinFit fits y = Slope*x + Intercept by least squares.
type LinFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// Fit computes the least-squares line through (xs, ys). It panics on
// mismatched or too-short inputs — a harness bug, not data.
func Fit(xs, ys []float64) LinFit {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: Fit needs two equal-length series of at least 2 points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// Coefficient of determination.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinFit{Slope: slope, Intercept: intercept, R2: r2}
}

func (f LinFit) String() string {
	return fmt.Sprintf("y = %.2f + %.2f*x (R2=%.4f)", f.Intercept, f.Slope, f.R2)
}

// Within reports whether got is within tol (fractional) of want.
func Within(got, want, tol float64) bool {
	if want == 0 {
		return math.Abs(got) <= tol
	}
	return math.Abs(got-want) <= tol*math.Abs(want)
}
