package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("mean wrong")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-point stddev")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestFitExactLine(t *testing.T) {
	f := func(a, b int8) bool {
		slope, icept := float64(a), float64(b)
		xs := []float64{0, 1, 2, 3, 4}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + icept
		}
		fit := Fit(xs, ys)
		return math.Abs(fit.Slope-slope) < 1e-9 &&
			math.Abs(fit.Intercept-icept) < 1e-9 &&
			fit.R2 > 0.999999 || (slope == 0 && math.Abs(fit.Slope) < 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitPaperNumbers(t *testing.T) {
	// Reconstruct Figure 5's fit: points on 55.9 + 34.2h recover the
	// published coefficients.
	var xs, ys []float64
	for h := 1; h <= 8; h++ {
		xs = append(xs, float64(h))
		ys = append(ys, 55.9+34.2*float64(h))
	}
	fit := Fit(xs, ys)
	if !Within(fit.Slope, 34.2, 1e-9) || !Within(fit.Intercept, 55.9, 1e-9) {
		t.Fatalf("fit = %v", fit)
	}
}

func TestFitValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short input should panic")
		}
	}()
	Fit([]float64{1}, []float64{1})
}

func TestFitDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate x should panic")
		}
	}()
	Fit([]float64{2, 2, 2}, []float64{1, 2, 3})
}

func TestWithin(t *testing.T) {
	if !Within(110, 100, 0.1) || Within(111, 100, 0.1) {
		t.Fatal("Within tolerance broken")
	}
	if !Within(0.0001, 0, 0.001) {
		t.Fatal("Within zero-want broken")
	}
}

func TestFitString(t *testing.T) {
	fit := Fit([]float64{0, 1}, []float64{1, 3})
	if fit.String() != "y = 1.00 + 2.00*x (R2=1.0000)" {
		t.Fatalf("String = %q", fit.String())
	}
}
