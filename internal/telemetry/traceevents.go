package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"

	"anton3/internal/trace"
)

// TraceCell pairs one experiment cell's name with its packet-lifecycle
// recorder. Cells become Chrome trace "processes"; recorder tracks
// become threads.
type TraceCell struct {
	Name string
	Rec  *trace.Recorder
}

// TraceSink collects per-cell recorders from concurrently-running
// runner jobs. Export sorts by cell name, so the emitted JSON is
// deterministic at any -jobs count regardless of completion order.
type TraceSink struct {
	mu    sync.Mutex
	cells []TraceCell
}

// Add registers one finished cell's recorder.
func (s *TraceSink) Add(name string, rec *trace.Recorder) {
	s.mu.Lock()
	s.cells = append(s.cells, TraceCell{Name: name, Rec: rec})
	s.mu.Unlock()
}

// Cells returns the registered cells sorted by name.
func (s *TraceSink) Cells() []TraceCell {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]TraceCell(nil), s.cells...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Export writes every registered cell as one Chrome trace-event JSON
// document ({"traceEvents": [...]}), loadable in Perfetto or
// chrome://tracing. One process per cell, one thread per recorder
// track, one complete ("X") slice per interval; timestamps convert from
// simulated picoseconds to the format's microseconds.
func (s *TraceSink) Export(w io.Writer) error {
	return writeTraceEvents(w, s.Cells())
}

// traceEvent is one entry of the Chrome trace-event format's JSON array
// form. Ph "M" entries are metadata (process/thread names); ph "X" are
// complete slices with a duration.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

const psPerMicro = 1e6

func writeTraceEvents(w io.Writer, cells []TraceCell) error {
	var events []traceEvent
	for pid, cell := range cells {
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": cell.Name},
		})
		for tid, track := range cell.Rec.Tracks() {
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]string{"name": track},
			})
			slice := sliceName(track)
			for _, iv := range cell.Rec.Intervals(track) {
				events = append(events, traceEvent{
					Name: slice, Ph: "X", Pid: pid, Tid: tid,
					Ts:  float64(iv.Start) / psPerMicro,
					Dur: float64(iv.End-iv.Start) / psPerMicro,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{events})
}

// sliceName labels slices by the phase suffix of their track name
// ("xyz/n003/x+.s0" → "x+.s0", "xyz/n003/park" → "park"), keeping the
// full location in the thread name where Perfetto shows it anyway.
func sliceName(track string) string {
	if i := strings.LastIndexByte(track, '/'); i >= 0 {
		return track[i+1:]
	}
	return track
}
