package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"anton3/internal/trace"
)

// Splitting the same event stream across different shard counts must
// merge to the identical Shard value (Shard is comparable).
func TestCollectorMergeShardInvariant(t *testing.T) {
	events := make([]int64, 500)
	for i := range events {
		events[i] = int64(i*i*7919) % (1 << 20)
	}
	run := func(shards int) Shard {
		c := NewCollector(shards)
		for i, v := range events {
			sh := c.Shard(i % shards)
			sh.Ctr[CtrInjected]++
			sh.Ctr[CtrParkFlitPs] += v
			sh.Lat.Observe(v)
			sh.Park.Observe(v / 3)
		}
		return *c.Merged()
	}
	ref := run(1)
	for _, n := range []int{2, 4} {
		if got := run(n); got != ref {
			t.Fatalf("merged shard differs at %d shards", n)
		}
	}
}

func TestCollectorResetAndReuse(t *testing.T) {
	c := NewCollector(2)
	c.Shard(0).Ctr[CtrDelivered] = 5
	c.Shard(1).Ctr[CtrDelivered] = 7
	if got := c.Merged().Ctr[CtrDelivered]; got != 12 {
		t.Fatalf("merged delivered = %d, want 12", got)
	}
	// Merged must recompute, not accumulate, on repeated calls.
	if got := c.Merged().Ctr[CtrDelivered]; got != 12 {
		t.Fatalf("second Merged = %d, want 12", got)
	}
	c.Reset()
	if got := *c.Merged(); got != (Shard{}) {
		t.Fatal("Reset did not zero the collector")
	}
}

func TestSummaryLine(t *testing.T) {
	var s Shard
	s.Ctr[CtrInjected] = 10
	s.Ctr[CtrDelivered] = 10
	s.Lat.Observe(400_000) // 400ns in ps
	line := s.Summary().Line("credit-echo")
	if !strings.HasPrefix(line, "telemetry credit-echo: ") {
		t.Fatalf("line = %q, want telemetry prefix", line)
	}
	if strings.Contains(line, "\n") {
		t.Fatalf("line contains newline: %q", line)
	}
}

func TestTraceExportValidAndDeterministic(t *testing.T) {
	mk := func(order []string) []byte {
		sink := &TraceSink{}
		for _, name := range order {
			rec := trace.NewRecorder()
			rec.Touch(name + "/n000/park")
			rec.Add(name+"/n000/x+.s0", 2_000_000, 5_000_000)
			rec.Add(name+"/n000/x+.s0", 1_000_000, 2_000_000)
			rec.Add(name+"/n000/park", 0, 1_000_000)
			sink.Add(name, rec)
		}
		var buf bytes.Buffer
		if err := sink.Export(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := mk([]string{"cellA", "cellB"})
	b := mk([]string{"cellB", "cellA"}) // registration order must not matter
	if !bytes.Equal(a, b) {
		t.Fatal("trace export depends on cell registration order")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var slices, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
			if ev["dur"].(float64) <= 0 {
				t.Fatalf("non-positive slice duration: %v", ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected event phase: %v", ev)
		}
	}
	// 2 cells x (1 process_name + 2 thread_name) metadata, 2x3 slices.
	if meta != 6 || slices != 6 {
		t.Fatalf("meta=%d slices=%d, want 6 and 6", meta, slices)
	}
}
