// Package telemetry is the simulator's flag-gated observability layer:
// a fixed registry of per-shard counters and log-bucketed latency
// histograms, merged in shard order so every derived report is
// byte-identical at any -shards/-jobs count, plus a Chrome trace-event
// exporter for packet-lifecycle traces (traceevents.go).
//
// The design constraints, in order:
//
//   - Off by default, invisible when off: machines carry a nil collector
//     pointer and every hot-path touch point is a single nil check.
//   - Zero allocations when on: Shard is a flat value type (a counter
//     array plus two fixed-bucket histograms), each machine shard owns
//     one, and merging reuses a scratch Shard inside the Collector.
//   - Deterministic: counters increment exactly once on the shard that
//     owns the event, and the simulation itself is byte-identical at any
//     shard count, so bucket-wise sums merged in shard order are too.
package telemetry

import (
	"fmt"

	"anton3/internal/stats"
)

// The fixed counter registry. Counters with a Ps suffix accumulate
// simulated picoseconds (sim.Time deltas); the rest are event counts.
const (
	// CtrInjected counts packets entering the network at a source.
	CtrInjected = iota
	// CtrDelivered counts packets applied at their destination.
	CtrDelivered
	// CtrParkEvents counts flow-control parks: a packet (injection or
	// transit head) stalled waiting for VC credits.
	CtrParkEvents
	// CtrEscapeVCEntries counts request-class hops accepted onto the
	// Duato escape VC pair.
	CtrEscapeVCEntries
	// CtrFaultReroutes counts parked packets redispatched after a fault
	// trip invalidated their committed route.
	CtrFaultReroutes
	// CtrParkFlitPs accumulates parked flit-picoseconds at injection
	// (park duration x packet flits) — the buffer-occupancy cost of
	// backpressure.
	CtrParkFlitPs
	// CtrCreditStallPs accumulates transit-head credit-stall
	// picoseconds — time a queue head waited for a downstream credit.
	CtrCreditStallPs
	// CtrChannelBusyPs accumulates per-channel serialization busy time,
	// folded in from the serdes layer after a run.
	CtrChannelBusyPs

	NumCounters
)

// CounterNames maps registry IDs to stable snake_case names for reports.
var CounterNames = [NumCounters]string{
	CtrInjected:        "injected",
	CtrDelivered:       "delivered",
	CtrParkEvents:      "park_events",
	CtrEscapeVCEntries: "escape_vc_entries",
	CtrFaultReroutes:   "fault_reroutes",
	CtrParkFlitPs:      "park_flit_ps",
	CtrCreditStallPs:   "credit_stall_ps",
	CtrChannelBusyPs:   "channel_busy_ps",
}

// Shard is one shard's flat accumulator block: the counter array plus
// injection-to-delivery and park-duration histograms (picosecond
// samples). It is a comparable value type — tests assert shard-count
// invariance with == — and merges bucket-wise.
type Shard struct {
	Ctr  [NumCounters]int64 `json:"ctr"`
	Lat  stats.LogHist      `json:"lat"`
	Park stats.LogHist      `json:"park"`
}

// Merge folds o into s.
func (s *Shard) Merge(o *Shard) {
	for i := range s.Ctr {
		s.Ctr[i] += o.Ctr[i]
	}
	s.Lat.Merge(&o.Lat)
	s.Park.Merge(&o.Park)
}

// Reset zeroes s.
func (s *Shard) Reset() { *s = Shard{} }

// Collector owns one Shard per machine shard plus a reused merge
// scratch. Machines hand out per-shard pointers at EnableTelemetry time;
// harnesses read Merged() after each run.
type Collector struct {
	shards []Shard
	merged Shard
}

// NewCollector returns a collector for n shards.
func NewCollector(n int) *Collector {
	return &Collector{shards: make([]Shard, n)}
}

// NumShards returns the shard count the collector was built for.
func (c *Collector) NumShards() int { return len(c.shards) }

// Shard returns the accumulator block owned by shard i.
func (c *Collector) Shard(i int) *Shard { return &c.shards[i] }

// Reset zeroes every shard (called from Machine.Reset).
func (c *Collector) Reset() {
	for i := range c.shards {
		c.shards[i].Reset()
	}
	c.merged.Reset()
}

// Merged folds every shard in shard order into the reused scratch block
// and returns it. The pointer is invalidated by the next Merged or
// Reset call; callers that keep the value copy it (Shard is a value
// type, so `snapshot := *c.Merged()` allocates nothing).
func (c *Collector) Merged() *Shard {
	c.merged.Reset()
	for i := range c.shards {
		c.merged.Merge(&c.shards[i])
	}
	return &c.merged
}

// Summary is the compact digest of a merged Shard surfaced in sweep
// renders and the runner's -json report: raw event counts plus
// nanosecond-converted time totals and histogram quantiles.
type Summary struct {
	Injected      int64   `json:"injected"`
	Delivered     int64   `json:"delivered"`
	ParkEvents    int64   `json:"park_events"`
	EscapeEntries int64   `json:"escape_vc_entries"`
	FaultReroutes int64   `json:"fault_reroutes"`
	ParkFlitNs    float64 `json:"park_flit_ns"`
	CreditStallNs float64 `json:"credit_stall_ns"`
	ChanBusyNs    float64 `json:"channel_busy_ns"`
	LatP50Ns      float64 `json:"lat_p50_ns"`
	LatP99Ns      float64 `json:"lat_p99_ns"`
	ParkP50Ns     float64 `json:"park_p50_ns"`
	ParkP99Ns     float64 `json:"park_p99_ns"`
}

// Summary derives the render/report digest from a (merged) shard block.
func (s *Shard) Summary() Summary {
	const psPerNs = 1000.0
	return Summary{
		Injected:      s.Ctr[CtrInjected],
		Delivered:     s.Ctr[CtrDelivered],
		ParkEvents:    s.Ctr[CtrParkEvents],
		EscapeEntries: s.Ctr[CtrEscapeVCEntries],
		FaultReroutes: s.Ctr[CtrFaultReroutes],
		ParkFlitNs:    float64(s.Ctr[CtrParkFlitPs]) / psPerNs,
		CreditStallNs: float64(s.Ctr[CtrCreditStallPs]) / psPerNs,
		ChanBusyNs:    float64(s.Ctr[CtrChannelBusyPs]) / psPerNs,
		LatP50Ns:      s.Lat.Quantile(0.50) / psPerNs,
		LatP99Ns:      s.Lat.Quantile(0.99) / psPerNs,
		ParkP50Ns:     s.Park.Quantile(0.50) / psPerNs,
		ParkP99Ns:     s.Park.Quantile(0.99) / psPerNs,
	}
}

// Line renders the one-line text form appended to sweep cells. Every
// telemetry line starts with the word "telemetry" at column 0, so the
// CI byte-identity smoke can strip the whole layer with grep -v.
func (s Summary) Line(label string) string {
	return fmt.Sprintf(
		"telemetry %s: inj %d dlv %d park %d esc %d reroute %d | lat p50 %.1f p99 %.1f ns | park p50 %.1f p99 %.1f ns | stall flit %.1f credit %.1f ns | wire busy %.1f ns",
		label,
		s.Injected, s.Delivered, s.ParkEvents, s.EscapeEntries, s.FaultReroutes,
		s.LatP50Ns, s.LatP99Ns,
		s.ParkP50Ns, s.ParkP99Ns,
		s.ParkFlitNs, s.CreditStallNs,
		s.ChanBusyNs,
	)
}
