package trace

import (
	"strings"
	"testing"

	"anton3/internal/sim"
)

func TestUtilization(t *testing.T) {
	r := NewRecorder()
	r.Add("ch", 0, 50*sim.Nanosecond)
	r.Add("ch", 75*sim.Nanosecond, 100*sim.Nanosecond)
	u := r.Utilization("ch", 0, 100*sim.Nanosecond)
	if u < 0.749 || u > 0.751 {
		t.Fatalf("utilization = %v, want 0.75", u)
	}
	if r.Utilization("ch", 50*sim.Nanosecond, 75*sim.Nanosecond) != 0 {
		t.Fatal("idle window should be 0")
	}
}

func TestZeroLengthIntervalIgnored(t *testing.T) {
	r := NewRecorder()
	r.Add("x", 5, 5)
	if len(r.Tracks()) != 0 {
		t.Fatal("empty interval created a track")
	}
}

func TestSpan(t *testing.T) {
	r := NewRecorder()
	r.Add("a", 10, 20)
	r.Add("b", 5, 12)
	lo, hi := r.Span()
	if lo != 5 || hi != 20 {
		t.Fatalf("span = %v..%v", lo, hi)
	}
}

func TestRenderShape(t *testing.T) {
	r := NewRecorder()
	r.Add("chan", 0, 100*sim.Nanosecond)
	r.Add("ppim", 50*sim.Nanosecond, 150*sim.Nanosecond)
	out := r.Render(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 4 header rows (longest name "chan"/"ppim" = 4) + 10 bins.
	if len(lines) != 14 {
		t.Fatalf("render has %d lines, want 14:\n%s", len(lines), out)
	}
	// First bin: chan fully busy (#), ppim idle (space).
	if !strings.Contains(lines[4], "#") {
		t.Fatalf("first bin should show full utilization:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	r := NewRecorder()
	if r.Render(10) != "(no activity)\n" {
		t.Fatal("empty render")
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder()
	r.Add("b", 0, 10)
	r.Add("a", 0, 5)
	s := r.Summary()
	if !strings.Contains(s, "a") || !strings.Contains(s, "50.0%") {
		t.Fatalf("summary = %q", s)
	}
	// Sorted: a before b.
	if strings.Index(s, "a") > strings.Index(s, "b") {
		t.Fatal("summary not sorted")
	}
}

func TestIntervalsEmptyTrack(t *testing.T) {
	r := NewRecorder()
	if ivs := r.Intervals("nope"); ivs != nil {
		t.Fatalf("unknown track intervals = %v, want nil", ivs)
	}
	r.Touch("pinned")
	if ivs := r.Intervals("pinned"); ivs != nil {
		t.Fatalf("touched-but-empty track intervals = %v, want nil", ivs)
	}
	if occ := r.Occupancy("pinned", 0, 100); occ != 0 {
		t.Fatalf("empty track occupancy = %v, want 0", occ)
	}
}

func TestIntervalsZeroLengthDropped(t *testing.T) {
	r := NewRecorder()
	r.Add("t", 5, 5)
	r.Add("t", 10, 20)
	r.Add("t", 7, 7)
	ivs := r.Intervals("t")
	if len(ivs) != 1 || ivs[0] != (Interval{10, 20}) {
		t.Fatalf("intervals = %v, want [{10 20}]", ivs)
	}
}

// Out-of-order and overlapping Adds must yield the same canonical view
// as ordered Adds.
func TestIntervalsCanonicalOrder(t *testing.T) {
	a := NewRecorder()
	a.Add("t", 30, 40)
	a.Add("t", 0, 10)
	a.Add("t", 5, 25) // overlaps the first
	a.Add("t", 0, 8)  // same start, shorter

	b := NewRecorder()
	b.Add("t", 0, 8)
	b.Add("t", 0, 10)
	b.Add("t", 5, 25)
	b.Add("t", 30, 40)

	ai, bi := a.Intervals("t"), b.Intervals("t")
	if len(ai) != 4 {
		t.Fatalf("intervals = %v, want 4 entries", ai)
	}
	for i := range ai {
		if ai[i] != bi[i] {
			t.Fatalf("canonical order differs: %v vs %v", ai, bi)
		}
	}
	want := []Interval{{0, 8}, {0, 10}, {5, 25}, {30, 40}}
	for i := range want {
		if ai[i] != want[i] {
			t.Fatalf("intervals = %v, want %v", ai, want)
		}
	}
}

// Merging per-shard recorders in different chunkings must produce the
// same canonical interval view — the determinism property the packet
// trace export relies on.
func TestIntervalsMergeDeterminism(t *testing.T) {
	all := []Interval{{0, 10}, {2, 6}, {5, 25}, {30, 40}, {30, 40}, {38, 39}}

	build := func(chunks [][]Interval) *Recorder {
		dst := NewRecorder()
		dst.Touch("t")
		for _, ch := range chunks {
			shard := NewRecorder()
			for _, iv := range ch {
				shard.Add("t", iv.Start, iv.End)
			}
			shard.DrainInto(dst)
		}
		return dst
	}

	r1 := build([][]Interval{all})
	r2 := build([][]Interval{all[3:], all[:3]})
	r3 := build([][]Interval{{all[5]}, {all[1], all[3]}, {all[0], all[2], all[4]}})

	i1 := r1.Intervals("t")
	for _, r := range []*Recorder{r2, r3} {
		iv := r.Intervals("t")
		if len(iv) != len(i1) {
			t.Fatalf("interval counts differ: %v vs %v", i1, iv)
		}
		for i := range i1 {
			if iv[i] != i1[i] {
				t.Fatalf("merge-order dependent intervals: %v vs %v", i1, iv)
			}
		}
	}
}

func TestOccupancyUnion(t *testing.T) {
	r := NewRecorder()
	// [0,10) and [5,15) overlap: union covers [0,15) of a [0,20) window.
	r.Add("t", 5, 15)
	r.Add("t", 0, 10)
	if got := r.Occupancy("t", 0, 20); got != 0.75 {
		t.Fatalf("occupancy = %v, want 0.75", got)
	}
	// Utilization keeps sum semantics: 20/20 = 1.0 here.
	if got := r.Utilization("t", 0, 20); got != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", got)
	}
	// An interval nested inside an already-covered region adds nothing.
	r.Add("t", 2, 4)
	if got := r.Occupancy("t", 0, 20); got != 0.75 {
		t.Fatalf("occupancy after nested add = %v, want 0.75", got)
	}
	// Occupancy never exceeds 1 even when the sum does.
	if got := r.Occupancy("t", 0, 10); got != 1.0 {
		t.Fatalf("occupancy = %v, want 1.0", got)
	}
}

func TestShadeMonotone(t *testing.T) {
	prev := byte(' ')
	order := " .:+*#"
	for u := 0.0; u <= 1.0; u += 0.05 {
		g := shade(u)
		if strings.IndexByte(order, g) < strings.IndexByte(order, prev) {
			t.Fatalf("shade not monotone at %v", u)
		}
		prev = g
	}
}
