package trace

import (
	"strings"
	"testing"

	"anton3/internal/sim"
)

func TestUtilization(t *testing.T) {
	r := NewRecorder()
	r.Add("ch", 0, 50*sim.Nanosecond)
	r.Add("ch", 75*sim.Nanosecond, 100*sim.Nanosecond)
	u := r.Utilization("ch", 0, 100*sim.Nanosecond)
	if u < 0.749 || u > 0.751 {
		t.Fatalf("utilization = %v, want 0.75", u)
	}
	if r.Utilization("ch", 50*sim.Nanosecond, 75*sim.Nanosecond) != 0 {
		t.Fatal("idle window should be 0")
	}
}

func TestZeroLengthIntervalIgnored(t *testing.T) {
	r := NewRecorder()
	r.Add("x", 5, 5)
	if len(r.Tracks()) != 0 {
		t.Fatal("empty interval created a track")
	}
}

func TestSpan(t *testing.T) {
	r := NewRecorder()
	r.Add("a", 10, 20)
	r.Add("b", 5, 12)
	lo, hi := r.Span()
	if lo != 5 || hi != 20 {
		t.Fatalf("span = %v..%v", lo, hi)
	}
}

func TestRenderShape(t *testing.T) {
	r := NewRecorder()
	r.Add("chan", 0, 100*sim.Nanosecond)
	r.Add("ppim", 50*sim.Nanosecond, 150*sim.Nanosecond)
	out := r.Render(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 4 header rows (longest name "chan"/"ppim" = 4) + 10 bins.
	if len(lines) != 14 {
		t.Fatalf("render has %d lines, want 14:\n%s", len(lines), out)
	}
	// First bin: chan fully busy (#), ppim idle (space).
	if !strings.Contains(lines[4], "#") {
		t.Fatalf("first bin should show full utilization:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	r := NewRecorder()
	if r.Render(10) != "(no activity)\n" {
		t.Fatal("empty render")
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder()
	r.Add("b", 0, 10)
	r.Add("a", 0, 5)
	s := r.Summary()
	if !strings.Contains(s, "a") || !strings.Contains(s, "50.0%") {
		t.Fatalf("summary = %q", s)
	}
	// Sorted: a before b.
	if strings.Index(s, "a") > strings.Index(s, "b") {
		t.Fatal("summary not sorted")
	}
}

func TestShadeMonotone(t *testing.T) {
	prev := byte(' ')
	order := " .:+*#"
	for u := 0.0; u <= 1.0; u += 0.05 {
		g := shade(u)
		if strings.IndexByte(order, g) < strings.IndexByte(order, prev) {
			t.Fatalf("shade not monotone at %v", u)
		}
		prev = g
	}
}
