// Package trace records component activity intervals during a simulation
// and renders them as the text analogue of the paper's Figure 12 machine
// activity plots: one column per component class, one row per time bin,
// with shading by utilization.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"anton3/internal/sim"
)

type interval struct {
	start, end sim.Time
}

// Recorder accumulates busy intervals per named track.
type Recorder struct {
	tracks map[string][]interval
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{tracks: make(map[string][]interval)}
}

// Add records that track was busy during [start, end).
func (r *Recorder) Add(track string, start, end sim.Time) {
	if end <= start {
		return
	}
	if _, ok := r.tracks[track]; !ok {
		r.order = append(r.order, track)
	}
	r.tracks[track] = append(r.tracks[track], interval{start, end})
}

// Touch registers track without recording anything, pinning its position
// in the rendering order ahead of first use. Harnesses that merge several
// recorders (one per machine shard) touch their columns up front so the
// layout never depends on which shard's intervals merge first.
func (r *Recorder) Touch(track string) {
	if _, ok := r.tracks[track]; ok {
		return
	}
	r.order = append(r.order, track)
	r.tracks[track] = nil
}

// DrainInto moves every interval of r into dst and leaves r empty but with
// its track registrations and slice capacity intact — the reduction step
// for per-shard recorders, run after the shard kernels have drained.
// Interval order within a track depends on the merge order, which no
// consumer observes: Utilization, Span and Render are order-independent
// sums and extrema, and Intervals/Occupancy sort into canonical order
// before exposing anything.
func (r *Recorder) DrainInto(dst *Recorder) {
	for _, t := range r.order {
		ivs := r.tracks[t]
		if len(ivs) == 0 {
			continue
		}
		if _, ok := dst.tracks[t]; !ok {
			dst.order = append(dst.order, t)
		}
		dst.tracks[t] = append(dst.tracks[t], ivs...)
		r.tracks[t] = ivs[:0]
	}
}

// Tracks lists track names in first-use order.
func (r *Recorder) Tracks() []string { return append([]string(nil), r.order...) }

// Interval is one busy span of a track, exposed in canonical order by
// Intervals.
type Interval struct {
	Start, End sim.Time
}

// Intervals returns a copy of track's intervals in canonical order:
// sorted by (Start, End), duplicates preserved, no coalescing. The raw
// in-memory order depends on Add and DrainInto merge order (per-shard
// recorders drain in shard order, but intervals interleave by shard, not
// by time); sorting makes the view deterministic for any consumer that
// iterates — notably the trace-event exporter. Identical intervals are
// interchangeable, so ties need no further key. Returns nil for unknown
// or empty tracks.
func (r *Recorder) Intervals(track string) []Interval {
	ivs := r.tracks[track]
	if len(ivs) == 0 {
		return nil
	}
	out := make([]Interval, len(ivs))
	for i, iv := range ivs {
		out[i] = Interval{iv.start, iv.end}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}

// Occupancy returns the fraction of [from, to) covered by at least one
// interval of track — union semantics, always within [0, 1]. This is
// the complement to Utilization, which sums raw intervals and can
// exceed 1 on tracks that aggregate many components (the Figure 12
// channel-class columns): Occupancy answers "was anything happening",
// Utilization answers "how much total work".
func (r *Recorder) Occupancy(track string, from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	ivs := r.Intervals(track)
	var busy sim.Time
	covered := from // union coverage high-water mark
	for _, iv := range ivs {
		s, e := iv.Start, iv.End
		if s < covered {
			s = covered
		}
		if e > to {
			e = to
		}
		if e > s {
			busy += e - s
			covered = e
		}
	}
	return float64(busy) / float64(to-from)
}

// Utilization returns the busy fraction of track within [from, to).
func (r *Recorder) Utilization(track string, from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	var busy sim.Time
	for _, iv := range r.tracks[track] {
		s, e := iv.start, iv.end
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			busy += e - s
		}
	}
	return float64(busy) / float64(to-from)
}

// Span returns the earliest start and latest end across all tracks.
func (r *Recorder) Span() (sim.Time, sim.Time) {
	first := true
	var lo, hi sim.Time
	for _, ivs := range r.tracks {
		for _, iv := range ivs {
			if first || iv.start < lo {
				lo = iv.start
			}
			if first || iv.end > hi {
				hi = iv.end
			}
			first = false
		}
	}
	return lo, hi
}

// shades maps utilization to a glyph, light to dark.
var shades = []byte{' ', '.', ':', '+', '*', '#'}

func shade(u float64) byte {
	idx := int(u * float64(len(shades)))
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return shades[idx]
}

// Render draws the activity plot with the given number of time bins. Track
// order follows first use; tracks render as columns (matching Figure 12's
// layout: channels left, GCs middle, PPIMs right, time flowing downward).
func (r *Recorder) Render(bins int) string {
	if bins <= 0 || len(r.order) == 0 {
		return "(no activity)\n"
	}
	lo, hi := r.Span()
	if hi <= lo {
		return "(no activity)\n"
	}
	var b strings.Builder

	// Header with column labels, vertical to keep columns narrow.
	width := 0
	for _, t := range r.order {
		if len(t) > width {
			width = len(t)
		}
	}
	for row := 0; row < width; row++ {
		b.WriteString("          ")
		for _, t := range r.order {
			if row < len(t) {
				b.WriteByte(t[row])
			} else {
				b.WriteByte(' ')
			}
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}

	binDur := (hi - lo) / sim.Time(bins)
	if binDur <= 0 {
		binDur = 1
	}
	for i := 0; i < bins; i++ {
		from := lo + sim.Time(i)*binDur
		to := from + binDur
		fmt.Fprintf(&b, "%7.0fns  ", from.Nanoseconds())
		for _, t := range r.order {
			b.WriteByte(shade(r.Utilization(t, from, to)))
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary returns per-track overall utilization lines, sorted by name.
func (r *Recorder) Summary() string {
	lo, hi := r.Span()
	names := r.Tracks()
	sort.Strings(names)
	var b strings.Builder
	for _, t := range names {
		fmt.Fprintf(&b, "%-20s %5.1f%%\n", t, 100*r.Utilization(t, lo, hi))
	}
	return b.String()
}
