package machine

import (
	"fmt"

	"anton3/internal/chip"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/sim"
	"anton3/internal/telemetry"
	"anton3/internal/topo"
)

// Per-VC ingress queues (Config.VCQueueFlits > 0) replace the machine's
// infinite-buffer channel model with the paper's bounded virtual-channel
// flow control at node granularity: every packet emerging from a channel
// lands in a bounded per-(inbound channel, VC) FIFO at the receiving node,
// and the sending node may only start a packet toward that queue while it
// holds enough credits for the packet's flits. Credits return to the sender
// over the reverse wire (one ChannelFixed flight — the same latency floor
// the parallel executive uses as its lookahead, so sharded machines merge
// credit arrivals at window barriers exactly like packet arrivals).
//
// The queue discipline is virtual cut-through: a packet frees its ingress
// slots the moment it is accepted by its next output (or starts ejecting),
// not when it finishes serializing there. A queue head that cannot get
// credits on its chosen output parks — and every packet behind it in that
// VC FIFO waits, which is precisely the head-of-line blocking that makes
// VC assignment a performance decision instead of bookkeeping. Fence
// packets bypass the queues: the hardware gives fences dedicated per-port
// counters (Section V-D), so they are modeled credit-exempt.
//
// Deadlock freedom follows Duato's protocol rather than the per-packet
// dimension orders alone: with bounded buffers, packets of *different*
// dimension orders sharing VCs can close X->Y->X buffer cycles (only a
// single fixed order is cycle-free), so the four request VCs split into a
// free pair (vcFree: any minimal hop the routing policy picks, dateline-
// split 0/1) and an escape pair (vcEscape: 2/3) that admits only strict
// XYZ e-cube hops (route.EscapeNext) with the dateline switch. The escape
// subnetwork's channel dependency graph is acyclic, so it always drains;
// a blocked head parks on its escape resource, whose credits therefore
// always eventually return. Responses keep their dedicated VC — their
// mesh-restricted XYZ routes are acyclic by construction.

// pktq is a FIFO of packets backed by a reusable ring buffer, so the
// steady-state enqueue/dequeue path never allocates once the ring has grown
// to the queue's peak depth.
type pktq struct {
	buf  []*packet.Packet
	head int
	n    int
}

func (q *pktq) len() int { return q.n }

func (q *pktq) peek() *packet.Packet {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

func (q *pktq) push(p *packet.Packet) {
	if q.n == len(q.buf) {
		grown := make([]*packet.Packet, 2*len(q.buf)+4)
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

func (q *pktq) pop() *packet.Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

// vcqState is the machine's virtual-channel flow-control state, laid out
// structure-of-arrays: every table is one flat slice indexed by
// (node x dense channel spec x VC), so the inner credit loop walks plain
// []int32 instead of chasing a per-node object. The same slot plays two
// roles depending on the table: credits/pending/pendFlits describe the
// node's *outbound* channels (the sender side: how much space remains
// downstream, and which packets are parked waiting for it), while
// inq/inqFlits/credSeq describe its *inbound* channels (the receiver side:
// the per-VC ingress FIFOs, keyed by the receiver-side spec a packet
// carries in In).
type vcqState struct {
	credits   []int32
	pendFlits []int32
	pending   []pktq

	inqFlits []int32
	inq      []pktq
	// credSeq counts credit messages returned per inbound (channel, VC) —
	// the content-derived serial that makes credit events totally ordered
	// under lineage ties regardless of the shard count.
	credSeq []uint32
}

// newVCQState allocates the flow-control tables for a machine of nNodes.
func newVCQState(nNodes int) *vcqState {
	n := nNodes * chip.NumChannelSpecs * route.NumVCs
	return &vcqState{
		credits:   make([]int32, n),
		pendFlits: make([]int32, n),
		pending:   make([]pktq, n),
		inqFlits:  make([]int32, n),
		inq:       make([]pktq, n),
		credSeq:   make([]uint32, n),
	}
}

// vcSlot linearizes (node, channel spec, VC) into the vcqState tables.
func vcSlot(node int32, spec, vc int) int {
	return (int(node)*chip.NumChannelSpecs+spec)*route.NumVCs + vc
}

// creditInjBase places credit-message lineage serials in their own region
// of the injection-order space, disjoint from packet injection indices and
// from fence serials, so a credit event can never compare equal to the
// packet whose chain it inherited.
const creditInjBase = uint64(1) << 62

// creditMsg is one in-flight credit return: flits freed at the downstream
// node, on their way back to the upstream node's credit counter. Messages
// are pooled per shard; a message that crosses shards is recycled into the
// pool of the shard it fires on.
type creditMsg struct {
	m     *Machine
	node  *Node // upstream node whose outbound credits to top up
	spec  int8  // dense index of the upstream node's outbound channel
	vc    int8
	flits int8
	inj   uint64
	hist  []sim.Time
}

// Act delivers the credits (sim.Actor).
func (c *creditMsg) Act() {
	n := c.node
	m := c.m
	if m.lineage {
		c.hist = append(c.hist, n.sh.k.Now())
		n.sh.curHist = c.hist
	}
	m.creditArrive(n, int(c.spec), int(c.vc), int(c.flits))
	n.sh.putCredit(c)
}

// Lineage implements sim.Lineaged.
func (c *creditMsg) Lineage() ([]sim.Time, uint64) { return c.hist, c.inj }

// getCredit returns a credit message from the shard's free list.
func (sh *mshard) getCredit() *creditMsg {
	n := len(sh.creds) - 1
	if n < 0 {
		return &creditMsg{}
	}
	c := sh.creds[n]
	sh.creds[n] = nil
	sh.creds = sh.creds[:n]
	return c
}

// putCredit recycles a fired credit message into this shard's free list
// (adopting messages that were allocated on another shard).
func (sh *mshard) putCredit(c *creditMsg) {
	hist := c.hist[:0]
	*c = creditMsg{hist: hist}
	sh.creds = append(sh.creds, c)
}

// lineageTouch records that p's next event is being scheduled by the
// currently executing event at time now: under lineage ordering an actor's
// history must end with its scheduler's fire time. Scheduling from p's own
// event is a no-op (OnPacket already appended now); scheduling from another
// actor's event — a credit arrival reviving a parked packet, a departing
// head unblocking the packet behind it — appends the missing link.
func (m *Machine) lineageTouch(p *packet.Packet, now sim.Time) {
	if !m.lineage {
		return
	}
	if n := len(p.Hist); n == 0 || p.Hist[n-1] != now {
		p.PushHist(now)
	}
}

// Request VC classes of the credit-flow layer (see the package comment):
// the free pair carries any minimal hop the policy picks, the escape pair
// only strict e-cube hops. Each pair splits 0/1 on the dateline.
const (
	vcFree   = 0
	vcEscape = 2
)

// hopVC returns base's dateline-adjusted VC for p crossing channel out:
// base+1 once the packet has crossed the wraparound link of the dimension
// it is traversing, base otherwise, with the crossed bit resetting on a
// dimension change (route.HopVCs semantics).
func (m *Machine) hopVC(p *packet.Packet, out chip.ChannelSpec, base int) int {
	if p.Crossed && int8(out.Dim) == p.CurDim {
		return base + 1
	}
	return base
}

// chooseHop picks q's next channel and VC at its current node under credit
// flow control, given the policy's preferred step st: the preferred hop on
// the free pair when credits allow, the e-cube escape hop on the escape
// pair otherwise. ok=false means neither resource has credits — out and w
// then name the escape resource the packet must park on (the one whose
// credits are guaranteed to eventually return). Responses use their
// dedicated VC for both roles. On faulty machines the preferred hop is
// additionally vetoed when its channel is dead or when it conflicts with a
// ring direction the packet's escape detour has committed to, and the
// escape hop routes around dead links (route.EscapeNextAvoid).
func (m *Machine) chooseHop(n *Node, q *packet.Packet, st topo.Step) (chip.ChannelSpec, int, bool) {
	v := m.vcq
	fl := int32(q.Flits())
	if q.Type.Class() == packet.Response {
		out := chip.ChannelSpec{Dim: st.Dim, Dir: st.Dir, Slice: int(q.Slice)}
		return out, route.ResponseVC, v.credits[vcSlot(n.idx, out.Index(), route.ResponseVC)] >= fl
	}
	out := chip.ChannelSpec{Dim: st.Dim, Dir: st.Dir, Slice: int(q.Slice)}
	if !m.hopBlocked(n, q, out) {
		w := m.hopVC(q, out, vcFree)
		if v.credits[vcSlot(n.idx, out.Index(), w)] >= fl {
			return out, w, true
		}
	}
	esc, ok := m.escapeStep(n, q)
	if !ok {
		panic("machine: escape route ended before the destination")
	}
	if m.faulty && int8(esc.Dim) == q.CurDim && q.CurDir != 0 && int8(esc.Dir) != q.CurDir {
		// The detour reverses within the packet's current dimension: each
		// (dim, dir) ring has its own dateline, so the crossed state
		// belongs to the old direction and must not pick the high VC here.
		q.Crossed = false
	}
	out = chip.ChannelSpec{Dim: esc.Dim, Dir: esc.Dir, Slice: int(q.Slice)}
	w := m.hopVC(q, out, vcEscape)
	return out, w, v.credits[vcSlot(n.idx, out.Index(), w)] >= fl
}

// hopBlocked reports whether fault state forbids sending q over out: the
// channel is dead, or the packet has committed to the opposite ring
// direction in out's dimension while detouring around a dead link (taking
// the minimal hop again would bounce it back into the link it is escaping —
// livelock). Always false on healthy machines.
func (m *Machine) hopBlocked(n *Node, q *packet.Packet, out chip.ChannelSpec) bool {
	if !m.faulty {
		return false
	}
	if m.deadCh[int(n.idx)*chip.NumChannelSpecs+out.Index()] {
		return true
	}
	c := q.EscDirs[int(out.Dim)]
	return c != 0 && int(c) != out.Dir
}

// escapeStep returns q's escape hop at node n: plain e-cube on healthy
// machines, the dead-link-avoiding variant (with per-packet direction
// commitment) on faulty ones.
func (m *Machine) escapeStep(n *Node, q *packet.Packet) (topo.Step, bool) {
	if !m.faulty {
		return route.EscapeNext(m.cfg.Shape, q.Cur, q.DstNode, q.Tie)
	}
	return route.EscapeNextAvoid(m.cfg.Shape, q.Cur, q.DstNode, q.Tie, &n.healths[q.Slice], &q.EscDirs)
}

// sendFlow is Send's first-hop admission under per-VC flow control: deduct
// credits and start injecting, or park the packet at the chosen channel
// until a credit arrival revives it (the backpressure closed-loop sources
// stall on).
func (m *Machine) sendFlow(p *packet.Packet, n *Node, first topo.Step) {
	out, w, ok := m.chooseHop(n, p, first)
	idx := out.Index()
	fl := int32(p.Flits())
	v := m.vcq
	p.Out = int8(idx)
	if !ok {
		slot := vcSlot(n.idx, idx, w)
		p.OutVC = int8(w)
		p.State = packet.WalkParked
		p.ParkedAt = n.sh.k.Now()
		if n.sh.tele != nil {
			n.sh.tele.Ctr[telemetry.CtrParkEvents]++
		}
		v.pending[slot].push(p)
		v.pendFlits[slot] += fl
		return
	}
	v.credits[vcSlot(n.idx, idx, w)] -= fl
	m.acceptHop(p, out, w)
	p.State = packet.WalkTransit
	n.sh.k.AfterActor(m.injLat[m.tileIdx(p.SrcCore)*chip.NumChannelSpecs+idx], p)
}

// acceptHop commits p to channel out on VC w: record the VC whose credits
// it now holds, update the dateline-tracking dimension state, and advance
// (or invalidate) the precomputed route — a packet diverted onto an escape
// hop that differs from its plan falls back to per-hop decisions for the
// rest of its walk.
func (m *Machine) acceptHop(p *packet.Packet, out chip.ChannelSpec, w int) {
	// Request-class VCs in [vcEscape, ResponseVC) are the Duato escape
	// pair — telemetry counts entries onto them as the deadlock-avoidance
	// pressure signal. Responses (VC 4) never trip the guard.
	if w >= vcEscape && w < route.ResponseVC {
		if sh := m.nodes[p.CurIdx].sh; sh.tele != nil || sh.trec != nil {
			m.noteEscapeEntry(sh, p)
		}
	}
	p.VC = int8(w)
	if int8(out.Dim) != p.CurDim || int8(out.Dir) != p.CurDir {
		// A direction change without a dimension change only happens on
		// fault detours (minimal routing never reverses within a ring);
		// the reversed ring has its own dateline, so Crossed resets there
		// too.
		p.CurDim = int8(out.Dim)
		p.CurDir = int8(out.Dir)
		p.Crossed = false
	}
	if p.RouteLen >= 0 {
		if p.RoutePos < p.RouteLen && p.Route[p.RoutePos] == int8(out.Index()) {
			p.RoutePos++
		} else {
			p.RouteLen = -1
		}
	}
}

// vcqArrive handles a packet emerging from a channel at a node with per-VC
// ingress queues: the packet joins the FIFO of its (inbound channel, VC)
// and, if it is the head, tries to advance immediately.
func (m *Machine) vcqArrive(n *Node, p *packet.Packet) {
	v := m.vcq
	in, vc := int(p.In), int(p.VC)
	slot := vcSlot(n.idx, in, vc)
	v.inqFlits[slot] += int32(p.Flits())
	if v.inqFlits[slot] > int32(m.vcqFlits) {
		panic(fmt.Sprintf("machine: node %v ingress queue overflow on %v vc %d (flow-control bug)",
			n.Coord, chip.ChannelSpecAt(in), vc))
	}
	v.inq[slot].push(p)
	if v.inq[slot].len() == 1 {
		m.advanceQueue(n, in, vc)
	}
}

// advanceQueue drains one ingress FIFO for as long as its head can make
// progress: eject heads leave immediately, transit heads leave when the
// chosen output has credits, and a credit-starved head parks — blocking
// the whole FIFO behind it (head-of-line blocking).
func (m *Machine) advanceQueue(n *Node, in, vc int) {
	v := m.vcq
	inSpec := chip.ChannelSpecAt(in)
	inqSlot := vcSlot(n.idx, in, vc)
	for {
		q := v.inq[inqSlot].peek()
		if q == nil {
			return
		}
		now := n.sh.k.Now()
		st, ok := m.nextStep(q, q.Cur)
		if !ok {
			m.popIngress(n, in, vc, q)
			q.State = packet.WalkApply
			m.lineageTouch(q, now)
			n.sh.k.AfterActor(m.ejLat[m.tileIdx(q.DstCore)*chip.NumChannelSpecs+in], q)
			continue
		}
		out, w, ok := m.chooseHop(n, q, st)
		idx := out.Index()
		fl := int32(q.Flits())
		if !ok {
			slot := vcSlot(n.idx, idx, w)
			q.Out = int8(idx)
			q.OutVC = int8(w)
			q.State = packet.WalkParked
			q.ParkedAt = now
			if n.sh.tele != nil {
				n.sh.tele.Ctr[telemetry.CtrParkEvents]++
			}
			v.pending[slot].push(q)
			v.pendFlits[slot] += fl
			return
		}
		v.credits[vcSlot(n.idx, idx, w)] -= fl
		m.popIngress(n, in, vc, q)
		m.departHop(n, q, inSpec, out, w, now)
	}
}

// departHop schedules q's transit toward channel out after it has been
// accepted (credits already deducted) and has left its ingress queue.
func (m *Machine) departHop(n *Node, q *packet.Packet, inSpec, out chip.ChannelSpec, w int, now sim.Time) {
	m.acceptHop(q, out, w)
	q.Out = int8(out.Index())
	q.State = packet.WalkTransit
	m.lineageTouch(q, now)
	n.sh.k.AfterActor(m.transLat[inSpec.Index()][out.Index()], q)
}

// popIngress removes q (the head) from its ingress FIFO and sends the
// freed flits back upstream as a credit message.
func (m *Machine) popIngress(n *Node, in, vc int, q *packet.Packet) {
	v := m.vcq
	slot := vcSlot(n.idx, in, vc)
	v.inq[slot].pop()
	fl := int32(q.Flits())
	v.inqFlits[slot] -= fl
	m.creditReturn(n, in, vc, fl)
}

// creditReturn schedules fl flits of credit for the (channel, VC) feeding
// node n's inbound channel in, arriving at the upstream node one reverse
// wire flight from now: credits ride sideband on n's own channel pointing
// back at the sender (spec in — the receiver-side spec IS the reverse
// direction), so the latency is that channel's FixedLatency. Cross-shard
// returns ride the executive's outboxes like packet arrivals; the latency
// floor is the same lookahead, so the deferral is always safe.
func (m *Machine) creditReturn(n *Node, in, vc int, fl int32) {
	up := m.nodes[m.neigh[int(n.idx)*chip.NumChannelSpecs+in]]
	v := m.vcq
	slot := vcSlot(n.idx, in, vc)
	seq := v.credSeq[slot]
	v.credSeq[slot]++
	// The message always comes from the emitting shard's free list — also
	// for cross-shard credits, which recycle into the upstream shard's
	// list when they fire (getCredit touches only n.sh, putCredit only the
	// firing shard, so no free list is ever shared inside a window; Reset
	// rebalances the drift the migration leaves behind).
	msg := n.sh.getCredit()
	msg.m = m
	msg.node = up
	msg.spec = m.oppIdx[in]
	msg.vc = int8(vc)
	msg.flits = int8(fl)
	msg.inj = creditInjBase +
		(uint64(n.idx)*chip.NumChannelSpecs+uint64(in))<<24 +
		uint64(vc)<<20 + uint64(seq&0xfffff)
	if m.lineage {
		if cap(msg.hist) == 0 {
			msg.hist = make([]sim.Time, 0, packet.HistCap)
		}
		msg.hist = append(msg.hist[:0], n.sh.curHist...)
	}
	at := n.sh.k.Now() + n.out[in].FixedLatency()
	if up.sh == n.sh {
		n.sh.k.AtActor(at, msg)
	} else {
		m.exec.Outbox(n.sh.id, up.sh.id).Defer(at, msg)
	}
}

// creditArrive tops up one outbound (channel, VC) credit counter at node n
// and revives parked packets in FIFO order for as long as credits last.
// Unparked transit heads leave their ingress queues, which lets the
// packets blocked behind them advance in turn.
func (m *Machine) creditArrive(n *Node, spec, vc, fl int) {
	if m.faulty && m.deadCh[int(n.idx)*chip.NumChannelSpecs+spec] {
		// Credits returning for a dead channel are dropped: nothing may be
		// accepted onto it again, and packets in flight when it tripped
		// have already drained downstream.
		return
	}
	v := m.vcq
	slot := vcSlot(n.idx, spec, vc)
	v.credits[slot] += int32(fl)
	out := chip.ChannelSpecAt(spec)
	for {
		q := v.pending[slot].peek()
		if q == nil {
			return
		}
		need := int32(q.Flits())
		if v.credits[slot] < need {
			return
		}
		v.pending[slot].pop()
		v.pendFlits[slot] -= need
		v.credits[slot] -= need
		now := n.sh.k.Now()
		if n.sh.tele != nil || n.sh.trec != nil {
			m.noteUnpark(n, q, now, need)
		}
		if q.In < 0 {
			// A parked injection: admit it and tell the source.
			m.acceptHop(q, out, int(q.OutVC))
			q.State = packet.WalkTransit
			m.lineageTouch(q, now)
			n.sh.k.AfterActor(m.injLat[m.tileIdx(q.SrcCore)*chip.NumChannelSpecs+spec], q)
			if q.OnAccept != nil {
				q.OnAccept.Accepted(q)
			}
			continue
		}
		in, invc := int(q.In), int(q.VC)
		m.popIngress(n, in, invc, q)
		m.departHop(n, q, chip.ChannelSpecAt(in), out, int(q.OutVC), now)
		m.advanceQueue(n, in, invc)
	}
}

// resetVCQ returns a node's flow-control state to its just-built form:
// full credits, empty queues. Packets still held in queues (possible after
// a deadlocked adaptive run) are recycled into their shard's pool.
func (n *Node) resetVCQ(queueFlits int) {
	v := n.m.vcq
	if v == nil {
		return
	}
	for spec := 0; spec < chip.NumChannelSpecs; spec++ {
		for vc := 0; vc < route.NumVCs; vc++ {
			slot := vcSlot(n.idx, spec, vc)
			if n.out[spec] != nil {
				v.credits[slot] = int32(queueFlits)
			} else {
				v.credits[slot] = 0
			}
			for {
				p := v.pending[slot].pop()
				if p == nil {
					break
				}
				// Parked transit heads still sit in their ingress FIFO and
				// are recycled when that queue drains below; only refused
				// injections (In < 0) live in pending alone.
				if p.In < 0 {
					n.sh.pool.Put(p)
				}
			}
			for {
				p := v.inq[slot].pop()
				if p == nil {
					break
				}
				n.sh.pool.Put(p)
			}
			v.pendFlits[slot] = 0
			v.inqFlits[slot] = 0
			v.credSeq[slot] = 0
		}
	}
}

// IngressOccupancy reports the flits queued in the per-VC ingress FIFO fed
// by inbound channel in (the spec a packet carries in In) — the node-level
// analog of router.Router.Occupancy. Zero when per-VC queues are disabled.
func (n *Node) IngressOccupancy(in chip.ChannelSpec, vc int) int {
	if n.m.vcq == nil {
		return 0
	}
	return int(n.m.vcq.inqFlits[vcSlot(n.idx, in.Index(), vc)])
}

// OutCredits reports the downstream ingress space (in flits) this node
// holds for its outbound channel out on VC vc — the node-level analog of
// router.Router.Credits. Zero when per-VC queues are disabled.
func (n *Node) OutCredits(out chip.ChannelSpec, vc int) int {
	if n.m.vcq == nil {
		return 0
	}
	return int(n.m.vcq.credits[vcSlot(n.idx, out.Index(), vc)])
}

// ParkedFlits reports the flits parked at this node waiting for credits on
// outbound channel out, VC vc (head-of-line blocked heads and refused
// injections).
func (n *Node) ParkedFlits(out chip.ChannelSpec, vc int) int {
	if n.m.vcq == nil {
		return 0
	}
	return int(n.m.vcq.pendFlits[vcSlot(n.idx, out.Index(), vc)])
}

// creditLoadView reports, to a credit-steered adaptive policy deciding at
// node n, the one-hop-lookahead congestion of each outbound channel on one
// slice: the downstream ingress flits the node's credit counters say are
// occupied across the request VCs, plus any flits already parked here
// waiting for that channel. This is the "credit echo" signal — unlike the
// serialization-backlog view, it sees head-of-line blocking one hop ahead.
type creditLoadView struct {
	n     *Node
	slice int
}

// Load implements route.LoadView.
func (v *creditLoadView) Load(dim topo.Dim, dir int) int64 {
	cs := chip.ChannelSpec{Dim: dim, Dir: dir, Slice: v.slice}
	vq := v.n.m.vcq
	base := vcSlot(v.n.idx, cs.Index(), 0)
	full := int32(v.n.m.vcqFlits)
	var load int64
	for vc := 0; vc < route.NumRequestVCs; vc++ {
		load += int64(full - vq.credits[base+vc] + vq.pendFlits[base+vc])
	}
	return load
}
