package machine

import (
	"testing"

	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/serdes"
	"anton3/internal/testutil"
	"anton3/internal/topo"
)

// The allocation regression tests pin the tentpole property of the packet
// pipeline rewrite: once the pools (packet free list, kernel event pool)
// have warmed, a steady-state Send — inject, hop across channels, eject,
// apply, deliver — performs zero heap allocations, for both traffic
// classes. CI runs these as its allocation gate (without -race; the
// detector's instrumentation allocates).

// allocMachine is a 128-node machine with compression off — the netsweep
// hot-path configuration.
func allocMachine() *Machine {
	cfg := DefaultConfig(topo.Shape{X: 4, Y: 4, Z: 8})
	cfg.Compress = serdes.CompressConfig{}
	return New(cfg)
}

func TestSendRequestSteadyStateAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	m := allocMachine()
	src, dst := topo.Coord{}, topo.Coord{X: 2, Y: 1, Z: 3}
	srcID, dstID := m.GC(src, 0).ID, m.GC(dst, 7).ID
	var atom uint32
	send := func() {
		p := m.NewPacket()
		p.Type = packet.Position
		p.SrcNode, p.DstNode = src, dst
		p.SrcCore, p.DstCore = srcID, dstID
		p.AtomID = atom
		atom++
		p.SetQuad([4]uint32{atom, 2, 3, 4})
		m.Send(p, nil)
		m.K.Run()
	}
	for i := 0; i < 32; i++ {
		send() // warm the pools across both slices and several dim orders
	}
	if n := testing.AllocsPerRun(200, send); n != 0 {
		t.Fatalf("steady-state request Send allocates %.1f times/op, want 0", n)
	}
}

func TestSendResponseSteadyStateAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	m := allocMachine()
	a := m.GC(topo.Coord{}, 0)
	b := m.GC(topo.Coord{X: 3, Y: 2, Z: 5}, 9)
	b.SRAM().WriteQuad(100, [4]uint32{0xaa, 0xbb, 0xcc, 0xdd})
	send := func() {
		// A read round trip: the ReadReq crosses as a request, the
		// destination builds a pooled ReadResp that walks the
		// mesh-restricted response route home.
		p := m.NewPacket()
		p.Type = packet.ReadReq
		p.SrcNode, p.DstNode = a.Node.Coord, b.Node.Coord
		p.SrcCore, p.DstCore = a.ID, b.ID
		p.Addr = 100
		m.Send(p, nil)
		m.K.Run()
	}
	for i := 0; i < 32; i++ {
		send()
	}
	if n := testing.AllocsPerRun(200, send); n != 0 {
		t.Fatalf("steady-state read/response round trip allocates %.1f times/op, want 0", n)
	}
}

func TestSendAdaptivePolicyAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	// The adaptive policy reads the per-node load views; they must not cost
	// a closure per decision.
	cfg := DefaultConfig(topo.Shape{X: 4, Y: 4, Z: 8})
	cfg.Compress = serdes.CompressConfig{}
	cfg.Policy = route.MinimalAdaptive()
	m := New(cfg)
	src, dst := topo.Coord{}, topo.Coord{X: 2, Y: 1, Z: 3}
	srcID, dstID := m.GC(src, 0).ID, m.GC(dst, 0).ID
	var atom uint32
	send := func() {
		p := m.NewPacket()
		p.Type = packet.Position
		p.SrcNode, p.DstNode = src, dst
		p.SrcCore, p.DstCore = srcID, dstID
		p.AtomID = atom
		atom++
		m.Send(p, nil)
		m.K.Run()
	}
	for i := 0; i < 32; i++ {
		send()
	}
	if n := testing.AllocsPerRun(200, send); n != 0 {
		t.Fatalf("steady-state adaptive Send allocates %.1f times/op, want 0", n)
	}
}

// BenchmarkSendHotPath times one steady-state request delivery (inject,
// ~3 hops, eject, apply) end to end, kernel included. Run with -benchmem:
// allocs/op is the pinned quantity.
func BenchmarkSendHotPath(b *testing.B) {
	m := allocMachine()
	src, dst := topo.Coord{}, topo.Coord{X: 2, Y: 1, Z: 3}
	srcID, dstID := m.GC(src, 0).ID, m.GC(dst, 7).ID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := m.NewPacket()
		p.Type = packet.Position
		p.SrcNode, p.DstNode = src, dst
		p.SrcCore, p.DstCore = srcID, dstID
		p.AtomID = uint32(i)
		p.SetQuad([4]uint32{uint32(i), 2, 3, 4})
		m.Send(p, nil)
		m.K.Run()
	}
}

// BenchmarkSendResponseHotPath times a full read round trip (request out,
// pooled response back on the mesh-restricted route).
func BenchmarkSendResponseHotPath(b *testing.B) {
	m := allocMachine()
	a := m.GC(topo.Coord{}, 0)
	dst := m.GC(topo.Coord{X: 3, Y: 2, Z: 5}, 9)
	dst.SRAM().WriteQuad(100, [4]uint32{0xaa, 0xbb, 0xcc, 0xdd})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := m.NewPacket()
		p.Type = packet.ReadReq
		p.SrcNode, p.DstNode = a.Node.Coord, dst.Node.Coord
		p.SrcCore, p.DstCore = a.ID, dst.ID
		p.Addr = 100
		m.Send(p, nil)
		m.K.Run()
	}
}
