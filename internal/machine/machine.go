// Package machine assembles Anton 3 nodes into a full machine on the 3D
// torus and provides the measurement harnesses the paper's evaluation
// sections use: the ping-pong latency test (Section III-C), the network
// fence barrier (Section V-F), and the MD timestep pipeline engine
// (Section VI-A).
package machine

import (
	"fmt"

	"anton3/internal/chip"
	"anton3/internal/fault"
	"anton3/internal/fence"
	"anton3/internal/mem"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/telemetry"
	"anton3/internal/topo"
	"anton3/internal/trace"
)

// Config describes one machine.
type Config struct {
	Shape    topo.Shape
	ClockMHz int64
	Lat      chip.Latencies
	Compress serdes.CompressConfig
	Seed     uint64
	// Policy selects the request routing policy (order selection, per-hop
	// output choice, VC provisioning). nil means route.Random(), the
	// paper's randomized minimal oblivious routing; route.XYZ() is the
	// DESIGN.md fixed-order ablation, route.MinimalAdaptive() the
	// load-adaptive alternative the paper argues against.
	Policy route.Policy
	// Shards partitions the machine's nodes into that many contiguous
	// shards, each with its own kernel, packet pool and rng, driven
	// concurrently by a conservative-lookahead window loop (Machine.Run).
	// The lookahead is Lat.ChannelFixed — the latency floor every
	// inter-node packet pays — so cross-shard arrivals can always be
	// merged at a window barrier. 0 or 1 means the classic single-kernel
	// machine; values above the node count are clamped.
	Shards int
	// Faults, when non-nil and non-empty, is the deterministic link-fault
	// plan applied to this machine (see internal/fault and fault.go):
	// degraded channels from reset, dead channels, and faults scheduled to
	// trip at a simulated timestamp. Dead-link faults require VCQueueFlits
	// > 0 — without credit flow control there is no backpressure to park
	// traffic off a dead channel. New panics on a plan that fails
	// fault.Plan.Validate against Shape; CLI layers should pre-validate
	// for a clean error.
	Faults *fault.Plan
	// VCQueueFlits, when positive, enables bounded per-VC ingress queues
	// with credit-based flow control at every node (see vcq.go): each
	// inbound channel gets one FIFO of this depth (in flits) per virtual
	// channel, senders hold matching credit counters, and packets that
	// cannot get credits park — making VC choice and head-of-line blocking
	// performance-visible. 0 (the default) keeps the historical
	// infinite-buffer channel model, byte-identical to earlier trees.
	// Credits return over the reverse wire at Lat.ChannelFixed, the same
	// lookahead floor the sharded executive relies on.
	VCQueueFlits int
}

// DefaultConfig returns the production configuration for a given torus
// shape: 2.8 GHz clock, calibrated latencies, compression on.
func DefaultConfig(shape topo.Shape) Config {
	return Config{
		Shape:    shape,
		ClockMHz: 2800,
		Lat:      chip.DefaultLatencies(),
		Compress: serdes.CompressConfig{INZ: true, Pcache: true},
		Seed:     1,
	}
}

// mshard is one shard's execution context: a kernel, a packet free list
// and an rng of its own, so shard goroutines share no mutable state while
// a window executes. Node indices [lo, hi) belong to this shard.
type mshard struct {
	id     int
	k      *sim.Kernel
	pool   packet.Pool
	rng    *sim.Rand
	pktID  uint64
	lo, hi int

	// creds is the shard's credit-message free list (per-VC flow control);
	// curHist is the lineage chain of the event this shard is currently
	// executing, the chain credit returns scheduled inside it inherit.
	creds   []*creditMsg
	curHist []sim.Time

	// tele and trec are this shard's telemetry accumulator block and
	// packet-lifecycle trace recorder; nil (the default) keeps every
	// observability touch point a single predictable branch.
	tele *telemetry.Shard
	trec *trace.Recorder
}

// nextPktID hands out this shard's packet IDs.
func (sh *mshard) nextPktID() uint64 {
	sh.pktID++
	return sh.pktID
}

// Machine is a simulated Anton 3 machine.
type Machine struct {
	cfg Config
	// K is shard 0's kernel — for single-shard machines (the default),
	// simply the machine's kernel, as it has always been. Harness code
	// that targets a specific node of a sharded machine uses NodeKernel.
	K        *sim.Kernel
	Clock    sim.Clock
	Geom     *chip.Geometry
	nodes    []*Node
	shards   []*mshard
	exec     *sim.ParallelExec // nil for single-shard machines
	lineage  bool              // maintain packet lineage for shard-count-invariant tie order
	policy   route.Policy
	adaptive bool               // policy.Adaptive(), cached for the per-hop path
	credEcho bool               // policy wants the credit-lookahead load view
	vcqFlits int                // Config.VCQueueFlits, cached for the per-hop path
	specs    []chip.ChannelSpec // the shape's channel specs, in dense-index order

	// Flat hot-path tables (structure-of-arrays over the dense node index x
	// dense channel-spec index): neigh holds each hop's destination node
	// index, cross whether the hop traverses the dimension's wraparound
	// link (the dateline VC rule), and chanBank the channel objects
	// themselves in one contiguous array — Node.out points into it. oppIdx
	// maps a spec index to its receiver-side (opposite-direction) index.
	neigh    []int32
	cross    []bool
	chanBank []serdes.Channel
	oppIdx   [chip.NumChannelSpecs]int8

	// Precomputed queuing-free geometry latencies, so the per-hop walk does
	// no cycle arithmetic: injLat/ejLat by (chip tile index x spec),
	// transLat by (inbound spec x outbound spec, same-side pairs only).
	injLat   []sim.Time
	ejLat    []sim.Time
	transLat [chip.NumChannelSpecs][chip.NumChannelSpecs]sim.Time

	// vcq is the machine-level per-VC flow-control state (nil unless
	// Config.VCQueueFlits > 0): credit counters, queue occupancies and
	// FIFOs for every (node, channel, VC), in flat arrays.
	vcq *vcqState

	// Fault-injection state (nil/empty unless Config.Faults is active —
	// m.faulty caches that for the per-hop path): deadCh flags dead
	// outbound channels by (node x spec), trips are the prebuilt scheduled
	// faults re-armed at every Reset, scratch is the reusable drain buffer
	// of rerouteParked.
	faulty  bool
	deadCh  []bool
	trips   []*faultTrip
	scratch []*packet.Packet

	// tele and ptrace are the flag-gated observability layer (see
	// telemetry.go); both nil by default.
	tele   *telemetry.Collector
	ptrace *packetTrace

	// pool aliases shard 0's — the single-shard engines (timestep, GC
	// endpoint ops) use it directly after requireSingleShard.
	pool *packet.Pool

	fenceAlloc fence.Allocator
}

// Node is one ASIC plus its outbound channel slices. The channel, SRAM and
// fence tables are dense arrays — indexed by chip.ChannelSpec.Index, GC
// index and fence ID respectively — so the per-packet path never touches a
// map.
type Node struct {
	m     *Machine
	sh    *mshard // the shard that owns this node's events
	Coord topo.Coord
	idx   int32                                 // dense node index (topo.Shape.Index of Coord)
	out   [chip.NumChannelSpecs]*serdes.Channel // nil where the shape has no channel
	srams []*mem.SRAM                           // per GC index; entries allocated lazily
	// specPos maps a dense spec index to the spec's position in the
	// machine's spec list (-1 if absent) — the contiguous numbering the
	// fence merge units are configured with.
	specPos [chip.NumChannelSpecs]int8
	fences  [fence.MaxConcurrent]*fenceOp
	views   [chip.Slices]nodeLoadView
	// vcqViews are the per-slice credit-lookahead load views handed to
	// credit-steered policies; nil unless Config.VCQueueFlits > 0 (the
	// flow-control state itself lives in the machine's flat vcq arrays).
	vcqViews *[chip.Slices]creditLoadView
	// healths are the per-slice link-health views handed to fault-aware
	// routing; nil unless the machine has an active fault plan.
	healths *[chip.Slices]healthView
}

// shardSeed derives shard s's rng seed. Shard 0 uses the configured seed
// unchanged, so a single-shard machine's stream is exactly the historical
// machine rng. The tag constant domain-separates these streams from other
// seed-derivation schemes in the tree (the synth harness's per-node
// schedule rngs use seed ^ (i+1)*goldenGamma), so a shard's routing draws
// can never replay another component's stream.
func shardSeed(seed uint64, s int) uint64 {
	if s == 0 {
		return seed
	}
	return seed ^ 0x6d736861726400a5 ^ uint64(s)*0x9e3779b97f4a7c15
}

// New builds a machine; all nodes and channels are wired immediately, GC
// SRAMs lazily.
func New(cfg Config) *Machine {
	if !cfg.Shape.Valid() {
		panic(fmt.Sprintf("machine: invalid shape %v", cfg.Shape))
	}
	nNodes := cfg.Shape.Nodes()
	P := cfg.Shards
	if P < 1 {
		P = 1
	}
	if P > nNodes {
		P = nNodes
	}
	m := &Machine{
		cfg:    cfg,
		Clock:  sim.NewClock(cfg.ClockMHz),
		policy: cfg.Policy,
	}
	if m.policy == nil {
		m.policy = route.Random()
	}
	m.adaptive = m.policy.Adaptive()
	m.vcqFlits = cfg.VCQueueFlits
	if m.vcqFlits > 0 && m.vcqFlits < packet.MaxFlitsPerPkt {
		panic(fmt.Sprintf("machine: VCQueueFlits %d cannot hold a %d-flit packet", m.vcqFlits, packet.MaxFlitsPerPkt))
	}
	_, m.credEcho = m.policy.(route.CreditSteered)
	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(cfg.Shape); err != nil {
			panic("machine: " + err.Error())
		}
		if cfg.Faults.HasDead() && m.vcqFlits <= 0 {
			panic("machine: dead-link faults need per-VC flow control (Config.VCQueueFlits > 0)")
		}
		m.faulty = true
	}
	m.Geom = chip.New(m.Clock, cfg.Lat)
	m.specs = chip.AllChannelSpecs(cfg.Shape)

	m.shards = make([]*mshard, P)
	for s := range m.shards {
		m.shards[s] = &mshard{
			id:  s,
			k:   sim.NewKernel(),
			rng: sim.NewRand(shardSeed(cfg.Seed, s)),
			lo:  s * nNodes / P,
			hi:  (s + 1) * nNodes / P,
		}
	}
	m.K = m.shards[0].k
	m.pool = &m.shards[0].pool
	if P > 1 {
		if cfg.Lat.ChannelFixed < 1 {
			panic("machine: sharding requires a positive channel FixedLatency (the lookahead)")
		}
		ks := make([]*sim.Kernel, P)
		for s, sh := range m.shards {
			ks[s] = sh.k
		}
		m.exec = sim.NewParallelExec(ks, cfg.Lat.ChannelFixed)
	}

	gcs := m.Geom.GCs()
	chCfg := serdes.ChannelConfig{
		Lanes:        chip.LanesPerSlice,
		GbpsLane:     topo.SerdesGbps,
		FixedLatency: cfg.Lat.ChannelFixed,
		Compress:     cfg.Compress,
	}
	m.nodes = make([]*Node, nNodes)
	m.chanBank = make([]serdes.Channel, nNodes*chip.NumChannelSpecs)
	m.neigh = make([]int32, nNodes*chip.NumChannelSpecs)
	m.cross = make([]bool, nNodes*chip.NumChannelSpecs)
	for j := range m.oppIdx {
		m.oppIdx[j] = int8(chip.ChannelSpecAt(j).Opposite().Index())
	}
	if m.vcqFlits > 0 {
		m.vcq = newVCQState(nNodes)
	}
	shard := 0
	for i := range m.nodes {
		for m.shards[shard].hi <= i {
			shard++
		}
		n := &Node{
			m:     m,
			sh:    m.shards[shard],
			Coord: cfg.Shape.CoordOf(i),
			idx:   int32(i),
			srams: make([]*mem.SRAM, gcs),
		}
		for j := range n.specPos {
			n.specPos[j] = -1
		}
		for pos, cs := range m.specs {
			j := cs.Index()
			ch := &m.chanBank[i*chip.NumChannelSpecs+j]
			ch.Init(n.sh.k, chCfg)
			n.out[j] = ch
			n.specPos[j] = int8(pos)
			nb := cfg.Shape.Neighbor(n.Coord, cs.Dim, cs.Dir)
			m.neigh[i*chip.NumChannelSpecs+j] = int32(cfg.Shape.Index(nb))
			m.cross[i*chip.NumChannelSpecs+j] =
				(cs.Dir > 0 && nb.Get(cs.Dim) < n.Coord.Get(cs.Dim)) ||
					(cs.Dir < 0 && nb.Get(cs.Dim) > n.Coord.Get(cs.Dim))
		}
		for sl := range n.views {
			n.views[sl] = nodeLoadView{n: n, slice: sl}
		}
		if m.vcqFlits > 0 {
			n.vcqViews = new([chip.Slices]creditLoadView)
			for sl := range n.vcqViews {
				n.vcqViews[sl] = creditLoadView{n: n, slice: sl}
			}
			n.resetVCQ(m.vcqFlits)
		}
		if m.faulty {
			n.healths = new([chip.Slices]healthView)
			for sl := range n.healths {
				n.healths[sl] = healthView{n: n, slice: sl}
			}
		}
		m.nodes[i] = n
	}
	m.buildLatencyTables()
	// Channels whose far end lives on another shard defer arrivals to the
	// executive's outboxes; everything else schedules locally.
	if m.exec != nil {
		for _, n := range m.nodes {
			for _, cs := range m.specs {
				nb := m.Node(cfg.Shape.Neighbor(n.Coord, cs.Dim, cs.Dir))
				if nb.sh != n.sh {
					n.out[cs.Index()].SetRemote(m.exec.Outbox(n.sh.id, nb.sh.id))
				}
			}
		}
	}
	if m.faulty {
		m.deadCh = make([]bool, nNodes*chip.NumChannelSpecs)
		for _, f := range cfg.Faults.Links {
			if f.TripAt <= 0 {
				continue
			}
			n := m.Node(f.Node)
			t := &faultTrip{
				m: m, n: n, eff: f.Effect, at: f.TripAt,
				inj:  faultInjBase + uint64(len(m.trips)),
				hist: make([]sim.Time, 0, packet.HistCap),
			}
			for _, j := range faultSpecIndices(f) {
				if j >= 0 {
					t.specs = append(t.specs, int8(j))
				}
			}
			m.trips = append(m.trips, t)
		}
		m.applyFaults()
	}
	return m
}

// buildLatencyTables precomputes the queuing-free geometry latencies the
// per-hop walk needs, so steady-state packet stepping reads a table entry
// instead of redoing tile/edge-row cycle math: inject and eject per (chip
// tile, channel spec), transit per same-side (inbound, outbound) spec pair.
func (m *Machine) buildLatencyTables() {
	tiles := m.Geom.Shape.Tiles()
	m.injLat = make([]sim.Time, tiles*chip.NumChannelSpecs)
	m.ejLat = make([]sim.Time, tiles*chip.NumChannelSpecs)
	for t := 0; t < tiles; t++ {
		core := packet.CoreID{Tile: m.Geom.Shape.CoordOf(t)}
		for j := 0; j < chip.NumChannelSpecs; j++ {
			cs := chip.ChannelSpecAt(j)
			m.injLat[t*chip.NumChannelSpecs+j] = m.Geom.InjectLatency(core, cs)
			m.ejLat[t*chip.NumChannelSpecs+j] = m.Geom.EjectLatency(cs, core)
		}
	}
	for in := 0; in < chip.NumChannelSpecs; in++ {
		for out := 0; out < chip.NumChannelSpecs; out++ {
			a, b := chip.ChannelSpecAt(in), chip.ChannelSpecAt(out)
			if a.Side() == b.Side() {
				m.transLat[in][out] = m.Geom.TransitLatency(a, b)
			}
		}
	}
}

// tileIdx is the dense chip-tile index of a core, the row key of the
// inject/eject latency tables.
func (m *Machine) tileIdx(c packet.CoreID) int { return m.Geom.Shape.Index(c.Tile) }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Policy returns the active routing policy (never nil).
func (m *Machine) Policy() route.Policy { return m.policy }

// Shape returns the torus shape.
func (m *Machine) Shape() topo.Shape { return m.cfg.Shape }

// Node returns the node at c.
func (m *Machine) Node(c topo.Coord) *Node {
	return m.nodes[m.cfg.Shape.Index(c)]
}

// Nodes iterates over all nodes.
func (m *Machine) Nodes() []*Node { return m.nodes }

// NumShards reports how many kernel shards drive the machine (1 unless
// Config.Shards asked for more).
func (m *Machine) NumShards() int { return len(m.shards) }

// ShardOf reports which shard owns the node at c.
func (m *Machine) ShardOf(c topo.Coord) int { return m.Node(c).sh.id }

// NodeKernel returns the kernel that executes events at the node at c —
// the machine's one kernel on single-shard machines. Harnesses schedule
// per-node setup events (traffic injections) here.
func (m *Machine) NodeKernel(c topo.Coord) *sim.Kernel { return m.Node(c).sh.k }

// ShardKernel returns shard s's kernel (shard 0 is the machine's one
// kernel on single-shard machines). Harnesses that bulk-stage setup events
// via Kernel.StageActor seal every shard's staged lane through this.
func (m *Machine) ShardKernel(s int) *sim.Kernel { return m.shards[s].k }

// nextPktID hands out packet IDs for single-shard engine paths.
func (m *Machine) nextPktID() uint64 { return m.shards[0].nextPktID() }

// NewPacket returns a zeroed packet from the machine's free list (shard
// 0's, on a sharded machine). Packets sent through Send (or the fence
// engine) are recycled automatically after delivery; harness code that
// injects steady-state traffic should obtain packets here so the hot path
// allocates nothing.
func (m *Machine) NewPacket() *packet.Packet { return m.pool.Get() }

// NewPacketAt is NewPacket from the free list of the shard owning node c.
// Code running inside an event at node c (an injection actor, a delivery
// callback) must use it so pools are never touched across shards.
func (m *Machine) NewPacketAt(c topo.Coord) *packet.Packet { return m.Node(c).sh.pool.Get() }

// DrawRoute consumes one request routing decision — the dimension order
// and the even-ring direction tie — from the machine's injection rng,
// exactly as Send draws for a request packet. Harnesses that pre-route
// packets (packet.Packet.PreRouted) call it once per packet in the order a
// sequential run's injections would fire, which keeps the stream — and
// therefore every route — byte-identical to the non-pre-routed run at any
// shard count.
func (m *Machine) DrawRoute() (topo.DimOrder, bool) {
	o := m.policy.Order(m.shards[0].rng)
	return o, m.shards[0].rng.Intn(2) == 0
}

// BeginLineageRun switches a sharded machine's kernels to lineage tie
// ordering and starts maintaining packet event histories, making
// same-timestamp execution order — and thus results — independent of the
// shard count for pre-routed workloads. Call after all setup events are
// scheduled, immediately before Run. No-op on single-shard machines,
// whose sequential order is the reference being reproduced.
func (m *Machine) BeginLineageRun() {
	if m.exec == nil {
		return
	}
	m.lineage = true
	m.exec.BeginLineageOrder()
}

// ForceLineageRun is BeginLineageRun without the single-shard exemption:
// every kernel, including a lone one, orders same-timestamp ties by
// lineage. Workloads built on per-VC flow control need this: credit
// arrivals revive parked packets from *foreign* events, whose lineage
// rank (the packet's own history) deliberately differs from the kernel's
// plain schedule order — so instead of reproducing sequential order at
// higher shard counts, the single-shard run adopts the same content-based
// order the sharded runs use. Either way the order is a pure function of
// the seed, and results are byte-identical at every shard count.
func (m *Machine) ForceLineageRun() {
	m.lineage = true
	if m.exec != nil {
		m.exec.BeginLineageOrder()
		return
	}
	m.K.BeginLineageOrder()
}

// Run executes the machine to completion: the kernel's event loop on a
// single-shard machine, the conservative-lookahead window loop across all
// shard kernels otherwise. It returns the timestamp of the last executed
// event.
func (m *Machine) Run() sim.Time {
	if m.exec != nil {
		return m.exec.Run()
	}
	return m.K.Run()
}

// Reset returns the machine to its just-built state on the same topology
// with a new seed: kernels, channels, rngs, packet IDs, SRAMs and fence
// state all start fresh, while the event pools, packet free lists and
// channel objects keep their capacity. A reset machine produces output
// byte-identical to a newly built Machine with the same Config and seed —
// the property the netsweep harness's machine reuse rests on.
func (m *Machine) Reset(seed uint64) {
	m.cfg.Seed = seed
	m.lineage = false
	for s, sh := range m.shards {
		sh.k.Reset()
		sh.pktID = 0
		sh.rng.Reseed(shardSeed(seed, s))
		sh.curHist = nil
	}
	for _, n := range m.nodes {
		for _, ch := range n.out {
			if ch != nil {
				ch.Reset()
			}
		}
		for i := range n.srams {
			n.srams[i] = nil
		}
		for i := range n.fences {
			n.fences[i] = nil
		}
		n.resetVCQ(m.vcqFlits)
	}
	m.fenceAlloc = fence.Allocator{}
	if m.tele != nil {
		m.tele.Reset()
	}
	// Channels and credit counters are healthy again: re-apply static
	// faults and re-arm the scheduled trips on the fresh kernels.
	m.applyFaults()
	m.rebalanceFreeLists()
}

// rebalanceFreeLists evens the per-shard packet pools and credit-message
// free lists. Packets and credits recycle into the free list of the shard
// that fired them, so cross-shard traffic makes the lists drift run over
// run; left alone the drift compounds until some shard's Get allocates
// every run while another hoards idle capacity. Reset levels them so a
// reused sharded machine stays allocation-free in steady state.
func (m *Machine) rebalanceFreeLists() {
	ns := len(m.shards)
	if ns < 2 {
		return
	}
	total := 0
	for _, sh := range m.shards {
		total += sh.pool.Size()
	}
	target := total / ns
	d := 0
	for _, src := range m.shards {
		for src.pool.Size() > target {
			for d < ns && m.shards[d].pool.Size() >= target {
				d++
			}
			if d == ns {
				break
			}
			dst := m.shards[d]
			src.pool.MoveTo(&dst.pool, min(src.pool.Size()-target, target-dst.pool.Size()))
		}
		if d == ns {
			break
		}
	}
	total = 0
	for _, sh := range m.shards {
		total += len(sh.creds)
	}
	target = total / ns
	d = 0
	for _, src := range m.shards {
		for len(src.creds) > target {
			for d < ns && len(m.shards[d].creds) >= target {
				d++
			}
			if d == ns {
				return
			}
			dst := m.shards[d]
			for len(src.creds) > target && len(dst.creds) < target {
				i := len(src.creds) - 1
				dst.creds = append(dst.creds, src.creds[i])
				src.creds[i] = nil
				src.creds = src.creds[:i]
			}
		}
	}
}

// requireSingleShard guards engines whose coordination state (shared
// closures, a single rng, cross-node callbacks) has no sharded form yet.
func (m *Machine) requireSingleShard(what string) {
	if len(m.shards) > 1 {
		panic(fmt.Sprintf("machine: %s requires a single-shard machine (Config.Shards = 1)", what))
	}
}

// Channel returns the outbound channel slice on node c for spec cs
// (diagnostics and traffic accounting); nil if the shape has no such
// channel.
func (n *Node) Channel(cs chip.ChannelSpec) *serdes.Channel { return n.out[cs.Index()] }

// ChannelSpecs lists this node's outbound channel specs in dense-index
// order. The returned slice is shared; callers must not mutate it.
func (n *Node) ChannelSpecs() []chip.ChannelSpec { return n.m.specs }

// sram returns (allocating if needed) the SRAM block of one GC.
func (n *Node) sram(core packet.CoreID) *mem.SRAM {
	idx := n.m.Geom.IndexOfCore(core)
	s := n.srams[idx]
	if s == nil {
		s = mem.NewSRAM(mem.QuadsPerBlock)
		n.srams[idx] = s
	}
	return s
}

// nodeLoadView reports, to an adaptive policy deciding at node n, the
// serialization backlog (in picoseconds) of each outbound channel on one
// slice. This is the full-machine analog of router credit occupancy: a
// channel whose busy horizon runs far past now is a channel whose
// downstream credits would be exhausted. Each node owns one instance per
// slice, so handing a view to a routing decision allocates nothing. All
// state read is owned by the node's shard, so the view is safe during
// sharded windows.
type nodeLoadView struct {
	n     *Node
	slice int
}

// Load implements route.LoadView over the dense channel table.
func (v *nodeLoadView) Load(dim topo.Dim, dir int) int64 {
	cs := chip.ChannelSpec{Dim: dim, Dir: dir, Slice: v.slice}
	backlog := v.n.out[cs.Index()].Busy() - v.n.sh.k.Now()
	if backlog < 0 {
		return 0
	}
	return int64(backlog)
}

// TotalWireStats sums compression statistics over every channel in the
// machine (the Figure 9a quantity).
func (m *Machine) TotalWireStats() serdes.Stats {
	var total serdes.Stats
	for _, n := range m.nodes {
		for _, ch := range n.out {
			if ch == nil {
				continue
			}
			st := ch.Compressor().Stats()
			total.Packets += st.Packets
			total.WireBits += st.WireBits
			total.BaselineBits += st.BaselineBits
			total.PositionBits += st.PositionBits
			total.ForceBits += st.ForceBits
			total.OtherBits += st.OtherBits
			total.PcacheHits += st.PcacheHits
			total.PcacheMisses += st.PcacheMisses
			total.RawINZPayloads += st.RawINZPayloads
		}
	}
	return total
}

// CheckChannelSync asserts every channel's particle cache pair is in sync;
// it returns an error naming the first failure.
func (m *Machine) CheckChannelSync() error {
	for _, n := range m.nodes {
		for i, ch := range n.out {
			if ch != nil && !ch.Compressor().InSync() {
				return fmt.Errorf("machine: node %v channel %v desynchronized", n.Coord, chip.ChannelSpecAt(i))
			}
		}
	}
	return nil
}
