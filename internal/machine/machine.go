// Package machine assembles Anton 3 nodes into a full machine on the 3D
// torus and provides the measurement harnesses the paper's evaluation
// sections use: the ping-pong latency test (Section III-C), the network
// fence barrier (Section V-F), and the MD timestep pipeline engine
// (Section VI-A).
package machine

import (
	"fmt"

	"anton3/internal/chip"
	"anton3/internal/fence"
	"anton3/internal/mem"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// Config describes one machine.
type Config struct {
	Shape    topo.Shape
	ClockMHz int64
	Lat      chip.Latencies
	Compress serdes.CompressConfig
	Seed     uint64
	// Policy selects the request routing policy (order selection, per-hop
	// output choice, VC provisioning). nil means route.Random(), the
	// paper's randomized minimal oblivious routing; route.XYZ() is the
	// DESIGN.md fixed-order ablation, route.MinimalAdaptive() the
	// load-adaptive alternative the paper argues against.
	Policy route.Policy
}

// DefaultConfig returns the production configuration for a given torus
// shape: 2.8 GHz clock, calibrated latencies, compression on.
func DefaultConfig(shape topo.Shape) Config {
	return Config{
		Shape:    shape,
		ClockMHz: 2800,
		Lat:      chip.DefaultLatencies(),
		Compress: serdes.CompressConfig{INZ: true, Pcache: true},
		Seed:     1,
	}
}

// Machine is a simulated Anton 3 machine.
type Machine struct {
	cfg    Config
	K      *sim.Kernel
	Clock  sim.Clock
	Geom   *chip.Geometry
	nodes  []*Node
	rng    *sim.Rand
	policy route.Policy
	pktID  uint64

	fenceAlloc fence.Allocator
}

// Node is one ASIC plus its outbound channel slices.
type Node struct {
	m      *Machine
	Coord  topo.Coord
	out    map[chip.ChannelSpec]*serdes.Channel
	srams  map[int]*mem.SRAM // lazily allocated per GC index
	fences map[int]*fenceOp
}

// New builds a machine; all nodes and channels are wired immediately, GC
// SRAMs lazily.
func New(cfg Config) *Machine {
	if !cfg.Shape.Valid() {
		panic(fmt.Sprintf("machine: invalid shape %v", cfg.Shape))
	}
	m := &Machine{
		cfg:    cfg,
		K:      sim.NewKernel(),
		Clock:  sim.NewClock(cfg.ClockMHz),
		rng:    sim.NewRand(cfg.Seed),
		policy: cfg.Policy,
	}
	if m.policy == nil {
		m.policy = route.Random()
	}
	m.Geom = chip.New(m.Clock, cfg.Lat)
	specs := chip.AllChannelSpecs(cfg.Shape)
	m.nodes = make([]*Node, cfg.Shape.Nodes())
	for i := range m.nodes {
		n := &Node{
			m:      m,
			Coord:  cfg.Shape.CoordOf(i),
			out:    make(map[chip.ChannelSpec]*serdes.Channel, len(specs)),
			srams:  make(map[int]*mem.SRAM),
			fences: make(map[int]*fenceOp),
		}
		m.nodes[i] = n
	}
	chCfg := serdes.ChannelConfig{
		Lanes:        chip.LanesPerSlice,
		GbpsLane:     topo.SerdesGbps,
		FixedLatency: cfg.Lat.ChannelFixed,
		Compress:     cfg.Compress,
	}
	for _, n := range m.nodes {
		for _, cs := range specs {
			n.out[cs] = serdes.NewChannel(m.K, chCfg)
		}
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Policy returns the active routing policy (never nil).
func (m *Machine) Policy() route.Policy { return m.policy }

// Shape returns the torus shape.
func (m *Machine) Shape() topo.Shape { return m.cfg.Shape }

// Node returns the node at c.
func (m *Machine) Node(c topo.Coord) *Node {
	return m.nodes[m.cfg.Shape.Index(c)]
}

// Nodes iterates over all nodes.
func (m *Machine) Nodes() []*Node { return m.nodes }

// nextPktID hands out unique packet IDs.
func (m *Machine) nextPktID() uint64 {
	m.pktID++
	return m.pktID
}

// Channel returns the outbound channel slice on node c for spec cs
// (diagnostics and traffic accounting).
func (n *Node) Channel(cs chip.ChannelSpec) *serdes.Channel { return n.out[cs] }

// ChannelSpecs lists this node's outbound channel specs in a fixed order.
func (n *Node) ChannelSpecs() []chip.ChannelSpec {
	return chip.AllChannelSpecs(n.m.cfg.Shape)
}

// sram returns (allocating if needed) the SRAM block of one GC.
func (n *Node) sram(core packet.CoreID) *mem.SRAM {
	idx := n.m.Geom.IndexOfCore(core)
	s, ok := n.srams[idx]
	if !ok {
		s = mem.NewSRAM(mem.QuadsPerBlock)
		n.srams[idx] = s
	}
	return s
}

// TotalWireStats sums compression statistics over every channel in the
// machine (the Figure 9a quantity).
func (m *Machine) TotalWireStats() serdes.Stats {
	var total serdes.Stats
	for _, n := range m.nodes {
		for _, ch := range n.out {
			st := ch.Compressor().Stats()
			total.Packets += st.Packets
			total.WireBits += st.WireBits
			total.BaselineBits += st.BaselineBits
			total.PositionBits += st.PositionBits
			total.ForceBits += st.ForceBits
			total.OtherBits += st.OtherBits
			total.PcacheHits += st.PcacheHits
			total.PcacheMisses += st.PcacheMisses
			total.RawINZPayloads += st.RawINZPayloads
		}
	}
	return total
}

// CheckChannelSync asserts every channel's particle cache pair is in sync;
// it returns an error naming the first failure.
func (m *Machine) CheckChannelSync() error {
	for _, n := range m.nodes {
		for cs, ch := range n.out {
			if !ch.Compressor().InSync() {
				return fmt.Errorf("machine: node %v channel %v desynchronized", n.Coord, cs)
			}
		}
	}
	return nil
}
