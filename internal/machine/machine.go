// Package machine assembles Anton 3 nodes into a full machine on the 3D
// torus and provides the measurement harnesses the paper's evaluation
// sections use: the ping-pong latency test (Section III-C), the network
// fence barrier (Section V-F), and the MD timestep pipeline engine
// (Section VI-A).
package machine

import (
	"fmt"

	"anton3/internal/chip"
	"anton3/internal/fence"
	"anton3/internal/mem"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// Config describes one machine.
type Config struct {
	Shape    topo.Shape
	ClockMHz int64
	Lat      chip.Latencies
	Compress serdes.CompressConfig
	Seed     uint64
	// Policy selects the request routing policy (order selection, per-hop
	// output choice, VC provisioning). nil means route.Random(), the
	// paper's randomized minimal oblivious routing; route.XYZ() is the
	// DESIGN.md fixed-order ablation, route.MinimalAdaptive() the
	// load-adaptive alternative the paper argues against.
	Policy route.Policy
}

// DefaultConfig returns the production configuration for a given torus
// shape: 2.8 GHz clock, calibrated latencies, compression on.
func DefaultConfig(shape topo.Shape) Config {
	return Config{
		Shape:    shape,
		ClockMHz: 2800,
		Lat:      chip.DefaultLatencies(),
		Compress: serdes.CompressConfig{INZ: true, Pcache: true},
		Seed:     1,
	}
}

// Machine is a simulated Anton 3 machine.
type Machine struct {
	cfg      Config
	K        *sim.Kernel
	Clock    sim.Clock
	Geom     *chip.Geometry
	nodes    []*Node
	rng      *sim.Rand
	policy   route.Policy
	adaptive bool // policy.Adaptive(), cached for the per-hop path
	pktID    uint64
	specs    []chip.ChannelSpec // the shape's channel specs, in dense-index order
	pool     packet.Pool

	fenceAlloc fence.Allocator
}

// Node is one ASIC plus its outbound channel slices. The channel, SRAM and
// fence tables are dense arrays — indexed by chip.ChannelSpec.Index, GC
// index and fence ID respectively — so the per-packet path never touches a
// map.
type Node struct {
	m     *Machine
	Coord topo.Coord
	out   [chip.NumChannelSpecs]*serdes.Channel // nil where the shape has no channel
	srams []*mem.SRAM                           // per GC index; entries allocated lazily
	// specPos maps a dense spec index to the spec's position in the
	// machine's spec list (-1 if absent) — the contiguous numbering the
	// fence merge units are configured with.
	specPos [chip.NumChannelSpecs]int8
	fences  [fence.MaxConcurrent]*fenceOp
	views   [chip.Slices]nodeLoadView
}

// New builds a machine; all nodes and channels are wired immediately, GC
// SRAMs lazily.
func New(cfg Config) *Machine {
	if !cfg.Shape.Valid() {
		panic(fmt.Sprintf("machine: invalid shape %v", cfg.Shape))
	}
	m := &Machine{
		cfg:    cfg,
		K:      sim.NewKernel(),
		Clock:  sim.NewClock(cfg.ClockMHz),
		rng:    sim.NewRand(cfg.Seed),
		policy: cfg.Policy,
	}
	if m.policy == nil {
		m.policy = route.Random()
	}
	m.adaptive = m.policy.Adaptive()
	m.Geom = chip.New(m.Clock, cfg.Lat)
	m.specs = chip.AllChannelSpecs(cfg.Shape)
	gcs := m.Geom.GCs()
	chCfg := serdes.ChannelConfig{
		Lanes:        chip.LanesPerSlice,
		GbpsLane:     topo.SerdesGbps,
		FixedLatency: cfg.Lat.ChannelFixed,
		Compress:     cfg.Compress,
	}
	m.nodes = make([]*Node, cfg.Shape.Nodes())
	for i := range m.nodes {
		n := &Node{
			m:     m,
			Coord: cfg.Shape.CoordOf(i),
			srams: make([]*mem.SRAM, gcs),
		}
		for j := range n.specPos {
			n.specPos[j] = -1
		}
		for pos, cs := range m.specs {
			n.out[cs.Index()] = serdes.NewChannel(m.K, chCfg)
			n.specPos[cs.Index()] = int8(pos)
		}
		for sl := range n.views {
			n.views[sl] = nodeLoadView{n: n, slice: sl}
		}
		m.nodes[i] = n
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Policy returns the active routing policy (never nil).
func (m *Machine) Policy() route.Policy { return m.policy }

// Shape returns the torus shape.
func (m *Machine) Shape() topo.Shape { return m.cfg.Shape }

// Node returns the node at c.
func (m *Machine) Node(c topo.Coord) *Node {
	return m.nodes[m.cfg.Shape.Index(c)]
}

// Nodes iterates over all nodes.
func (m *Machine) Nodes() []*Node { return m.nodes }

// nextPktID hands out unique packet IDs.
func (m *Machine) nextPktID() uint64 {
	m.pktID++
	return m.pktID
}

// NewPacket returns a zeroed packet from the machine's free list. Packets
// sent through Send (or the fence engine) are recycled automatically after
// delivery; harness code that injects steady-state traffic should obtain
// packets here so the hot path allocates nothing.
func (m *Machine) NewPacket() *packet.Packet { return m.pool.Get() }

// Channel returns the outbound channel slice on node c for spec cs
// (diagnostics and traffic accounting); nil if the shape has no such
// channel.
func (n *Node) Channel(cs chip.ChannelSpec) *serdes.Channel { return n.out[cs.Index()] }

// ChannelSpecs lists this node's outbound channel specs in dense-index
// order. The returned slice is shared; callers must not mutate it.
func (n *Node) ChannelSpecs() []chip.ChannelSpec { return n.m.specs }

// sram returns (allocating if needed) the SRAM block of one GC.
func (n *Node) sram(core packet.CoreID) *mem.SRAM {
	idx := n.m.Geom.IndexOfCore(core)
	s := n.srams[idx]
	if s == nil {
		s = mem.NewSRAM(mem.QuadsPerBlock)
		n.srams[idx] = s
	}
	return s
}

// nodeLoadView reports, to an adaptive policy deciding at node n, the
// serialization backlog (in picoseconds) of each outbound channel on one
// slice. This is the full-machine analog of router credit occupancy: a
// channel whose busy horizon runs far past now is a channel whose
// downstream credits would be exhausted. Each node owns one instance per
// slice, so handing a view to a routing decision allocates nothing.
type nodeLoadView struct {
	n     *Node
	slice int
}

// Load implements route.LoadView over the dense channel table.
func (v *nodeLoadView) Load(dim topo.Dim, dir int) int64 {
	cs := chip.ChannelSpec{Dim: dim, Dir: dir, Slice: v.slice}
	backlog := v.n.out[cs.Index()].Busy() - v.n.m.K.Now()
	if backlog < 0 {
		return 0
	}
	return int64(backlog)
}

// TotalWireStats sums compression statistics over every channel in the
// machine (the Figure 9a quantity).
func (m *Machine) TotalWireStats() serdes.Stats {
	var total serdes.Stats
	for _, n := range m.nodes {
		for _, ch := range n.out {
			if ch == nil {
				continue
			}
			st := ch.Compressor().Stats()
			total.Packets += st.Packets
			total.WireBits += st.WireBits
			total.BaselineBits += st.BaselineBits
			total.PositionBits += st.PositionBits
			total.ForceBits += st.ForceBits
			total.OtherBits += st.OtherBits
			total.PcacheHits += st.PcacheHits
			total.PcacheMisses += st.PcacheMisses
			total.RawINZPayloads += st.RawINZPayloads
		}
	}
	return total
}

// CheckChannelSync asserts every channel's particle cache pair is in sync;
// it returns an error naming the first failure.
func (m *Machine) CheckChannelSync() error {
	for _, n := range m.nodes {
		for i, ch := range n.out {
			if ch != nil && !ch.Compressor().InSync() {
				return fmt.Errorf("machine: node %v channel %v desynchronized", n.Coord, chip.ChannelSpecAt(i))
			}
		}
	}
	return nil
}
