// Machine-side wiring of the flag-gated observability layer: per-shard
// telemetry accumulator blocks (internal/telemetry) and the
// packet-lifecycle trace (per-shard trace.Recorders with one track per
// node channel plus park/escape/detour phase tracks). Everything here
// is off unless a harness calls EnableTelemetry or AttachPacketTrace;
// the hot-path touch points in send.go, vcq.go and fault.go guard on a
// nil per-shard pointer.
package machine

import (
	"fmt"

	"anton3/internal/chip"
	"anton3/internal/packet"
	"anton3/internal/sim"
	"anton3/internal/telemetry"
	"anton3/internal/topo"
	"anton3/internal/trace"
)

// EnableTelemetry arms the machine's telemetry collector — one flat
// accumulator block per shard, handed to the shard structs so hot-path
// updates are a nil check plus an array increment. Idempotent; survives
// Reset (which zeroes the counters but keeps the wiring).
func (m *Machine) EnableTelemetry() *telemetry.Collector {
	if m.tele == nil {
		m.tele = telemetry.NewCollector(len(m.shards))
		for s, sh := range m.shards {
			sh.tele = m.tele.Shard(s)
		}
	}
	return m.tele
}

// Telemetry returns the collector, or nil when telemetry is off.
func (m *Machine) Telemetry() *telemetry.Collector { return m.tele }

// CollectChannelBusy folds every channel's accumulated serialization
// time into the CtrChannelBusyPs counter (on shard 0's block — the
// channel bank is machine-global and byte-identical at any shard count,
// so attribution to a shard is arbitrary as long as it is fixed).
// Harnesses call it once per run, after the kernels drain.
func (m *Machine) CollectChannelBusy() {
	if m.tele == nil {
		return
	}
	var sum int64
	for i := range m.chanBank {
		sum += int64(m.chanBank[i].BusyTime())
	}
	m.tele.Shard(0).Ctr[telemetry.CtrChannelBusyPs] += sum
}

// ChannelBusy reports each wired outbound channel's accumulated
// serialization time in dense (node, spec) index order — the
// deterministic walk behind the saturation heatmap.
func (m *Machine) ChannelBusy(fn func(node topo.Coord, spec chip.ChannelSpec, busy sim.Time)) {
	for _, n := range m.nodes {
		for j, ch := range n.out {
			if ch != nil {
				fn(n.Coord, chip.ChannelSpecAt(j), ch.BusyTime())
			}
		}
	}
}

// noteUnpark records a parked packet's departure at now: park duration
// into the park histogram, parked flit-time (injection parks) or
// credit-stall time (transit-head parks) into the counters, and the
// park slice onto the node's trace track. Callers guard on
// sh.tele/sh.trec being non-nil so the default path pays one branch.
func (m *Machine) noteUnpark(n *Node, q *packet.Packet, now sim.Time, flits int32) {
	sh := n.sh
	dur := int64(now - q.ParkedAt)
	if sh.tele != nil {
		if q.In < 0 {
			sh.tele.Ctr[telemetry.CtrParkFlitPs] += dur * int64(flits)
		} else {
			sh.tele.Ctr[telemetry.CtrCreditStallPs] += dur
		}
		sh.tele.Park.Observe(dur)
	}
	if sh.trec != nil {
		sh.trec.Add(m.ptrace.park[n.idx], q.ParkedAt, now)
	}
}

// noteEscapeEntry records a request-class hop accepted onto the escape
// VC pair: a counter bump and a 1-ps instant slice on the node's escape
// track.
func (m *Machine) noteEscapeEntry(sh *mshard, p *packet.Packet) {
	if sh.tele != nil {
		sh.tele.Ctr[telemetry.CtrEscapeVCEntries]++
	}
	if sh.trec != nil {
		now := sh.k.Now()
		sh.trec.Add(m.ptrace.esc[p.CurIdx], now, now+1)
	}
}

// noteFaultReroute records a parked packet being redispatched after a
// fault trip killed its committed output: a counter bump and a 1-ps
// instant on the node's detour track.
func (m *Machine) noteFaultReroute(n *Node, _ *packet.Packet, now sim.Time) {
	sh := n.sh
	if sh.tele != nil {
		sh.tele.Ctr[telemetry.CtrFaultReroutes]++
	}
	if sh.trec != nil {
		sh.trec.Add(m.ptrace.det[n.idx], now, now+1)
	}
}

// packetTrace is the machine's packet-lifecycle trace state: one
// recorder per shard (updated lock-free by the owning shard) and
// prebuilt track names per (node x spec) and per node, so the hot path
// never formats a string.
type packetTrace struct {
	recs   []*trace.Recorder
	chName []string // (node x spec) -> channel track, "" where unwired
	park   []string // node -> park-phase track
	esc    []string // node -> escape-VC-entry track
	det    []string // node -> fault-detour track
	order  []string // every track in node-index order, for pinning
}

// AttachPacketTrace arms packet-lifecycle tracing with the given track
// prefix (harnesses pass the policy name so several machines can drain
// into one recorder without colliding). One track per wired channel
// ("<prefix>/(x,y,z)/x+.s0" — serialization slices via the serdes
// OnSend hook), plus per-node park, escape and detour phase tracks.
// Intervals accumulate across Reset until DrainPacketTrace. Idempotent;
// overwrites any OnSend observer installed earlier (the timestep
// engine's AttachChannelTrace and this are mutually exclusive).
func (m *Machine) AttachPacketTrace(prefix string) {
	if m.ptrace != nil {
		return
	}
	pt := &packetTrace{
		recs:   make([]*trace.Recorder, len(m.shards)),
		chName: make([]string, len(m.nodes)*chip.NumChannelSpecs),
		park:   make([]string, len(m.nodes)),
		esc:    make([]string, len(m.nodes)),
		det:    make([]string, len(m.nodes)),
	}
	for s := range pt.recs {
		pt.recs[s] = trace.NewRecorder()
	}
	for i, n := range m.nodes {
		rec := pt.recs[n.sh.id]
		for j, ch := range n.out {
			if ch == nil {
				continue
			}
			name := fmt.Sprintf("%s/%v/%v", prefix, n.Coord, chip.ChannelSpecAt(j))
			pt.chName[int(n.idx)*chip.NumChannelSpecs+j] = name
			pt.order = append(pt.order, name)
			rec.Touch(name)
			r := rec
			ch.OnSend = func(_ *packet.Packet, start, end sim.Time) {
				r.Add(name, start, end)
			}
		}
		pt.park[i] = fmt.Sprintf("%s/%v/park", prefix, n.Coord)
		pt.esc[i] = fmt.Sprintf("%s/%v/escape", prefix, n.Coord)
		pt.det[i] = fmt.Sprintf("%s/%v/detour", prefix, n.Coord)
		pt.order = append(pt.order, pt.park[i], pt.esc[i], pt.det[i])
		rec.Touch(pt.park[i])
		rec.Touch(pt.esc[i])
		rec.Touch(pt.det[i])
	}
	m.ptrace = pt
	for _, sh := range m.shards {
		sh.trec = pt.recs[sh.id]
	}
}

// DrainPacketTrace moves every recorded interval into dst, pre-pinning
// the full track set in node-index order and draining shards in shard
// order — the same canonical layout at any shard count. No-op when
// tracing is off.
func (m *Machine) DrainPacketTrace(dst *trace.Recorder) {
	if m.ptrace == nil {
		return
	}
	for _, name := range m.ptrace.order {
		dst.Touch(name)
	}
	for _, rec := range m.ptrace.recs {
		rec.DrainInto(dst)
	}
}
