package machine

import (
	"testing"

	"anton3/internal/chip"
	"anton3/internal/packet"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

var shape128 = topo.Shape{X: 4, Y: 4, Z: 8}

func smallMachine(comp serdes.CompressConfig) *Machine {
	cfg := DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
	cfg.Compress = comp
	return New(cfg)
}

// edgeCore returns a GC adjacent to the left edge on the X- channel row,
// the minimum-latency position of Figure 6.
func edgeCore(m *Machine) packet.CoreID {
	cs := chip.ChannelSpec{Dim: topo.X, Dir: -1, Slice: 0}
	row := m.Geom.EdgeRowFor(cs)
	return packet.CoreID{Tile: topo.MeshCoord{U: 0, V: row}}
}

func TestCountedWriteArrives(t *testing.T) {
	m := smallMachine(serdes.CompressConfig{})
	a := m.GC(topo.Coord{X: 0}, 0)
	b := m.GC(topo.Coord{X: 1}, 5)
	var got [4]uint32
	b.BlockingRead(7, 1, func(q [4]uint32) { got = q })
	a.CountedWrite(b, 7, [4]uint32{1, 2, 3, 4})
	m.K.Run()
	if got != ([4]uint32{1, 2, 3, 4}) {
		t.Fatalf("remote counted write delivered %v", got)
	}
}

func TestCountedAccumSumsRemotely(t *testing.T) {
	m := smallMachine(serdes.CompressConfig{})
	b := m.GC(topo.Coord{X: 1, Y: 1, Z: 1}, 0)
	var got [4]uint32
	b.BlockingRead(3, 3, func(q [4]uint32) { got = q })
	for i := uint32(1); i <= 3; i++ {
		a := m.GC(topo.Coord{X: 0}, int(i))
		a.CountedAccum(b, 3, [4]uint32{i, 0, 10 * i, 0})
	}
	m.K.Run()
	if got != ([4]uint32{6, 0, 60, 0}) {
		t.Fatalf("accumulated %v, want {6,0,60,0}", got)
	}
}

func TestReadRequestResponse(t *testing.T) {
	m := smallMachine(serdes.CompressConfig{})
	a := m.GC(topo.Coord{}, 0)
	b := m.GC(topo.Coord{X: 1, Y: 1}, 9)
	b.SRAM().WriteQuad(100, [4]uint32{0xaa, 0xbb, 0xcc, 0xdd})
	req := &packet.Packet{
		Type:    packet.ReadReq,
		SrcNode: a.Node.Coord, DstNode: b.Node.Coord,
		SrcCore: a.ID, DstCore: b.ID,
		Addr: 100,
	}
	var got [4]uint32
	a.BlockingRead(100, 1, func(q [4]uint32) { got = q })
	m.Send(req, nil)
	m.K.Run()
	if got != ([4]uint32{0xaa, 0xbb, 0xcc, 0xdd}) {
		t.Fatalf("read response = %v", got)
	}
}

func TestPingPongZeroHopFaster(t *testing.T) {
	m := New(DefaultConfig(shape128))
	a := m.GC(topo.Coord{}, 0)
	bSame := m.GC(topo.Coord{}, 500)
	r0 := m.PingPong(a, bSame, 8)
	m2 := New(DefaultConfig(shape128))
	a2 := m2.GC(topo.Coord{}, 0)
	bFar := m2.GC(topo.Coord{X: 1}, 500)
	r1 := m2.PingPong(a2, bFar, 8)
	if r0.Hops != 0 || r1.Hops != 1 {
		t.Fatalf("hops = %d,%d", r0.Hops, r1.Hops)
	}
	// Paper, Figure 5: the 0-hop case has distinctly lower latency because
	// packets skip the Edge Network and off-chip links.
	if r0.OneWay >= r1.OneWay {
		t.Fatalf("0-hop %v not faster than 1-hop %v", r0.OneWay, r1.OneWay)
	}
}

func TestMinOneHopLatencyNear55ns(t *testing.T) {
	// Figure 6: minimum inter-node end-to-end latency ~55 ns between
	// edge-adjacent cores on neighboring nodes.
	m := New(DefaultConfig(shape128))
	core := edgeCore(m)
	a := m.GCAt(topo.Coord{X: 0}, core)
	b := m.GCAt(topo.Coord{X: 3}, core) // X wraparound: 1 hop on X-
	r := m.PingPong(a, b, 16)
	if r.Hops != 1 {
		t.Fatalf("hops = %d, want 1", r.Hops)
	}
	ns := r.OneWay.Nanoseconds()
	if ns < 49.5 || ns > 60.5 {
		t.Fatalf("min 1-hop one-way = %.1f ns, want 55 +/- 10%%", ns)
	}
}

func TestPerHopLatencyNear34ns(t *testing.T) {
	// Figure 5: ~34.2 ns per additional inter-node hop. Compare long-Z
	// paths that differ only in hop count, same cores.
	m := New(DefaultConfig(shape128))
	core := edgeCore(m)
	lat := func(z int) sim.Time {
		mm := New(DefaultConfig(shape128))
		a := mm.GCAt(topo.Coord{}, core)
		b := mm.GCAt(topo.Coord{Z: z}, core)
		return mm.PingPong(a, b, 16).OneWay
	}
	_ = m
	perHop := (lat(4) - lat(1)).Nanoseconds() / 3
	if perHop < 30.8 || perHop > 37.6 {
		t.Fatalf("per-hop latency = %.1f ns, want 34.2 +/- 10%%", perHop)
	}
}

func TestPingPongDeterministic(t *testing.T) {
	run := func() sim.Time {
		m := New(DefaultConfig(shape128))
		a := m.GC(topo.Coord{}, 3)
		b := m.GC(topo.Coord{X: 2, Y: 1, Z: 3}, 77)
		return m.PingPong(a, b, 10).OneWay
	}
	if run() != run() {
		t.Fatal("identical configs produced different latencies")
	}
}

func TestCompressionTransparentToEndpoints(t *testing.T) {
	// Counted writes must deliver identical data with compression on.
	for _, comp := range []serdes.CompressConfig{
		{}, {INZ: true}, {INZ: true, Pcache: true},
	} {
		m := smallMachine(comp)
		a := m.GC(topo.Coord{}, 0)
		b := m.GC(topo.Coord{X: 1, Y: 1, Z: 1}, 100)
		var got [4]uint32
		b.BlockingRead(9, 1, func(q [4]uint32) { got = q })
		a.CountedWrite(b, 9, [4]uint32{123, ^uint32(455), 789, 0})
		m.K.Run()
		if got != ([4]uint32{123, ^uint32(455), 789, 0}) {
			t.Fatalf("comp %v corrupted data: %v", comp, got)
		}
		if err := m.CheckChannelSync(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestResponseAvoidsWraparound(t *testing.T) {
	// A ReadResp from (3,0,0) to (0,0,0) must take the 3-hop mesh path,
	// not the 1-hop wraparound; its latency therefore exceeds a request's.
	m := New(DefaultConfig(shape128))
	a := m.GC(topo.Coord{}, 0)
	b := m.GC(topo.Coord{X: 3}, 0)
	req := &packet.Packet{Type: packet.ReadReq,
		SrcNode: a.Node.Coord, DstNode: b.Node.Coord,
		SrcCore: a.ID, DstCore: b.ID, Addr: 50}
	b.SRAM().WriteQuad(50, [4]uint32{1})
	var tResp sim.Time
	a.BlockingRead(50, 1, func([4]uint32) { tResp = m.K.Now() })
	t0 := m.K.Now()
	m.Send(req, nil)
	m.K.Run()
	rtt := tResp - t0
	// Round trip: ~1 hop there, 3 hops back = 4 channel crossings plus
	// endpoint overheads; must exceed 4*34 ns.
	if rtt.Nanoseconds() < 4*30 {
		t.Fatalf("read RTT %.1f ns too small for a mesh-restricted response", rtt.Nanoseconds())
	}
}

func TestTotalWireStatsAccumulate(t *testing.T) {
	m := smallMachine(serdes.CompressConfig{INZ: true})
	a := m.GC(topo.Coord{}, 0)
	b := m.GC(topo.Coord{X: 1}, 0)
	for i := 0; i < 10; i++ {
		a.CountedWrite(b, uint32(i), [4]uint32{1, 2, 3, 4})
	}
	m.K.Run()
	st := m.TotalWireStats()
	if st.Packets != 10 {
		t.Fatalf("packets = %d, want 10", st.Packets)
	}
	if st.Reduction() <= 0 {
		t.Fatal("INZ should reduce small-value counted writes")
	}
}

func TestPingPongItersValidation(t *testing.T) {
	m := smallMachine(serdes.CompressConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("iters > 120 should panic (counter wrap)")
		}
	}()
	m.PingPong(m.GC(topo.Coord{}, 0), m.GC(topo.Coord{X: 1}, 0), 121)
}
