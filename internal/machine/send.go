package machine

import (
	"anton3/internal/chip"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/topo"
)

// sliceFor picks the channel slice for a packet. Positions and forces use
// atom-ID affinity so a given atom always crosses the same slice's particle
// cache; other traffic leaves via the edge nearest its source ("routed
// directly to either edge of the chip", Section III-B1), which is also what
// minimizes latency.
func (m *Machine) sliceFor(p *packet.Packet) int {
	if p.Type == packet.Position || p.Type == packet.Force {
		return int(p.AtomID) & 1
	}
	if side, _ := m.Geom.Shape.NearestSide(p.SrcCore.Tile); side == topo.Left {
		return 0
	}
	return 1
}

// loadView reports, to an adaptive policy deciding at node `at`, the
// serialization backlog (in picoseconds) of each outbound channel on the
// packet's slice. This is the full-machine analog of router credit
// occupancy: a channel whose busy horizon runs far past now is a channel
// whose downstream credits would be exhausted.
func (m *Machine) loadView(at topo.Coord, slice int) route.LoadView {
	n := m.Node(at)
	return func(dim topo.Dim, dir int) int64 {
		backlog := n.out[chip.ChannelSpec{Dim: dim, Dir: dir, Slice: slice}].Busy() - m.K.Now()
		if backlog < 0 {
			return 0
		}
		return int64(backlog)
	}
}

// Send walks p through the network: inject at the source chip, cross
// channels hop by hop (transiting edge networks at intermediate chips), and
// apply the packet at the destination SRAM. deliver, if non-nil, runs at
// the destination node after the SRAM update.
//
// Request packets consult the machine's routing policy twice over: at
// injection for the dimension order, and at every hop for the output
// choice, with a live load view — so adaptive policies react to congestion
// as the packet encounters it. Response packets always follow the XYZ
// mesh-restricted route on the response VC, outside the policy's reach.
func (m *Machine) Send(p *packet.Packet, deliver func()) {
	p.ID = m.nextPktID()
	p.Injected = m.K.Now()
	src := m.Node(p.SrcNode)

	if p.SrcNode == p.DstNode {
		lat := m.Geom.OnChipLatency(p.SrcCore, p.DstCore)
		m.K.After(lat, func() {
			m.apply(src, p)
			if deliver != nil {
				deliver()
			}
		})
		return
	}

	slice := m.sliceFor(p)
	// next picks the packet's step out of node cur, or ok=false at the
	// destination. Responses replay a precomputed mesh route (possibly
	// non-minimal, so it cannot be re-derived hop by hop); requests ask
	// the policy, which sees the current channel backlog at cur.
	var next func(cur topo.Coord) (topo.Step, bool)
	if p.Type.Class() == packet.Response {
		steps := route.ResponseRoute(m.cfg.Shape, p.SrcNode, p.DstNode)
		i := 0
		next = func(topo.Coord) (topo.Step, bool) {
			if i == len(steps) {
				return topo.Step{}, false
			}
			st := steps[i]
			i++
			return st, true
		}
	} else {
		p.Order = m.policy.Order(m.rng)
		// Direction ties (even rings) balance across both physical links;
		// position/force packets break ties by atom ID so their channel
		// (and particle cache) stays stable step to step.
		plusOnTie := m.rng.Intn(2) == 0
		if p.Type == packet.Position || p.Type == packet.Force {
			plusOnTie = p.AtomID&2 != 0
		}
		// Only adaptive policies read the load view; skip building the
		// per-decision closure for the oblivious ones.
		adaptive := m.policy.Adaptive()
		next = func(cur topo.Coord) (topo.Step, bool) {
			var view route.LoadView
			if adaptive {
				view = m.loadView(cur, slice)
			}
			return m.policy.NextStep(m.cfg.Shape, cur, p.DstNode, p.Order, plusOnTie, view)
		}
	}

	spec := func(st topo.Step) chip.ChannelSpec {
		return chip.ChannelSpec{Dim: st.Dim, Dir: st.Dir, Slice: slice}
	}
	// inSpec is the receiver-side spec of the channel just crossed: the
	// receiver's CA for the link toward the sender.
	inSpec := func(st topo.Step) chip.ChannelSpec {
		return chip.ChannelSpec{Dim: st.Dim, Dir: -st.Dir, Slice: slice}
	}

	// arrive handles q landing at node cur having crossed a channel whose
	// receiver-side spec is in: eject here, or pick the next hop now (the
	// adaptive decision point) and transit.
	var arrive func(q *packet.Packet, cur topo.Coord, in chip.ChannelSpec)
	arrive = func(q *packet.Packet, cur topo.Coord, in chip.ChannelSpec) {
		node := m.Node(cur)
		st, ok := next(cur)
		if !ok {
			lat := m.Geom.EjectLatency(in, q.DstCore)
			m.K.After(lat, func() {
				m.apply(node, q)
				if deliver != nil {
					deliver()
				}
			})
			return
		}
		out := spec(st)
		nxt := m.cfg.Shape.Neighbor(cur, st.Dim, st.Dir)
		lat := m.Geom.TransitLatency(in, out)
		m.K.After(lat, func() {
			node.out[out].Send(q, func(r *packet.Packet) { arrive(r, nxt, inSpec(st)) })
		})
	}

	first, ok := next(p.SrcNode)
	if !ok {
		panic("machine: inter-node packet with no first hop")
	}
	out := spec(first)
	nxt := m.cfg.Shape.Neighbor(p.SrcNode, first.Dim, first.Dir)
	inj := m.Geom.InjectLatency(p.SrcCore, out)
	m.K.After(inj, func() {
		src.out[out].Send(p, func(q *packet.Packet) { arrive(q, nxt, inSpec(first)) })
	})
}

// apply commits a packet's effect at its destination node.
func (m *Machine) apply(n *Node, p *packet.Packet) {
	switch p.Type {
	case packet.CountedWrite:
		n.sram(p.DstCore).CountedWrite(p.Addr, p.Payload)
	case packet.CountedAccum:
		n.sram(p.DstCore).CountedAccum(p.Addr, p.Payload)
	case packet.ReadReq:
		data := n.sram(p.DstCore).ReadQuad(p.Addr)
		resp := &packet.Packet{
			Type:    packet.ReadResp,
			SrcNode: p.DstNode, DstNode: p.SrcNode,
			SrcCore: p.DstCore, DstCore: p.SrcCore,
			Addr: p.Addr,
		}
		resp.SetQuad(data)
		m.Send(resp, nil)
	case packet.ReadResp:
		// Read responses land in the requester's SRAM as a counted write
		// so software can block on them.
		n.sram(p.DstCore).CountedWrite(p.Addr, p.Payload)
	case packet.Position, packet.Force, packet.EndOfStep:
		// Endpoint behavior belongs to the caller's deliver callback
		// (the timestep engine counts these into ICB/GC queues).
	case packet.Fence:
		panic("machine: fence packets travel via the fence engine, not Send")
	}
}
