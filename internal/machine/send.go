package machine

import (
	"anton3/internal/chip"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/topo"
)

// sliceFor picks the channel slice for a packet. Positions and forces use
// atom-ID affinity so a given atom always crosses the same slice's particle
// cache; other traffic leaves via the edge nearest its source ("routed
// directly to either edge of the chip", Section III-B1), which is also what
// minimizes latency.
func (m *Machine) sliceFor(p *packet.Packet) int {
	if p.Type == packet.Position || p.Type == packet.Force {
		return int(p.AtomID) & 1
	}
	if side, _ := m.Geom.Shape.NearestSide(p.SrcCore.Tile); side == topo.Left {
		return 0
	}
	return 1
}

// steps computes the hop sequence for p per its traffic class: requests get
// a uniformly random dimension order (minimal oblivious routing); responses
// are XYZ mesh-restricted.
func (m *Machine) steps(p *packet.Packet) []topo.Step {
	if p.Type.Class() == packet.Response {
		return route.ResponseRoute(m.cfg.Shape, p.SrcNode, p.DstNode)
	}
	p.Order = route.PickOrder(m.rng)
	if m.cfg.ForceXYZOrder {
		p.Order = topo.OrderXYZ
	}
	// Direction ties (even rings) balance across both physical links;
	// position/force packets break ties by atom ID so their channel (and
	// particle cache) stays stable step to step.
	plusOnTie := m.rng.Intn(2) == 0
	if p.Type == packet.Position || p.Type == packet.Force {
		plusOnTie = p.AtomID&2 != 0
	}
	return topo.RouteTie(m.cfg.Shape, p.SrcNode, p.DstNode, p.Order, plusOnTie)
}

// Send walks p through the network: inject at the source chip, cross
// channels hop by hop (transiting edge networks at intermediate chips), and
// apply the packet at the destination SRAM. deliver, if non-nil, runs at
// the destination node after the SRAM update.
func (m *Machine) Send(p *packet.Packet, deliver func()) {
	p.ID = m.nextPktID()
	p.Injected = m.K.Now()
	src := m.Node(p.SrcNode)

	if p.SrcNode == p.DstNode {
		lat := m.Geom.OnChipLatency(p.SrcCore, p.DstCore)
		m.K.After(lat, func() {
			m.apply(src, p)
			if deliver != nil {
				deliver()
			}
		})
		return
	}

	steps := m.steps(p)
	slice := m.sliceFor(p)
	nodeSeq := make([]*Node, 0, len(steps)+1)
	nodeSeq = append(nodeSeq, src)
	cur := p.SrcNode
	for _, st := range steps {
		cur = m.cfg.Shape.Neighbor(cur, st.Dim, st.Dir)
		nodeSeq = append(nodeSeq, m.Node(cur))
	}

	spec := func(i int) chip.ChannelSpec {
		return chip.ChannelSpec{Dim: steps[i].Dim, Dir: steps[i].Dir, Slice: slice}
	}
	// inSpec is the receiver-side spec of the channel just crossed: the
	// receiver's CA for the link toward the sender.
	inSpec := func(i int) chip.ChannelSpec {
		return chip.ChannelSpec{Dim: steps[i].Dim, Dir: -steps[i].Dir, Slice: slice}
	}

	var hop func(i int) func(*packet.Packet)
	hop = func(i int) func(*packet.Packet) {
		node := nodeSeq[i+1] // node reached after crossing channel i
		if i == len(steps)-1 {
			return func(q *packet.Packet) {
				lat := m.Geom.EjectLatency(inSpec(i), q.DstCore)
				m.K.After(lat, func() {
					m.apply(node, q)
					if deliver != nil {
						deliver()
					}
				})
			}
		}
		return func(q *packet.Packet) {
			lat := m.Geom.TransitLatency(inSpec(i), spec(i+1))
			m.K.After(lat, func() {
				node.out[spec(i+1)].Send(q, hop(i+1))
			})
		}
	}

	inj := m.Geom.InjectLatency(p.SrcCore, spec(0))
	m.K.After(inj, func() {
		src.out[spec(0)].Send(p, hop(0))
	})
}

// apply commits a packet's effect at its destination node.
func (m *Machine) apply(n *Node, p *packet.Packet) {
	switch p.Type {
	case packet.CountedWrite:
		n.sram(p.DstCore).CountedWrite(p.Addr, p.Payload)
	case packet.CountedAccum:
		n.sram(p.DstCore).CountedAccum(p.Addr, p.Payload)
	case packet.ReadReq:
		data := n.sram(p.DstCore).ReadQuad(p.Addr)
		resp := &packet.Packet{
			Type:    packet.ReadResp,
			SrcNode: p.DstNode, DstNode: p.SrcNode,
			SrcCore: p.DstCore, DstCore: p.SrcCore,
			Addr: p.Addr,
		}
		resp.SetQuad(data)
		m.Send(resp, nil)
	case packet.ReadResp:
		// Read responses land in the requester's SRAM as a counted write
		// so software can block on them.
		n.sram(p.DstCore).CountedWrite(p.Addr, p.Payload)
	case packet.Position, packet.Force, packet.EndOfStep:
		// Endpoint behavior belongs to the caller's deliver callback
		// (the timestep engine counts these into ICB/GC queues).
	case packet.Fence:
		panic("machine: fence packets travel via the fence engine, not Send")
	}
}
