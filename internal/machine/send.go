package machine

import (
	"anton3/internal/chip"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/sim"
	"anton3/internal/telemetry"
	"anton3/internal/topo"
)

// sliceFor picks the channel slice for a packet. Positions and forces use
// atom-ID affinity so a given atom always crosses the same slice's particle
// cache; other traffic leaves via the edge nearest its source ("routed
// directly to either edge of the chip", Section III-B1), which is also what
// minimizes latency.
func (m *Machine) sliceFor(p *packet.Packet) int {
	if p.Type == packet.Position || p.Type == packet.Force {
		return int(p.AtomID) & 1
	}
	if side, _ := m.Geom.Shape.NearestSide(p.SrcCore.Tile); side == topo.Left {
		return 0
	}
	return 1
}

// Send walks p through the network: inject at the source chip, cross
// channels hop by hop (transiting edge networks at intermediate chips), and
// apply the packet at the destination SRAM. done, if non-nil, runs at the
// destination node after the SRAM update.
//
// Request packets consult the machine's routing policy twice over: at
// injection for the dimension order, and at every hop for the output
// choice, with a live load view — so adaptive policies react to congestion
// as the packet encounters it. Response packets always follow the XYZ
// mesh-restricted route on the response VC, outside the policy's reach.
// Pre-routed packets (p.PreRouted) carry their Order and Tie already; the
// machine draws nothing for them, which is how sharded harnesses keep the
// rng stream independent of event execution order.
//
// For oblivious policies (and all responses) the whole hop sequence is a
// pure function of (src, dst, order, tie), so Send expands it once into
// p.Route — dense channel-spec indices the walk consumes one table read
// per hop — instead of re-deriving torus deltas at every hop. Adaptive
// policies keep the per-hop decision (they need the live load view).
//
// The walk is iterative, not a chain of scheduled closures: the per-hop
// state (current node, chosen channel, slice, tie-break) lives in the
// packet, every timing event fires the packet itself, and OnPacket
// interprets its WalkState — so a steady-state Send schedules, crosses and
// delivers without a single heap allocation. Packets obtained from
// NewPacket are recycled after delivery.
//
// With per-VC ingress queues enabled (Config.VCQueueFlits > 0) the first
// hop needs downstream credits: a refused packet returns from Send in
// packet.WalkParked and starts injecting only when a credit arrival
// revives it (closed-loop sources watch for this via p.OnAccept — see
// vcq.go).
//
// On a sharded machine, Send must run inside an event of the shard owning
// p.SrcNode (an injection actor scheduled via NodeKernel, or a delivery at
// that node); every kernel interaction below is with that shard.
func (m *Machine) Send(p *packet.Packet, done packet.Deliverer) {
	srcIdx := m.cfg.Shape.Index(p.SrcNode)
	n := m.nodes[srcIdx]
	sh := n.sh
	p.ID = sh.nextPktID()
	p.Injected = sh.k.Now()
	p.Walker = m
	p.Done = done
	if sh.tele != nil {
		sh.tele.Ctr[telemetry.CtrInjected]++
	}
	if m.lineage {
		// Extend, not reset: pooled packets arrive with an empty history
		// (Pool.Put clears it), so an injected packet's chain starts here;
		// a response built in apply carries its request's chain and this
		// append adds the applying event — the response's true scheduler.
		p.PushHist(sh.k.Now())
	}

	if p.SrcNode == p.DstNode {
		p.Cur = p.DstNode
		p.CurIdx = int32(srcIdx)
		p.In = -1
		p.State = packet.WalkApply
		sh.k.AfterActor(m.Geom.OnChipLatency(p.SrcCore, p.DstCore), p)
		return
	}

	p.Slice = int8(m.sliceFor(p))
	if p.Type.Class() != packet.Response && !p.PreRouted {
		p.Order = m.policy.Order(sh.rng)
		// Direction ties (even rings) balance across both physical links;
		// position/force packets break ties by atom ID so their channel
		// (and particle cache) stays stable step to step.
		tie := sh.rng.Intn(2) == 0
		if p.Type == packet.Position || p.Type == packet.Force {
			tie = p.AtomID&2 != 0
		}
		p.Tie = tie
	}

	p.Cur = p.SrcNode
	p.CurIdx = int32(srcIdx)
	p.In = -1
	m.planRoute(p)
	first, ok := m.nextStep(p, p.SrcNode)
	if !ok {
		panic("machine: inter-node packet with no first hop")
	}
	if m.vcqFlits > 0 {
		// Per-VC flow control: the first hop needs downstream credits, and
		// a refused packet parks (packet.WalkParked) until they arrive.
		m.sendFlow(p, n, first)
		return
	}
	out := chip.ChannelSpec{Dim: first.Dim, Dir: first.Dir, Slice: int(p.Slice)}
	idx := out.Index()
	p.Out = int8(idx)
	p.State = packet.WalkTransit
	if p.RouteLen >= 0 {
		p.RoutePos = 1
	}
	sh.k.AfterActor(m.injLat[m.tileIdx(p.SrcCore)*chip.NumChannelSpecs+idx], p)
}

// planRoute expands p's hop sequence into p.Route when it is a pure
// function of the packet's injection-time state: responses follow the
// mesh-restricted XYZ route, oblivious requests the (order, tie) dimension
// walk — both of which the per-hop replay (route.ResponseNext,
// obliviousNext) derives from nothing but (cur, dst), so expanding
// dimension by dimension reproduces the replay exactly. Adaptive-policy
// requests and routes longer than packet.RouteCap get RouteLen = -1: hops
// stay per-hop decisions.
func (m *Machine) planRoute(p *packet.Packet) {
	p.RoutePos = 0
	p.RouteLen = -1
	resp := p.Type.Class() == packet.Response
	if m.adaptive && !resp {
		return
	}
	s := m.cfg.Shape
	ln := 0
	sl := int(p.Slice)
	if resp {
		// Mesh-restricted XYZ: plain coordinate distance, never wrapping.
		for _, dim := range topo.OrderXYZ {
			d := p.DstNode.Get(dim) - p.SrcNode.Get(dim)
			if d == 0 {
				continue
			}
			dir := 1
			if d < 0 {
				dir, d = -1, -d
			}
			if ln+d > packet.RouteCap {
				return
			}
			spec := int8(chip.ChannelSpec{Dim: dim, Dir: dir, Slice: sl}.Index())
			for i := 0; i < d; i++ {
				p.Route[ln] = spec
				ln++
			}
		}
		p.RouteLen = int8(ln)
		return
	}
	// Oblivious request: minimal per-dimension deltas in the packet's
	// order, with the even-ring direction tie resolved once per dimension
	// (after the tie flips the direction, the remaining distance commits
	// to it — exactly obliviousNext's per-hop behavior).
	delta := s.Delta(p.SrcNode, p.DstNode)
	for _, dim := range p.Order {
		d := delta.Get(dim)
		if d == 0 {
			continue
		}
		dir := 1
		if d < 0 {
			dir, d = -1, -d
		}
		if !p.Tie && 2*d == s.Get(dim) {
			dir = -dir
		}
		if ln+d > packet.RouteCap {
			return
		}
		spec := int8(chip.ChannelSpec{Dim: dim, Dir: dir, Slice: sl}.Index())
		for i := 0; i < d; i++ {
			p.Route[ln] = spec
			ln++
		}
	}
	p.RouteLen = int8(ln)
}

// nextStep picks p's step out of node cur, or ok=false at the destination.
// Packets with a precomputed route read their next planned hop; responses
// re-derive their mesh-restricted XYZ route hop by hop and requests ask
// the policy, which sees the current channel backlog at cur.
func (m *Machine) nextStep(p *packet.Packet, cur topo.Coord) (topo.Step, bool) {
	if p.RouteLen >= 0 {
		if p.RoutePos >= p.RouteLen {
			return topo.Step{}, false
		}
		cs := chip.ChannelSpecAt(int(p.Route[p.RoutePos]))
		return topo.Step{Dim: cs.Dim, Dir: cs.Dir}, true
	}
	if p.Type.Class() == packet.Response {
		return route.ResponseNext(cur, p.DstNode)
	}
	// Only adaptive policies read the load view; oblivious ones would
	// ignore it anyway. Credit-steered policies get the one-hop credit
	// lookahead when per-VC queues are modeled, the backlog view otherwise.
	// The health view exists only on machines with an active fault plan.
	var view route.LoadView
	var health route.HealthView
	if m.adaptive || m.faulty {
		n := m.Node(cur)
		if m.adaptive {
			if m.credEcho && m.vcqFlits > 0 {
				view = &n.vcqViews[p.Slice]
			} else {
				view = &n.views[p.Slice]
			}
		}
		if m.faulty {
			health = &n.healths[p.Slice]
		}
	}
	return m.policy.NextStep(m.cfg.Shape, cur, p.DstNode, p.Order, p.Tie, view, health)
}

// OnPacket advances an in-flight packet one walk step (packet.Walker); the
// single reusable handler behind every packet timing event. It always
// executes on the kernel of the shard owning p.Cur: channel crossings whose
// far end is remote were merged into that shard at a window barrier. The
// inner loop runs entirely on the machine's flat tables — neighbor and
// dateline lookups, latency tables and the channel bank — indexed by the
// packet's dense node and channel-spec indices.
func (m *Machine) OnPacket(p *packet.Packet) {
	node := m.nodes[p.CurIdx]
	if m.lineage {
		p.PushHist(node.sh.k.Now())
		node.sh.curHist = p.Hist
	}
	switch p.State {
	case packet.WalkTransit:
		// The inject/transit latency has elapsed: cross the chosen channel.
		hop := int(p.CurIdx)*chip.NumChannelSpecs + int(p.Out)
		next := m.neigh[hop]
		if m.vcqFlits > 0 && m.cross[hop] {
			// Dateline tracking for the per-hop VC assignment: crossing the
			// wraparound link switches the packet to the high VC for the
			// rest of this dimension (route.HopVCs semantics).
			p.Crossed = true
		}
		p.CurIdx = next
		p.Cur = m.nodes[next].Coord
		p.In = m.oppIdx[p.Out]
		p.State = packet.WalkArrive
		node.out[p.Out].SendPacket(p)

	case packet.WalkArrive:
		// Just emerged from a channel at p.Cur: merge (fences), eject
		// (destination) or pick the next hop now — the adaptive decision
		// point — and transit.
		if p.Type == packet.Fence {
			m.fenceHopArrive(p)
			return
		}
		if m.vcqFlits > 0 {
			// Per-VC flow control: join the bounded ingress FIFO; heads
			// advance as soon as their chosen output has credits.
			m.vcqArrive(node, p)
			return
		}
		in := int(p.In)
		if p.RouteLen >= 0 {
			// Precomputed route: the next hop (or the eject decision) is a
			// table read, no coordinate math.
			if p.RoutePos >= p.RouteLen {
				p.State = packet.WalkApply
				node.sh.k.AfterActor(m.ejLat[m.tileIdx(p.DstCore)*chip.NumChannelSpecs+in], p)
				return
			}
			out := int(p.Route[p.RoutePos])
			p.RoutePos++
			p.Out = int8(out)
			p.State = packet.WalkTransit
			node.sh.k.AfterActor(m.transLat[in][out], p)
			return
		}
		st, ok := m.nextStep(p, p.Cur)
		if !ok {
			p.State = packet.WalkApply
			node.sh.k.AfterActor(m.ejLat[m.tileIdx(p.DstCore)*chip.NumChannelSpecs+in], p)
			return
		}
		out := chip.ChannelSpec{Dim: st.Dim, Dir: st.Dir, Slice: int(p.Slice)}
		p.Out = int8(out.Index())
		p.State = packet.WalkTransit
		node.sh.k.AfterActor(m.transLat[in][out.Index()], p)

	case packet.WalkApply:
		m.apply(node, p)
		if p.Done != nil {
			p.Done.Deliver(p)
		}
		if sh := node.sh; sh.tele != nil {
			sh.tele.Ctr[telemetry.CtrDelivered]++
			sh.tele.Lat.Observe(int64(sh.k.Now() - p.Injected))
		}
		node.sh.pool.Put(p)

	case packet.WalkFenceMerge:
		id, hops, in := p.FenceID, p.FenceHops, chip.ChannelSpecAt(int(p.In))
		node.sh.pool.Put(p)
		node.fenceArrive(id, hops, in)

	default:
		panic("machine: packet fired in an invalid walk state")
	}
}

// apply commits a packet's effect at its destination node.
func (m *Machine) apply(n *Node, p *packet.Packet) {
	switch p.Type {
	case packet.CountedWrite:
		n.sram(p.DstCore).CountedWrite(p.Addr, p.Payload)
	case packet.CountedAccum:
		n.sram(p.DstCore).CountedAccum(p.Addr, p.Payload)
	case packet.ReadReq:
		data := n.sram(p.DstCore).ReadQuad(p.Addr)
		resp := n.sh.pool.Get()
		resp.Type = packet.ReadResp
		resp.SrcNode, resp.DstNode = p.DstNode, p.SrcNode
		resp.SrcCore, resp.DstCore = p.DstCore, p.SrcCore
		resp.Addr = p.Addr
		resp.SetQuad(data)
		if m.lineage {
			// The response continues the request's causal chain: copy it
			// minus the current (applying) event, which Send re-appends as
			// the response's parent. Inheriting Inj keeps the lineage
			// tie-break total for response traffic too.
			if cap(resp.Hist) == 0 {
				resp.Hist = make([]sim.Time, 0, packet.HistCap)
			}
			resp.Hist = append(resp.Hist[:0], p.Hist[:len(p.Hist)-1]...)
			resp.Inj = p.Inj
		}
		m.Send(resp, nil)
	case packet.ReadResp:
		// Read responses land in the requester's SRAM as a counted write
		// so software can block on them.
		n.sram(p.DstCore).CountedWrite(p.Addr, p.Payload)
	case packet.Position, packet.Force, packet.EndOfStep:
		// Endpoint behavior belongs to the caller's Done deliverer
		// (the timestep engine counts these into ICB/GC queues).
	case packet.Fence:
		panic("machine: fence packets travel via the fence engine, not Send")
	}
}
