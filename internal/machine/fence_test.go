package machine

import (
	"testing"

	"anton3/internal/fence"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

func TestBarrierZeroHopNear51ns(t *testing.T) {
	// Figure 11: the intra-node barrier takes about 51.5 ns.
	m := New(DefaultConfig(shape128))
	r := m.Barrier(0)
	ns := r.Latency.Nanoseconds()
	if ns < 46.4 || ns > 56.7 {
		t.Fatalf("0-hop barrier = %.1f ns, want 51.5 +/- 10%%", ns)
	}
}

func TestGlobalBarrierNear504ns(t *testing.T) {
	// Figure 11: the 8-hop global barrier on the 4x4x8 machine takes
	// about 504 ns.
	m := New(DefaultConfig(shape128))
	r := m.Barrier(m.Shape().Diameter())
	if r.Hops != 8 {
		t.Fatalf("diameter = %d, want 8", r.Hops)
	}
	ns := r.Latency.Nanoseconds()
	if ns < 453 || ns > 555 {
		t.Fatalf("global barrier = %.1f ns, want 504 +/- 10%%", ns)
	}
}

func TestBarrierScalesLinearly(t *testing.T) {
	// Fit hops 1..8 and check slope ~51.8 ns/hop, intercept ~91.2 ns.
	// The relationship is deterministic and linear, so the -short lane
	// samples every other hop without loosening the fit bounds.
	var xs, ys []float64
	for h := 1; h <= 8; h += sz(1, 2) {
		m := New(DefaultConfig(shape128))
		r := m.Barrier(h)
		xs = append(xs, float64(h))
		ys = append(ys, r.Latency.Nanoseconds())
	}
	slope, intercept := linfit(xs, ys)
	if slope < 46.6 || slope > 57 {
		t.Fatalf("barrier slope = %.1f ns/hop, want 51.8 +/- 10%%", slope)
	}
	if intercept < 82 || intercept > 100 {
		t.Fatalf("barrier intercept = %.1f ns, want 91.2 +/- 10%%", intercept)
	}
}

func linfit(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	slope = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

func TestFenceSlowerPerHopThanMessage(t *testing.T) {
	// Section V-F: fence per-hop latency exceeds message per-hop latency
	// by ~17.6 ns because fences travel all valid paths at every hop.
	m1 := New(DefaultConfig(shape128))
	b1 := m1.Barrier(1)
	m2 := New(DefaultConfig(shape128))
	b4 := m2.Barrier(4)
	fencePerHop := (b4.Latency - b1.Latency).Nanoseconds() / 3
	if fencePerHop < 46 || fencePerHop > 58 {
		t.Fatalf("fence per-hop = %.1f ns, want ~51.8", fencePerHop)
	}
	extra := fencePerHop - 34.2
	if extra < 12 || extra > 23 {
		t.Fatalf("fence per-hop excess = %.1f ns, want ~17.6", extra)
	}
}

func TestBarrierIsOneWay(t *testing.T) {
	// The network fence is a one-way barrier: traffic sent after the
	// fence may arrive before it. Model check: a counted write issued
	// after StartFence still delivers while the barrier is in flight.
	m := New(DefaultConfig(shape128))
	a := m.GC(topo.Coord{}, 0)
	b := m.GC(topo.Coord{X: 1}, 0)
	var writeAt, barrierAt sim.Time
	id := m.StartFence(fence.GCtoGC, 8, func(n *Node, at sim.Time) {
		if at > barrierAt {
			barrierAt = at
		}
	})
	b.BlockingRead(5, 1, func([4]uint32) { writeAt = m.K.Now() })
	a.CountedWrite(b, 5, [4]uint32{1})
	m.K.Run()
	m.FinishFence(id)
	if writeAt == 0 || barrierAt == 0 {
		t.Fatal("missing completion")
	}
	if writeAt >= barrierAt {
		t.Fatalf("1-hop write at %v should beat 8-hop barrier at %v", writeAt, barrierAt)
	}
}

func TestFenceFlushesPriorTraffic(t *testing.T) {
	// The core ordering guarantee: packets sent before the fence arrive
	// before the fence completes at their destination's node. Saturate a
	// channel with writes, then fence: barrier completion must come after
	// the last write delivery.
	m := New(DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2}))
	a := m.GC(topo.Coord{}, 0)
	b := m.GC(topo.Coord{X: 1}, 0)
	n := 200
	var lastWrite sim.Time
	b.BlockingRead(9, uint8(n), func([4]uint32) { lastWrite = m.K.Now() })
	for i := 0; i < n; i++ {
		a.CountedWrite(b, 9, [4]uint32{uint32(i), 0, 0, 0})
	}
	var barrier sim.Time
	id := m.StartFence(fence.GCtoGC, m.Shape().Diameter(), func(n *Node, at sim.Time) {
		if at > barrier {
			barrier = at
		}
	})
	m.K.Run()
	m.FinishFence(id)
	if lastWrite == 0 {
		t.Fatal("writes not delivered")
	}
	if barrier <= lastWrite {
		t.Fatalf("barrier at %v did not flush writes finishing at %v", barrier, lastWrite)
	}
}

func TestConcurrentFenceLimit(t *testing.T) {
	m := New(DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2}))
	done := func(*Node, sim.Time) {}
	ids := make([]int, 0, fence.MaxConcurrent)
	for i := 0; i < fence.MaxConcurrent; i++ {
		ids = append(ids, m.StartFence(fence.GCtoGC, 1, done))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("15th concurrent fence should hit flow control")
			}
		}()
		m.StartFence(fence.GCtoGC, 1, done)
	}()
	m.K.Run()
	for _, id := range ids {
		m.FinishFence(id)
	}
	if got := m.StartFence(fence.GCtoGC, 0, done); got < 0 {
		t.Fatal("IDs not recycled")
	}
	m.K.Run()
}

func TestBarrierDeterministic(t *testing.T) {
	run := func() sim.Time {
		m := New(DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2}))
		return m.Barrier(3).Latency
	}
	if run() != run() {
		t.Fatal("barrier latency not deterministic")
	}
}

func TestBarrierWithCompressionEnabled(t *testing.T) {
	// Fence packets traverse compressing channels; the barrier must work
	// and the caches stay in sync (fences are header-only and untouched).
	cfg := DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
	cfg.Compress = serdes.CompressConfig{INZ: true, Pcache: true}
	m := New(cfg)
	r := m.Barrier(m.Shape().Diameter())
	if r.Latency <= 0 {
		t.Fatal("no barrier latency")
	}
	if err := m.CheckChannelSync(); err != nil {
		t.Fatal(err)
	}
}

func TestFenceHopsValidation(t *testing.T) {
	m := New(DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2}))
	defer func() {
		if recover() == nil {
			t.Fatal("hops beyond diameter should panic")
		}
	}()
	m.StartFence(fence.GCtoGC, 99, func(*Node, sim.Time) {})
}
