package machine

import (
	"testing"

	"anton3/internal/topo"
)

// TestBarrierShardInvariant checks the fence engine on the sharded
// executive: the barrier latency — a pure function of fence arrival times
// — must not change with the shard count.
func TestBarrierShardInvariant(t *testing.T) {
	shape := topo.Shape{X: 4, Y: 4, Z: 4}
	hopsList := []int{0, 2, shape.Diameter()}
	for _, hops := range hopsList {
		ref := New(DefaultConfig(shape)).Barrier(hops)
		for _, shards := range []int{2, 3, 4} {
			cfg := DefaultConfig(shape)
			cfg.Shards = shards
			got := New(cfg).Barrier(hops)
			if got != ref {
				t.Fatalf("hops %d: barrier %v at %d shards, want %v (1 shard)", hops, got, shards, ref)
			}
		}
	}
}

// TestResetMatchesFresh checks machine reuse: after Reset, a machine must
// reproduce a fresh machine's measurement exactly.
func TestResetMatchesFresh(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	cfg := DefaultConfig(shape)
	m := New(cfg)
	a, b := m.GC(topo.Coord{}, 0), m.GC(topo.Coord{X: 1, Y: 1, Z: 3}, 1)
	first := m.PingPong(a, b, 8)
	m.Reset(cfg.Seed)
	a, b = m.GC(topo.Coord{}, 0), m.GC(topo.Coord{X: 1, Y: 1, Z: 3}, 1)
	second := m.PingPong(a, b, 8)
	if first != second {
		t.Fatalf("ping-pong after Reset = %+v, want %+v", second, first)
	}
	fresh := New(cfg)
	third := fresh.PingPong(fresh.GC(topo.Coord{}, 0), fresh.GC(topo.Coord{X: 1, Y: 1, Z: 3}, 1), 8)
	if first != third {
		t.Fatalf("fresh machine = %+v, reused machine = %+v", third, first)
	}
}

// TestSingleShardEnginesGuarded checks that engines without a sharded form
// refuse to run on a sharded machine instead of silently racing.
func TestSingleShardEnginesGuarded(t *testing.T) {
	cfg := DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
	cfg.Shards = 2
	m := New(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("PingPong on a sharded machine did not panic")
		}
	}()
	m.PingPong(m.GC(topo.Coord{}, 0), m.GC(topo.Coord{X: 1}, 0), 1)
}
