package machine

import (
	"fmt"

	"anton3/internal/chip"
	"anton3/internal/fence"
	"anton3/internal/packet"
	"anton3/internal/sim"
)

// The machine-level fence engine implements the network fence as the
// node-granularity wavefront described in DESIGN.md: each node merges the
// fence copies arriving on every inbound channel slice (one per request VC,
// counted by a fence.MergeUnit per channel) and, once its previous round is
// complete, relays one merged fence per outbound channel slice per VC.
// Because fence packets travel through the same ordered channels as data,
// receipt of the round-r fence guarantees everything any node within r hops
// sent before its fence has been delivered — the paper's ordering property.

type fenceRound struct {
	merge     *fence.MergeUnit // counts VC copies per inbound channel
	chansDone int              // channels whose VC copies all arrived
	prevDone  bool
	complete  bool
}

type fenceOp struct {
	id         int
	pattern    fence.Pattern
	hops       int
	rounds     []*fenceRound
	onComplete func(n *Node, at sim.Time)
}

func (n *Node) fenceOpFor(id, hops int, pattern fence.Pattern, onComplete func(*Node, sim.Time)) *fenceOp {
	if op := n.fences[id]; op != nil {
		return op
	}
	op := &fenceOp{id: id, pattern: pattern, hops: hops, onComplete: onComplete}
	op.rounds = make([]*fenceRound, hops+1)
	specs := n.ChannelSpecs()
	for r := range op.rounds {
		fr := &fenceRound{merge: fence.NewMergeUnit(fmt.Sprintf("n%v.r%d", n.Coord, r), len(specs)+1)}
		// Each inbound channel contributes one merged fence per request
		// VC; the output mask is unused at node granularity.
		for si := range specs {
			fr.merge.Configure(si, n.m.policy.RequestVCs(), 1)
		}
		op.rounds[r] = fr
	}
	return op
}

// StartFence begins a network fence op across the whole machine: every
// node's GCs issue fence(pattern, hops) at the current simulation time.
// onComplete fires once per node when that node's fence completes (after
// the intra-chip scatter). The returned id must be released by the caller
// via FinishFence after all nodes complete.
func (m *Machine) StartFence(pattern fence.Pattern, hops int, onComplete func(n *Node, at sim.Time)) int {
	if hops < 0 || hops > m.cfg.Shape.Diameter() {
		panic(fmt.Sprintf("machine: fence hops %d outside 0..diameter", hops))
	}
	id := m.fenceAlloc.Acquire(nil)
	if id < 0 {
		panic("machine: more than 14 concurrent fences; adapter flow control would block here")
	}
	for _, n := range m.nodes {
		n.fences[id] = n.fenceOpFor(id, hops, pattern, onComplete)
	}
	gather := m.Geom.GatherLatency()
	for _, n := range m.nodes {
		node := n
		n.sh.k.After(gather, func() { node.fenceRoundComplete(id, 0) })
	}
	return id
}

// FinishFence releases the fence ID once every node has completed.
func (m *Machine) FinishFence(id int) {
	for _, n := range m.nodes {
		n.fences[id] = nil
	}
	m.fenceAlloc.ReleaseID(id)
}

// fenceRoundComplete marks round r done at n and relays round r+1 fences.
func (n *Node) fenceRoundComplete(id, r int) {
	op := n.fences[id]
	fr := op.rounds[r]
	if fr.complete {
		return
	}
	fr.complete = true

	if r == op.hops {
		// Scatter back to this chip's endpoints (GCs translate the fence
		// into a counted write and unblock their blocking reads).
		m := n.m
		at := n.sh.k.Now() + m.Geom.ScatterLatency()
		n.sh.k.At(at, func() { op.onComplete(n, at) })
		return
	}
	if r+1 <= op.hops {
		op.rounds[r+1].prevDone = true
		n.relayFence(id, r+1)
		n.checkFenceRound(id, r+1)
	}
}

// fenceInjBase places fence-packet lineage serials in their own region of
// the injection-order space, disjoint from data-packet indices and credit
// serials (creditInjBase), so a fence copy can never compare equal to a
// measured packet on a lineage tie.
const fenceInjBase = uint64(3) << 62

// relayFence sends the round-r fence copies: one header-only packet per
// request VC on every outbound channel slice. Fence packets ride the same
// actor-driven walk as data packets (WalkArrive at the neighbor, then
// WalkFenceMerge after the per-hop flood latency) and recycle through the
// machine's packet pool.
//
// Under lineage ordering (sharded runs mixing fences with measured
// traffic), each copy gets a content-based lineage: its chain starts at
// the relay instant — itself a pure function of fence arrival times, which
// are shard-invariant by the merge-counting argument — and its injection
// serial encodes (node, round, channel, vc). Same-picosecond ties between
// a fence copy and a data packet on a shared channel therefore resolve
// identically at every shard count, closing the old schedule-order
// fallback caveat.
func (n *Node) relayFence(id, r int) {
	m := n.m
	nodeIdx := uint64(m.cfg.Shape.Index(n.Coord))
	for _, cs := range n.ChannelSpecs() {
		ch := n.out[cs.Index()]
		dstCoord := m.cfg.Shape.Neighbor(n.Coord, cs.Dim, cs.Dir)
		// The receiver identifies the inbound link by its own CA spec:
		// the channel pointing back toward us.
		in := int8(cs.Opposite().Index())
		for vc := 0; vc < n.m.policy.RequestVCs(); vc++ {
			p := n.sh.pool.Get()
			p.ID = n.sh.nextPktID()
			p.Type = packet.Fence
			p.SrcNode = n.Coord
			p.DstNode = dstCoord
			p.FenceID = id
			p.FenceHops = r
			p.Walker = m
			p.Cur = dstCoord
			p.CurIdx = m.neigh[int(n.idx)*chip.NumChannelSpecs+cs.Index()]
			p.In = in
			p.State = packet.WalkArrive
			if m.lineage {
				p.Hist = append(p.Hist[:0], n.sh.k.Now())
				p.Inj = fenceInjBase + (nodeIdx<<24 | uint64(r)<<12 |
					uint64(cs.Index())<<4 | uint64(vc))
			}
			ch.SendPacket(p)
		}
	}
}

// fenceHopArrive handles a fence packet emerging from a channel at p.Cur:
// CA rx + per-port merge + the flood overhead of covering every
// edge-network path at this hop; the first torus crossing additionally pays
// the one-time fence pipeline fill (all VCs, both slices, every
// edge-network column).
func (m *Machine) fenceHopArrive(p *packet.Packet) {
	cycles := m.cfg.Lat.CARxCycles + m.cfg.Lat.FenceMergeCycles
	if p.FenceHops == 1 {
		cycles += m.cfg.Lat.FenceRemoteFixedCycles
	}
	lat := m.Clock.Cycles(cycles) + m.Geom.FenceHopExtra()
	p.State = packet.WalkFenceMerge
	m.Node(p.Cur).sh.k.AfterActor(lat, p)
}

// fenceArrive merges one fence copy for round r arriving on channel spec.
func (n *Node) fenceArrive(id, r int, spec chip.ChannelSpec) {
	op := n.fences[id]
	if op == nil {
		panic("machine: fence arrival for unknown fence op")
	}
	fr := op.rounds[r]
	si := int(n.specPos[spec.Index()])
	if si < 0 {
		panic(fmt.Sprintf("machine: unknown channel spec %v", spec))
	}
	if fire, _ := fr.merge.Arrive(si); fire {
		fr.chansDone++
		n.checkFenceRound(id, r)
	}
}

// checkFenceRound completes round r once every inbound channel has merged
// and the node's own previous round is done.
func (n *Node) checkFenceRound(id, r int) {
	op := n.fences[id]
	fr := op.rounds[r]
	if fr.complete || !fr.prevDone {
		return
	}
	if fr.chansDone < len(n.ChannelSpecs()) {
		return
	}
	n.fenceRoundComplete(id, r)
}

// BarrierResult reports a fence barrier measurement (Figure 11).
type BarrierResult struct {
	Hops    int
	Latency sim.Time // last GC unblocked minus fence issue
}

// Barrier runs a GC-to-GC network fence with the given hop count across the
// machine and returns the barrier latency: all GCs issue the fence at the
// same instant, and the barrier completes when the last node's blocking
// read unblocks. hops = Shape.Diameter() is the global barrier.
//
// Barrier works on sharded machines: completion callbacks run on each
// node's own shard, so the aggregation below is kept per shard and reduced
// after the run. The result is shard-count invariant — fence merges are
// counting reductions and completion times are pure functions of arrival
// times, so no same-instant ordering choice can change them.
func (m *Machine) Barrier(hops int) BarrierResult {
	start := m.K.Now()
	lasts := make([]sim.Time, len(m.shards))
	completed := make([]int, len(m.shards))
	id := m.StartFence(fence.GCtoGC, hops, func(n *Node, at sim.Time) {
		s := n.sh.id
		if at > lasts[s] {
			lasts[s] = at
		}
		completed[s]++
	})
	m.Run()
	var last sim.Time
	done := 0
	for s := range m.shards {
		if lasts[s] > last {
			last = lasts[s]
		}
		done += completed[s]
	}
	if done != len(m.nodes) {
		panic(fmt.Sprintf("machine: barrier incomplete, %d nodes pending", len(m.nodes)-done))
	}
	m.FinishFence(id)
	return BarrierResult{Hops: hops, Latency: last - start}
}
