package machine

import (
	"testing"

	"anton3/internal/md"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// timestepRun executes steps MD timesteps on a fresh machine with the
// given shard count and flow-control depth (0 = open loop) and returns
// every step's result.
func timestepRun(t *testing.T, atoms, steps, shards, vcqFlits int) []StepResult {
	t.Helper()
	cfg := DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
	cfg.Shards = shards
	cfg.VCQueueFlits = vcqFlits
	m := New(cfg)
	sys := md.NewWater(atoms, 300, sim.NewRand(21))
	e := NewEngine(m, sys, DefaultTimestepConfig())
	out := make([]StepResult, steps)
	for i := range out {
		out[i] = e.RunStep()
	}
	return out
}

func compareSteps(t *testing.T, label string, ref, got []StepResult, shards int) {
	t.Helper()
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("%s shards %d: step %d = %+v, want %+v",
				label, shards, i, got[i], ref[i])
		}
	}
}

// TestTimestepShardInvariant is the MD analogue of
// TestFenceWithTrafficShardInvariant: the full timestep pipeline —
// position multicast, PPIM streams, the GC-to-ICB fence riding the same
// channels, force returns, integration — produces identical step results
// at every shard count, over multiple chained steps (each step's start
// time is the previous step's end).
func TestTimestepShardInvariant(t *testing.T) {
	atoms, steps := sz(3000, 2000), sz(3, 2)
	shardCounts := []int{2, 3, 4}
	if testing.Short() {
		shardCounts = shardCounts[:1]
	}
	ref := timestepRun(t, atoms, steps, 1, 0)
	for _, shards := range shardCounts {
		compareSteps(t, "open-loop", ref, timestepRun(t, atoms, steps, shards, 0), shards)
	}
}

// TestTimestepClosedLoopShardInvariant runs the same check with bounded
// per-VC ingress queues shallow enough to actually park injections: the
// credit loop (parking, revival order, dateline VC switches) must also be
// a pure function of the seed, not of the shard count.
func TestTimestepClosedLoopShardInvariant(t *testing.T) {
	atoms, steps := sz(3000, 2000), 2
	shardCounts := []int{2, 4}
	if testing.Short() {
		shardCounts = shardCounts[:1]
	}
	ref := timestepRun(t, atoms, steps, 1, 8)
	var parked int64
	for _, r := range ref {
		parked += r.ParkedPositions + r.ParkedForces
	}
	if parked == 0 {
		t.Fatalf("8-flit queues parked nothing; backpressure path not exercised")
	}
	for _, shards := range shardCounts {
		compareSteps(t, "closed-loop", ref, timestepRun(t, atoms, steps, shards, 8), shards)
	}
}

// TestTimestepRngDrawOrderShardInvariant pins the engine's rng discipline:
// all routing randomness is pre-drawn at setup from shard 0's rng in flat
// atom-major order, so after any number of steps the machine rng stream
// sits at the same position regardless of shard count — the next draw is
// identical.
func TestTimestepRngDrawOrderShardInvariant(t *testing.T) {
	next := func(shards int) (topo.DimOrder, bool) {
		cfg := DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
		cfg.Shards = shards
		m := New(cfg)
		sys := md.NewWater(sz(2000, 1000), 300, sim.NewRand(21))
		e := NewEngine(m, sys, DefaultTimestepConfig())
		e.RunStep()
		e.RunStep()
		return m.DrawRoute()
	}
	refO, refT := next(1)
	for _, shards := range []int{2, 4} {
		o, tie := next(shards)
		if o != refO || tie != refT {
			t.Fatalf("shards %d: rng stream at (%v,%v) after 2 steps, want (%v,%v)",
				shards, o, tie, refO, refT)
		}
	}
}

// TestTimestepResetReuseMatchesFresh checks that a Machine.Reset between
// engines reproduces a fresh machine digit for digit — the property that
// lets experiment jobs reuse one machine across MD configurations.
func TestTimestepResetReuseMatchesFresh(t *testing.T) {
	atoms := sz(3000, 2000)
	cfg := DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
	cfg.Shards = 2
	cfg.VCQueueFlits = 8
	m := New(cfg)

	run := func(m *Machine) []StepResult {
		sys := md.NewWater(atoms, 300, sim.NewRand(21))
		e := NewEngine(m, sys, DefaultTimestepConfig())
		return []StepResult{e.RunStep(), e.RunStep()}
	}

	run(m) // dirty the machine: pools, credits, rng, kernel clocks
	m.Reset(cfg.Seed)
	reused := run(m)
	fresh := run(New(cfg))
	for i := range fresh {
		if reused[i] != fresh[i] {
			t.Fatalf("step %d after Reset = %+v, fresh machine = %+v", i, reused[i], fresh[i])
		}
	}
}

// TestTimestepAllocBudget gates the steady-state timestep inner loop: once
// plan buffers, stream actors, packet pools and kernel event pools are
// warm, the per-atom machinery (position packets, stream phases, PPIM
// bookings, force returns) runs allocation-free — allocs per step must not
// scale with the atom count. The per-step residue (the fence wavefront's
// merge units and completion closures, plus slow-settling lineage slice
// growth) is independent of system size and budgeted absolutely.
// Compression is off: the INZ encoder allocates per packet by design and
// is gated by its own benchmarks, not here.
func TestTimestepAllocBudget(t *testing.T) {
	perStep := func(atoms int) float64 {
		cfg := DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
		cfg.Compress = serdes.CompressConfig{}
		m := New(cfg)
		sys := md.NewWater(atoms, 300, sim.NewRand(21))
		e := NewEngine(m, sys, DefaultTimestepConfig())
		for i := 0; i < 4; i++ { // warm pools and plan buffers
			e.RunStep()
		}
		return testing.AllocsPerRun(5, func() { e.RunStep() })
	}
	small := perStep(2000)
	if small > 1500 {
		t.Errorf("steady-state timestep allocates %.0f allocs/step, budget 1500", small)
	}
	if testing.Short() {
		return
	}
	large := perStep(8000)
	// 4x the atoms must not mean more than ~1.2x the allocations.
	if large > 1.2*small+100 {
		t.Errorf("allocs/step scale with atoms: %.0f at 2000, %.0f at 8000", small, large)
	}
}
