package machine

import (
	"fmt"
	"testing"

	"anton3/internal/md"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// BenchmarkTimestepShards measures the MD timestep engine on the
// conservative-lookahead parallel executive: one 8000-atom water cell on
// an 8-node machine, stepped at 1, 2 and 4 kernel shards. Step results are
// byte-identical across the sub-benchmarks (the shard-invariance tests pin
// that); only the wall clock moves. The CI bench lane commits the results
// as BENCH_md.json, where the shards=1 to shards=4 ns/op ratio is the
// multicore speedup of simulating one machine's MD traffic.
func BenchmarkTimestepShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
			cfg.Shards = shards
			m := New(cfg)
			sys := md.NewWater(8000, 300, sim.NewRand(21))
			e := NewEngine(m, sys, DefaultTimestepConfig())
			e.RunStep() // warm pools, plan buffers and kernel event heaps
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunStep()
			}
		})
	}
}

// BenchmarkMDBackpressure runs the same cell closed-loop against bounded
// per-VC ingress queues — the cmd/anton3 mdsweep inner loop — and reports
// what the flow control did to the step as custom metrics: the simulated
// step duration (sim_ns_per_step) and the injections the network refused
// at least once (parked_pos, parked_frc). The committed BENCH_md.json rows
// track the MD backpressure knee over time next to the synthetic knees in
// BENCH_saturation.json: the 16-flit row is past the knee (parking begins),
// the 4-flit row is deep in it.
func BenchmarkMDBackpressure(b *testing.B) {
	for _, depth := range []int{256, 16, 4} {
		b.Run(fmt.Sprintf("vcq=%d", depth), func(b *testing.B) {
			cfg := DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
			cfg.VCQueueFlits = depth
			m := New(cfg)
			sys := md.NewWater(8000, 300, sim.NewRand(777))
			e := NewEngine(m, sys, DefaultTimestepConfig())
			e.RunStep()
			b.ReportAllocs()
			b.ResetTimer()
			var res StepResult
			var parkedPos, parkedFrc int64
			for i := 0; i < b.N; i++ {
				res = e.RunStep()
				parkedPos += res.ParkedPositions
				parkedFrc += res.ParkedForces
			}
			b.ReportMetric(res.Duration.Nanoseconds(), "sim_ns_per_step")
			b.ReportMetric(float64(parkedPos)/float64(b.N), "parked_pos")
			b.ReportMetric(float64(parkedFrc)/float64(b.N), "parked_frc")
		})
	}
}
