package machine

import (
	"testing"

	"anton3/internal/fence"
	"anton3/internal/packet"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// fenceMixInj injects one pre-routed Position packet when its setup event
// fires (closure-free, like the synth harness's injectors).
type fenceMixInj struct {
	m    *Machine
	p    *packet.Packet
	done packet.Deliverer
}

func (i *fenceMixInj) Act() { i.m.Send(i.p, i.done) }

// fenceMixSink records delivery times by atom ID on the destination shard.
type fenceMixSink struct {
	m     *Machine
	times []sim.Time // indexed by AtomID; each written exactly once
}

func (s *fenceMixSink) Deliver(p *packet.Packet) {
	s.times[p.AtomID] = s.m.NodeKernel(p.DstNode).Now()
}

// runFenceMix runs a barrier wavefront concurrently with measured
// pre-routed traffic on a machine with the given shard count and returns
// every packet's delivery time plus every node's fence completion time.
func runFenceMix(t *testing.T, shape topo.Shape, shards, perNode int) ([]sim.Time, []sim.Time) {
	t.Helper()
	cfg := DefaultConfig(shape)
	cfg.Shards = shards
	m := New(cfg)
	nodes := shape.Nodes()
	core := m.GC(shape.CoordOf(0), 0).ID

	sink := &fenceMixSink{m: m, times: make([]sim.Time, nodes*perNode)}
	injs := make([]fenceMixInj, nodes*perNode)
	for i := 0; i < nodes; i++ {
		for k := 0; k < perNode; k++ {
			flat := i*perNode + k
			src := shape.CoordOf(i)
			// Deterministic all-to-mid pattern with distinct injection
			// instants: firing order equals flat order, so the routing
			// pre-draw below replays the sequential rng stream.
			dst := shape.CoordOf((i + nodes/2 + k) % nodes)
			p := &packet.Packet{
				Type:    packet.Position,
				SrcNode: src, DstNode: dst,
				SrcCore: core, DstCore: core,
				AtomID:    uint32(flat),
				PreRouted: true,
				Inj:       uint64(flat),
			}
			p.SetQuad([4]uint32{uint32(flat), 1, 2, 3})
			injs[flat] = fenceMixInj{m: m, p: p, done: sink}
		}
	}
	// Pre-draw routing decisions in firing (= flat) order; same-node
	// packets consume no draws, matching Send's on-chip shortcut.
	for flat := range injs {
		p := injs[flat].p
		if p.SrcNode != p.DstNode {
			p.Order, p.Tie = m.DrawRoute()
		}
	}
	for flat := range injs {
		m.NodeKernel(injs[flat].p.SrcNode).AtActor(sim.Time(1000+7*(flat+1)), &injs[flat])
	}

	// The barrier starts mid-traffic; its relays share channels with the
	// measured packets, so serialization order between the two is exactly
	// what fence lineage must pin.
	fenceDone := make([]sim.Time, nodes)
	id := m.StartFence(fence.GCtoGC, 2, func(n *Node, at sim.Time) {
		fenceDone[m.Shape().Index(n.Coord)] = at
	})
	m.BeginLineageRun()
	m.Run()
	m.FinishFence(id)

	for flat, at := range sink.times {
		if at == 0 {
			t.Fatalf("shards %d: packet %d never delivered", shards, flat)
		}
	}
	return sink.times, fenceDone
}

// TestFenceWithTrafficShardInvariant closes the ROADMAP caveat about
// mixing fences with measured traffic under shards: fence packets carry
// content-based lineage, so a barrier running concurrently with pre-routed
// traffic yields byte-identical delivery times AND fence completion times
// at every shard count.
func TestFenceWithTrafficShardInvariant(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	perNode := 96
	shardCounts := []int{2, 3, 4}
	if testing.Short() {
		shardCounts = shardCounts[:1]
	}
	refPkts, refFence := runFenceMix(t, shape, 1, perNode)
	for _, shards := range shardCounts {
		pkts, fenceAt := runFenceMix(t, shape, shards, perNode)
		for flat := range refPkts {
			if pkts[flat] != refPkts[flat] {
				t.Fatalf("shards %d: packet %d delivered at %v, want %v",
					shards, flat, pkts[flat], refPkts[flat])
			}
		}
		for n := range refFence {
			if fenceAt[n] != refFence[n] {
				t.Fatalf("shards %d: node %d fence completed at %v, want %v",
					shards, n, fenceAt[n], refFence[n])
			}
		}
	}
}
