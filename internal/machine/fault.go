package machine

import (
	"anton3/internal/chip"
	"anton3/internal/fault"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// Link-fault injection (Config.Faults) threads the fault plan through three
// layers, all deterministic and shard-safe:
//
//   - serdes: degraded channels serialize slower / fly longer; statically
//     dead channels panic on transmit (a backstop — flow control must keep
//     traffic off them).
//   - vcq credit layer: a dead outbound channel's credit counters are
//     zeroed and credit returns for it are dropped, so no new packet is
//     ever accepted onto it; traffic parks and drains via rerouting.
//   - routing: adaptive policies see dead links through route.HealthView
//     and steer around them; when the policy's hop is dead anyway (all
//     oblivious policies, or an adaptive decision with no live minimal
//     hop), chooseHop diverts the packet onto the fault-avoiding escape
//     path (route.EscapeNextAvoid), which may go the long way around a
//     ring and commits that direction on the packet (packet.EscDirs).
//
// Scheduled faults (LinkFault.TripAt > 0) fire as kernel events on the
// shard that owns the link's upstream node — simulated time, never wall
// clock — so a mid-run trip is byte-identical at any shard count: the trip
// only mutates state owned by that shard (its deadCh rows, its channels,
// its parked queues), and trips are (re)scheduled at Reset before any
// harness events, making them setup events under lineage tie ordering.
//
// Model notes. A trip is fail-stop for *new* acceptances only: packets that
// already hold credits for the link (in an injection or transit latency
// window, or serializing) drain across it — which is why only static dead
// faults arm the serdes transmit panic. Responses cannot reroute (their
// mesh-restricted single-VC XYZ route is fixed by construction), and fence
// packets are credit-exempt, so dead-link plans are only meaningful for
// request-class workloads (the flow harness). With multiple dead links a
// packet's committed detour can itself hit a second dead link; it then
// parks forever and the run terminates with the packet accounted as
// undelivered rather than deadlocking the kernel.

// faultInjBase places fault-trip lineage serials in their own region of the
// injection-order space: packet injections are flat indices, timestep
// engines use 1<<59..1<<61, credits 1<<62, fences 3<<62 — 2<<62 is free.
const faultInjBase = uint64(2) << 62

// healthView implements route.HealthView for one (node, slice) over the
// machine's flat deadCh table; nodes own one instance per slice (allocated
// only on faulty machines) so handing one to a routing decision allocates
// nothing.
type healthView struct {
	n     *Node
	slice int
}

// Dead implements route.HealthView.
func (v *healthView) Dead(dim topo.Dim, dir int) bool {
	cs := chip.ChannelSpec{Dim: dim, Dir: dir, Slice: v.slice}
	return v.n.m.deadCh[int(v.n.idx)*chip.NumChannelSpecs+cs.Index()]
}

// faultTrip is one scheduled fault firing at a simulated timestamp: a
// sim.Actor on the upstream node's shard kernel. Trips are built once in
// New and rescheduled by every Reset, so a reused machine re-arms its plan
// without allocating.
type faultTrip struct {
	m     *Machine
	n     *Node
	specs []int8 // dense outbound spec indices this trip kills/degrades
	eff   fault.Effect
	at    sim.Time
	inj   uint64
	hist  []sim.Time
}

// Act applies the fault (sim.Actor). Downstream events it causes — parked
// packets rerouted onto live channels, their credit returns — inherit the
// trip's lineage chain exactly like a credit arrival's.
func (t *faultTrip) Act() {
	n, m := t.n, t.m
	if m.lineage {
		t.hist = append(t.hist, n.sh.k.Now())
		n.sh.curHist = t.hist
	}
	for _, j := range t.specs {
		m.applyChannelFault(n, int(j), t.eff, false)
	}
	if t.eff.Dead {
		for _, j := range t.specs {
			m.rerouteParked(n, int(j))
		}
	}
}

// Lineage implements sim.Lineaged.
func (t *faultTrip) Lineage() ([]sim.Time, uint64) { return t.hist, t.inj }

// faultSpecIndices lists the dense channel-spec indices a LinkFault covers
// (one slice, or both).
func faultSpecIndices(f fault.LinkFault) [2]int {
	if f.Slice >= 0 {
		j := chip.ChannelSpec{Dim: f.Dim, Dir: f.Dir, Slice: f.Slice}.Index()
		return [2]int{j, -1}
	}
	return [2]int{
		chip.ChannelSpec{Dim: f.Dim, Dir: f.Dir, Slice: 0}.Index(),
		chip.ChannelSpec{Dim: f.Dim, Dir: f.Dir, Slice: 1}.Index(),
	}
}

// applyFaults (re)applies the machine's fault plan: static effects take
// hold immediately, scheduled trips are (re)armed on their shard kernels.
// Called at the end of New and of Reset — channels and credit counters have
// just been reset to healthy, so the plan is applied onto a clean slate.
func (m *Machine) applyFaults() {
	if !m.faulty {
		return
	}
	for i := range m.deadCh {
		m.deadCh[i] = false
	}
	for _, f := range m.cfg.Faults.Links {
		if f.TripAt > 0 {
			continue // armed below via the prebuilt trips
		}
		n := m.Node(f.Node)
		for _, j := range faultSpecIndices(f) {
			if j >= 0 {
				m.applyChannelFault(n, j, f.Effect, true)
			}
		}
	}
	for _, t := range m.trips {
		t.hist = t.hist[:0]
		t.n.sh.k.AtActor(t.at, t)
	}
}

// applyChannelFault applies one effect to node n's outbound channel j.
// static marks plan application at reset time (as opposed to a mid-run
// trip): only then is the serdes transmit panic armed, because a mid-run
// trip must let packets that already hold credits for the channel drain.
func (m *Machine) applyChannelFault(n *Node, j int, eff fault.Effect, static bool) {
	ch := n.out[j]
	if eff.Dead {
		m.deadCh[int(n.idx)*chip.NumChannelSpecs+j] = true
		if m.vcq != nil {
			for vc := 0; vc < route.NumVCs; vc++ {
				m.vcq.credits[vcSlot(n.idx, j, vc)] = 0
			}
		}
		if static {
			ch.SetDead(true)
		}
		return
	}
	ch.SetFault(eff.BWDiv, eff.LatMult)
}

// rerouteParked drains every packet parked on the newly dead outbound
// channel j at node n and re-dispatches each through the fault-aware hop
// choice, in deterministic FIFO-per-VC order. Without this, packets parked
// before the trip would wait forever on credits that can no longer return.
func (m *Machine) rerouteParked(n *Node, j int) {
	v := m.vcq
	for vc := 0; vc < route.NumVCs; vc++ {
		slot := vcSlot(n.idx, j, vc)
		for {
			q := v.pending[slot].pop()
			if q == nil {
				break
			}
			m.scratch = append(m.scratch, q)
		}
		v.pendFlits[slot] = 0
	}
	now := n.sh.k.Now()
	for i, q := range m.scratch {
		m.redispatch(n, q, now)
		m.scratch[i] = nil
	}
	m.scratch = m.scratch[:0]
}

// redispatch re-runs the park-or-depart decision for a packet whose parked
// channel just died: the mirror of creditArrive's revive path, except the
// output resource is chosen afresh instead of being the parked one.
func (m *Machine) redispatch(n *Node, q *packet.Packet, now sim.Time) {
	if sh := n.sh; sh.tele != nil || sh.trec != nil {
		m.noteFaultReroute(n, q, now)
	}
	st, ok := m.nextStep(q, q.Cur)
	if !ok {
		panic("machine: parked packet with no remaining hops")
	}
	out, w, ok := m.chooseHop(n, q, st)
	idx := out.Index()
	fl := int32(q.Flits())
	v := m.vcq
	if !ok {
		slot := vcSlot(n.idx, idx, w)
		q.Out = int8(idx)
		q.OutVC = int8(w)
		q.State = packet.WalkParked
		// ParkedAt is deliberately NOT reset: the stall began at the
		// original park, the trip merely re-routed the waiting packet.
		v.pending[slot].push(q)
		v.pendFlits[slot] += fl
		return
	}
	if sh := n.sh; sh.tele != nil || sh.trec != nil {
		m.noteUnpark(n, q, now, fl)
	}
	v.credits[vcSlot(n.idx, idx, w)] -= fl
	if q.In < 0 {
		// A parked injection: admit it and tell the source.
		m.acceptHop(q, out, w)
		q.Out = int8(idx)
		q.State = packet.WalkTransit
		m.lineageTouch(q, now)
		n.sh.k.AfterActor(m.injLat[m.tileIdx(q.SrcCore)*chip.NumChannelSpecs+idx], q)
		if q.OnAccept != nil {
			q.OnAccept.Accepted(q)
		}
		return
	}
	// A parked transit head: it still heads its ingress FIFO — leave it,
	// return its credits, and let the queue behind it advance.
	in, invc := int(q.In), int(q.VC)
	m.popIngress(n, in, invc, q)
	m.departHop(n, q, chip.ChannelSpecAt(in), out, w, now)
	m.advanceQueue(n, in, invc)
}
