package machine

import (
	"fmt"
	"strings"
	"testing"

	"anton3/internal/chip"
	"anton3/internal/fault"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// faultCfg builds a flow-controlled machine config with the given plan.
func faultCfg(shape topo.Shape, policy route.Policy, plan *fault.Plan) Config {
	cfg := DefaultConfig(shape)
	cfg.Policy = policy
	cfg.VCQueueFlits = 8
	cfg.Faults = plan
	return cfg
}

// TestDeadLinkDelivery pins the satellite fix for every policy: a packet
// whose ONLY minimal next hop is dead (one X+ hop to go, X+ dead at the
// source) must still reach its destination via the escape pair's detour the
// long way around the ring — previously route.EscapeNext was consulted only
// for credit-starved heads and would have bounced the packet straight back
// into the dead link.
func TestDeadLinkDelivery(t *testing.T) {
	shape := topo.Shape{X: 4, Y: 4, Z: 8}
	plan, err := fault.Parse("0,0,0:x+:dead")
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range route.SaturatePolicies() {
		t.Run(pol.Name(), func(t *testing.T) {
			m := New(faultCfg(shape, pol, plan))
			core := m.GC(topo.Coord{}, 0).ID
			sink := &vcqDrainSink{}
			p := &packet.Packet{
				Type:    packet.Position,
				SrcNode: topo.Coord{}, DstNode: topo.Coord{X: 1},
				SrcCore: core, DstCore: core,
				PreRouted: true,
			}
			p.Order, p.Tie = m.DrawRoute()
			inj := fenceMixInj{m: m, p: p, done: sink}
			m.K.AtActor(100, &inj)
			m.Run()
			if sink.n != 1 {
				t.Fatalf("packet with only minimal hop dead was not delivered")
			}
		})
	}
}

// checkDrained asserts post-run flow-control cleanliness on a faulted
// machine: nothing parked, nothing queued, and every live channel's credits
// back at full depth (dead channels hold zero credits by construction).
func checkDrained(t *testing.T, m *Machine, full int) {
	t.Helper()
	for _, n := range m.Nodes() {
		for _, cs := range n.ChannelSpecs() {
			dead := m.deadCh != nil && m.deadCh[int(n.idx)*chip.NumChannelSpecs+cs.Index()]
			for vc := 0; vc < route.NumVCs; vc++ {
				want := full
				if dead {
					want = 0
				}
				if c := n.OutCredits(cs, vc); c != want {
					t.Errorf("node %v %v vc %d: credits %d after drain, want %d", n.Coord, cs, vc, c, want)
				}
				if o := n.IngressOccupancy(cs, vc); o != 0 {
					t.Errorf("node %v %v vc %d: %d flits still queued", n.Coord, cs, vc, o)
				}
				if pk := n.ParkedFlits(cs, vc); pk != 0 {
					t.Errorf("node %v %v vc %d: %d flits still parked", n.Coord, cs, vc, pk)
				}
			}
		}
	}
}

// runFaultTraffic drives saturating all-to-all traffic (perNode packets per
// source) through m and returns how many were delivered.
func runFaultTraffic(m *Machine, perNode int) int {
	shape := m.Shape()
	nodes := shape.Nodes()
	core := m.GC(shape.CoordOf(0), 0).ID
	sink := &vcqDrainSink{}
	injs := make([]fenceMixInj, nodes*perNode)
	for i := 0; i < nodes; i++ {
		for k := 0; k < perNode; k++ {
			flat := i*perNode + k
			p := &packet.Packet{
				Type:    packet.Position,
				SrcNode: shape.CoordOf(i), DstNode: shape.CoordOf((i + nodes/2 + k) % nodes),
				SrcCore: core, DstCore: core,
				AtomID:    uint32(flat),
				PreRouted: true,
				Inj:       uint64(flat),
			}
			if p.SrcNode != p.DstNode {
				p.Order, p.Tie = m.DrawRoute()
			}
			injs[flat] = fenceMixInj{m: m, p: p, done: sink}
			m.NodeKernel(p.SrcNode).AtActor(sim.Time(100+3*flat), &injs[flat])
		}
	}
	m.Run()
	return sink.n
}

// TestSingleLinkDeadPropertySweep is the proof-of-delivery + deadlock-
// freedom property: for EVERY single dead directed link and every policy,
// saturating all-to-all traffic is fully delivered and the network drains
// clean (no parked flits, no stuck queues — the run terminating at all is
// the no-deadlock half). Full sweep on a small torus; -short samples it.
func TestSingleLinkDeadPropertySweep(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	nodes := shape.Nodes()
	step := 1
	if testing.Short() {
		step = 7
	}
	perNode := 8
	case_ := 0
	for i := 0; i < nodes; i++ {
		for d := topo.X; d <= topo.Z; d++ {
			if shape.Get(d) < 2 {
				continue
			}
			for _, dir := range []int{1, -1} {
				case_++
				if case_%step != 0 {
					continue
				}
				c := shape.CoordOf(i)
				plan := &fault.Plan{Links: []fault.LinkFault{{
					Node: c, Dim: d, Dir: dir, Slice: -1, Effect: fault.Effect{Dead: true},
				}}}
				for _, pol := range route.SaturatePolicies() {
					m := New(faultCfg(shape, pol, plan))
					got := runFaultTraffic(m, perNode)
					if got != nodes*perNode {
						t.Fatalf("%s with %s dead: delivered %d of %d", pol.Name(), plan.Canon(), got, nodes*perNode)
					}
					checkDrained(t, m, 8)
				}
			}
		}
	}
}

// TestFaultTripReroutesParked: a link that dies mid-run (TripAt inside the
// injection window) must reroute the packets already parked on it — they
// were waiting for credits that will never return — and everything still
// delivers and drains.
func TestFaultTripReroutesParked(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	nodes := shape.Nodes()
	perNode := 16
	// Injections run from t=100 at 3 ps spacing; trip in the middle.
	plan, err := fault.Parse(fmt.Sprintf("0,0,0:z+:dead@%d", 100+3*nodes*perNode/2))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range route.SaturatePolicies() {
		m := New(faultCfg(shape, pol, plan))
		got := runFaultTraffic(m, perNode)
		if got != nodes*perNode {
			t.Fatalf("%s with mid-run trip: delivered %d of %d", pol.Name(), got, nodes*perNode)
		}
		checkDrained(t, m, 8)
	}
}

// TestDegradedLinkSlowsDelivery: a bandwidth-divided link must lengthen the
// drain of traffic crossing it without losing anything.
func TestDegradedLinkSlowsDelivery(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	nodes := shape.Nodes()
	// Node 0's X+ link: under XYZ every packet sourced at node 0 crosses
	// it first (the sweep pattern sends them all to x=1 destinations).
	plan, err := fault.Parse("0,0,0:x+:bw/8,lat*4")
	if err != nil {
		t.Fatal(err)
	}
	healthy := New(faultCfg(shape, route.XYZ(), nil))
	if runFaultTraffic(healthy, 8) != nodes*8 {
		t.Fatal("healthy baseline lost packets")
	}
	healthyEnd := healthy.K.Now()

	m := New(faultCfg(shape, route.XYZ(), plan))
	if runFaultTraffic(m, 8) != nodes*8 {
		t.Fatal("degraded run lost packets")
	}
	if end := m.K.Now(); end <= healthyEnd {
		t.Fatalf("degraded drain ended at %d, healthy at %d — degradation had no effect", end, healthyEnd)
	}
	checkDrained(t, m, 8)
}

// TestFaultConfigValidation: dead links without credit flow control have no
// backpressure mechanism and must refuse to build, and an invalid plan must
// fail loudly at New with the fault package's message.
func TestFaultConfigValidation(t *testing.T) {
	plan, err := fault.Parse("0,0,0:x+:dead")
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name, want string, cfg Config) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: New did not panic", name)
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
				t.Fatalf("%s: panic %q does not mention %q", name, msg, want)
			}
		}()
		New(cfg)
	}
	cfg := DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
	cfg.Faults = plan
	mustPanic("dead without vcq", "per-VC flow control", cfg)

	badPlan, err := fault.Parse("7,0,0:x+:dead")
	if err != nil {
		t.Fatal(err)
	}
	cfg = DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
	cfg.VCQueueFlits = 8
	cfg.Faults = badPlan
	mustPanic("node outside shape", "outside shape", cfg)
}

// TestFaultResetReapplies: a reset machine must re-arm its plan — static
// dead links stay dead, and results repeat byte-identically run over run.
func TestFaultResetReapplies(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	plan, _ := fault.Parse("0,0,0:z+:dead")
	m := New(faultCfg(shape, route.Random(), plan))
	nodes := shape.Nodes()
	first := runFaultTraffic(m, 8)
	firstEnd := m.K.Now()
	if first != nodes*8 {
		t.Fatalf("first run delivered %d of %d", first, nodes*8)
	}
	m.Reset(DefaultConfig(shape).Seed)
	if !m.Node(topo.Coord{}).Channel(chip.ChannelSpec{Dim: topo.Z, Dir: 1, Slice: 0}).Dead() {
		t.Fatal("Reset lost the static dead fault")
	}
	second := runFaultTraffic(m, 8)
	if second != first || m.K.Now() != firstEnd {
		t.Fatalf("reset run differs: %d delivered ending %d, want %d ending %d",
			second, m.K.Now(), first, firstEnd)
	}
	checkDrained(t, m, 8)
}
