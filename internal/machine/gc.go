package machine

import (
	"anton3/internal/mem"
	"anton3/internal/packet"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// GC is a handle to one Geometry Core: the endpoint API that MD software
// (and the measurement harnesses) program against — counted remote writes,
// blocking reads, and fences.
type GC struct {
	m    *Machine
	Node *Node
	ID   packet.CoreID
}

// GC returns the handle for GC coreIdx (0..575 on a production chip) of the
// node at c.
func (m *Machine) GC(c topo.Coord, coreIdx int) *GC {
	return &GC{m: m, Node: m.Node(c), ID: m.Geom.CoreIDByIndex(coreIdx)}
}

// GCAt returns the handle for an explicit CoreID.
func (m *Machine) GCAt(c topo.Coord, id packet.CoreID) *GC {
	return &GC{m: m, Node: m.Node(c), ID: id}
}

// SRAM exposes this GC's memory block.
func (g *GC) SRAM() *mem.SRAM { return g.Node.sram(g.ID) }

// CountedWrite sends a counted remote write of quad to dst's SRAM at addr.
func (g *GC) CountedWrite(dst *GC, addr uint32, quad [4]uint32) {
	g.send(packet.CountedWrite, dst, addr, quad)
}

// CountedAccum sends an accumulating counted write (force summation form).
func (g *GC) CountedAccum(dst *GC, addr uint32, quad [4]uint32) {
	g.send(packet.CountedAccum, dst, addr, quad)
}

func (g *GC) send(t packet.Type, dst *GC, addr uint32, quad [4]uint32) {
	g.m.requireSingleShard("GC endpoint ops")
	p := g.m.pool.Get()
	p.Type = t
	p.SrcNode, p.DstNode = g.Node.Coord, dst.Node.Coord
	p.SrcCore, p.DstCore = g.ID, dst.ID
	p.Addr = addr
	p.SetQuad(quad)
	g.m.Send(p, nil)
}

// BlockingRead issues a blocking read of the local quad at addr with the
// given counter threshold. fn runs with the quad contents once the
// threshold is met: immediately (after an ordinary read latency) if already
// satisfied, else when the satisfying counted write lands (plus the
// blocking-read wake latency) — the arrival-to-use path the hardware
// optimizes (Section III-A).
func (g *GC) BlockingRead(addr uint32, threshold uint8, fn func([4]uint32)) {
	g.m.requireSingleShard("GC endpoint ops")
	m := g.m
	readLat := m.Clock.Cycles(m.cfg.Lat.MemWriteCycles)
	wakeLat := m.Geom.WakeLatency()
	satisfiedNow := true
	g.SRAM().BlockingRead(addr, threshold, func(data [4]uint32) {
		if satisfiedNow {
			m.K.After(readLat, func() { fn(data) })
		} else {
			m.K.After(wakeLat, func() { fn(data) })
		}
	})
	satisfiedNow = false
}

// PingPongResult reports a latency measurement.
type PingPongResult struct {
	Iters  int
	Total  sim.Time
	OneWay sim.Time // Total / (2*Iters)
	Hops   int
}

// PingPong runs the Section III-C latency test between two GCs: a counted
// write of 16 bytes bounces back and forth; one-way end-to-end latency is
// half the average round trip. The kernel is run to completion.
func (m *Machine) PingPong(a, b *GC, iters int) PingPongResult {
	m.requireSingleShard("PingPong")
	if iters <= 0 || iters > 120 {
		panic("machine: ping-pong iters must be in 1..120 (8-bit quad counters)")
	}
	const addrA, addrB = 16, 17
	payload := [4]uint32{0xfeed, 0xbeef, 0xcafe, 0xf00d}
	start := m.K.Now()
	var end sim.Time

	var iter func(i int)
	iter = func(i int) {
		if i == iters {
			end = m.K.Now()
			return
		}
		a.CountedWrite(b, addrB, payload)
		b.BlockingRead(addrB, uint8(i+1), func([4]uint32) {
			b.CountedWrite(a, addrA, payload)
			a.BlockingRead(addrA, uint8(i+1), func([4]uint32) {
				iter(i + 1)
			})
		})
	}
	iter(0)
	m.K.Run()

	total := end - start
	return PingPongResult{
		Iters:  iters,
		Total:  total,
		OneWay: total / sim.Time(2*iters),
		Hops:   m.cfg.Shape.HopDist(a.Node.Coord, b.Node.Coord),
	}
}
