package machine

import (
	"fmt"

	"anton3/internal/chip"
	"anton3/internal/fence"
	"anton3/internal/fixp"
	"anton3/internal/md"
	"anton3/internal/packet"
	"anton3/internal/sim"
	"anton3/internal/topo"
	"anton3/internal/trace"
)

// TimestepConfig calibrates the compute side of the timestep pipeline.
type TimestepConfig struct {
	// PPIMInteractionsPerCycle is the per-chip pairwise interaction
	// throughput. Table I's 5914 GOPS divided by the ~30 arithmetic
	// operations of one pairwise force evaluation gives the default 192.
	PPIMInteractionsPerCycle int64
	// IntegrationCyclesPerAtom is GC work per home atom per step (force
	// summation via blocking reads, integration, position update).
	IntegrationCyclesPerAtom int64
	// UnloadCycles covers PPIM stored-set force unload onto the on-chip
	// network after the GC-to-ICB fence completes.
	UnloadCycles int64
	// LocalStreamCycles is the on-chip latency before a home atom's
	// position reaches its own node's ICBs and starts streaming.
	LocalStreamCycles int64
}

// DefaultTimestepConfig returns the calibration used by the experiments.
func DefaultTimestepConfig() TimestepConfig {
	return TimestepConfig{
		PPIMInteractionsPerCycle: 192,
		IntegrationCyclesPerAtom: 100,
		UnloadCycles:             200,
		LocalStreamCycles:        60,
	}
}

// StepResult reports one simulated MD time step.
type StepResult struct {
	Duration    sim.Time
	PPIMBusyMax float64 // highest per-node PPIM utilization during the step
}

// Engine drives the Section II-C dataflow on the machine for a decomposed
// MD system: position multicast along stream-set trees, streaming through
// PPIMs, force returns, the GC-to-ICB fence, stored-set unload, and GC
// integration. It produces per-step wall-clock times (Figure 9b) and
// machine activity traces (Figure 12).
type Engine struct {
	m   *Machine
	sys *md.System
	d   *md.Decomposition
	cfg TimestepConfig

	// Rec, when non-nil, receives activity intervals.
	Rec *trace.Recorder

	radius int // fence hop count: max home->target distance

	states []*nodeStep
}

type nodeStep struct {
	node      *Node
	homeAtoms []int32

	streamsExpected int
	streamsDone     int
	forcesExpected  int
	forcesArrived   int
	fenceDoneAt     sim.Time
	fenceDone       bool

	ppimBusyUntil sim.Time
	ppimBusy      sim.Time // total busy time this step
	workPerAtomPs sim.Time

	unloadDone bool
	doneAt     sim.Time
	finished   bool
}

// NewEngine decomposes sys across m's shape.
func NewEngine(m *Machine, sys *md.System, cfg TimestepConfig) *Engine {
	m.requireSingleShard("the timestep engine")
	return &Engine{
		m:   m,
		sys: sys,
		d:   md.NewDecomposition(m.Shape(), sys.Box),
		cfg: cfg,
	}
}

// RunStep executes one full timestep pipeline for the system's current
// state and then advances the golden dynamics, returning the pipeline's
// wall-clock duration (max over nodes).
func (e *Engine) RunStep() StepResult {
	m := e.m
	shape := m.Shape()
	t0 := m.K.Now()

	// Per-node setup.
	e.states = make([]*nodeStep, shape.Nodes())
	for i := range e.states {
		e.states[i] = &nodeStep{node: m.nodes[i], ppimBusyUntil: t0}
	}

	// Classify every atom: home node, export targets, multicast tree.
	type atomPlan struct {
		home    topo.Coord
		targets []topo.Coord
		rel     fixp.Fixed
	}
	plans := make([]atomPlan, e.sys.N)
	e.radius = 1
	var scratch []topo.Coord
	totalStreams := 0
	for i := 0; i < e.sys.N; i++ {
		home := e.d.HomeNode(e.sys.Pos[i])
		scratch = e.d.ExportTargets(e.sys.Pos[i], home, scratch)
		targets := append([]topo.Coord(nil), scratch...)
		plans[i] = atomPlan{home: home, targets: targets, rel: e.d.RelativeFixed(e.sys.Pos[i], home)}
		hs := e.states[shape.Index(home)]
		hs.homeAtoms = append(hs.homeAtoms, int32(i))
		hs.forcesExpected += len(targets)
		hs.streamsExpected++ // the home atom streams locally too
		for _, tgt := range targets {
			e.states[shape.Index(tgt)].streamsExpected++
			if h := shape.HopDist(home, tgt); h > e.radius {
				e.radius = h
			}
		}
		totalStreams += 1 + len(targets)
	}

	// PPIM work per streamed atom: balanced split of the global pair count
	// (water is homogeneous; per-node imbalance is a few percent).
	pairs := e.sys.PairCount()
	perChipPairs := pairs / shape.Nodes()
	cyclePs := m.Clock.Period()
	for _, st := range e.states {
		if st.streamsExpected > 0 {
			interactionsPerStream := float64(perChipPairs) / float64(st.streamsExpected)
			ps := interactionsPerStream / float64(e.cfg.PPIMInteractionsPerCycle) * float64(cyclePs)
			st.workPerAtomPs = sim.Time(ps)
			if st.workPerAtomPs < 1 {
				st.workPerAtomPs = 1
			}
		}
	}

	// Phase 1: position export. Home atoms stream locally after an on-chip
	// latency; exported copies walk the multicast tree through channels.
	for i := range plans {
		p := &plans[i]
		atom := uint32(i)
		homeState := e.states[shape.Index(p.home)]

		core := m.Geom.CoreIDByIndex(int(atom) % m.Geom.GCs())
		m.K.After(m.Clock.Cycles(e.cfg.LocalStreamCycles), func() {
			e.streamArrive(homeState, atom, p.home, core)
		})

		if len(p.targets) == 0 {
			continue
		}
		e.multicast(atom, core, p.rel, p.home, p.targets)
	}

	// The GC-to-ICB fence flushes the position export; its packets queue
	// behind the positions just sent on every channel.
	fenceID := m.StartFence(fence.GCtoICB, e.radius, func(n *Node, at sim.Time) {
		st := e.states[shape.Index(n.Coord)]
		st.fenceDone = true
		st.fenceDoneAt = at
		e.maybeUnload(st)
	})

	m.K.Run()
	m.FinishFence(fenceID)

	end := t0
	maxBusy := 0.0
	for _, st := range e.states {
		if !st.finished {
			panic(fmt.Sprintf("machine: node %v did not finish its timestep", st.node.Coord))
		}
		if st.doneAt > end {
			end = st.doneAt
		}
		if st.doneAt > t0 {
			u := float64(st.ppimBusy) / float64(st.doneAt-t0)
			if u > maxBusy {
				maxBusy = u
			}
		}
	}

	// Advance the golden dynamics for the next step.
	e.sys.Step()
	return StepResult{Duration: end - t0, PPIMBusyMax: maxBusy}
}

// multicast walks an atom's stream-set tree through the timed channels.
func (e *Engine) multicast(atom uint32, core packet.CoreID, rel fixp.Fixed, home topo.Coord, targets []topo.Coord) {
	m := e.m
	shape := m.Shape()
	slice := int(atom) & 1
	plusOnTie := atom&2 != 0
	edges := md.MulticastEdges(shape, home, targets, plusOnTie, nil)

	// Outgoing tree adjacency per node.
	outOf := make(map[topo.Coord][]topo.Step)
	for _, ed := range edges {
		outOf[ed.From] = append(outOf[ed.From], ed.Step)
	}
	isTarget := make(map[topo.Coord]bool, len(targets))
	for _, t := range targets {
		isTarget[t] = true
	}

	var walk func(at topo.Coord, inSpec chip.ChannelSpec, entered bool)
	walk = func(at topo.Coord, inSpec chip.ChannelSpec, entered bool) {
		node := m.Node(at)
		if entered && isTarget[at] {
			// Eject to this node's ICBs and stream through PPIMs.
			eject := m.Geom.EjectLatency(inSpec, packet.CoreID{})
			st := e.states[shape.Index(at)]
			m.K.After(eject, func() { e.streamArrive(st, atom, at, core) })
		}
		for _, step := range outOf[at] {
			outSpec := chip.ChannelSpec{Dim: step.Dim, Dir: step.Dir, Slice: slice}
			next := shape.Neighbor(at, step.Dim, step.Dir)
			nextIn := chip.ChannelSpec{Dim: step.Dim, Dir: -step.Dir, Slice: slice}
			send := func() {
				p := m.pool.Get()
				p.ID = m.nextPktID()
				p.Type = packet.Position
				p.SrcNode, p.DstNode = home, next
				p.SrcCore, p.AtomID = core, atom
				p.SetQuad(rel.Words())
				node.out[outSpec.Index()].Send(p, func(q *packet.Packet) {
					m.pool.Put(q)
					walk(next, nextIn, true)
				})
			}
			if !entered {
				m.K.After(m.Geom.InjectLatency(core, outSpec), send)
			} else {
				m.K.After(m.Geom.TransitLatency(inSpec, outSpec), send)
			}
		}
	}
	walk(home, chip.ChannelSpec{}, false)
}

// streamArrive enqueues one streamed atom on the node's PPIM array; when
// its interactions complete, a remote atom's partial force returns to its
// home GC as a stream-set force packet.
func (e *Engine) streamArrive(st *nodeStep, atom uint32, at topo.Coord, origin packet.CoreID) {
	m := e.m
	now := m.K.Now()
	start := st.ppimBusyUntil
	if start < now {
		start = now
	}
	endT := start + st.workPerAtomPs
	st.ppimBusyUntil = endT
	st.ppimBusy += endT - start
	if e.Rec != nil {
		e.Rec.Add("ppim", start, endT)
	}
	home := e.d.HomeNode(e.sys.Pos[atom])
	m.K.At(endT, func() {
		st.streamsDone++
		if at != home {
			// Stream-set force returns to the origin GC.
			ff := fixp.ForceToFixed(e.sys.Force[atom])
			p := m.pool.Get()
			p.Type = packet.Force
			p.AtomID = atom
			p.SrcNode, p.DstNode = at, home
			p.DstCore = origin
			p.SetQuad(ff.Words())
			m.Send(p, e)
		}
		e.maybeUnload(st)
	})
}

// Deliver counts a stream-set force return into its home node's state
// (packet.Deliverer); the home is the force packet's destination.
func (e *Engine) Deliver(p *packet.Packet) {
	hs := e.states[e.m.Shape().Index(p.DstNode)]
	hs.forcesArrived++
	e.maybeIntegrate(hs)
}

// maybeUnload fires the stored-set force unload once the ICB fence has
// completed and the PPIMs have drained.
func (e *Engine) maybeUnload(st *nodeStep) {
	if st.unloadDone || !st.fenceDone || st.streamsDone < st.streamsExpected {
		return
	}
	st.unloadDone = true
	m := e.m
	m.K.After(m.Clock.Cycles(e.cfg.UnloadCycles), func() {
		e.maybeIntegrate(st)
	})
}

// maybeIntegrate runs GC integration once every force (stored-set unload
// and all stream-set returns) is in.
func (e *Engine) maybeIntegrate(st *nodeStep) {
	if st.finished || !st.unloadDone || st.forcesArrived < st.forcesExpected {
		return
	}
	st.finished = true
	m := e.m
	// Integration parallelizes across the chip's GCs.
	cycles := (int64(len(st.homeAtoms))*e.cfg.IntegrationCyclesPerAtom + int64(m.Geom.GCs()) - 1) / int64(m.Geom.GCs())
	start := m.K.Now()
	st.doneAt = start + m.Clock.Cycles(cycles)
	if e.Rec != nil {
		e.Rec.Add("gc-integ", start, st.doneAt)
	}
	m.K.At(st.doneAt, func() {})
}

// AttachChannelTrace wires every channel's OnSend hook into rec, split by
// packet type the way Figure 12 colors them (positions vs forces).
func (e *Engine) AttachChannelTrace(rec *trace.Recorder) {
	e.Rec = rec
	for _, n := range e.m.nodes {
		for _, ch := range n.out {
			if ch == nil {
				continue
			}
			ch.OnSend = func(p *packet.Packet, start, end sim.Time) {
				switch p.Type {
				case packet.Position:
					rec.Add("chan-pos", start, end)
				case packet.Force:
					rec.Add("chan-frc", start, end)
				default:
					rec.Add("chan-other", start, end)
				}
			}
		}
	}
}
