package machine

import (
	"fmt"

	"anton3/internal/chip"
	"anton3/internal/fence"
	"anton3/internal/fixp"
	"anton3/internal/md"
	"anton3/internal/packet"
	"anton3/internal/sim"
	"anton3/internal/topo"
	"anton3/internal/trace"
)

// TimestepConfig calibrates the compute side of the timestep pipeline.
type TimestepConfig struct {
	// PPIMInteractionsPerCycle is the per-chip pairwise interaction
	// throughput. Table I's 5914 GOPS divided by the ~30 arithmetic
	// operations of one pairwise force evaluation gives the default 192.
	PPIMInteractionsPerCycle int64
	// IntegrationCyclesPerAtom is GC work per home atom per step (force
	// summation via blocking reads, integration, position update).
	IntegrationCyclesPerAtom int64
	// UnloadCycles covers PPIM stored-set force unload onto the on-chip
	// network after the GC-to-ICB fence completes.
	UnloadCycles int64
	// LocalStreamCycles is the on-chip latency before a home atom's
	// position reaches its own node's ICBs and starts streaming.
	LocalStreamCycles int64
}

// DefaultTimestepConfig returns the calibration used by the experiments.
func DefaultTimestepConfig() TimestepConfig {
	return TimestepConfig{
		PPIMInteractionsPerCycle: 192,
		IntegrationCyclesPerAtom: 100,
		UnloadCycles:             200,
		LocalStreamCycles:        60,
	}
}

// StepResult reports one simulated MD time step.
type StepResult struct {
	Duration    sim.Time
	PPIMBusyMax float64 // highest per-node PPIM utilization during the step

	// ParkedPositions and ParkedForces count injection refusals under
	// per-VC flow control (Config.VCQueueFlits > 0): packets the network
	// initially declined for lack of downstream credits. They measure how
	// much endpoint backpressure real MD traffic generates; both are zero
	// under the open-loop infinite-buffer model.
	ParkedPositions int64
	ParkedForces    int64
}

// Lineage injection-order regions for the engine's runtime actors, disjoint
// from each other and from the credit (creditInjBase) and fence
// (fenceInjBase) regions, so no two concurrently live actors can compare
// equal under lineage ties: position multicast edges carry their global
// edge index, PPIM stream actors their flat stream index, and stream-set
// force returns their flat export-target index.
const (
	mdPosInjBase    = uint64(1) << 59
	mdStreamInjBase = uint64(1) << 60
	mdForceInjBase  = uint64(1) << 61
)

// Engine drives the Section II-C dataflow on the machine for a decomposed
// MD system: position multicast along stream-set trees, streaming through
// PPIMs, force returns, the GC-to-ICB fence, stored-set unload, and GC
// integration. It produces per-step wall-clock times (Figure 9b) and
// machine activity traces (Figure 12).
//
// The engine runs on sharded machines: every runtime event is either a
// Lineaged actor (position packets, stream actors, force packets) whose
// same-timestamp order is a pure function of its content, or an order-pure
// bookkeeping event (unload, integration keep-alive) whose effect does not
// depend on same-timestamp ordering. All randomness is pre-drawn at setup
// from shard 0's rng in flat atom-major order. Steps therefore produce
// byte-identical results at every shard count — including one, which runs
// under ForceLineageRun so the reference order is the same content-based
// order the sharded runs use.
type Engine struct {
	m   *Machine
	sys *md.System
	d   *md.Decomposition
	cfg TimestepConfig

	// Rec, when non-nil, receives activity intervals, merged from the
	// per-shard recorders after every step.
	Rec  *trace.Recorder
	recs []*trace.Recorder // one per shard; events record here during Run

	radius int // fence hop count: max home->target distance

	states []nodeStep

	// The flat per-step plan, rebuilt by setup() into reusable buffers:
	// one entry per atom in homes/rels, per export target in
	// targets/orders, per multicast channel crossing in edges, with
	// tgtOff/edgeOff giving atom a its [off[a], off[a+1]) range. streams
	// holds one actor per streamed atom copy: atom a's home copy at
	// tgtOff[a]+a, its export copy for flat target t at t+a+1.
	homes   []int32
	rels    []fixp.Fixed
	targets []int32
	tgtOff  []int32
	orders  []topo.DimOrder
	edges   []md.ChannelEdge
	edgeOff []int32
	streams []mdStream

	scratchT []topo.Coord
	scratchE []md.ChannelEdge

	// Per-shard counters of injection-refused (parked) packets under
	// closed-loop flow control, reduced into StepResult after Run.
	parkedPos []int64
	parkedFrc []int64
}

// nodeStep is one node's per-step pipeline state. All fields are mutated
// only by events on the owning node's shard.
type nodeStep struct {
	node      *Node
	homeAtoms int32

	streamsExpected int32
	streamsDone     int32
	forcesExpected  int32
	forcesArrived   int32
	fenceDone       bool
	unloadDone      bool
	finished        bool

	ppimBusyUntil sim.Time
	ppimBusy      sim.Time // total busy time this step
	workPerAtomPs sim.Time
	doneAt        sim.Time

	unload mdUnload
}

// NewEngine decomposes sys across m's shape.
func NewEngine(m *Machine, sys *md.System, cfg TimestepConfig) *Engine {
	return &Engine{
		m:   m,
		sys: sys,
		d:   md.NewDecomposition(m.Shape(), sys.Box),
		cfg: cfg,
	}
}

// RunStep executes one full timestep pipeline for the system's current
// state and then advances the golden dynamics, returning the pipeline's
// wall-clock duration (max over nodes).
func (e *Engine) RunStep() StepResult {
	m := e.m
	t0 := m.K.Now()
	e.setup(t0)

	// The GC-to-ICB fence flushes the position export; its packets queue
	// behind the positions just sent on every channel.
	fenceID := m.StartFence(fence.GCtoICB, e.radius, func(n *Node, at sim.Time) {
		st := &e.states[m.cfg.Shape.Index(n.Coord)]
		st.fenceDone = true
		e.maybeUnload(st)
	})

	// Content-based tie order at every shard count, including one: parked
	// revivals and cross-shard merges make plain schedule order
	// shard-dependent, so the sequential run adopts lineage order too.
	m.ForceLineageRun()
	m.Run()
	m.FinishFence(fenceID)

	end := t0
	maxBusy := 0.0
	for i := range e.states {
		st := &e.states[i]
		if !st.finished {
			panic(fmt.Sprintf("machine: node %v did not finish its timestep", st.node.Coord))
		}
		if st.doneAt > end {
			end = st.doneAt
		}
		if st.doneAt > t0 {
			u := float64(st.ppimBusy) / float64(st.doneAt-t0)
			if u > maxBusy {
				maxBusy = u
			}
		}
	}
	res := StepResult{Duration: end - t0, PPIMBusyMax: maxBusy}
	for s := range e.parkedPos {
		res.ParkedPositions += e.parkedPos[s]
		res.ParkedForces += e.parkedFrc[s]
	}
	if e.Rec != nil && e.recs != nil {
		for _, r := range e.recs {
			r.DrainInto(e.Rec)
		}
	}

	// Advance the golden dynamics for the next step.
	e.sys.Step()
	return res
}

// setup rebuilds the flat per-step plan and schedules phase 1 (position
// export): home copies stream after the on-chip latency, exported copies
// launch down their multicast trees. All routing randomness is pre-drawn
// here, in flat atom-major order from shard 0's rng — the only rng the
// engine ever touches — so the stream is a pure function of the seed.
func (e *Engine) setup(t0 sim.Time) {
	m := e.m
	shape := m.cfg.Shape
	nNodes := shape.Nodes()
	N := e.sys.N

	if cap(e.states) < nNodes {
		e.states = make([]nodeStep, nNodes)
	}
	e.states = e.states[:nNodes]
	for i := range e.states {
		e.states[i] = nodeStep{
			node:          m.nodes[i],
			ppimBusyUntil: t0,
			unload:        mdUnload{e: e, state: int32(i)},
		}
	}

	P := m.NumShards()
	if cap(e.parkedPos) < P {
		e.parkedPos = make([]int64, P)
		e.parkedFrc = make([]int64, P)
	}
	e.parkedPos, e.parkedFrc = e.parkedPos[:P], e.parkedFrc[:P]
	for s := 0; s < P; s++ {
		e.parkedPos[s], e.parkedFrc[s] = 0, 0
	}
	if e.Rec != nil && e.recs == nil {
		e.recs = make([]*trace.Recorder, P)
		for i := range e.recs {
			e.recs[i] = trace.NewRecorder()
		}
	}

	// Classify every atom: home node, export targets, multicast tree.
	e.homes = e.homes[:0]
	e.rels = e.rels[:0]
	e.targets = e.targets[:0]
	e.tgtOff = append(e.tgtOff[:0], 0)
	e.edges = e.edges[:0]
	e.edgeOff = append(e.edgeOff[:0], 0)
	e.radius = 1
	for i := 0; i < N; i++ {
		home := e.d.HomeNode(e.sys.Pos[i])
		homeIdx := shape.Index(home)
		e.homes = append(e.homes, int32(homeIdx))
		e.rels = append(e.rels, e.d.RelativeFixed(e.sys.Pos[i], home))
		e.scratchT = e.d.ExportTargets(e.sys.Pos[i], home, e.scratchT)
		hs := &e.states[homeIdx]
		hs.homeAtoms++
		hs.forcesExpected += int32(len(e.scratchT))
		hs.streamsExpected++ // the home atom streams locally too
		for _, tgt := range e.scratchT {
			e.targets = append(e.targets, int32(shape.Index(tgt)))
			e.states[shape.Index(tgt)].streamsExpected++
			if h := shape.HopDist(home, tgt); h > e.radius {
				e.radius = h
			}
		}
		e.tgtOff = append(e.tgtOff, int32(len(e.targets)))
		ed := md.MulticastEdges(shape, home, e.scratchT, i&2 != 0, e.scratchE)
		e.edges = append(e.edges, ed...)
		e.scratchE = ed[:0]
		e.edgeOff = append(e.edgeOff, int32(len(e.edges)))
	}

	// PPIM work per streamed atom: balanced split of the global pair count
	// (water is homogeneous; per-node imbalance is a few percent).
	pairs := e.sys.PairCount()
	perChipPairs := pairs / nNodes
	cyclePs := m.Clock.Period()
	for i := range e.states {
		st := &e.states[i]
		if st.streamsExpected > 0 {
			interactionsPerStream := float64(perChipPairs) / float64(st.streamsExpected)
			ps := interactionsPerStream / float64(e.cfg.PPIMInteractionsPerCycle) * float64(cyclePs)
			st.workPerAtomPs = sim.Time(ps)
			if st.workPerAtomPs < 1 {
				st.workPerAtomPs = 1
			}
		}
	}

	// Pre-draw the force-return routing decisions, one per export target.
	// The tie draw is discarded — Force packets derive theirs from the
	// atom ID — but DrawRoute still consumed it from the stream, exactly
	// as Send would have.
	if cap(e.orders) < len(e.targets) {
		e.orders = make([]topo.DimOrder, len(e.targets))
	}
	e.orders = e.orders[:len(e.targets)]
	for t := range e.orders {
		e.orders[t], _ = m.DrawRoute()
	}

	// Stream actors and phase-1 launches, atom-major: the home copy's
	// stream event first, then the atom's out-of-home tree edges — the
	// setup sequence order the sequential engine has always used.
	S := N + len(e.targets)
	if cap(e.streams) < S {
		grown := make([]mdStream, S)
		copy(grown, e.streams[:cap(e.streams)])
		e.streams = grown
	}
	e.streams = e.streams[:S]

	localLat := m.Clock.Cycles(e.cfg.LocalStreamCycles)
	for a := 0; a < N; a++ {
		node := m.nodes[e.homes[a]]
		si := int(e.tgtOff[a]) + a
		s := &e.streams[si]
		*s = mdStream{e: e, atom: uint32(a), state: e.homes[a], tgt: -1,
			hist: s.hist[:0], inj: mdStreamInjBase + uint64(si)}
		node.sh.k.AtActor(t0+localLat, s)
		for t := int(e.tgtOff[a]); t < int(e.tgtOff[a+1]); t++ {
			ts := &e.streams[t+a+1]
			*ts = mdStream{e: e, atom: uint32(a), state: e.targets[t], tgt: int32(t),
				hist: ts.hist[:0], inj: mdStreamInjBase + uint64(t+a+1)}
		}
		for i := int(e.edgeOff[a]); i < int(e.edgeOff[a+1]); i++ {
			if e.edges[i].From != node.Coord {
				continue
			}
			p := e.edgePacket(a, i, nil)
			if m.vcqFlits > 0 {
				// Closed loop: the launch needs downstream credits and may
				// park until a credit arrival revives it.
				m.sendFlow(p, node, e.edges[i].Step)
				if p.State == packet.WalkParked {
					e.parkedPos[node.sh.id]++
				}
			} else {
				p.State = packet.WalkTransit
				node.sh.k.AtActor(t0+m.Geom.InjectLatency(p.SrcCore, chip.ChannelSpecAt(int(p.Out))), p)
			}
		}
	}
}

// edgePacket builds the pooled packet for multicast edge ei of atom a,
// inheriting the parent packet's lineage chain when forking mid-tree
// (parent is nil for the home launch, a setup event). All routing state is
// preassigned — the tree is the route — so the machine draws nothing.
func (e *Engine) edgePacket(a, ei int, parent *packet.Packet) *packet.Packet {
	m := e.m
	ed := e.edges[ei]
	node := m.Node(ed.From)
	slice := a & 1
	out := chip.ChannelSpec{Dim: ed.Step.Dim, Dir: ed.Step.Dir, Slice: slice}
	p := node.sh.pool.Get()
	p.ID = node.sh.nextPktID()
	p.Type = packet.Position
	p.SrcNode = m.cfg.Shape.CoordOf(int(e.homes[a]))
	p.DstNode = m.cfg.Shape.Neighbor(ed.From, ed.Step.Dim, ed.Step.Dir)
	p.SrcCore = m.Geom.CoreIDByIndex(a % m.Geom.GCs())
	p.AtomID = uint32(a)
	p.SetQuad(e.rels[a].Words())
	p.Order = topo.OrderXYZ
	p.Tie = a&2 != 0
	p.PreRouted = true
	p.Slice = int8(slice)
	p.Walker = e
	p.Inj = mdPosInjBase + uint64(ei)
	p.Cur = ed.From
	p.In = -1
	p.Out = int8(out.Index())
	if parent != nil && m.lineage {
		p.Hist = append(p.Hist[:0], parent.Hist...)
	}
	return p
}

// OnPacket advances one position-multicast packet (packet.Walker): the
// engine is the walker for the tree's single-hop edge packets. The transit
// handling mirrors the machine walker's; arrivals fork fresh copies down
// the remaining tree edges instead of picking a next hop.
func (e *Engine) OnPacket(p *packet.Packet) {
	m := e.m
	node := m.Node(p.Cur)
	if m.lineage {
		p.Hist = append(p.Hist, node.sh.k.Now())
		node.sh.curHist = p.Hist
	}
	switch p.State {
	case packet.WalkTransit:
		out := chip.ChannelSpecAt(int(p.Out))
		next := m.cfg.Shape.Neighbor(p.Cur, out.Dim, out.Dir)
		if m.vcqFlits > 0 {
			if (out.Dir > 0 && next.Get(out.Dim) < p.Cur.Get(out.Dim)) ||
				(out.Dir < 0 && next.Get(out.Dim) > p.Cur.Get(out.Dim)) {
				p.Crossed = true
			}
		}
		p.Cur = next
		p.In = int8(out.Opposite().Index())
		p.State = packet.WalkArrive
		node.out[p.Out].SendPacket(p)

	case packet.WalkArrive:
		if m.vcqFlits > 0 {
			// Closed loop: join the bounded per-VC ingress FIFO; the eject
			// comes back to us as WalkApply.
			m.vcqArrive(node, p)
			return
		}
		e.edgeArrive(node, p, chip.ChannelSpecAt(int(p.In)))
		node.sh.pool.Put(p)

	case packet.WalkApply:
		e.edgeApply(node, p)
		node.sh.pool.Put(p)

	default:
		panic("machine: timestep position packet fired in an invalid walk state")
	}
}

// edgeArrive handles a position copy emerging from a channel under the
// open-loop model: schedule the PPIM stream if this node is an export
// target, then fork fresh copies down the remaining tree edges — the exact
// eject/transit timing of the historical recursive walk.
func (e *Engine) edgeArrive(node *Node, p *packet.Packet, in chip.ChannelSpec) {
	m := e.m
	a := int(p.AtomID)
	if s := e.targetStream(a, p.Cur); s != nil {
		if m.lineage {
			s.hist = append(s.hist[:0], p.Hist...)
		}
		node.sh.k.AfterActor(m.Geom.EjectLatency(in, packet.CoreID{}), s)
	}
	for i := int(e.edgeOff[a]); i < int(e.edgeOff[a+1]); i++ {
		if e.edges[i].From != p.Cur {
			continue
		}
		c := e.edgePacket(a, i, p)
		c.State = packet.WalkTransit
		node.sh.k.AfterActor(m.Geom.TransitLatency(in, chip.ChannelSpecAt(int(c.Out))), c)
	}
}

// edgeApply is edgeArrive's closed-loop counterpart, entered after the
// packet left its per-VC ingress queue and paid the eject latency: the
// stream starts now, and forked copies re-enter flow-control admission at
// this node — store-and-forward relaying, the modeling choice that puts
// every tree edge under the same credit admission as a fresh injection.
func (e *Engine) edgeApply(node *Node, p *packet.Packet) {
	m := e.m
	a := int(p.AtomID)
	now := node.sh.k.Now()
	if s := e.targetStream(a, p.Cur); s != nil {
		if m.lineage {
			s.hist = append(s.hist[:0], p.Hist...)
		}
		node.sh.k.AtActor(now, s)
	}
	for i := int(e.edgeOff[a]); i < int(e.edgeOff[a+1]); i++ {
		if e.edges[i].From != p.Cur {
			continue
		}
		c := e.edgePacket(a, i, p)
		m.sendFlow(c, node, e.edges[i].Step)
		if c.State == packet.WalkParked {
			e.parkedPos[node.sh.id]++
		}
	}
}

// targetStream returns atom a's stream actor at node c, or nil if c is not
// one of a's export targets.
func (e *Engine) targetStream(a int, c topo.Coord) *mdStream {
	idx := int32(e.m.cfg.Shape.Index(c))
	for t := int(e.tgtOff[a]); t < int(e.tgtOff[a+1]); t++ {
		if e.targets[t] == idx {
			return &e.streams[t+a+1]
		}
	}
	return nil
}

// mdStream is one streamed atom copy at one node: a two-phase reusable
// actor replacing the historical per-arrival closures. Phase 0 books the
// PPIM array; phase 1, at stream-drain time, returns the stream-set force
// to the atom's home GC when the copy is remote. The actor is Lineaged —
// its history continues the position packet (or setup event) that
// scheduled it — so same-timestamp PPIM bookings order identically at
// every shard count, which is what keeps ppimBusyUntil chains, and
// therefore step durations, shard-invariant.
type mdStream struct {
	e     *Engine
	atom  uint32
	state int32 // index of the node this copy streams at
	tgt   int32 // flat export-target index; -1 for the home copy
	phase uint8
	hist  []sim.Time
	inj   uint64
}

// Lineage implements sim.Lineaged.
func (s *mdStream) Lineage() ([]sim.Time, uint64) { return s.hist, s.inj }

// Act runs the stream's next phase (sim.Actor).
func (s *mdStream) Act() {
	e := s.e
	m := e.m
	st := &e.states[s.state]
	n := st.node
	now := n.sh.k.Now()
	if m.lineage {
		s.hist = append(s.hist, now)
		n.sh.curHist = s.hist
	}
	if s.phase == 0 {
		start := st.ppimBusyUntil
		if start < now {
			start = now
		}
		endT := start + st.workPerAtomPs
		st.ppimBusyUntil = endT
		st.ppimBusy += endT - start
		if e.recs != nil {
			e.recs[n.sh.id].Add("ppim", start, endT)
		}
		s.phase = 1
		n.sh.k.AtActor(endT, s)
		return
	}
	st.streamsDone++
	if s.tgt >= 0 {
		// Stream-set force returns to the origin GC at the atom's home.
		ff := fixp.ForceToFixed(e.sys.Force[s.atom])
		p := n.sh.pool.Get()
		p.Type = packet.Force
		p.AtomID = s.atom
		p.SrcNode = n.Coord
		p.DstNode = m.cfg.Shape.CoordOf(int(e.homes[s.atom]))
		p.DstCore = m.Geom.CoreIDByIndex(int(s.atom) % m.Geom.GCs())
		p.SetQuad(ff.Words())
		p.PreRouted = true
		p.Order = e.orders[s.tgt]
		p.Tie = s.atom&2 != 0
		p.Inj = mdForceInjBase + uint64(s.tgt)
		if m.lineage {
			// Continue this stream's chain minus the current event, which
			// Send re-appends as the force's parent (the response pattern).
			p.Hist = append(p.Hist[:0], s.hist[:len(s.hist)-1]...)
		}
		m.Send(p, e)
		if p.State == packet.WalkParked {
			e.parkedFrc[n.sh.id]++
		}
	}
	e.maybeUnload(st)
}

// Deliver counts a stream-set force return into its home node's state
// (packet.Deliverer); the home is the force packet's destination, so this
// always runs on the home node's shard.
func (e *Engine) Deliver(p *packet.Packet) {
	st := &e.states[e.m.cfg.Shape.Index(p.DstNode)]
	st.forcesArrived++
	e.maybeIntegrate(st)
}

// mdUnload fires a node's stored-set unload completion (sim.Actor). Not
// Lineaged: maybeIntegrate's outcome is a pure function of the counters
// and the fire time, so same-timestamp order cannot change any result.
type mdUnload struct {
	e     *Engine
	state int32
}

// Act implements sim.Actor.
func (u *mdUnload) Act() { u.e.maybeIntegrate(&u.e.states[u.state]) }

// maybeUnload fires the stored-set force unload once the ICB fence has
// completed and the PPIMs have drained.
func (e *Engine) maybeUnload(st *nodeStep) {
	if st.unloadDone || !st.fenceDone || st.streamsDone < st.streamsExpected {
		return
	}
	st.unloadDone = true
	st.node.sh.k.AfterActor(e.m.Clock.Cycles(e.cfg.UnloadCycles), &st.unload)
}

// timestepKeepAlive holds a node's kernel clock open to its integration
// completion without allocating a closure per node per step.
var timestepKeepAlive = func() {}

// maybeIntegrate runs GC integration once every force (stored-set unload
// and all stream-set returns) is in.
func (e *Engine) maybeIntegrate(st *nodeStep) {
	if st.finished || !st.unloadDone || st.forcesArrived < st.forcesExpected {
		return
	}
	st.finished = true
	m := e.m
	// Integration parallelizes across the chip's GCs.
	cycles := (int64(st.homeAtoms)*e.cfg.IntegrationCyclesPerAtom + int64(m.Geom.GCs()) - 1) / int64(m.Geom.GCs())
	k := st.node.sh.k
	start := k.Now()
	st.doneAt = start + m.Clock.Cycles(cycles)
	if e.recs != nil {
		e.recs[st.node.sh.id].Add("gc-integ", start, st.doneAt)
	}
	// Keep the node's kernel clock alive to its completion: the next
	// step's t0 is then the max doneAt across all nodes at every shard
	// count (the executive aligns all kernels to the last event time).
	k.At(st.doneAt, timestepKeepAlive)
}

// AttachChannelTrace wires every channel's OnSend hook into rec, split by
// packet type the way Figure 12 colors them (positions vs forces). Each
// shard's events record into a private recorder — hooks run inside shard
// windows — and RunStep merges them into rec after the kernels drain.
func (e *Engine) AttachChannelTrace(rec *trace.Recorder) {
	e.Rec = rec
	// Pin the historical Figure 12 column order up front: with per-shard
	// recorders merging in shard order, first-use order would otherwise
	// depend on where in the machine each track's first event landed.
	for _, t := range []string{"chan-pos", "ppim", "chan-other", "chan-frc", "gc-integ"} {
		rec.Touch(t)
	}
	if e.recs == nil {
		e.recs = make([]*trace.Recorder, e.m.NumShards())
		for i := range e.recs {
			e.recs[i] = trace.NewRecorder()
		}
	}
	hooks := make([]func(p *packet.Packet, start, end sim.Time), len(e.recs))
	for i := range hooks {
		r := e.recs[i]
		hooks[i] = func(p *packet.Packet, start, end sim.Time) {
			switch p.Type {
			case packet.Position:
				r.Add("chan-pos", start, end)
			case packet.Force:
				r.Add("chan-frc", start, end)
			default:
				r.Add("chan-other", start, end)
			}
		}
	}
	for _, n := range e.m.nodes {
		for _, ch := range n.out {
			if ch == nil {
				continue
			}
			ch.OnSend = hooks[n.sh.id]
		}
	}
}
