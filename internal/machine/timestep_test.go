package machine

import (
	"testing"

	"anton3/internal/md"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/testutil"
	"anton3/internal/topo"
	"anton3/internal/trace"
)

// sz picks the full-size or -short variant of a test parameter.
var sz = testutil.Size

func engineFor(t *testing.T, atoms int, comp serdes.CompressConfig) *Engine {
	t.Helper()
	cfg := DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
	cfg.Compress = comp
	m := New(cfg)
	sys := md.NewWater(atoms, 300, sim.NewRand(21))
	return NewEngine(m, sys, DefaultTimestepConfig())
}

func TestTimestepCompletes(t *testing.T) {
	e := engineFor(t, 4000, serdes.CompressConfig{})
	r := e.RunStep()
	if r.Duration <= 0 {
		t.Fatal("no step duration")
	}
	if r.PPIMBusyMax <= 0 || r.PPIMBusyMax > 1 {
		t.Fatalf("PPIM utilization = %v", r.PPIMBusyMax)
	}
}

func TestCompressionSpeedsUpStep(t *testing.T) {
	// Figure 9b: enabling compression speeds up the step (1.18-1.62x for
	// the paper's sizes). Direction and rough magnitude must hold.
	atoms := sz(8000, 6000)
	off := engineFor(t, atoms, serdes.CompressConfig{})
	on := engineFor(t, atoms, serdes.CompressConfig{INZ: true, Pcache: true})
	var tOff, tOn sim.Time
	for i := 0; i < sz(3, 2); i++ { // warm the caches, keep the last step
		tOff = off.RunStep().Duration
		tOn = on.RunStep().Duration
	}
	speedup := float64(tOff) / float64(tOn)
	if speedup < 1.1 || speedup > 2.0 {
		t.Fatalf("compression speedup = %.2f, want within ~1.18-1.62 band", speedup)
	}
}

func TestStepTimeScalesWithAtoms(t *testing.T) {
	small := engineFor(t, sz(4000, 3000), serdes.CompressConfig{})
	large := engineFor(t, sz(16000, 9000), serdes.CompressConfig{})
	ts := small.RunStep().Duration
	tl := large.RunStep().Duration
	if tl <= ts {
		t.Fatalf("4x atoms not slower: %v vs %v", ts, tl)
	}
}

func TestFig12Shape32751(t *testing.T) {
	if testing.Short() {
		t.Skip("full 32751-atom step in -short mode")
	}
	// Figure 12: the paper's 32,751-atom water system on 8 nodes takes
	// ~2000 ns per step uncompressed and ~900 ns compressed. Check the
	// shape: uncompressed/compressed ratio ~2.2x, absolute values within
	// a factor ~1.35.
	off := engineFor(t, 32751, serdes.CompressConfig{})
	on := engineFor(t, 32751, serdes.CompressConfig{INZ: true, Pcache: true})
	var tOff, tOn sim.Time
	for i := 0; i < 2; i++ {
		tOff = off.RunStep().Duration
		tOn = on.RunStep().Duration
	}
	offNs, onNs := tOff.Nanoseconds(), tOn.Nanoseconds()
	if offNs < 1480 || offNs > 2700 {
		t.Errorf("uncompressed step = %.0f ns, want ~2000", offNs)
	}
	if onNs < 670 || onNs > 1220 {
		t.Errorf("compressed step = %.0f ns, want ~900", onNs)
	}
	ratio := offNs / onNs
	if ratio < 1.6 || ratio > 2.9 {
		t.Errorf("step ratio = %.2f, want ~2.2", ratio)
	}
}

func TestActivityTraceRecorded(t *testing.T) {
	e := engineFor(t, 4000, serdes.CompressConfig{INZ: true, Pcache: true})
	rec := trace.NewRecorder()
	e.AttachChannelTrace(rec)
	e.RunStep()
	tracks := rec.Tracks()
	want := map[string]bool{"chan-pos": false, "chan-frc": false, "ppim": false, "gc-integ": false}
	for _, tr := range tracks {
		if _, ok := want[tr]; ok {
			want[tr] = true
		}
	}
	for tr, seen := range want {
		if !seen {
			t.Fatalf("track %q missing from activity trace (have %v)", tr, tracks)
		}
	}
	if out := rec.Render(20); len(out) < 100 {
		t.Fatalf("render too small:\n%s", out)
	}
}

func TestEngineChannelCachesStaySynced(t *testing.T) {
	e := engineFor(t, sz(4000, 3000), serdes.CompressConfig{INZ: true, Pcache: true})
	for i := 0; i < sz(3, 2); i++ {
		e.RunStep()
	}
	if err := e.m.CheckChannelSync(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() sim.Time {
		e := engineFor(t, sz(3000, 2000), serdes.CompressConfig{INZ: true})
		e.RunStep()
		return e.RunStep().Duration
	}
	if run() != run() {
		t.Fatal("engine not deterministic")
	}
}
