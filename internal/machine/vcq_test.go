package machine

import (
	"testing"

	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// TestVCQUncongestedMatchesLegacy pins the credit layer's timing
// equivalence: with queues deep enough that no packet ever waits, per-VC
// flow control must add zero delay to any path — including the
// request/response round trips of the ping-pong engine, which exercises
// the response VC. The measurement must equal the legacy (infinite
// buffer) machine exactly.
func TestVCQUncongestedMatchesLegacy(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	legacy := New(DefaultConfig(shape))
	a, b := legacy.GC(topo.Coord{}, 0), legacy.GC(topo.Coord{X: 1, Y: 1, Z: 3}, 1)
	want := legacy.PingPong(a, b, 8)

	cfg := DefaultConfig(shape)
	cfg.VCQueueFlits = 1 << 20
	m := New(cfg)
	got := m.PingPong(m.GC(topo.Coord{}, 0), m.GC(topo.Coord{X: 1, Y: 1, Z: 3}, 1), 8)
	if got != want {
		t.Fatalf("ping-pong under unbounded per-VC queues = %+v, legacy machine %+v", got, want)
	}
}

// vcqDrainSink counts deliveries.
type vcqDrainSink struct{ n int }

func (s *vcqDrainSink) Deliver(*packet.Packet) { s.n++ }

// TestVCQCreditConservation checks the flow-control invariant: after a
// run drains, every credit the traffic consumed has returned — all
// counters back at full depth, no flits queued, nothing parked. A leak
// anywhere in the accept/park/unpark/eject paths would show up here as a
// drifted counter.
func TestVCQCreditConservation(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	cfg := DefaultConfig(shape)
	cfg.VCQueueFlits = 8 // shallow: force parking, escape hops and unparks
	m := New(cfg)
	nodes := shape.Nodes()
	core := m.GC(shape.CoordOf(0), 0).ID
	sink := &vcqDrainSink{}
	perNode := 64
	injs := make([]fenceMixInj, nodes*perNode)
	for i := 0; i < nodes; i++ {
		for k := 0; k < perNode; k++ {
			flat := i*perNode + k
			p := &packet.Packet{
				Type:    packet.Position,
				SrcNode: shape.CoordOf(i), DstNode: shape.CoordOf((i + nodes/2 + k) % nodes),
				SrcCore: core, DstCore: core,
				AtomID:    uint32(flat),
				PreRouted: true,
				Inj:       uint64(flat),
			}
			if p.SrcNode != p.DstNode {
				p.Order, p.Tie = m.DrawRoute()
			}
			injs[flat] = fenceMixInj{m: m, p: p, done: sink}
			// 3 ps apart: saturating, so queues fill and heads park.
			m.NodeKernel(p.SrcNode).AtActor(sim.Time(100+3*flat), &injs[flat])
		}
	}
	m.Run()
	if sink.n != nodes*perNode {
		t.Fatalf("delivered %d of %d packets", sink.n, nodes*perNode)
	}
	for _, n := range m.Nodes() {
		for _, cs := range n.ChannelSpecs() {
			for vc := 0; vc < route.NumVCs; vc++ {
				if c := n.OutCredits(cs, vc); c != cfg.VCQueueFlits {
					t.Errorf("node %v %v vc %d: credits %d after drain, want %d",
						n.Coord, cs, vc, c, cfg.VCQueueFlits)
				}
				if o := n.IngressOccupancy(cs, vc); o != 0 {
					t.Errorf("node %v %v vc %d: %d flits still queued", n.Coord, cs, vc, o)
				}
				if pk := n.ParkedFlits(cs, vc); pk != 0 {
					t.Errorf("node %v %v vc %d: %d flits still parked", n.Coord, cs, vc, pk)
				}
			}
		}
	}
}

// TestVCQConfigValidation: a queue that cannot hold a max-size packet is
// a configuration bug and must refuse to build.
func TestVCQConfigValidation(t *testing.T) {
	cfg := DefaultConfig(topo.Shape{X: 2, Y: 2, Z: 2})
	cfg.VCQueueFlits = 1
	defer func() {
		if recover() == nil {
			t.Fatal("VCQueueFlits=1 (below the max packet size) did not panic")
		}
	}()
	New(cfg)
}
