package sim

// Deferrer accepts an event whose target lives on another shard's kernel:
// instead of scheduling immediately, the event is buffered and scheduled
// at the next window barrier. serdes channels whose far end belongs to a
// different shard send through a Deferrer.
type Deferrer interface {
	Defer(at Time, a Actor)
}

// deferred is one buffered cross-shard event.
type deferred struct {
	at    Time
	actor Actor
}

// Outbox buffers the cross-shard events one source shard emits toward one
// destination shard during a window. It has exactly one writer (the source
// shard's goroutine, during the window) and one reader (the barrier, after
// the window), so it needs no locking.
type Outbox struct {
	entries []deferred
}

// Defer implements Deferrer.
func (o *Outbox) Defer(at Time, a Actor) {
	o.entries = append(o.entries, deferred{at: at, actor: a})
}

// ParallelExec runs a group of shard kernels as one logical simulation
// using classic conservative (Chandy–Misra style) lookahead. Every event
// that crosses from one shard to another is guaranteed to arrive at least
// `lookahead` picoseconds after it was emitted — in this repository the
// guarantee comes from the serdes channel's FixedLatency floor, which every
// inter-node packet pays. That lets all shards execute the window
// [T, T+lookahead) independently: no event generated inside the window can
// land inside it on another shard.
//
// The loop is:
//
//  1. T = earliest pending event across all kernels; stop if none.
//  2. All shards run their own events with timestamps in [T, T+lookahead)
//     concurrently, appending cross-shard emissions to per-(src,dst)
//     outboxes.
//  3. Barrier: each destination kernel absorbs its inbound outboxes in a
//     deterministic order — (arrival time, source shard, source emission
//     order) — so the merged schedule sequence never depends on goroutine
//     interleaving.
//
// Determinism: for a fixed shard count, results are exactly reproducible
// (each kernel is sequential within a window and merges are canonically
// ordered). For results that are additionally *independent of the shard
// count*, same-timestamp execution order must also match the sequential
// kernel's — that is what Kernel.BeginLineageOrder provides for workloads
// whose runtime events are Lineaged actors.
//
// Stop is not supported on kernels driven by a ParallelExec; Run executes
// until every kernel drains.
type ParallelExec struct {
	ks      []*Kernel
	look    Time
	out     [][]Outbox // [src][dst]
	scratch []deferred // merge buffer, reused across barriers

	// Persistent window workers: one goroutine per shard, parked on its
	// work channel between windows, spawned lazily at the first window
	// with more than one active shard and stopped when Run returns. The
	// channels and the active-shard scratch live here so a reused
	// executive's Run is allocation-free in steady state.
	work  []chan Time
	done  chan struct{}
	spawn []func() // spawn[i] runs worker i; prebuilt because `go` with arguments allocates a wrapper closure per spawn
	act   []int
}

// NewParallelExec builds an executive over the given shard kernels.
// lookahead is the minimum cross-shard event latency; it must be positive,
// and every Defer must honor it or Run panics scheduling into the past.
func NewParallelExec(ks []*Kernel, lookahead Time) *ParallelExec {
	if len(ks) == 0 {
		panic("sim: ParallelExec needs at least one kernel")
	}
	if lookahead < 1 {
		panic("sim: ParallelExec lookahead must be positive")
	}
	out := make([][]Outbox, len(ks))
	for i := range out {
		out[i] = make([]Outbox, len(ks))
	}
	return &ParallelExec{ks: ks, look: lookahead, out: out}
}

// Outbox returns the buffer for events shard src emits toward shard dst.
// Wiring code (the machine) hands it to every cross-shard channel.
func (x *ParallelExec) Outbox(src, dst int) *Outbox { return &x.out[src][dst] }

// Lookahead reports the configured window length.
func (x *ParallelExec) Lookahead() Time { return x.look }

// BeginLineageOrder switches every shard kernel to lineage tie ordering
// (see Kernel.BeginLineageOrder). Call after setup scheduling, before Run.
func (x *ParallelExec) BeginLineageOrder() {
	for _, k := range x.ks {
		k.BeginLineageOrder()
	}
}

// Run executes windows until every kernel drains and every outbox is
// empty, and returns the timestamp of the last executed event across all
// shards — the value a sequential Kernel.Run over the same event set would
// have returned.
func (x *ParallelExec) Run() Time {
	started := false
	for {
		// Window floor T and the set of shards with events inside the
		// window. Shards with nothing before the deadline are skipped
		// entirely — their kernels' clocks catch up when they next run —
		// and a window with a single active shard executes inline on this
		// goroutine, no handoff. Worker goroutines spawn only at the first
		// genuinely parallel window and park on their channels between
		// windows, so per-window cost is a channel send per active shard
		// instead of a goroutine spawn per shard.
		T, have := Time(0), false
		for _, k := range x.ks {
			if at, ok := k.nextAt(); ok && (!have || at < T) {
				T, have = at, true
			}
		}
		if !have {
			break
		}
		deadline := T + x.look - 1
		x.act = x.act[:0]
		for i, k := range x.ks {
			if at, ok := k.nextAt(); ok && at <= deadline {
				x.act = append(x.act, i)
			}
		}
		if len(x.act) == 1 {
			x.ks[x.act[0]].RunUntilBatch(deadline)
		} else {
			if !started {
				x.startWorkers()
				started = true
			}
			for _, i := range x.act {
				x.work[i] <- deadline
			}
			for range x.act {
				<-x.done
			}
		}
		x.merge()
	}
	if started {
		// Retire the workers and wait for each to acknowledge: the ack is
		// the last thing a worker does before returning, so by the time Run
		// returns the worker goroutines are (about to be) dead and the next
		// Run's spawns recycle them instead of allocating fresh ones.
		for _, c := range x.work {
			c <- stopWorker
		}
		for range x.work {
			<-x.done
		}
	}
	var last Time
	for _, k := range x.ks {
		if k.lastAt > last {
			last = k.lastAt
		}
	}
	// Align every kernel clock to the last executed event. RunUntil leaves a
	// drained kernel at its window deadline, which depends on the window
	// geometry (and therefore the shard count); callers that chain phases
	// with `Now()` — the timestep engine starts step N+1 at the clock step N
	// ended on — need the post-run clock to be the sequential kernel's:
	// the timestamp of the last event, exactly what Kernel.Run leaves
	// behind. Safe to force in both directions: every kernel has drained,
	// every outbox is empty, and last >= every kernel's own lastAt, so no
	// executed event lies beyond the clock and nothing can schedule into
	// the past.
	for _, k := range x.ks {
		k.now = last
	}
	return last
}

// stopWorker is the sentinel deadline that retires a window worker; real
// deadlines are never negative. A sentinel (rather than closing the work
// channels) lets a reused executive keep its channels across Runs.
const stopWorker = Time(-1)

// startWorkers spawns one parked window worker per shard, building the
// channels on first use only — a reused executive's later Runs respawn
// workers on the cached channels without allocating.
func (x *ParallelExec) startWorkers() {
	if x.work == nil {
		x.work = make([]chan Time, len(x.ks))
		x.spawn = make([]func(), len(x.ks))
		for i := range x.work {
			i := i
			x.work[i] = make(chan Time, 1)
			x.spawn[i] = func() { x.worker(i) }
		}
		x.done = make(chan struct{}, len(x.ks))
	}
	for i := range x.ks {
		go x.spawn[i]()
	}
}

// worker runs shard i's window deadlines until retired.
func (x *ParallelExec) worker(i int) {
	k := x.ks[i]
	for {
		dl := <-x.work[i]
		if dl == stopWorker {
			x.done <- struct{}{}
			return
		}
		k.RunUntilBatch(dl)
		x.done <- struct{}{}
	}
}

// merge drains every outbox into its destination kernel. Entries for one
// destination are concatenated in source-shard order (which preserves each
// source's emission order) and then stable-sorted by arrival time, so the
// destination's schedule sequence is exactly (arrival time, source shard,
// source emission order) no matter how the window's goroutines interleaved.
func (x *ParallelExec) merge() {
	for d := range x.ks {
		s := x.scratch[:0]
		for src := range x.ks {
			ob := &x.out[src][d]
			s = append(s, ob.entries...)
			ob.entries = ob.entries[:0]
		}
		if len(s) == 0 {
			continue
		}
		// Stable insertion sort by arrival time: batches are small and
		// nearly sorted, and sorting in place keeps the barrier
		// allocation-free in steady state.
		for i := 1; i < len(s); i++ {
			e := s[i]
			j := i - 1
			for j >= 0 && s[j].at > e.at {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = e
		}
		k := x.ks[d]
		for _, e := range s {
			k.AtActor(e.at, e.actor)
		}
		x.scratch = s[:0]
	}
}
