package sim

import "testing"

// BenchmarkKernelScheduleDrain measures the raw Schedule+Pop cost: fill the
// queue with out-of-order timestamps, then drain it. This is the access
// pattern of a machine warming up and finishing a timestep.
func BenchmarkKernelScheduleDrain(b *testing.B) {
	const n = 4096
	r := NewRand(1)
	times := make([]Time, n)
	for i := range times {
		times[i] = Time(r.Intn(1 << 20))
	}
	fn := func() {}
	k := NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := k.Now()
		for _, t := range times {
			k.At(base+t, fn)
		}
		k.Run()
	}
}

// TestKernelScheduleZeroAllocs pins the hot-path guarantee the 4-ary
// pool heap exists for: once the pool has grown to the peak queue depth,
// Schedule (At/After) and Pop (step inside Run) do not allocate.
func TestKernelScheduleZeroAllocs(t *testing.T) {
	const depth = 512
	k := NewKernel()
	r := NewRand(3)
	fn := func() {}
	// Warm the pool, heap and free list to their peak sizes.
	for i := 0; i < depth; i++ {
		k.At(Time(r.Intn(1<<16)), fn)
	}
	k.Run()
	avg := testing.AllocsPerRun(100, func() {
		base := k.Now()
		for i := 0; i < depth; i++ {
			k.At(base+Time(r.Intn(1<<16)), fn)
		}
		// Drain through RunUntil first so the cached-root peek path is
		// under the same 0-alloc contract, then finish with Run.
		k.RunUntil(base + 1<<15)
		k.Run()
	})
	if avg != 0 {
		t.Fatalf("warm Schedule/Run allocated %.1f times per %d events, want 0", avg, depth)
	}
}

// TestRunUntilPeeksCachedRoot pins the root-timestamp cache: RunUntil must
// stop exactly at the cached earliest event, and the cache must track
// schedule/pop churn (including At calls made while paused mid-drain).
func TestRunUntilPeeksCachedRoot(t *testing.T) {
	k := NewKernel()
	var fired []Time
	rec := func() { fired = append(fired, k.Now()) }
	for _, at := range []Time{50, 10, 30, 70} {
		k.At(at, rec)
	}
	if k.rootAt != 10 {
		t.Fatalf("rootAt = %v after scheduling, want 10", k.rootAt)
	}
	if k.RunUntil(30) {
		t.Fatal("queue should not have drained by t=30")
	}
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 30 {
		t.Fatalf("fired %v, want [10 30]", fired)
	}
	if k.rootAt != 50 {
		t.Fatalf("rootAt = %v mid-drain, want 50", k.rootAt)
	}
	// A newly scheduled earlier event must refresh the cache.
	k.At(40, rec)
	if k.rootAt != 40 {
		t.Fatalf("rootAt = %v after At(40), want 40", k.rootAt)
	}
	if !k.RunUntil(100) {
		t.Fatal("queue should have drained")
	}
	if len(fired) != 5 || fired[2] != 40 || fired[4] != 70 {
		t.Fatalf("fired %v", fired)
	}
}

// TestKernelFreeListBoundsPool checks that fired events recycle their pool
// slots: scheduling in waves must not grow the pool past the peak depth.
func TestKernelFreeListBoundsPool(t *testing.T) {
	const depth = 64
	k := NewKernel()
	fn := func() {}
	for wave := 0; wave < 50; wave++ {
		base := k.Now()
		for i := 0; i < depth; i++ {
			k.At(base+Time(i), fn)
		}
		k.Run()
	}
	if got := len(k.pool); got > depth {
		t.Fatalf("pool grew to %d slots across waves of %d events; free list not reusing", got, depth)
	}
}

// BenchmarkKernelSteadyState measures the hot loop every simulation spends
// its life in: events firing and rescheduling follow-ups, with the queue at
// a steady depth — the pattern of routers, adapters and pipelines in flight.
func BenchmarkKernelSteadyState(b *testing.B) {
	const depth = 1024
	k := NewKernel()
	r := NewRand(2)
	var tick Handler
	tick = func() { k.After(Time(1+r.Intn(997)), tick) }
	for i := 0; i < depth; i++ {
		k.At(Time(r.Intn(997)), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.step()
	}
}
