package sim

// Handler is a callback invoked when an event fires.
type Handler func()

// Actor is the closure-free event variant: objects that carry their own
// callback state (e.g. an in-flight packet) implement Act and are scheduled
// directly with AtActor/AfterActor. The interface value is two words copied
// into the event pool, so scheduling an existing object allocates nothing —
// the property the machine's packet hot path is built on.
type Actor interface {
	Act()
}

type event struct {
	at    Time
	seq   uint64
	fn    Handler
	actor Actor
}

// Kernel is a discrete-event simulation executive. It is not safe for
// concurrent use; all components of one simulated machine share one Kernel
// and run in a single goroutine, which is what makes runs deterministic.
// Distinct Kernels share nothing, so independent simulations may run on
// separate goroutines concurrently (the runner package relies on this).
//
// The pending-event queue is a 4-ary min-heap of indices into an event pool
// with a free list, rather than container/heap: no interface boxing on the
// push/pop path, sift swaps move 4-byte indices instead of events, and
// fired slots are recycled, so scheduling is allocation-free once the pool
// has grown to the simulation's peak queue depth.
type Kernel struct {
	now     Time
	seq     uint64
	heap    []int32 // 4-ary min-heap, ordered by (pool[i].at, pool[i].seq)
	rootAt  Time    // pool[heap[0]].at, cached; valid while len(heap) > 0
	pool    []event
	free    []int32 // recycled pool slots
	stopped bool
	fired   uint64
	lastAt  Time // timestamp of the last executed event (unlike now, never forced forward by RunUntil)

	// Lineage tie ordering (sharded execution; see BeginLineageOrder).
	lineage  bool
	setupSeq uint64 // highest seq scheduled before BeginLineageOrder
}

// NewKernel returns a kernel with the clock at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// EventsFired reports how many events have executed so far (useful for
// performance accounting in benchmarks).
func (k *Kernel) EventsFired() uint64 { return k.fired }

// Pending reports the number of scheduled-but-unfired events.
func (k *Kernel) Pending() int { return len(k.heap) }

// before reports whether pool slot a fires strictly before slot b.
func (k *Kernel) before(a, b int32) bool {
	ea, eb := &k.pool[a], &k.pool[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	if k.lineage {
		return k.lineageBefore(ea, eb)
	}
	return ea.seq < eb.seq
}

// Lineaged is implemented by actors that carry their own event-history
// rank: the fire times of every past event of their causal chain (oldest
// first) plus a globally unique injection order. Kernels in lineage mode
// use it to break same-timestamp ties exactly as a single sequential
// kernel's schedule order would (see BeginLineageOrder).
type Lineaged interface {
	Actor
	// Lineage returns the chain of past fire times (oldest first) and the
	// setup order of the chain's injection event.
	Lineage() (hist []Time, inj uint64)
}

// lineageBefore orders two same-timestamp events the way the equivalent
// sequential kernel would. In a sequential kernel, same-time events fire
// in schedule order, and an event's schedule position is its scheduler's
// execution position — recursively, until the chains reach setup-scheduled
// events, which all precede every runtime-scheduled event and order among
// themselves by setup sequence. Comparing the actors' fire-time histories
// newest-first implements exactly that recursion, so the order of any two
// events is a function of event content alone — independent of which shard
// kernel hosts them, in what order cross-shard merges inserted them, and
// of the shard count itself.
func (k *Kernel) lineageBefore(ea, eb *event) bool {
	sa, sb := ea.seq <= k.setupSeq, eb.seq <= k.setupSeq
	if sa || sb {
		if sa != sb {
			// Setup events were all scheduled before any runtime event.
			return sa
		}
		// Both setup: local schedule order is the global setup order
		// restricted to this shard, which preserves relative order.
		return ea.seq < eb.seq
	}
	la, okA := ea.actor.(Lineaged)
	lb, okB := eb.actor.(Lineaged)
	if !okA || !okB {
		// Closures or unranked actors at runtime: schedule order is the
		// best available (deterministic, but only sequential-equivalent
		// for Lineaged chains).
		return ea.seq < eb.seq
	}
	ha, ia := la.Lineage()
	hb, ib := lb.Lineage()
	da, db := len(ha)-1, len(hb)-1
	for da >= 0 && db >= 0 {
		if ha[da] != hb[db] {
			return ha[da] < hb[db]
		}
		da--
		db--
	}
	if (da < 0) != (db < 0) {
		// The exhausted chain's next ancestor is its setup-scheduled
		// injection event, which precedes the other chain's runtime
		// ancestor at the same (tied) fire time.
		return da < 0
	}
	return ia < ib
}

// BeginLineageOrder switches the kernel to lineage tie ordering: events at
// equal timestamps compare by their actors' Lineage instead of schedule
// sequence. Call it after all setup events have been scheduled and before
// running; events already queued are treated as setup events. Sharded
// executions (ParallelExec) use this to make results independent of the
// shard count, not merely of goroutine interleaving.
func (k *Kernel) BeginLineageOrder() {
	k.lineage = true
	k.setupSeq = k.seq
}

// Reset returns the kernel to its just-constructed state while retaining
// the event pool's capacity, so a reused kernel schedules without heap
// allocations from the first event. It must not be called while Run is
// executing.
func (k *Kernel) Reset() {
	k.now, k.seq, k.rootAt, k.lastAt = 0, 0, 0, 0
	k.heap = k.heap[:0]
	k.pool = k.pool[:0]
	k.free = k.free[:0]
	k.stopped = false
	k.fired = 0
	k.lineage = false
	k.setupSeq = 0
}

// LastFired reports the timestamp of the most recently executed event.
// Unlike Now, it is never advanced by a RunUntil deadline, so after a
// windowed run it is the drain time a sequential Run would have returned.
func (k *Kernel) LastFired() Time { return k.lastAt }

func (k *Kernel) siftUp(i int) {
	h := k.heap
	slot := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !k.before(slot, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = slot
}

func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	slot := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if k.before(h[j], h[min]) {
				min = j
			}
		}
		if !k.before(h[min], slot) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = slot
}

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it is always a modeling bug.
func (k *Kernel) At(at Time, fn Handler) {
	k.push(at, event{fn: fn})
}

// AtActor schedules a.Act() to run at absolute time at. Unlike At, no
// closure is involved: the two-word interface value is stored in the event
// pool directly, so the call is allocation-free once the pool has grown.
func (k *Kernel) AtActor(at Time, a Actor) {
	k.push(at, event{actor: a})
}

func (k *Kernel) push(at Time, e event) {
	if at < k.now {
		panic("sim: event scheduled in the past")
	}
	k.seq++
	e.at, e.seq = at, k.seq
	var idx int32
	if n := len(k.free) - 1; n >= 0 {
		idx = k.free[n]
		k.free = k.free[:n]
	} else {
		k.pool = append(k.pool, event{})
		idx = int32(len(k.pool) - 1)
	}
	k.pool[idx] = e
	k.heap = append(k.heap, idx)
	k.siftUp(len(k.heap) - 1)
	k.rootAt = k.pool[k.heap[0]].at
}

// After schedules fn to run delay picoseconds from now.
func (k *Kernel) After(delay Time, fn Handler) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	k.At(k.now+delay, fn)
}

// AfterActor schedules a.Act() delay picoseconds from now (see AtActor).
func (k *Kernel) AfterActor(delay Time, a Actor) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	k.AtActor(k.now+delay, a)
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// step pops and fires the earliest event. It must not be called on an
// empty queue.
func (k *Kernel) step() {
	slot := k.heap[0]
	e := k.pool[slot]
	// Drop the references so the GC can collect closures and actors.
	k.pool[slot].fn = nil
	k.pool[slot].actor = nil
	k.free = append(k.free, slot)
	last := len(k.heap) - 1
	k.heap[0] = k.heap[last]
	k.heap = k.heap[:last]
	if last > 0 {
		k.siftDown(0)
		k.rootAt = k.pool[k.heap[0]].at
	}
	k.now = e.at
	k.lastAt = e.at
	k.fired++
	if e.fn != nil {
		e.fn()
	} else {
		e.actor.Act()
	}
}

// Run executes events until the queue drains or Stop is called. It returns
// the time of the last executed event.
func (k *Kernel) Run() Time {
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		k.step()
	}
	return k.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. It returns true if the queue drained
// before the deadline. The peek reads the cached root timestamp, so the
// hot loop touches only the Kernel header — no heap/pool indirection.
func (k *Kernel) RunUntil(deadline Time) bool {
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		if k.rootAt > deadline {
			k.now = deadline
			return false
		}
		k.step()
	}
	if k.now < deadline {
		k.now = deadline
	}
	return len(k.heap) == 0
}
