package sim

import "container/heap"

// Handler is a callback invoked when an event fires.
type Handler func()

type event struct {
	at  Time
	seq uint64
	fn  Handler
}

// eventHeap orders events by time, breaking ties by scheduling order.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation executive. It is not safe for
// concurrent use; all components of one simulated machine share one Kernel
// and run in a single goroutine, which is what makes runs deterministic.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// NewKernel returns a kernel with the clock at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// EventsFired reports how many events have executed so far (useful for
// performance accounting in benchmarks).
func (k *Kernel) EventsFired() uint64 { return k.fired }

// Pending reports the number of scheduled-but-unfired events.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it is always a modeling bug.
func (k *Kernel) At(at Time, fn Handler) {
	if at < k.now {
		panic("sim: event scheduled in the past")
	}
	k.seq++
	heap.Push(&k.events, event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn to run delay picoseconds from now.
func (k *Kernel) After(delay Time, fn Handler) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	k.At(k.now+delay, fn)
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the time of the last executed event.
func (k *Kernel) Run() Time {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		e := heap.Pop(&k.events).(event)
		k.now = e.at
		k.fired++
		e.fn()
	}
	return k.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. It returns true if the queue drained
// before the deadline.
func (k *Kernel) RunUntil(deadline Time) bool {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		if k.events[0].at > deadline {
			k.now = deadline
			return false
		}
		e := heap.Pop(&k.events).(event)
		k.now = e.at
		k.fired++
		e.fn()
	}
	if k.now < deadline {
		k.now = deadline
	}
	return len(k.events) == 0
}
