package sim

// Handler is a callback invoked when an event fires.
type Handler func()

// Actor is the closure-free event variant: objects that carry their own
// callback state (e.g. an in-flight packet) implement Act and are scheduled
// directly with AtActor/AfterActor. The interface value is two words copied
// into the event pool, so scheduling an existing object allocates nothing —
// the property the machine's packet hot path is built on.
type Actor interface {
	Act()
}

type event struct {
	at    Time
	seq   uint64
	fn    Handler
	actor Actor
}

// Kernel is a discrete-event simulation executive. It is not safe for
// concurrent use; all components of one simulated machine share one Kernel
// and run in a single goroutine, which is what makes runs deterministic.
// Distinct Kernels share nothing, so independent simulations may run on
// separate goroutines concurrently (the runner package relies on this).
//
// The pending-event queue is a 4-ary min-heap of indices into an event pool
// with a free list, rather than container/heap: no interface boxing on the
// push/pop path, sift swaps move 4-byte indices instead of events, and
// fired slots are recycled, so scheduling is allocation-free once the pool
// has grown to the simulation's peak queue depth.
type Kernel struct {
	now     Time
	seq     uint64
	heap    []int32 // 4-ary min-heap, ordered by (pool[i].at, pool[i].seq)
	rootAt  Time    // pool[heap[0]].at, cached; valid while len(heap) > 0
	pool    []event
	free    []int32 // recycled pool slots
	stopped bool
	fired   uint64
}

// NewKernel returns a kernel with the clock at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// EventsFired reports how many events have executed so far (useful for
// performance accounting in benchmarks).
func (k *Kernel) EventsFired() uint64 { return k.fired }

// Pending reports the number of scheduled-but-unfired events.
func (k *Kernel) Pending() int { return len(k.heap) }

// before reports whether pool slot a fires strictly before slot b.
func (k *Kernel) before(a, b int32) bool {
	ea, eb := &k.pool[a], &k.pool[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (k *Kernel) siftUp(i int) {
	h := k.heap
	slot := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !k.before(slot, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = slot
}

func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	slot := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if k.before(h[j], h[min]) {
				min = j
			}
		}
		if !k.before(h[min], slot) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = slot
}

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it is always a modeling bug.
func (k *Kernel) At(at Time, fn Handler) {
	k.push(at, event{fn: fn})
}

// AtActor schedules a.Act() to run at absolute time at. Unlike At, no
// closure is involved: the two-word interface value is stored in the event
// pool directly, so the call is allocation-free once the pool has grown.
func (k *Kernel) AtActor(at Time, a Actor) {
	k.push(at, event{actor: a})
}

func (k *Kernel) push(at Time, e event) {
	if at < k.now {
		panic("sim: event scheduled in the past")
	}
	k.seq++
	e.at, e.seq = at, k.seq
	var idx int32
	if n := len(k.free) - 1; n >= 0 {
		idx = k.free[n]
		k.free = k.free[:n]
	} else {
		k.pool = append(k.pool, event{})
		idx = int32(len(k.pool) - 1)
	}
	k.pool[idx] = e
	k.heap = append(k.heap, idx)
	k.siftUp(len(k.heap) - 1)
	k.rootAt = k.pool[k.heap[0]].at
}

// After schedules fn to run delay picoseconds from now.
func (k *Kernel) After(delay Time, fn Handler) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	k.At(k.now+delay, fn)
}

// AfterActor schedules a.Act() delay picoseconds from now (see AtActor).
func (k *Kernel) AfterActor(delay Time, a Actor) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	k.AtActor(k.now+delay, a)
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// step pops and fires the earliest event. It must not be called on an
// empty queue.
func (k *Kernel) step() {
	slot := k.heap[0]
	e := k.pool[slot]
	// Drop the references so the GC can collect closures and actors.
	k.pool[slot].fn = nil
	k.pool[slot].actor = nil
	k.free = append(k.free, slot)
	last := len(k.heap) - 1
	k.heap[0] = k.heap[last]
	k.heap = k.heap[:last]
	if last > 0 {
		k.siftDown(0)
		k.rootAt = k.pool[k.heap[0]].at
	}
	k.now = e.at
	k.fired++
	if e.fn != nil {
		e.fn()
	} else {
		e.actor.Act()
	}
}

// Run executes events until the queue drains or Stop is called. It returns
// the time of the last executed event.
func (k *Kernel) Run() Time {
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		k.step()
	}
	return k.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. It returns true if the queue drained
// before the deadline. The peek reads the cached root timestamp, so the
// hot loop touches only the Kernel header — no heap/pool indirection.
func (k *Kernel) RunUntil(deadline Time) bool {
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		if k.rootAt > deadline {
			k.now = deadline
			return false
		}
		k.step()
	}
	if k.now < deadline {
		k.now = deadline
	}
	return len(k.heap) == 0
}
