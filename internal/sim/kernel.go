package sim

import "slices"

// Handler is a callback invoked when an event fires.
type Handler func()

// Actor is the closure-free event variant: objects that carry their own
// callback state (e.g. an in-flight packet) implement Act and are scheduled
// directly with AtActor/AfterActor. The interface value is two words copied
// into the event pool, so scheduling an existing object allocates nothing —
// the property the machine's packet hot path is built on.
type Actor interface {
	Act()
}

type event struct {
	fn    Handler
	actor Actor
}

// heapKey is one heap entry's ordering key. Keeping timestamp and schedule
// sequence adjacent in a single 16-byte struct means a sift comparison
// loads one key with one cache access instead of gathering from two
// parallel arrays.
type heapKey struct {
	at  Time
	seq uint64
}

// heapRoot is the array index of the heap's root. Indices 0..2 are unused
// padding: with the root at 3, the four children of node i sit at
// 4i-8..4i-5 — a block whose byte offset (16 bytes per key) is a multiple
// of 64, so every child scan in siftDown touches exactly one cache line
// once the keys array is cache-line aligned (large allocations are).
const heapRoot = 3

// Kernel is a discrete-event simulation executive. It is not safe for
// concurrent use; all components of one simulated machine share one Kernel
// and run in a single goroutine, which is what makes runs deterministic.
// Distinct Kernels share nothing, so independent simulations may run on
// separate goroutines concurrently (the runner package relies on this).
//
// The pending-event queue is a 4-ary min-heap laid out structure-of-arrays:
// heap holds pool slot indices while keys holds the (timestamp, schedule
// sequence) ordering keys in a parallel array, so sift comparisons read one
// flat key array instead of dereferencing the event pool — only lineage
// tie-breaks (equal timestamps in lineage mode) touch the pool for the
// actors. The pool itself stores just the two-word callback payload,
// recycled through a free list, so scheduling is allocation-free once the
// pool has grown to the simulation's peak queue depth.
type Kernel struct {
	now     Time
	seq     uint64
	heap    []int32   // 4-ary min-heap of pool slots, rooted at heapRoot
	keys    []heapKey // keys[i] is slot heap[i]'s ordering key
	rootAt  Time      // keys[heapRoot].at, cached; valid while the heap is non-empty
	pool    []event
	free    []int32 // recycled pool slots
	stopped bool
	fired   uint64
	lastAt  Time // timestamp of the last executed event (unlike now, never forced forward by RunUntil)

	batch []Batched // DrainAt/StepBatch scratch, reused across batches

	// Staged lane: bulk setup events (e.g. a harness's pre-drawn injection
	// schedule) live here as a flat (at, seq)-sorted array consumed front to
	// back, instead of inflating the heap with thousands of far-future
	// entries that every hot-path pop would sift across. Because staged
	// events are always setup events (scheduled before BeginLineageOrder),
	// comparing (at, seq) against the heap root reproduces the exact order
	// a single heap would produce in both sequence and lineage modes —
	// lineage only diverges from sequence comparison when both events are
	// runtime-scheduled.
	ladder    []ladderEvt
	ladderPos int

	// Lineage tie ordering (sharded execution; see BeginLineageOrder).
	lineage  bool
	setupSeq uint64 // highest seq scheduled before BeginLineageOrder
}

// NewKernel returns a kernel with the clock at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// EventsFired reports how many events have executed so far (useful for
// performance accounting in benchmarks).
func (k *Kernel) EventsFired() uint64 { return k.fired }

// heapLen reports the number of events in the heap (excluding padding).
func (k *Kernel) heapLen() int {
	if n := len(k.heap) - heapRoot; n > 0 {
		return n
	}
	return 0
}

// Pending reports the number of scheduled-but-unfired events.
func (k *Kernel) Pending() int { return k.heapLen() + len(k.ladder) - k.ladderPos }

// ladderEvt is one staged-lane event (see Kernel.StageActor).
type ladderEvt struct {
	at    Time
	seq   uint64
	actor Actor
}

// StageActor schedules a.Act() at absolute time at in the staged lane: a
// flat array the kernel keeps sorted by (time, schedule sequence) and merges
// with the heap at pop time. Use it for bulk setup schedules — thousands of
// pre-drawn future events that would otherwise deepen the heap every
// hot-path pop has to sift across. SealStage must be called after the last
// StageActor and before any event fires; both belong to the setup phase
// (before BeginLineageOrder / running), where firing order is defined by
// schedule sequence alone.
func (k *Kernel) StageActor(at Time, a Actor) {
	if at < k.now {
		panic("sim: event scheduled in the past")
	}
	k.seq++
	k.ladder = append(k.ladder, ladderEvt{at: at, seq: k.seq, actor: a})
}

// SealStage sorts the staged lane into firing order. Events staged after
// the previous seal (or reset) are sorted together with any not yet fired.
func (k *Kernel) SealStage() {
	lad := k.ladder[k.ladderPos:]
	sortLadder(lad)
}

// sortLadder sorts staged events by (at, seq) — a total order, since
// schedule sequences are unique — with a plain in-place pdq-style sort from
// the standard library, allocation-free.
func sortLadder(lad []ladderEvt) {
	slices.SortFunc(lad, func(a, b ladderEvt) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
}

// nextAt returns the timestamp of the earliest pending event and whether
// any event is pending, merging the heap root with the staged-lane head.
func (k *Kernel) nextAt() (Time, bool) {
	hasLad := k.ladderPos < len(k.ladder)
	if len(k.heap) > heapRoot {
		if hasLad && k.ladder[k.ladderPos].at < k.rootAt {
			return k.ladder[k.ladderPos].at, true
		}
		return k.rootAt, true
	}
	if hasLad {
		return k.ladder[k.ladderPos].at, true
	}
	return 0, false
}

// Lineaged is implemented by actors that carry their own event-history
// rank: the fire times of every past event of their causal chain (oldest
// first) plus a globally unique injection order. Kernels in lineage mode
// use it to break same-timestamp ties exactly as a single sequential
// kernel's schedule order would (see BeginLineageOrder).
type Lineaged interface {
	Actor
	// Lineage returns the chain of past fire times (oldest first) and the
	// setup order of the chain's injection event.
	Lineage() (hist []Time, inj uint64)
}

// tieBefore orders two same-timestamp events in lineage mode the way the
// equivalent sequential kernel would, identified by pool slot and schedule
// sequence. In a sequential kernel, same-time events fire in schedule
// order, and an event's schedule position is its scheduler's execution
// position — recursively, until the chains reach setup-scheduled events,
// which all precede every runtime-scheduled event and order among
// themselves by setup sequence. Comparing the actors' fire-time histories
// newest-first implements exactly that recursion, so the order of any two
// events is a function of event content alone — independent of which shard
// kernel hosts them, in what order cross-shard merges inserted them, and
// of the shard count itself. Slot-based (rather than heap-positional)
// operands let the lineage sifts carry entries in registers like the
// sequence-mode sifts; only this tie path touches the pool.
func (k *Kernel) tieBefore(slotA int32, qa uint64, slotB int32, qb uint64) bool {
	sa, sb := qa <= k.setupSeq, qb <= k.setupSeq
	if sa || sb {
		if sa != sb {
			// Setup events were all scheduled before any runtime event.
			return sa
		}
		// Both setup: local schedule order is the global setup order
		// restricted to this shard, which preserves relative order.
		return qa < qb
	}
	la, okA := k.pool[slotA].actor.(Lineaged)
	lb, okB := k.pool[slotB].actor.(Lineaged)
	if !okA || !okB {
		// Closures or unranked actors at runtime: schedule order is the
		// best available (deterministic, but only sequential-equivalent
		// for Lineaged chains).
		return qa < qb
	}
	ha, ia := la.Lineage()
	hb, ib := lb.Lineage()
	da, db := len(ha)-1, len(hb)-1
	for da >= 0 && db >= 0 {
		if ha[da] != hb[db] {
			return ha[da] < hb[db]
		}
		da--
		db--
	}
	if (da < 0) != (db < 0) {
		// The exhausted chain's next ancestor is its setup-scheduled
		// injection event, which precedes the other chain's runtime
		// ancestor at the same (tied) fire time.
		return da < 0
	}
	return ia < ib
}

// BeginLineageOrder switches the kernel to lineage tie ordering: events at
// equal timestamps compare by their actors' Lineage instead of schedule
// sequence. Call it after all setup events have been scheduled and before
// running; events already queued are treated as setup events. Sharded
// executions (ParallelExec) use this to make results independent of the
// shard count, not merely of goroutine interleaving.
func (k *Kernel) BeginLineageOrder() {
	k.lineage = true
	k.setupSeq = k.seq
}

// Reset returns the kernel to its just-constructed state while retaining
// the event pool's capacity, so a reused kernel schedules without heap
// allocations from the first event. It must not be called while Run is
// executing.
func (k *Kernel) Reset() {
	k.now, k.seq, k.rootAt, k.lastAt = 0, 0, 0, 0
	k.heap = k.heap[:0]
	k.keys = k.keys[:0]
	k.pool = k.pool[:0]
	k.free = k.free[:0]
	k.ladder = k.ladder[:0]
	k.ladderPos = 0
	k.stopped = false
	k.fired = 0
	k.lineage = false
	k.setupSeq = 0
}

// LastFired reports the timestamp of the most recently executed event.
// Unlike Now, it is never advanced by a RunUntil deadline, so after a
// windowed run it is the drain time a sequential Run would have returned.
func (k *Kernel) LastFired() Time { return k.lastAt }

// heap index arithmetic, rooted at heapRoot: children of i sit at
// 4i-8..4i-5 and the parent of c is c/4+2.

// siftUp restores heap order after appending at position i. The sequence
// comparison is inlined here (a schedule sequence strictly orders every
// same-timestamp pair), so the hot path runs branch-light over the flat
// key array; lineage mode routes through the comparator-based variant.
func (k *Kernel) siftUp(i int) {
	if k.lineage {
		k.siftUpLineage(i)
		return
	}
	h, ks := k.heap, k.keys
	slot, key := h[i], ks[i]
	for i > heapRoot {
		p := i/4 + 2
		pk := ks[p]
		if pk.at < key.at || (pk.at == key.at && pk.seq < key.seq) {
			break
		}
		h[i], ks[i] = h[p], pk
		i = p
	}
	h[i], ks[i] = slot, key
}

// siftUpLineage is siftUp with lineage tie ordering: the timestamp
// comparison stays inlined over the flat key array, and only an exact
// timestamp tie pays the tieBefore call into the pool.
func (k *Kernel) siftUpLineage(i int) {
	h, ks := k.heap, k.keys
	slot, key := h[i], ks[i]
	for i > heapRoot {
		p := i/4 + 2
		pk := ks[p]
		if pk.at < key.at || (pk.at == key.at && k.tieBefore(h[p], pk.seq, slot, key.seq)) {
			break
		}
		h[i], ks[i] = h[p], pk
		i = p
	}
	h[i], ks[i] = slot, key
}

// sinkRoot refills the root hole left by pop with the carried entry
// (formerly the heap's last element) using the bottom-up strategy: sink
// the hole to a leaf along the min-child path with no carried-key
// compares, then sift the carried entry back up from the leaf. Because
// the carried entry was a leaf, it nearly always belongs at the bottom,
// so the up-pass exits after one compare — saving the per-level
// carried-key compare a top-down sift pays on the way down. The final
// heap arrangement can differ from a top-down sift's, but pop order is
// the (timestamp, sequence) total order either way.
func (k *Kernel) sinkRoot(slot int32, key heapKey) {
	if k.lineage {
		k.sinkRootLineage(slot, key)
		return
	}
	h, ks := k.heap, k.keys
	n := len(h)
	i := heapRoot
	for {
		c := 4*i - 8
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min, minK := c, ks[c]
		for j := c + 1; j < end; j++ {
			jk := ks[j]
			if jk.at < minK.at || (jk.at == minK.at && jk.seq < minK.seq) {
				min, minK = j, jk
			}
		}
		h[i], ks[i] = h[min], minK
		i = min
	}
	for i > heapRoot {
		p := i/4 + 2
		pk := ks[p]
		if pk.at < key.at || (pk.at == key.at && pk.seq < key.seq) {
			break
		}
		h[i], ks[i] = h[p], pk
		i = p
	}
	h[i], ks[i] = slot, key
}

// sinkRootLineage is sinkRoot's bottom-up refill under lineage tie
// ordering: min-child selection and the leaf-to-root sift both compare
// timestamps inline and fall into tieBefore only on exact ties. The
// bottom-up argument carries over unchanged — pop order is whatever total
// order the comparator defines, regardless of internal arrangement, and
// tieBefore is a strict total order on same-timestamp events.
func (k *Kernel) sinkRootLineage(slot int32, key heapKey) {
	h, ks := k.heap, k.keys
	n := len(h)
	i := heapRoot
	for {
		c := 4*i - 8
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min, minK := c, ks[c]
		for j := c + 1; j < end; j++ {
			jk := ks[j]
			if jk.at < minK.at || (jk.at == minK.at && k.tieBefore(h[j], jk.seq, h[min], minK.seq)) {
				min, minK = j, jk
			}
		}
		h[i], ks[i] = h[min], minK
		i = min
	}
	for i > heapRoot {
		p := i/4 + 2
		pk := ks[p]
		if pk.at < key.at || (pk.at == key.at && k.tieBefore(h[p], pk.seq, slot, key.seq)) {
			break
		}
		h[i], ks[i] = h[p], pk
		i = p
	}
	h[i], ks[i] = slot, key
}

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it is always a modeling bug.
func (k *Kernel) At(at Time, fn Handler) {
	k.push(at, event{fn: fn})
}

// AtActor schedules a.Act() to run at absolute time at. Unlike At, no
// closure is involved: the two-word interface value is stored in the event
// pool directly, so the call is allocation-free once the pool has grown.
func (k *Kernel) AtActor(at Time, a Actor) {
	k.push(at, event{actor: a})
}

func (k *Kernel) push(at Time, e event) {
	if at < k.now {
		panic("sim: event scheduled in the past")
	}
	k.seq++
	var idx int32
	if n := len(k.free) - 1; n >= 0 {
		idx = k.free[n]
		k.free = k.free[:n]
	} else {
		k.pool = append(k.pool, event{})
		idx = int32(len(k.pool) - 1)
	}
	k.pool[idx] = e
	if len(k.heap) == 0 {
		// Reserve the root padding (see heapRoot).
		k.heap = append(k.heap, 0, 0, 0)
		k.keys = append(k.keys, heapKey{}, heapKey{}, heapKey{})
	}
	k.heap = append(k.heap, idx)
	k.keys = append(k.keys, heapKey{at: at, seq: k.seq})
	k.siftUp(len(k.heap) - 1)
	k.rootAt = k.keys[heapRoot].at
}

// After schedules fn to run delay picoseconds from now.
func (k *Kernel) After(delay Time, fn Handler) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	k.At(k.now+delay, fn)
}

// AfterActor schedules a.Act() delay picoseconds from now (see AtActor).
func (k *Kernel) AfterActor(delay Time, a Actor) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	k.AtActor(k.now+delay, a)
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// pop removes the earliest pending event — merging the heap root with the
// staged-lane head by (timestamp, schedule sequence) — and returns its
// callback payload, advancing the clock to its timestamp. It must not be
// called with no events pending.
func (k *Kernel) pop() event {
	if k.ladderPos < len(k.ladder) {
		le := &k.ladder[k.ladderPos]
		if len(k.heap) <= heapRoot || le.at < k.rootAt || (le.at == k.rootAt && le.seq < k.keys[heapRoot].seq) {
			k.ladderPos++
			k.now = le.at
			k.lastAt = le.at
			k.fired++
			a := le.actor
			le.actor = nil
			if k.ladderPos == len(k.ladder) {
				k.ladder = k.ladder[:0]
				k.ladderPos = 0
			}
			return event{actor: a}
		}
	}
	slot := k.heap[heapRoot]
	at := k.keys[heapRoot].at
	e := k.pool[slot]
	// Drop the references so the GC can collect closures and actors.
	k.pool[slot] = event{}
	k.free = append(k.free, slot)
	last := len(k.heap) - 1
	lslot, lkey := k.heap[last], k.keys[last]
	k.heap = k.heap[:last]
	k.keys = k.keys[:last]
	if last > heapRoot {
		k.sinkRoot(lslot, lkey)
		k.rootAt = k.keys[heapRoot].at
	}
	k.now = at
	k.lastAt = at
	k.fired++
	return e
}

// step pops and fires the earliest event. It must not be called on an
// empty queue.
func (k *Kernel) step() {
	e := k.pop()
	if e.fn != nil {
		e.fn()
	} else {
		e.actor.Act()
	}
}

// DrainAt pops every pending event sharing the earliest timestamp, in the
// exact order repeated step() calls would fire them, appends them to buf
// without executing anything, and advances the clock to that timestamp.
// The returned slice aliases buf's storage (pass buf[:0] to reuse a batch
// buffer across calls). It returns buf unchanged when no events are
// pending.
//
// Events scheduled *while a drained batch executes* at that same timestamp
// are not part of the batch; they form the next one — which StepBatch (and
// the Run/RunUntil loops) pick up by re-draining before moving the clock.
// Under sequence ordering this reproduces step() order exactly: a newly
// scheduled same-time event has a higher sequence than everything already
// drained, so step() would fire it last too. Under lineage ordering it is
// equivalent for every workload that schedules strictly forward in time
// (all machine latencies are positive); only a zero-delay self-schedule
// racing an undrained lineage peer could observe the batch boundary.
func (k *Kernel) DrainAt(buf []Batched) []Batched {
	t, ok := k.nextAt()
	if !ok {
		return buf
	}
	for {
		e := k.pop()
		buf = append(buf, Batched{Fn: e.fn, Actor: e.actor})
		if at, ok := k.nextAt(); !ok || at != t {
			return buf
		}
	}
}

// Batched is one event of a timestamp batch returned by DrainAt: exactly
// one of Fn or Actor is set.
type Batched struct {
	Fn    Handler
	Actor Actor
}

// Fire executes the batched event.
func (b Batched) Fire() {
	if b.Fn != nil {
		b.Fn()
	} else {
		b.Actor.Act()
	}
}

// StepBatch fires every pending event at the earliest timestamp — including
// events those firings schedule back at the same timestamp — and returns
// that timestamp with ok=true, or ok=false if nothing was pending. It is
// equivalent to calling step() until the root timestamp changes (see
// DrainAt for the exact ordering contract), while paying the batch's
// bookkeeping once instead of per event.
func (k *Kernel) StepBatch() (Time, bool) {
	t, ok := k.nextAt()
	if !ok {
		return 0, false
	}
	k.runBatchesAt(t)
	return t, true
}

// runBatchesAt drains and fires timestamp-t batches until no events at t
// remain (an executing batch may schedule follow-up work at t).
func (k *Kernel) runBatchesAt(t Time) {
	for at, ok := k.nextAt(); ok && at == t; at, ok = k.nextAt() {
		b := k.DrainAt(k.batch[:0])
		for i := range b {
			if b[i].Fn != nil {
				b[i].Fn()
			} else {
				b[i].Actor.Act()
			}
			b[i] = Batched{}
		}
		k.batch = b[:0]
	}
}

// Run executes events until the queue drains or Stop is called. It returns
// the time of the last executed event.
func (k *Kernel) Run() Time {
	k.stopped = false
	for k.Pending() > 0 && !k.stopped {
		k.step()
	}
	return k.now
}

// RunUntilBatch executes events with timestamps <= deadline like RunUntil,
// but fires each timestamp's events as drained batches (see StepBatch /
// DrainAt for the ordering contract): the window loop pays the peek and
// deadline check once per timestamp instead of once per event. ParallelExec
// windows run shard kernels through this.
func (k *Kernel) RunUntilBatch(deadline Time) bool {
	k.stopped = false
	for !k.stopped {
		at, ok := k.nextAt()
		if !ok {
			break
		}
		if at > deadline {
			k.now = deadline
			return false
		}
		k.runBatchesAt(at)
	}
	if k.now < deadline {
		k.now = deadline
	}
	return k.Pending() == 0
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. It returns true if the queue drained
// before the deadline. The peek reads the cached root timestamp, so the
// hot loop touches only the Kernel header — no heap/pool indirection.
func (k *Kernel) RunUntil(deadline Time) bool {
	k.stopped = false
	for !k.stopped {
		at, ok := k.nextAt()
		if !ok {
			break
		}
		if at > deadline {
			k.now = deadline
			return false
		}
		k.step()
	}
	if k.now < deadline {
		k.now = deadline
	}
	return k.Pending() == 0
}
