package sim

import (
	"testing"
	"testing/quick"
)

func TestClockPeriod(t *testing.T) {
	c := NewClock(2800)
	if got := c.Period(); got != 357*Picosecond {
		t.Fatalf("2.8GHz period = %d ps, want 357", got)
	}
	if got := c.Cycles(1000); got != 357000 {
		t.Fatalf("1000 cycles = %d ps, want 357000", got)
	}
	if got := c.ToCycles(714 * Picosecond); got != 2 {
		t.Fatalf("ToCycles(714ps) = %d, want 2", got)
	}
}

func TestClockRounding(t *testing.T) {
	// 1 GHz divides evenly; 3 GHz rounds 333.3 -> 333.
	if got := NewClock(1000).Period(); got != 1000 {
		t.Fatalf("1GHz period = %d, want 1000", got)
	}
	if got := NewClock(3000).Period(); got != 333 {
		t.Fatalf("3GHz period = %d, want 333", got)
	}
}

func TestClockInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	end := k.Run()
	if end != 30 {
		t.Fatalf("final time %d, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
}

func TestKernelTieBreakFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	hits := 0
	k.At(10, func() {
		hits++
		k.After(5, func() {
			hits++
			if k.Now() != 15 {
				t.Errorf("nested event at %d, want 15", k.Now())
			}
		})
	})
	k.Run()
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
}

func TestKernelPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(1, func() { ran++; k.Stop() })
	k.At(2, func() { ran++ })
	k.Run()
	if ran != 1 {
		t.Fatalf("Stop did not halt the kernel: ran=%d", ran)
	}
	// Run again resumes the remaining event.
	k.Run()
	if ran != 2 {
		t.Fatalf("resume after Stop: ran=%d, want 2", ran)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(10, func() { ran++ })
	k.At(20, func() { ran++ })
	if drained := k.RunUntil(15); drained {
		t.Fatal("RunUntil(15) reported drained with an event at 20 pending")
	}
	if ran != 1 || k.Now() != 15 {
		t.Fatalf("ran=%d now=%d, want 1,15", ran, k.Now())
	}
	if drained := k.RunUntil(100); !drained {
		t.Fatal("RunUntil(100) should drain")
	}
	if ran != 2 {
		t.Fatalf("ran=%d, want 2", ran)
	}
}

func TestKernelEventsFired(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 100; i++ {
		k.At(Time(i), func() {})
	}
	k.Run()
	if k.EventsFired() != 100 {
		t.Fatalf("EventsFired = %d, want 100", k.EventsFired())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 42 and 43 collided %d times in 1000 draws", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	f := func(n uint8) bool {
		m := int(n%31) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(11)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestTimeString(t *testing.T) {
	if s := (1500 * Picosecond).String(); s != "1.500ns" {
		t.Fatalf("String = %q", s)
	}
}
