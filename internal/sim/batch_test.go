package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// chainTestActor is a packet-like actor for the batch-equivalence property
// test: each firing logs (name, clock), appends the fire time to its
// lineage history, and reschedules itself after the next pre-drawn
// strictly positive delay — the forward-scheduling shape the DrainAt
// contract is stated for.
type chainTestActor struct {
	log    *[]string
	k      *Kernel
	name   string
	delays []Time
	hist   []Time
	inj    uint64
}

func (c *chainTestActor) Act() {
	c.hist = append(c.hist, c.k.Now())
	*c.log = append(*c.log, fmt.Sprintf("%s@%d", c.name, c.k.Now()))
	if len(c.delays) > 0 {
		d := c.delays[0]
		c.delays = c.delays[1:]
		c.k.AfterActor(d, c)
	}
}

func (c *chainTestActor) Lineage() ([]Time, uint64) { return c.hist, c.inj }

// buildBatchWorkload schedules an identical randomized workload into k:
// many actors starting at colliding times (small time range), each
// chaining through random positive delays. Half the actors go through the
// staged lane, half through the heap, so the pop-time ladder merge is
// exercised; lineage mode is switched on after setup when asked.
func buildBatchWorkload(k *Kernel, log *[]string, seed uint64, lineage bool) {
	rng := NewRand(seed)
	for i := 0; i < 64; i++ {
		a := &chainTestActor{log: log, k: k, name: fmt.Sprintf("a%d", i), inj: uint64(i)}
		hops := rng.Intn(4)
		for h := 0; h < hops; h++ {
			a.delays = append(a.delays, Time(1+rng.Intn(5)))
		}
		at := Time(rng.Intn(40))
		if i%2 == 0 {
			k.StageActor(at, a)
		} else {
			k.AtActor(at, a)
		}
	}
	k.SealStage()
	if lineage {
		k.BeginLineageOrder()
	}
}

// TestStepBatchMatchesStepOrder is the batch-equivalence property: for the
// same workload, firing events through StepBatch (timestamp batches via
// DrainAt) and through the plain one-event step loop (Run) produces the
// identical (time, order) firing sequence — under sequence tie ordering
// and under lineage tie ordering, and likewise when the run is chopped
// into RunUntilBatch windows the way ParallelExec drives shard kernels.
func TestStepBatchMatchesStepOrder(t *testing.T) {
	for _, lineage := range []bool{false, true} {
		name := "seq"
		if lineage {
			name = "lineage"
		}
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 8; seed++ {
				var stepLog []string
				ks := NewKernel()
				buildBatchWorkload(ks, &stepLog, seed, lineage)
				stepEnd := ks.Run()

				var batchLog []string
				kb := NewKernel()
				buildBatchWorkload(kb, &batchLog, seed, lineage)
				var batchEnd Time
				for {
					at, ok := kb.StepBatch()
					if !ok {
						break
					}
					batchEnd = at
				}
				if !reflect.DeepEqual(stepLog, batchLog) {
					t.Fatalf("seed %d: StepBatch order diverges from step order\nstep:  %v\nbatch: %v",
						seed, stepLog, batchLog)
				}
				if stepEnd != batchEnd {
					t.Fatalf("seed %d: last timestamp %d via batches, %d via steps", seed, batchEnd, stepEnd)
				}

				var winLog []string
				kw := NewKernel()
				buildBatchWorkload(kw, &winLog, seed, lineage)
				for dl := Time(7); !kw.RunUntilBatch(dl); dl += 7 {
				}
				if !reflect.DeepEqual(stepLog, winLog) {
					t.Fatalf("seed %d: windowed RunUntilBatch order diverges from step order\nstep:   %v\nwindow: %v",
						seed, stepLog, winLog)
				}
			}
		})
	}
}

type countActor struct{ n int }

func (a *countActor) Act() { a.n++ }

// TestStepBatchZeroAllocsWhenWarm pins the batch path's steady state: once
// the kernel's batch buffer, heap and event pool have grown, draining and
// firing a timestamp batch (including the staged-lane merge) allocates
// nothing — the property that lets ParallelExec windows run through
// RunUntilBatch without the per-window garbage the outbox path used to
// produce.
func TestStepBatchZeroAllocsWhenWarm(t *testing.T) {
	k := NewKernel()
	actors := make([]countActor, 8)
	fire := func() {
		at := k.Now() + 1
		for i := range actors {
			if i%2 == 0 {
				k.StageActor(at, &actors[i])
			} else {
				k.AtActor(at, &actors[i])
			}
		}
		k.SealStage()
		k.StepBatch()
	}
	for i := 0; i < 16; i++ {
		fire()
	}
	if n := testing.AllocsPerRun(100, fire); n != 0 {
		t.Fatalf("warm StepBatch allocates %.1f times/op, want 0", n)
	}
}

// TestDrainAtBatchBoundaries pins DrainAt's contract details directly: it
// returns every event sharing the earliest timestamp in firing order
// without executing them, advances the clock to that timestamp, reuses the
// caller's buffer, and leaves later events queued.
func TestDrainAtBatchBoundaries(t *testing.T) {
	k := NewKernel()
	var log []string
	tag := func(s string) Handler { return func() { log = append(log, s) } }
	k.At(20, tag("c"))
	k.At(10, tag("a"))
	k.At(10, tag("b"))
	buf := make([]Batched, 0, 4)
	got := k.DrainAt(buf[:0])
	if len(got) != 2 {
		t.Fatalf("DrainAt returned %d events, want the 2 at t=10", len(got))
	}
	if k.Now() != 10 {
		t.Fatalf("clock %d after drain, want 10", k.Now())
	}
	if len(log) != 0 {
		t.Fatalf("DrainAt executed events: %v", log)
	}
	if k.Pending() != 1 {
		t.Fatalf("%d events pending after drain, want the 1 at t=20", k.Pending())
	}
	for _, b := range got {
		b.Fire()
	}
	if !reflect.DeepEqual(log, []string{"a", "b"}) {
		t.Fatalf("batch fired %v, want [a b]", log)
	}
	if got2 := k.DrainAt(got[:0]); len(got2) != 1 || &got2[0] != &got[0] {
		t.Fatalf("second drain did not reuse the caller's buffer")
	}
}
