package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// logActor records its firing in a per-kernel log and optionally defers a
// follow-up event to another shard's outbox, honoring the lookahead.
type logActor struct {
	k    *Kernel
	log  *[]string
	name string
	out  *Outbox
	at   Time // arrival time for the deferred follow-up
	next *logActor
}

func (a *logActor) Act() {
	*a.log = append(*a.log, fmt.Sprintf("%s@%d", a.name, a.k.Now()))
	if a.out != nil {
		a.out.Defer(a.at, a.next)
	}
}

func TestParallelExecWindowsAndMergeOrder(t *testing.T) {
	const look = 10
	k0, k1 := NewKernel(), NewKernel()
	x := NewParallelExec([]*Kernel{k0, k1}, look)

	var log0, log1 []string
	// Shard 0 fires a@5, which defers c to shard 1 at t=15 (= 5 + look);
	// shard 1 fires b@5, which defers d to shard 0 at t=15. Both shards
	// also defer same-time arrivals to shard 1 at t=25 from different
	// sources, exercising the (time, source shard, emission order) merge.
	c := &logActor{k: k1, log: &log1, name: "c"}
	d := &logActor{k: k0, log: &log0, name: "d"}
	a := &logActor{k: k0, log: &log0, name: "a", out: x.Outbox(0, 1), at: 15, next: c}
	b := &logActor{k: k1, log: &log1, name: "b", out: x.Outbox(1, 0), at: 15, next: d}
	k0.AtActor(5, a)
	k1.AtActor(5, b)

	tie0 := &logActor{k: k1, log: &log1, name: "from0"}
	tie1 := &logActor{k: k1, log: &log1, name: "from1"}
	f0 := &logActor{k: k0, log: &log0, name: "f0", out: x.Outbox(0, 1), at: 25, next: tie0}
	f1 := &logActor{k: k1, log: &log1, name: "f1", out: x.Outbox(1, 1), at: 25, next: tie1}
	k0.AtActor(6, f0)
	k1.AtActor(6, f1)

	end := x.Run()
	if end != 25 {
		t.Fatalf("last event at %d, want 25", end)
	}
	want0 := []string{"a@5", "f0@6", "d@15"}
	// Both tie arrivals land at t=25 on shard 1; source shard 0 merges
	// before source shard 1.
	want1 := []string{"b@5", "f1@6", "c@15", "from0@25", "from1@25"}
	if !reflect.DeepEqual(log0, want0) {
		t.Fatalf("shard 0 log = %v, want %v", log0, want0)
	}
	if !reflect.DeepEqual(log1, want1) {
		t.Fatalf("shard 1 log = %v, want %v", log1, want1)
	}
}

// chainActor bounces between two shards n times through outboxes, so a
// multi-window run exercises repeated barriers.
type chainActor struct {
	x     *ParallelExec
	ks    []*Kernel
	shard int
	left  int
	look  Time
	fired *[]Time
}

func (c *chainActor) Act() {
	*c.fired = append(*c.fired, c.ks[c.shard].Now())
	if c.left == 0 {
		return
	}
	dst := 1 - c.shard
	next := &chainActor{x: c.x, ks: c.ks, shard: dst, left: c.left - 1, look: c.look, fired: c.fired}
	c.x.Outbox(c.shard, dst).Defer(c.ks[c.shard].Now()+c.look, next)
}

func TestParallelExecMultiWindowDrain(t *testing.T) {
	const look = 7
	ks := []*Kernel{NewKernel(), NewKernel()}
	x := NewParallelExec(ks, look)
	var fired []Time
	start := &chainActor{x: x, ks: ks, shard: 0, left: 5, look: look, fired: &fired}
	ks[0].AtActor(3, start)
	end := x.Run()
	want := []Time{3, 10, 17, 24, 31, 38}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	if end != 38 {
		t.Fatalf("Run returned %d, want 38", end)
	}
}

// lineagedStub is a Lineaged actor with a crafted history.
type lineagedStub struct {
	log  *[]string
	name string
	hist []Time
	inj  uint64
}

func (s *lineagedStub) Act()                      { *s.log = append(*s.log, s.name) }
func (s *lineagedStub) Lineage() ([]Time, uint64) { return s.hist, s.inj }

func TestKernelLineageTieOrder(t *testing.T) {
	var log []string
	mk := func(name string, hist []Time, inj uint64) *lineagedStub {
		return &lineagedStub{log: &log, name: name, hist: hist, inj: inj}
	}
	k := NewKernel()
	// One setup event at the tied time: must fire before every runtime
	// event regardless of schedule order below.
	k.At(50, func() { log = append(log, "setup") })
	k.BeginLineageOrder()

	// All at t=50, scheduled in an order that disagrees with lineage:
	//   histB < histA on the most recent ancestor (40 < 45);
	//   histC equals histB until B's chain exhausts -> B first;
	//   histD ties with C everywhere -> injection order decides.
	k.AtActor(50, mk("a", []Time{10, 45}, 3))
	k.AtActor(50, mk("d", []Time{5, 10, 40}, 9))
	k.AtActor(50, mk("c", []Time{5, 10, 40}, 7))
	k.AtActor(50, mk("b", []Time{10, 40}, 8))
	k.Run()
	want := []string{"setup", "b", "c", "d", "a"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("lineage order = %v, want %v", log, want)
	}
}

func TestKernelResetReplaysIdentically(t *testing.T) {
	k := NewKernel()
	run := func() []Time {
		var fired []Time
		for _, at := range []Time{30, 10, 20, 10, 40} {
			at := at
			k.At(at, func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		return fired
	}
	first := run()
	k.Reset()
	if k.Now() != 0 || k.Pending() != 0 || k.EventsFired() != 0 || k.LastFired() != 0 {
		t.Fatal("Reset did not clear kernel state")
	}
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replay after Reset differs: %v vs %v", first, second)
	}
}
