package sim

import "testing"

type recActor struct {
	log *[]int
	id  int
}

func (a *recActor) Act() { *a.log = append(*a.log, a.id) }

// TestActorAndClosureEventsInterleaveBySeq pins the determinism contract
// of the actor variant: AtActor events order against At closures purely by
// (time, scheduling sequence), exactly as two closures would.
func TestActorAndClosureEventsInterleaveBySeq(t *testing.T) {
	k := NewKernel()
	var log []int
	k.At(10, func() { log = append(log, 1) })
	k.AtActor(10, &recActor{log: &log, id: 2})
	k.At(5, func() { log = append(log, 0) })
	k.AtActor(10, &recActor{log: &log, id: 3})
	k.Run()
	want := []int{0, 1, 2, 3}
	for i, v := range want {
		if i >= len(log) || log[i] != v {
			t.Fatalf("fired order %v, want %v", log, want)
		}
	}
}

func TestAtActorZeroAllocsWhenWarm(t *testing.T) {
	k := NewKernel()
	a := &recActor{log: new([]int)}
	fire := func() {
		k.AtActor(k.Now(), a)
		k.Run()
	}
	for i := 0; i < 16; i++ {
		fire()
	}
	// The actor is a live pointer and the pool is warm: scheduling it must
	// not allocate. Tolerate sub-1 averages for the log slice's amortized
	// growth inside Act.
	if n := testing.AllocsPerRun(100, fire); n > 0.5 {
		t.Fatalf("AtActor allocates %.1f times/op when warm, want 0", n)
	}
}
