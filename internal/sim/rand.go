package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator (splitmix64
// seeded xorshift*). Each simulated component owns its own Rand so that
// adding or removing components never perturbs the random streams of the
// others — a property the stdlib shared source does not give us.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded from seed via splitmix64 so that nearby
// integer seeds yield well-separated streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed resets r to the stream NewRand(seed) would produce, in place —
// reusable components (a reset machine, a harness's per-node generator)
// reseed instead of allocating a fresh Rand.
func (r *Rand) Reseed(seed uint64) {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
