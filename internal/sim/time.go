// Package sim provides a small, deterministic discrete-event simulation
// kernel used by every timing model in this repository.
//
// Time is kept as an integer number of picoseconds so that the 2.8 GHz core
// clock of the Anton 3 ASIC (357 ps/cycle), the 29 Gb/s SERDES bit time
// (34.48 ps/bit) and cable flight times can all be expressed without floating
// point drift. Events scheduled for the same instant fire in the order they
// were scheduled, which makes every simulation in this repository
// reproducible run-to-run.
package sim

import "fmt"

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common duration units, all in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
)

// Nanoseconds reports t as a float64 number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String renders the time in nanoseconds with picosecond resolution.
func (t Time) String() string { return fmt.Sprintf("%.3fns", t.Nanoseconds()) }

// Clock converts between cycles of a fixed-frequency clock and Time.
// The zero Clock is invalid; use NewClock.
type Clock struct {
	psPerCycle Time
	mhz        int64
}

// NewClock returns a clock running at the given frequency in MHz.
// The Anton 3 core clock is NewClock(2800): 2.8 GHz, 357 ps per cycle
// (rounded to the nearest picosecond; the 0.04% rounding error is far below
// every latency the paper reports).
func NewClock(mhz int64) Clock {
	if mhz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	return Clock{psPerCycle: Time((1000*1000 + mhz/2) / mhz), mhz: mhz}
}

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.psPerCycle }

// Period returns the duration of one cycle.
func (c Clock) Period() Time { return c.psPerCycle }

// MHz reports the configured frequency.
func (c Clock) MHz() int64 { return c.mhz }

// ToCycles reports how many full cycles fit in d.
func (c Clock) ToCycles(d Time) int64 { return int64(d / c.psPerCycle) }
