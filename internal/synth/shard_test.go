package synth

import (
	"reflect"
	"testing"

	"anton3/internal/route"
	"anton3/internal/topo"
)

// TestNetsweepShardCountInvariance is the tier-1 guarantee behind the
// -shards flag: a netsweep table must be byte-identical at every shard
// count. It exercises all three policies (including the adaptive one,
// whose per-hop decisions read live channel backlog) and an adversarial
// pattern at a saturating load, where same-picosecond channel contention
// ties — the case lineage ordering exists for — occur by the dozen.
func TestNetsweepShardCountInvariance(t *testing.T) {
	shape := topo.Shape{X: 4, Y: 4, Z: 4}
	pols := route.Policies()
	// Transpose matters: its same-node packets consume no routing draws,
	// the other stream-compatibility edge the pre-draw must reproduce.
	pats := []Pattern{Uniform(), Tornado(), Transpose()}
	loads := []float64{1, 3}
	packets, warmup := 12, 4
	if testing.Short() {
		pats = pats[1:]
		loads = loads[1:]
	}
	for _, pat := range pats {
		ref := Sweep(shape, pols, pat, loads, packets, warmup, 77, 1)
		refText := ref.Render()
		for _, shards := range []int{2, 4} {
			got := Sweep(shape, pols, pat, loads, packets, warmup, 77, shards)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("pattern %s: sweep at %d shards differs from 1 shard:\n%s\nvs\n%s",
					pat.Name, shards, got.Render(), refText)
			}
			if got.Render() != refText {
				t.Fatalf("pattern %s: render at %d shards not byte-identical", pat.Name, shards)
			}
		}
	}
}

// TestHarnessReuseMatchesFresh checks the machine-reuse path: points run
// on one long-lived harness must equal one-shot runs on private machines,
// including when seeds and loads change between points.
func TestHarnessReuseMatchesFresh(t *testing.T) {
	shape := topo.Shape{X: 2, Y: 2, Z: 4}
	pol := route.Random()
	h := NewHarness(shape, pol, 1)
	cells := []struct {
		load float64
		seed uint64
	}{{1, 5}, {4, 6}, {1, 5}, {2, 9}}
	for _, cell := range cells {
		reused := h.RunPoint(Uniform(), cell.load, 10, 3, cell.seed)
		fresh := Run(RunConfig{
			Shape: shape, Policy: pol, Pattern: Uniform(),
			Load: cell.load, Packets: 10, Warmup: 3, Seed: cell.seed,
		})
		if reused != fresh {
			t.Fatalf("load %.1f seed %d: reused harness %+v, fresh machine %+v",
				cell.load, cell.seed, reused, fresh)
		}
	}
}

// TestShardedNetsweepStress drives the window/outbox protocol hard —
// uneven shard counts, saturating adversarial load, several seeds — and
// checks every result against the sequential run. Under -race this is the
// regression test for the barrier protocol's happens-before edges.
func TestShardedNetsweepStress(t *testing.T) {
	shape := topo.Shape{X: 4, Y: 4, Z: 4}
	shardCounts := []int{2, 3, 5, 8}
	seeds := []uint64{1, 42}
	if testing.Short() {
		shardCounts = []int{3, 8}
		seeds = seeds[:1]
	}
	pol := route.Random()
	for _, seed := range seeds {
		ref := Run(RunConfig{
			Shape: shape, Policy: pol, Pattern: Tornado(),
			Load: 3, Packets: 16, Warmup: 4, Seed: seed,
		})
		for _, shards := range shardCounts {
			h := NewHarness(shape, pol, shards)
			// Two points per harness so reuse and sharding compose.
			for i := 0; i < 2; i++ {
				if got := h.RunPoint(Tornado(), 3, 16, 4, seed); got != ref {
					t.Fatalf("seed %d shards %d: %+v, want %+v", seed, shards, got, ref)
				}
			}
		}
	}
}
