package synth

import (
	"math"
	"math/bits"
	"slices"

	"anton3/internal/machine"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// Schedule is the pre-drawn offered process of one measurement point: for
// every injection slot (flat-indexed node-major, node*total+k) the intended
// injection instant, the destination, and the machine's pre-drawn routing
// decision. Both network harnesses — the open-loop netsweep rig and the
// closed-loop saturation rig — draw their traffic through one Schedule, so
// a given (pattern, load, seed) cell offers byte-identical packets to both,
// and the pre-draw keeps every random choice a function of the seed alone
// (packet.PreRouted): results cannot depend on worker counts, machine
// reuse, or the shard count.
type Schedule struct {
	Total  int // packets per node, warmup included
	Times  []sim.Time
	Dsts   []int32
	Orders []topo.DimOrder
	keys   []uint64
	prng   sim.Rand
}

// grow resizes a slice to n elements, reusing capacity.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Draw fills the schedule for one point — total packets per node offered
// at mean inter-arrival meanGap (picoseconds, Poisson) under pattern pat —
// and consumes m's routing pre-draw for every inter-node packet. It
// returns the last intended injection instant across all nodes (the
// realized offered horizon).
//
// The destination/gap streams are per node (seed ^ (i+1)*golden), exactly
// the scheme the netsweep harness has always used. The routing pre-draw
// replays the order a sequential run's injections would fire in — a stable
// sort of the schedule by time over the node-major flat index — so the
// machine rng stream, and therefore every route, is byte-identical to a
// run that drew at Send time. Same-node packets never reach Send's draw
// (the on-chip shortcut returns first), so they are skipped here too.
func (s *Schedule) Draw(m *machine.Machine, shape topo.Shape, pat Pattern, meanGap float64, total int, seed uint64) sim.Time {
	nodes := shape.Nodes()
	flatN := nodes * total
	s.Total = total
	s.Times = grow(s.Times, flatN)
	s.Dsts = grow(s.Dsts, flatN)
	s.Orders = grow(s.Orders, flatN)
	s.keys = grow(s.keys, flatN)

	rng := &s.prng
	var end sim.Time
	for i := 0; i < nodes; i++ {
		src := shape.CoordOf(i)
		rng.Reseed(seed ^ uint64(i+1)*0x9e3779b97f4a7c15)
		var t sim.Time
		for k := 0; k < total; k++ {
			gap := sim.Time(meanGap * -math.Log(1-rng.Float64()))
			if gap < 1 {
				gap = 1
			}
			t += gap
			flat := i*total + k
			s.Times[flat] = t
			s.Dsts[flat] = int32(shape.Index(pat.Dest(shape, src, rng)))
		}
		if t > end {
			end = t
		}
	}

	// Pre-draw the routing decisions in sequential injection-firing order:
	// stable sort by time over the node-major flat index — the kernel's
	// (at, seq) order for setup-scheduled injection events.
	shift := uint(bits.Len(uint(flatN - 1)))
	for flat := range s.keys {
		t := uint64(s.Times[flat])
		if t >= 1<<(63-shift) {
			panic("synth: injection time overflows the sort key")
		}
		s.keys[flat] = t<<shift | uint64(flat)
	}
	slices.Sort(s.keys)
	mask := uint64(1)<<shift - 1
	for _, key := range s.keys {
		flat := key & mask
		if int(s.Dsts[flat]) == int(flat)/total {
			continue
		}
		// The tie draw is discarded — Position packets derive theirs from
		// the atom ID — but DrawRoute still consumed it from the stream,
		// exactly as Send would have.
		s.Orders[flat], _ = m.DrawRoute()
	}
	return end
}
