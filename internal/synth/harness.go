package synth

import (
	"fmt"
	"sort"
	"strings"

	"anton3/internal/machine"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/telemetry"
	"anton3/internal/topo"
	"anton3/internal/trace"
)

// RefPacketBits is the wire size of the standard 24-byte counted-write
// packet (two 96-bit flits), the unit the offered-load normalization is
// expressed in.
const RefPacketBits = 192

// RunConfig parameterizes one timed network-only measurement: one shape,
// one policy, one pattern, one offered load.
type RunConfig struct {
	Shape   topo.Shape
	Policy  route.Policy
	Pattern Pattern
	// Load is the offered injection rate per node, normalized to one
	// channel slice's reference-packet rate: at Load 1.0 every node
	// injects, on average, one 192-bit packet per channel-slice
	// serialization interval. Uniform traffic on the 128-node machine
	// saturates around 3 in these units (12 outbound slices per node /
	// ~4 average hops).
	Load float64
	// Packets is the measured packet count per node; Warmup packets
	// precede them, excluded from the statistics.
	Packets int
	Warmup  int
	Seed    uint64
	// Shards runs the machine sharded across that many kernels (see
	// machine.Config.Shards); 0 or 1 is the classic sequential run. The
	// harness pre-routes every packet and runs shard kernels in lineage
	// order, so output is byte-identical at every shard count.
	Shards int
}

// Point is the measured outcome at one offered load.
type Point struct {
	Load    float64 `json:"load"`
	AvgNs   float64 `json:"avg_ns"`
	P99Ns   float64 `json:"p99_ns"`
	AvgHops float64 `json:"avg_hops"`
	// TailNs is the drain tail: how long after the last injection the
	// network needed to empty. Below saturation it sits near the
	// unloaded flight latency; past saturation it grows with the backlog
	// the offered load left behind, making it the crispest saturation
	// signal at any window length.
	TailNs float64 `json:"tail_ns"`
}

// Harness runs timed network-only measurements on one long-lived machine:
// one (shape, policy, shard count) triple serves any number of
// (pattern, load, seed) points via RunPoint. Reusing the machine is what
// makes a sweep allocation-free in steady state — the kernel event pools,
// packet free lists, injection schedule and latency buffers all persist
// across load points — and a reset machine is byte-identical to a fresh
// one, so reuse never changes a digit of output.
type Harness struct {
	m     *machine.Machine
	shape topo.Shape
	core  packet.CoreID // GC 0, the endpoint every packet uses
	base  sim.Time      // serialization time of RefPacketBits (load unit)

	total  int // packets per node including warmup, for the current point
	warmup int

	// sched is the pre-drawn offered process — intended injection instants,
	// destinations, and the machine's pre-drawn routing decisions — for the
	// current point, flat-indexed by node*total+k (see Schedule.Draw).
	sched Schedule
	injs  []injector

	// Per-shard measurement state: deliveries happen on the destination
	// node's shard, so each shard appends to its own buffers and the
	// point statistics reduce them afterwards.
	sinks []sink
	lats  [][]float64
	hops  []int64
	all   []float64 // merged latencies, reused across points

	// telAgg accumulates telemetry across every point run since the
	// harness was built (zero unless EnableMetrics armed the machine).
	telAgg telemetry.Shard
}

// NewHarness builds the measurement machine: compression off (network-only
// timing), the given routing policy, sharded across the given kernel
// count (0 or 1 = sequential).
func NewHarness(shape topo.Shape, policy route.Policy, shards int) *Harness {
	mcfg := machine.DefaultConfig(shape)
	mcfg.Compress = serdes.CompressConfig{} // raw wire timing
	mcfg.Policy = policy
	mcfg.Shards = shards
	m := machine.New(mcfg)
	refCh := m.Node(shape.CoordOf(0)).ChannelSpecs()[0]
	h := &Harness{
		m:     m,
		shape: shape,
		core:  m.GC(shape.CoordOf(0), 0).ID,
		base:  m.Node(shape.CoordOf(0)).Channel(refCh).SerializeTime(RefPacketBits),
	}
	P := m.NumShards()
	h.sinks = make([]sink, P)
	h.lats = make([][]float64, P)
	h.hops = make([]int64, P)
	for s := range h.sinks {
		h.sinks[s] = sink{h: h, shard: int32(s)}
	}
	return h
}

// EnableMetrics arms the telemetry collector on the harness machine
// (internal/telemetry): sharded counters and latency/park histograms,
// accumulated into Telemetry() across every subsequent RunPoint.
func (h *Harness) EnableMetrics() { h.m.EnableTelemetry() }

// AttachTrace arms packet-lifecycle tracing with the given track prefix;
// intervals accumulate until DrainTrace.
func (h *Harness) AttachTrace(prefix string) { h.m.AttachPacketTrace(prefix) }

// DrainTrace moves every recorded trace interval into dst.
func (h *Harness) DrainTrace(dst *trace.Recorder) { h.m.DrainPacketTrace(dst) }

// Telemetry returns the telemetry accumulated across every RunPoint since
// the harness was built (all zeros unless EnableMetrics was called).
func (h *Harness) Telemetry() *telemetry.Shard { return &h.telAgg }

// injector fires one scheduled injection: a setup-scheduled sim.Actor, so
// the steady-state schedule carries no closures and the injection events
// keep the setup sequence order the sequential kernel has always used.
type injector struct {
	h    *Harness
	flat int32
}

// Act builds the pre-routed packet for this injection slot and sends it.
func (ij *injector) Act() {
	h := ij.h
	flat := int(ij.flat)
	src := h.shape.CoordOf(flat / h.total)
	dst := h.shape.CoordOf(int(h.sched.Dsts[flat]))
	p := h.m.NewPacketAt(src)
	atom := uint32(flat)
	p.Type = packet.Position
	p.SrcNode, p.DstNode = src, dst
	p.SrcCore, p.DstCore = h.core, h.core
	p.AtomID = atom
	p.SetQuad([4]uint32{atom, 0xfeed, 0xbeef, 0xcafe})
	p.PreRouted = true
	p.Order = h.sched.Orders[flat]
	// Position packets break the even-ring direction tie by atom ID; the
	// machine's tie draw was still consumed by DrawRoute, exactly as Send
	// consumes it before overriding.
	p.Tie = atom&2 != 0
	p.Inj = uint64(flat)
	h.m.Send(p, &h.sinks[h.m.ShardOf(dst)])
}

// sink records deliveries landing on one shard (packet.Deliverer).
type sink struct {
	h     *Harness
	shard int32
}

// Deliver records one delivered packet.
func (s *sink) Deliver(p *packet.Packet) {
	h := s.h
	if int(p.AtomID)%h.total < h.warmup {
		return
	}
	h.lats[s.shard] = append(h.lats[s.shard], (h.m.NodeKernel(p.DstNode).Now() - p.Injected).Nanoseconds())
	h.hops[s.shard] += int64(h.shape.HopDist(p.SrcNode, p.DstNode))
}

// RunPoint injects Pattern traffic at one offered load and returns the
// latency statistics of the measured window. The machine is reset to the
// given seed, runs with the kernel draining completely (queueing delay
// past saturation is fully charged to the packets that incurred it), and
// every random choice derives from seed alone — so results are byte-stable
// across hosts, worker counts, machine reuse, and shard counts.
//
// Routing randomness is pre-drawn at setup: injection events fire in
// (time, schedule-sequence) order, schedule sequence is node-major, so a
// stable sort of the schedule by time reproduces the exact order in which
// a sequential run's Sends would have consumed the machine rng. Each
// packet then carries its decisions (packet.PreRouted), which is what
// detaches the rng stream — and with lineage ordering, all of the output —
// from shard execution order.
func (h *Harness) RunPoint(pat Pattern, load float64, packets, warmup int, seed uint64) Point {
	if load <= 0 || packets <= 0 {
		panic("synth: load and packet count must be positive")
	}
	h.m.Reset(seed)
	h.total = warmup + packets
	h.warmup = warmup
	nodes := h.shape.Nodes()
	total := h.total
	flatN := nodes * total
	if cap(h.injs) < flatN {
		h.injs = make([]injector, flatN)
	}
	h.injs = h.injs[:flatN]
	for s := range h.lats {
		h.lats[s] = h.lats[s][:0]
		h.hops[s] = 0
	}

	// Draw the offered process — Poisson schedule, destinations, and the
	// machine's routing pre-draw in sequential injection-firing order.
	injectEnd := h.sched.Draw(h.m, h.shape, pat, float64(h.base)/load, total, seed)

	// Schedule the injections in node-major (setup sequence) order, each
	// on the kernel of the shard owning its source node. They go to the
	// kernel's staged lane — a sorted flat array, not the heap — so the
	// thousands of far-future injection slots never deepen the hot loop's
	// sift path; SealStage sorts each shard's lane into the exact
	// (time, setup-sequence) firing order the heap would have produced.
	for i := 0; i < nodes; i++ {
		kern := h.m.NodeKernel(h.shape.CoordOf(i))
		for k := 0; k < total; k++ {
			flat := i*total + k
			h.injs[flat] = injector{h: h, flat: int32(flat)}
			kern.StageActor(h.sched.Times[flat], &h.injs[flat])
		}
	}
	for s := 0; s < h.m.NumShards(); s++ {
		h.m.ShardKernel(s).SealStage()
	}

	h.m.BeginLineageRun()
	drainEnd := h.m.Run()

	if c := h.m.Telemetry(); c != nil {
		h.m.CollectChannelBusy()
		h.telAgg.Merge(c.Merged())
	}

	h.all = h.all[:0]
	var hopSum int64
	for s := range h.lats {
		h.all = append(h.all, h.lats[s]...)
		hopSum += h.hops[s]
	}
	if len(h.all) != nodes*packets {
		panic(fmt.Sprintf("synth: delivered %d of %d measured packets", len(h.all), nodes*packets))
	}
	lats := h.all
	sort.Float64s(lats)
	var sum float64
	for _, l := range lats {
		sum += l
	}
	return Point{
		Load:    load,
		AvgNs:   sum / float64(len(lats)),
		P99Ns:   lats[len(lats)*99/100],
		AvgHops: float64(hopSum) / float64(len(lats)),
		TailNs:  (drainEnd - injectEnd).Nanoseconds(),
	}
}

// Run injects Pattern traffic at the configured load on a private machine
// and returns the latency statistics of the measured window (one-shot
// form of a Harness point; sweeps reuse a Harness instead).
func Run(cfg RunConfig) Point {
	h := NewHarness(cfg.Shape, cfg.Policy, cfg.Shards)
	return h.RunPoint(cfg.Pattern, cfg.Load, cfg.Packets, cfg.Warmup, cfg.Seed)
}

// Curve is one policy's load/latency curve under one pattern.
type Curve struct {
	Policy string  `json:"policy"`
	Points []Point `json:"points"`
	// Tel aggregates telemetry across every load point of this policy
	// (nil unless the sweep ran with Opts.Metrics).
	Tel *telemetry.Summary `json:"telemetry,omitempty"`
}

// Opts gates the observability layer onto a sweep: Metrics arms the
// sharded telemetry collector (curves gain a Tel summary), Trace drains
// packet-lifecycle tracks — prefixed with the policy name — into the
// given recorder. Both default off, leaving output byte-identical.
type Opts struct {
	Metrics bool
	Trace   *trace.Recorder
}

// SweepPattern measures one pattern across every policy and offered load
// on the given shape, sharding each machine across the given kernel count.
// Each (policy, load) cell runs with a seed derived from cell position
// only, so the sweep decomposes freely across runner workers without
// changing a digit; cells of one policy share one machine (reset between
// loads), which keeps the sweep's steady state allocation-free.
func SweepPattern(shape topo.Shape, policies []route.Policy, pat Pattern, loads []float64, packets, warmup int, seed uint64, shards int) []Curve {
	return SweepPatternOpts(shape, policies, pat, loads, packets, warmup, seed, shards, Opts{})
}

// SweepPatternOpts is SweepPattern with the observability layer gates.
func SweepPatternOpts(shape topo.Shape, policies []route.Policy, pat Pattern, loads []float64, packets, warmup int, seed uint64, shards int, opts Opts) []Curve {
	curves := make([]Curve, len(policies))
	for pi, pol := range policies {
		c := Curve{Policy: pol.Name()}
		h := NewHarness(shape, pol, shards)
		if opts.Metrics {
			h.EnableMetrics()
		}
		if opts.Trace != nil {
			h.AttachTrace(pol.Name())
		}
		for li, load := range loads {
			c.Points = append(c.Points, h.RunPoint(
				pat, load, packets, warmup,
				seed+uint64(pi)*1009+uint64(li)*9176,
			))
		}
		if opts.Metrics {
			sum := h.Telemetry().Summary()
			c.Tel = &sum
		}
		if opts.Trace != nil {
			h.DrainTrace(opts.Trace)
		}
		curves[pi] = c
	}
	return curves
}

// SweepResult is one pattern x shape table of the netsweep experiment.
type SweepResult struct {
	Shape   string  `json:"shape"`
	Nodes   int     `json:"nodes"`
	Pattern string  `json:"pattern"`
	Curves  []Curve `json:"curves"`
}

// Sweep runs SweepPattern and packages the result for reports.
func Sweep(shape topo.Shape, policies []route.Policy, pat Pattern, loads []float64, packets, warmup int, seed uint64, shards int) SweepResult {
	return SweepOpts(shape, policies, pat, loads, packets, warmup, seed, shards, Opts{})
}

// SweepOpts is Sweep with the observability layer gates.
func SweepOpts(shape topo.Shape, policies []route.Policy, pat Pattern, loads []float64, packets, warmup int, seed uint64, shards int, opts Opts) SweepResult {
	return SweepResult{
		Shape:   shape.String(),
		Nodes:   shape.Nodes(),
		Pattern: pat.Name,
		Curves:  SweepPatternOpts(shape, policies, pat, loads, packets, warmup, seed, shards, opts),
	}
}

// Render formats the table: one row per offered load, an avg/p99 column
// pair per policy.
func (r SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Netsweep: pattern %s on %s (%d nodes) — one-way latency vs offered load\n",
		r.Pattern, r.Shape, r.Nodes)
	fmt.Fprintf(&b, "%6s", "load")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, " %12s %9s", c.Policy+" avg", "p99")
	}
	b.WriteByte('\n')
	if len(r.Curves) == 0 {
		return b.String()
	}
	for i := range r.Curves[0].Points {
		fmt.Fprintf(&b, "%6.2f", r.Curves[0].Points[i].Load)
		for _, c := range r.Curves {
			fmt.Fprintf(&b, " %12.1f %9.1f", c.Points[i].AvgNs, c.Points[i].P99Ns)
		}
		b.WriteByte('\n')
	}
	for _, c := range r.Curves {
		if c.Tel == nil {
			continue
		}
		b.WriteString(c.Tel.Line(c.Policy))
		b.WriteByte('\n')
	}
	return b.String()
}
