package synth

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"anton3/internal/machine"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/serdes"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// RefPacketBits is the wire size of the standard 24-byte counted-write
// packet (two 96-bit flits), the unit the offered-load normalization is
// expressed in.
const RefPacketBits = 192

// RunConfig parameterizes one timed network-only measurement: one shape,
// one policy, one pattern, one offered load.
type RunConfig struct {
	Shape   topo.Shape
	Policy  route.Policy
	Pattern Pattern
	// Load is the offered injection rate per node, normalized to one
	// channel slice's reference-packet rate: at Load 1.0 every node
	// injects, on average, one 192-bit packet per channel-slice
	// serialization interval. Uniform traffic on the 128-node machine
	// saturates around 3 in these units (12 outbound slices per node /
	// ~4 average hops).
	Load float64
	// Packets is the measured packet count per node; Warmup packets
	// precede them, excluded from the statistics.
	Packets int
	Warmup  int
	Seed    uint64
}

// Point is the measured outcome at one offered load.
type Point struct {
	Load    float64 `json:"load"`
	AvgNs   float64 `json:"avg_ns"`
	P99Ns   float64 `json:"p99_ns"`
	AvgHops float64 `json:"avg_hops"`
	// TailNs is the drain tail: how long after the last injection the
	// network needed to empty. Below saturation it sits near the
	// unloaded flight latency; past saturation it grows with the backlog
	// the offered load left behind, making it the crispest saturation
	// signal at any window length.
	TailNs float64 `json:"tail_ns"`
}

// runState is the measurement sink of one Run: it implements
// packet.Deliverer, so the harness's steady-state inner loop — take a
// pooled packet, inject, walk the network, record the latency at delivery —
// allocates nothing. The latency buffer is pre-sized to the exact delivered
// packet count.
type runState struct {
	m      *machine.Machine
	shape  topo.Shape
	total  int // packets per node including warmup
	warmup int
	lats   []float64
	hops   int64
}

// inject builds one traffic packet from the machine's pool and sends it.
// atom encodes (node, k) as node*total+k, which keeps the historical
// slice/tie affinity bits and lets Deliver recover whether the packet
// belongs to the measured window.
func (rs *runState) inject(src, dst topo.Coord, srcCore, dstCore packet.CoreID, atom uint32) {
	p := rs.m.NewPacket()
	p.Type = packet.Position
	p.SrcNode, p.DstNode = src, dst
	p.SrcCore, p.DstCore = srcCore, dstCore
	p.AtomID = atom
	p.SetQuad([4]uint32{atom, 0xfeed, 0xbeef, 0xcafe})
	rs.m.Send(p, rs)
}

// Deliver records one delivered packet (packet.Deliverer).
func (rs *runState) Deliver(p *packet.Packet) {
	if int(p.AtomID)%rs.total < rs.warmup {
		return
	}
	rs.lats = append(rs.lats, (rs.m.K.Now() - p.Injected).Nanoseconds())
	rs.hops += int64(rs.shape.HopDist(p.SrcNode, p.DstNode))
}

// Run injects Pattern traffic at the configured load on a private machine
// and returns the latency statistics of the measured window. The machine
// runs with compression off (network-only timing) and the kernel drains
// completely, so queueing delay past saturation is fully charged to the
// packets that incurred it. Every random choice derives from cfg.Seed, so
// results are byte-stable across hosts and worker counts.
func Run(cfg RunConfig) Point {
	if cfg.Load <= 0 || cfg.Packets <= 0 {
		panic("synth: load and packet count must be positive")
	}
	mcfg := machine.DefaultConfig(cfg.Shape)
	mcfg.Compress = serdes.CompressConfig{} // raw wire timing
	mcfg.Policy = cfg.Policy
	mcfg.Seed = cfg.Seed
	m := machine.New(mcfg)

	nodes := cfg.Shape.Nodes()
	refCh := m.Node(cfg.Shape.CoordOf(0)).ChannelSpecs()[0]
	base := m.Node(cfg.Shape.CoordOf(0)).Channel(refCh).SerializeTime(RefPacketBits)
	meanGap := float64(base) / cfg.Load

	total := cfg.Warmup + cfg.Packets
	rs := &runState{
		m: m, shape: cfg.Shape, total: total, warmup: cfg.Warmup,
		lats: make([]float64, 0, nodes*cfg.Packets),
	}
	var injectEnd sim.Time
	for i := 0; i < nodes; i++ {
		src := cfg.Shape.CoordOf(i)
		srcGC := m.GC(src, 0)
		rng := sim.NewRand(cfg.Seed ^ uint64(i+1)*0x9e3779b97f4a7c15)
		t := m.K.Now()
		for k := 0; k < total; k++ {
			// Poisson arrivals: exponential inter-injection gaps.
			gap := sim.Time(meanGap * -math.Log(1-rng.Float64()))
			if gap < 1 {
				gap = 1
			}
			t += gap
			dst := cfg.Pattern.Dest(cfg.Shape, src, rng)
			dstGC := m.GC(dst, 0)
			atom := uint32(i*total + k)
			srcID, dstID := srcGC.ID, dstGC.ID
			m.K.At(t, func() { rs.inject(src, dst, srcID, dstID, atom) })
		}
		if t > injectEnd {
			injectEnd = t
		}
	}
	drainEnd := m.K.Run()

	if len(rs.lats) != nodes*cfg.Packets {
		panic(fmt.Sprintf("synth: delivered %d of %d measured packets", len(rs.lats), nodes*cfg.Packets))
	}
	lats := rs.lats
	sort.Float64s(lats)
	var sum float64
	for _, l := range lats {
		sum += l
	}
	return Point{
		Load:    cfg.Load,
		AvgNs:   sum / float64(len(lats)),
		P99Ns:   lats[len(lats)*99/100],
		AvgHops: float64(rs.hops) / float64(len(lats)),
		TailNs:  (drainEnd - injectEnd).Nanoseconds(),
	}
}

// Curve is one policy's load/latency curve under one pattern.
type Curve struct {
	Policy string  `json:"policy"`
	Points []Point `json:"points"`
}

// SweepPattern measures one pattern across every policy and offered load
// on the given shape. Each (policy, load) cell runs on a private machine
// with a seed derived from cell position only, so the sweep decomposes
// freely across runner workers without changing a digit.
func SweepPattern(shape topo.Shape, policies []route.Policy, pat Pattern, loads []float64, packets, warmup int, seed uint64) []Curve {
	curves := make([]Curve, len(policies))
	for pi, pol := range policies {
		c := Curve{Policy: pol.Name()}
		for li, load := range loads {
			c.Points = append(c.Points, Run(RunConfig{
				Shape: shape, Policy: pol, Pattern: pat,
				Load: load, Packets: packets, Warmup: warmup,
				Seed: seed + uint64(pi)*1009 + uint64(li)*9176,
			}))
		}
		curves[pi] = c
	}
	return curves
}

// SweepResult is one pattern x shape table of the netsweep experiment.
type SweepResult struct {
	Shape   string  `json:"shape"`
	Nodes   int     `json:"nodes"`
	Pattern string  `json:"pattern"`
	Curves  []Curve `json:"curves"`
}

// Sweep runs SweepPattern and packages the result for reports.
func Sweep(shape topo.Shape, policies []route.Policy, pat Pattern, loads []float64, packets, warmup int, seed uint64) SweepResult {
	return SweepResult{
		Shape:   shape.String(),
		Nodes:   shape.Nodes(),
		Pattern: pat.Name,
		Curves:  SweepPattern(shape, policies, pat, loads, packets, warmup, seed),
	}
}

// Render formats the table: one row per offered load, an avg/p99 column
// pair per policy.
func (r SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Netsweep: pattern %s on %s (%d nodes) — one-way latency vs offered load\n",
		r.Pattern, r.Shape, r.Nodes)
	fmt.Fprintf(&b, "%6s", "load")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, " %12s %9s", c.Policy+" avg", "p99")
	}
	b.WriteByte('\n')
	if len(r.Curves) == 0 {
		return b.String()
	}
	for i := range r.Curves[0].Points {
		fmt.Fprintf(&b, "%6.2f", r.Curves[0].Points[i].Load)
		for _, c := range r.Curves {
			fmt.Fprintf(&b, " %12.1f %9.1f", c.Points[i].AvgNs, c.Points[i].P99Ns)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
