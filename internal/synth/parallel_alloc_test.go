package synth

import (
	"fmt"
	"testing"

	"anton3/internal/route"
	"anton3/internal/testutil"
	"anton3/internal/topo"
)

// TestShardedPointAllocRatio enforces the sharded steady-state allocation
// gate: once a reused sharded harness has warmed up (packet pools, credit
// free lists, kernel event pools, window workers and outbox buffers all
// grown to the workload's size), a sweep point at shards=2 and shards=4
// allocates no more than 2x the shards=1 baseline. The baseline is itself
// pinned at zero by TestNetsweepPointAllocFree, so in practice this
// requires the sharded path — lineage bookkeeping, cross-shard outbox
// merges, per-window worker handoffs, free-list rebalancing — to be
// allocation-free too. This is the gate that keeps the BENCH_parallel.json
// shards>1 rows from regressing into the pre-PR-7 per-window alloc blowup.
func TestShardedPointAllocRatio(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	pat := Uniform()
	point := func(h *Harness) float64 {
		// Steady state: the first runs grow every buffer; measure after.
		run := func() { h.RunPoint(pat, 2, 16, 4, 7) }
		for i := 0; i < 4; i++ {
			run()
		}
		return testing.AllocsPerRun(10, run)
	}
	base := point(NewHarness(topo.Shape{X: 4, Y: 4, Z: 8}, route.Random(), 1))
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			got := point(NewHarness(topo.Shape{X: 4, Y: 4, Z: 8}, route.Random(), shards))
			if got > 2*base {
				t.Fatalf("sharded sweep point allocates %.1f times/op, want <= 2x the shards=1 baseline (%.1f)", got, base)
			}
		})
	}
}
