package synth

import (
	"testing"

	"anton3/internal/machine"
	"anton3/internal/route"
	"anton3/internal/serdes"
	"anton3/internal/testutil"
	"anton3/internal/topo"
)

// TestSynthInnerLoopAllocFree pins the harness's steady-state inner loop —
// pooled packet out of the machine, Send, walk, delivery into the
// pre-sized latency buffer — at zero heap allocations. This is the loop a
// netsweep cell runs nodes x (warmup+packets) times.
func TestSynthInnerLoopAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	shape := topo.Shape{X: 4, Y: 4, Z: 8}
	mcfg := machine.DefaultConfig(shape)
	mcfg.Compress = serdes.CompressConfig{}
	mcfg.Policy = route.Random()
	m := machine.New(mcfg)
	rs := &runState{
		m: m, shape: shape, total: 4, warmup: 0,
		lats: make([]float64, 0, 1<<16),
	}
	src, dst := topo.Coord{}, topo.Coord{X: 2, Y: 3, Z: 6}
	srcID, dstID := m.GC(src, 0).ID, m.GC(dst, 0).ID
	var atom uint32
	inner := func() {
		rs.inject(src, dst, srcID, dstID, atom)
		atom++
		m.K.Run()
	}
	for i := 0; i < 32; i++ {
		inner()
	}
	if n := testing.AllocsPerRun(200, inner); n != 0 {
		t.Fatalf("synth inner loop allocates %.1f times/op, want 0", n)
	}
}

// BenchmarkNetsweep times one small netsweep cell (128 nodes, uniform
// traffic, random policy, load 2) end to end: machine build, Poisson
// schedule, timed run, drain, statistics.
func BenchmarkNetsweep(b *testing.B) {
	cfg := RunConfig{
		Shape:   topo.Shape{X: 4, Y: 4, Z: 8},
		Policy:  route.Random(),
		Pattern: Uniform(),
		Load:    2,
		Packets: 16,
		Warmup:  4,
		Seed:    7,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Run(cfg)
	}
}
