package synth

import (
	"testing"

	"anton3/internal/machine"
	"anton3/internal/packet"
	"anton3/internal/route"
	"anton3/internal/serdes"
	"anton3/internal/testutil"
	"anton3/internal/topo"
)

// latSink is the minimal measurement endpoint for the inner-loop gate: a
// pre-sized latency buffer fed by Deliver, like a harness sink.
type latSink struct {
	m    *machine.Machine
	lats []float64
}

func (s *latSink) Deliver(p *packet.Packet) {
	s.lats = append(s.lats, (s.m.K.Now() - p.Injected).Nanoseconds())
}

// TestSynthInnerLoopAllocFree pins the harness's steady-state inner loop —
// pooled packet out of the machine, Send, walk, delivery into the
// pre-sized latency buffer — at zero heap allocations. This is the loop a
// netsweep cell runs nodes x (warmup+packets) times.
func TestSynthInnerLoopAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	shape := topo.Shape{X: 4, Y: 4, Z: 8}
	mcfg := machine.DefaultConfig(shape)
	mcfg.Compress = serdes.CompressConfig{}
	mcfg.Policy = route.Random()
	m := machine.New(mcfg)
	sk := &latSink{m: m, lats: make([]float64, 0, 1<<16)}
	src, dst := topo.Coord{}, topo.Coord{X: 2, Y: 3, Z: 6}
	srcID, dstID := m.GC(src, 0).ID, m.GC(dst, 0).ID
	var atom uint32
	inner := func() {
		p := m.NewPacket()
		p.Type = packet.Position
		p.SrcNode, p.DstNode = src, dst
		p.SrcCore, p.DstCore = srcID, dstID
		p.AtomID = atom
		p.SetQuad([4]uint32{atom, 0xfeed, 0xbeef, 0xcafe})
		m.Send(p, sk)
		atom++
		m.K.Run()
	}
	for i := 0; i < 32; i++ {
		inner()
	}
	if n := testing.AllocsPerRun(200, inner); n != 0 {
		t.Fatalf("synth inner loop allocates %.1f times/op, want 0", n)
	}
}

// TestNetsweepPointAllocFree pins a whole steady-state sweep point — reset
// the reused machine, draw the Poisson schedule, pre-route, run to drain,
// reduce the statistics — at zero heap allocations once the harness's
// buffers have grown to the point's size. This is the per-(shape, policy)
// loop anton3 netsweep runs per offered load.
func TestNetsweepPointAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	h := NewHarness(topo.Shape{X: 4, Y: 4, Z: 8}, route.Random(), 1)
	pat := Uniform()
	point := func() {
		h.RunPoint(pat, 2, 16, 4, 7)
	}
	for i := 0; i < 3; i++ {
		point()
	}
	if n := testing.AllocsPerRun(5, point); n != 0 {
		t.Fatalf("netsweep point allocates %.1f times/op in steady state, want 0", n)
	}
}

// BenchmarkNetsweep times one netsweep cell (128 nodes, uniform traffic,
// random policy, load 2) in sweep steady state: Poisson schedule,
// pre-routed injection, timed run, drain, statistics — on the reused
// machine a sweep holds per (shape, policy), exactly as anton3 netsweep
// runs one offered-load point.
func BenchmarkNetsweep(b *testing.B) {
	h := NewHarness(topo.Shape{X: 4, Y: 4, Z: 8}, route.Random(), 1)
	pat := Uniform()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.RunPoint(pat, 2, 16, 4, 7)
	}
}
