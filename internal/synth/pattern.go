// Package synth drives the Anton 3 network with the classic synthetic
// traffic patterns of the interconnection-network literature (uniform
// random, bit complement, transpose, tornado, hot-spot, nearest neighbor)
// and measures offered-load vs. latency curves per routing policy — the
// network-only evaluation rig that complements the paper's MD-driven
// figures. Patterns are defined over torus coordinates so they apply to
// any machine shape, including the 512- and 1024-node configurations the
// paper scales to.
package synth

import (
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// Pattern maps an injecting node to a destination for one packet.
// Deterministic patterns ignore rng; randomized ones (uniform, hotspot,
// neighbor) draw from it, so a given rng stream fixes the traffic exactly.
type Pattern struct {
	Name string
	Dest func(s topo.Shape, src topo.Coord, rng *sim.Rand) topo.Coord
}

// Uniform sends each packet to a node drawn uniformly from the others
// (self excluded): the benign, load-spreading baseline.
func Uniform() Pattern {
	return Pattern{Name: "uniform", Dest: func(s topo.Shape, src topo.Coord, rng *sim.Rand) topo.Coord {
		n := s.Nodes()
		if n == 1 {
			return src
		}
		return s.CoordOf((s.Index(src) + 1 + rng.Intn(n-1)) % n)
	}}
}

// BitComplement reflects every coordinate through the torus center
// (c -> size-1-c): all traffic crosses the middle, the classic
// bisection-stressing pattern.
func BitComplement() Pattern {
	return Pattern{Name: "bitcomp", Dest: func(s topo.Shape, src topo.Coord, _ *sim.Rand) topo.Coord {
		return topo.Coord{X: s.X - 1 - src.X, Y: s.Y - 1 - src.Y, Z: s.Z - 1 - src.Z}
	}}
}

// Transpose rotates the coordinates one dimension over (x,y,z) ->
// (y,z,x), rescaling when extents differ — the 3D generalization of
// matrix-transpose traffic, which concentrates load off the diagonal.
func Transpose() Pattern {
	return Pattern{Name: "transpose", Dest: func(s topo.Shape, src topo.Coord, _ *sim.Rand) topo.Coord {
		return topo.Coord{
			X: src.Y * s.X / s.Y,
			Y: src.Z * s.Y / s.Z,
			Z: src.X * s.Z / s.X,
		}
	}}
}

// Tornado sends each packet just under halfway around every ring
// (c -> c + ceil(size/2)-1): the adversarial pattern for dimension-order
// routing on rings, maximizing link reuse in one direction.
func Tornado() Pattern {
	return Pattern{Name: "tornado", Dest: func(s topo.Shape, src topo.Coord, _ *sim.Rand) topo.Coord {
		t := func(c, size int) int { return (c + (size+1)/2 - 1) % size }
		return topo.Coord{X: t(src.X, s.X), Y: t(src.Y, s.Y), Z: t(src.Z, s.Z)}
	}}
}

// HotSpotFraction is the share of hot-spot traffic aimed at the hot node.
const HotSpotFraction = 0.1

// HotSpot sends HotSpotFraction of packets to the torus center node and
// the rest uniformly: the endpoint-congestion pattern.
func HotSpot() Pattern {
	uni := Uniform()
	return Pattern{Name: "hotspot", Dest: func(s topo.Shape, src topo.Coord, rng *sim.Rand) topo.Coord {
		if rng.Float64() < HotSpotFraction {
			return topo.Coord{X: s.X / 2, Y: s.Y / 2, Z: s.Z / 2}
		}
		return uni.Dest(s, src, rng)
	}}
}

// Neighbor sends each packet one hop away in a uniformly random direction:
// the best case for any minimal routing, all traffic local.
func Neighbor() Pattern {
	return Pattern{Name: "neighbor", Dest: func(s topo.Shape, src topo.Coord, rng *sim.Rand) topo.Coord {
		dim := topo.Dim(rng.Intn(3))
		dir := 1
		if rng.Intn(2) == 0 {
			dir = -1
		}
		return s.Neighbor(src, dim, dir)
	}}
}

// Patterns lists every built-in pattern in report order.
func Patterns() []Pattern {
	return []Pattern{Uniform(), BitComplement(), Transpose(), Tornado(), HotSpot(), Neighbor()}
}

// PatternByName resolves a pattern for CLI flags.
func PatternByName(name string) (Pattern, bool) {
	for _, p := range Patterns() {
		if p.Name == name {
			return p, true
		}
	}
	return Pattern{}, false
}
