package synth

import (
	"fmt"
	"testing"

	"anton3/internal/route"
	"anton3/internal/topo"
)

// BenchmarkNetsweepShards measures the conservative-lookahead parallel
// executive's wall-clock scaling: one 512-node netsweep point (uniform
// traffic, random policy, load 3) run at 1, 2 and 4 kernel shards.
// Output is byte-identical across the sub-benchmarks (the shard-count
// invariance tests pin that); only the wall clock moves. The CI bench
// lane commits the results as BENCH_parallel.json, where the shards=1 to
// shards=4 ns/op ratio is the multicore speedup of simulating one machine.
func BenchmarkNetsweepShards(b *testing.B) {
	shape := topo.Shape{X: 8, Y: 8, Z: 8}
	pat := Uniform()
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			h := NewHarness(shape, route.Random(), shards)
			// Warm the reused harness to steady state before timing, so
			// ns/op measures the windowed run and allocs/op the per-point
			// residue — not the one-time pool/buffer growth of a cold
			// machine (which used to dominate the shards>1 rows).
			for i := 0; i < 2; i++ {
				_ = h.RunPoint(pat, 3, 48, 16, 7)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = h.RunPoint(pat, 3, 48, 16, 7)
			}
		})
	}
}
