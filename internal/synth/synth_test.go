package synth

import (
	"strings"
	"testing"

	"anton3/internal/route"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

var testShape = topo.Shape{X: 2, Y: 2, Z: 2}

func TestPatternsProduceValidCoords(t *testing.T) {
	shapes := []topo.Shape{{X: 2, Y: 2, Z: 2}, {X: 4, Y: 4, Z: 8}, {X: 8, Y: 8, Z: 8}, {X: 8, Y: 8, Z: 16}}
	rng := sim.NewRand(9)
	for _, s := range shapes {
		for _, pat := range Patterns() {
			for i := 0; i < s.Nodes(); i++ {
				src := s.CoordOf(i)
				for k := 0; k < 8; k++ {
					dst := pat.Dest(s, src, rng)
					if !s.Contains(dst) {
						t.Fatalf("%s on %v: dest %v outside shape (src %v)", pat.Name, s, dst, src)
					}
				}
			}
		}
	}
}

func TestUniformExcludesSelf(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	pat := Uniform()
	rng := sim.NewRand(3)
	src := s.CoordOf(17)
	for i := 0; i < 2000; i++ {
		if pat.Dest(s, src, rng) == src {
			t.Fatal("uniform pattern sent a packet to its own node")
		}
	}
}

func TestBitComplementAndTornadoDeterministic(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	if got := BitComplement().Dest(s, topo.Coord{X: 1, Y: 0, Z: 5}, nil); got != (topo.Coord{X: 2, Y: 3, Z: 2}) {
		t.Fatalf("bitcomp dest = %v", got)
	}
	// Tornado on a 4-ring moves +1, on an 8-ring +3.
	if got := Tornado().Dest(s, topo.Coord{X: 3, Y: 0, Z: 6}, nil); got != (topo.Coord{X: 0, Y: 1, Z: 1}) {
		t.Fatalf("tornado dest = %v", got)
	}
}

func TestHotSpotConcentrates(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	hot := topo.Coord{X: 2, Y: 2, Z: 4}
	rng := sim.NewRand(5)
	pat := HotSpot()
	hits := 0
	n := 5000
	for i := 0; i < n; i++ {
		if pat.Dest(s, s.CoordOf(i%s.Nodes()), rng) == hot {
			hits++
		}
	}
	// ~10% directed plus the uniform background; far above 1/128.
	if frac := float64(hits) / float64(n); frac < 0.06 || frac > 0.2 {
		t.Fatalf("hot node drew %.1f%% of traffic, want ~10%%", 100*frac)
	}
}

func TestNeighborIsOneHop(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	rng := sim.NewRand(6)
	pat := Neighbor()
	for i := 0; i < 500; i++ {
		src := s.CoordOf(rng.Intn(s.Nodes()))
		if d := s.HopDist(src, pat.Dest(s, src, rng)); d != 1 {
			t.Fatalf("neighbor dest at distance %d", d)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := RunConfig{
		Shape: testShape, Policy: route.Random(), Pattern: Uniform(),
		Load: 1, Packets: 20, Warmup: 5, Seed: 42,
	}
	a, b := Run(cfg), Run(cfg)
	if a != b {
		t.Fatalf("identical configs disagreed: %+v vs %+v", a, b)
	}
	if a.AvgNs <= 0 || a.P99Ns < a.AvgNs || a.AvgHops <= 0 {
		t.Fatalf("implausible point %+v", a)
	}
}

func TestLatencyRisesTowardSaturation(t *testing.T) {
	mk := func(load float64) Point {
		return Run(RunConfig{
			Shape: testShape, Policy: route.Random(), Pattern: Uniform(),
			Load: load, Packets: 600, Warmup: 100, Seed: 7,
		})
	}
	lo, hi := mk(0.5), mk(24)
	if hi.AvgNs <= lo.AvgNs*1.1 {
		t.Fatalf("no congestion signal: %.1f ns at load 0.5 vs %.1f ns at load 24", lo.AvgNs, hi.AvgNs)
	}
	// Past saturation the drain tail explodes; below it, it stays near
	// the unloaded flight latency.
	if hi.TailNs <= lo.TailNs*1.4 {
		t.Fatalf("drain tail flat across saturation: %.1f vs %.1f ns", lo.TailNs, hi.TailNs)
	}
}

func TestSweepShapesAndRender(t *testing.T) {
	pols := []route.Policy{route.Random(), route.XYZ(), route.MinimalAdaptive()}
	res := Sweep(testShape, pols, Tornado(), []float64{0.5, 1}, 8, 2, 11, 1)
	if len(res.Curves) != 3 {
		t.Fatalf("want 3 curves, got %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		if len(c.Points) != 2 {
			t.Fatalf("curve %s has %d points", c.Policy, len(c.Points))
		}
	}
	out := res.Render()
	for _, want := range []string{"tornado", "2x2x2", "random", "xyz", "adaptive", "0.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPatternRegistry(t *testing.T) {
	ps := Patterns()
	if len(ps) < 5 {
		t.Fatalf("want >= 5 patterns, got %d", len(ps))
	}
	for _, p := range ps {
		got, ok := PatternByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Fatalf("PatternByName(%q) broken", p.Name)
		}
	}
	if _, ok := PatternByName("warp"); ok {
		t.Fatal("unknown pattern should not resolve")
	}
}
