package pcache

import "fmt"

// Predictor selects the extrapolation order — an ablation knob; hardware
// is quadratic. The zero value is the hardware behavior.
type Predictor uint8

// Predictor orders.
const (
	PredictQuadratic Predictor = iota // x̂ = D0 + D1 + D2 (hardware)
	PredictLinear                     // x̂ = D0 + D1
	PredictConstant                   // x̂ = D0
)

// Config sizes a particle cache. The production configuration is
// DefaultConfig: 1024 entries, 4-way set associative (Section IV-B1).
type Config struct {
	Entries int // total entries; must be Ways * power-of-two sets
	Ways    int
	// EvictThreshold is the age (in time steps since last hit) beyond
	// which a conflicting packet may evict an entry. The paper calls this
	// "a specific (configurable) threshold".
	EvictThreshold uint32
	// Predictor is the extrapolation order (ablation; default quadratic).
	Predictor Predictor
}

// DefaultConfig matches the Anton 3 hardware.
var DefaultConfig = Config{Entries: 1024, Ways: 4, EvictThreshold: 2}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if c.Ways <= 0 || c.Entries <= 0 {
		return fmt.Errorf("pcache: entries and ways must be positive")
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("pcache: %d entries not divisible by %d ways", c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("pcache: set count %d not a power of two", sets)
	}
	return nil
}

type entry struct {
	valid   bool
	tag     uint32 // atom ID (stands in for the packet's static fields)
	lastHit uint32 // time step counter value at last hit
	est     Extrapolator
}

// Stats counts cache outcomes for the compression experiments.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Allocs     uint64
	Evictions  uint64
	AllocFails uint64 // miss with no allocatable way: packet goes uncompressed
}

// HitRate returns Hits / (Hits + Misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is one side of a particle cache pair. Both the send-side and the
// receive-side instantiate identical Caches; determinism of every method is
// what keeps them synchronized.
type Cache struct {
	cfg   Config
	sets  []entry // sets*ways entries, way-major within a set
	nsets int
	step  uint32 // time step counter, incremented by end-of-step packets
	stats Stats
}

// New builds an empty cache. It panics on an invalid config (a construction
// bug, not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:   cfg,
		sets:  make([]entry, cfg.Entries),
		nsets: cfg.Entries / cfg.Ways,
	}
}

// Stats returns a copy of the outcome counters.
func (c *Cache) Stats() Stats { return c.stats }

// Step returns the current time step counter.
func (c *Cache) Step() uint32 { return c.step }

// Tick advances the time step counter. In hardware this happens upon
// receipt of a special end-of-step packet that software sends down each
// channel; both cache sides therefore tick at the same point in the stream.
func (c *Cache) Tick() { c.step++ }

// setIndex hashes an atom ID to a set. Both sides use the same hash; any
// deterministic function works, and a multiplicative hash avoids the
// pathological striding a plain modulus would suffer for lattice-ordered
// atom IDs.
func (c *Cache) setIndex(id uint32) int {
	h := id * 2654435761
	return int(h>>16) & (c.nsets - 1)
}

// AccessResult describes what the send side should put on the wire.
type AccessResult struct {
	// Hit: transmit a compressed packet carrying Index and Residual.
	Hit bool
	// Index is the entry number (set*ways + way), the cache index field of
	// the compressed position packet.
	Index uint16
	// Residual is pos - prediction, per coordinate (valid when Hit).
	Residual [3]int32
	// Allocated reports that a miss allocated a new entry (the full packet
	// must be sent so the receive side can allocate identically).
	Allocated bool
}

// Access performs the cache transaction for an outgoing (send side) or
// arriving full (receive side) position packet. The two sides perform
// identical transactions because full packets carry the atom ID and
// position, and compressed packets are applied via ApplyCompressed instead.
func (c *Cache) Access(id uint32, pos [3]int32) AccessResult {
	set := c.setIndex(id)
	base := set * c.cfg.Ways

	// Hit path.
	for w := 0; w < c.cfg.Ways; w++ {
		e := &c.sets[base+w]
		if e.valid && e.tag == id {
			c.stats.Hits++
			e.lastHit = c.step
			return AccessResult{
				Hit:      true,
				Index:    uint16(base + w),
				Residual: e.est.ResidualOrder(pos, c.cfg.Predictor),
			}
		}
	}
	c.stats.Misses++

	// Miss: allocate an invalid way if present.
	for w := 0; w < c.cfg.Ways; w++ {
		e := &c.sets[base+w]
		if !e.valid {
			c.allocate(e, id, pos)
			return AccessResult{Allocated: true}
		}
	}

	// All ways valid: evict the stalest way whose age exceeds the
	// threshold (Section IV-B1), deterministically preferring the lowest
	// way on ties so both sides choose the same victim.
	victim := -1
	var victimAge uint32
	for w := 0; w < c.cfg.Ways; w++ {
		e := &c.sets[base+w]
		age := c.step - e.lastHit
		if age > c.cfg.EvictThreshold && age > victimAge {
			victim, victimAge = w, age
		}
	}
	if victim < 0 {
		c.stats.AllocFails++
		return AccessResult{}
	}
	c.stats.Evictions++
	c.allocate(&c.sets[base+victim], id, pos)
	return AccessResult{Allocated: true}
}

func (c *Cache) allocate(e *entry, id uint32, pos [3]int32) {
	c.stats.Allocs++
	e.valid = true
	e.tag = id
	e.lastHit = c.step
	e.est.Init(pos)
}

// Contains reports whether id currently has a valid entry, without
// disturbing cache state (a diagnostic probe; hardware has no such port).
func (c *Cache) Contains(id uint32) bool {
	base := c.setIndex(id) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		e := &c.sets[base+w]
		if e.valid && e.tag == id {
			return true
		}
	}
	return false
}

// ApplyCompressed is the receive-side transaction for a compressed position
// packet: look up the entry by index, reconstruct the position from the
// residual, and return the atom ID recovered from the entry's static fields.
func (c *Cache) ApplyCompressed(index uint16, residual [3]int32) (id uint32, pos [3]int32) {
	if int(index) >= len(c.sets) {
		panic(fmt.Sprintf("pcache: compressed index %d out of range", index))
	}
	e := &c.sets[index]
	if !e.valid {
		panic("pcache: compressed packet addressed an invalid entry (caches desynchronized)")
	}
	c.stats.Hits++
	e.lastHit = c.step
	return e.tag, e.est.ReconstructOrder(residual, c.cfg.Predictor)
}

// Equal reports whether two caches have identical state. Used by tests and
// by channel self-checks to assert the send/receive invariant.
func (c *Cache) Equal(o *Cache) bool {
	if c.cfg != o.cfg || c.step != o.step || len(c.sets) != len(o.sets) {
		return false
	}
	for i := range c.sets {
		if c.sets[i] != o.sets[i] {
			return false
		}
	}
	return true
}
