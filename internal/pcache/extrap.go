// Package pcache implements the Anton 3 particle cache (Section IV-B): a
// pair of synchronized caches at the two ends of an I/O channel that lets
// the sender transmit only the difference between an atom's true position
// and a quadratic extrapolation from its history. Both sides see the same
// access stream in the same order and run identical logic, so their state
// never diverges and no coherence traffic is needed.
package pcache

// Extrapolator is the per-entry, per-coordinate quadratic position
// predictor, stored as finite differences (Section IV-B2):
//
//	D0[t] = x[t]
//	D1[t] = x[t] -   x[t-1]
//	D2[t] = x[t] - 2*x[t-1] + x[t-2]
//
// The estimate is x̂[t] = D0[t-1] + D1[t-1] + D2[t-1], which equals the
// textbook quadratic extrapolation 3x[t-1] - 3x[t-2] + x[t-3] once three
// samples of history exist. D1 and D2 are stored in 12 bits per coordinate;
// values outside [-2048, 2047] wrap identically on both sides of the
// channel, so prediction quality degrades for fast atoms but synchronization
// never breaks. A freshly allocated entry has D1 = D2 = 0 and so starts as a
// constant predictor, becomes linear after one update and quadratic after
// two, with no special-case handling — exactly the property the paper calls
// out.
type Extrapolator struct {
	D0 [3]int32
	D1 [3]int16 // 12-bit storage, sign-extended
	D2 [3]int16 // 12-bit storage, sign-extended
}

// wrap12 reduces v to a 12-bit two's-complement value in [-2048, 2047].
func wrap12(v int32) int16 {
	return int16(v << 20 >> 20)
}

// Init resets the estimator state from a just-allocated position: constant
// prediction, zero differences.
func (e *Extrapolator) Init(pos [3]int32) {
	e.D0 = pos
	e.D1 = [3]int16{}
	e.D2 = [3]int16{}
}

// Predict returns x̂[t] = D0 + D1 + D2 per coordinate.
func (e *Extrapolator) Predict() [3]int32 { return e.predict(2) }

func (e *Extrapolator) predict(order int) [3]int32 {
	var p [3]int32
	for c := 0; c < 3; c++ {
		p[c] = e.D0[c]
		if order >= 1 {
			p[c] += int32(e.D1[c])
		}
		if order >= 2 {
			p[c] += int32(e.D2[c])
		}
	}
	return p
}

// Update advances the differences with the actual position:
//
//	D1[t] = x[t] - D0[t-1]
//	D2[t] = x[t] - D0[t-1] - D1[t-1]
//	D0[t] = x[t]
func (e *Extrapolator) Update(pos [3]int32) {
	for c := 0; c < 3; c++ {
		d1 := pos[c] - e.D0[c]
		d2 := d1 - int32(e.D1[c])
		e.D1[c] = wrap12(d1)
		e.D2[c] = wrap12(d2)
		e.D0[c] = pos[c]
	}
}

// Residual returns pos - Predict(), the value transmitted on a hit, and then
// updates the history. Send side and receive side both call this indirectly
// (the receive side adds the residual back to its own identical prediction).
func (e *Extrapolator) Residual(pos [3]int32) [3]int32 {
	return e.residual(pos, 2)
}

func (e *Extrapolator) residual(pos [3]int32, order int) [3]int32 {
	p := e.predict(order)
	var r [3]int32
	for c := 0; c < 3; c++ {
		r[c] = pos[c] - p[c]
	}
	e.Update(pos)
	return r
}

// Reconstruct applies a received residual to the local prediction, recovers
// the exact position, and updates the history. It is the receive-side dual
// of Residual.
func (e *Extrapolator) Reconstruct(residual [3]int32) [3]int32 {
	return e.reconstruct(residual, 2)
}

func (e *Extrapolator) reconstruct(residual [3]int32, order int) [3]int32 {
	p := e.predict(order)
	var pos [3]int32
	for c := 0; c < 3; c++ {
		pos[c] = p[c] + residual[c]
	}
	e.Update(pos)
	return pos
}

// orderOf maps a Predictor to an extrapolation order.
func orderOf(p Predictor) int {
	switch p {
	case PredictConstant:
		return 0
	case PredictLinear:
		return 1
	default:
		return 2
	}
}

// ResidualOrder is Residual with a selectable predictor order (ablation).
func (e *Extrapolator) ResidualOrder(pos [3]int32, p Predictor) [3]int32 {
	return e.residual(pos, orderOf(p))
}

// ReconstructOrder is Reconstruct with a selectable predictor order.
func (e *Extrapolator) ReconstructOrder(residual [3]int32, p Predictor) [3]int32 {
	return e.reconstruct(residual, orderOf(p))
}
