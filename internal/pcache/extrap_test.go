package pcache

import (
	"testing"
	"testing/quick"
)

func TestWrap12(t *testing.T) {
	cases := []struct {
		in   int32
		want int16
	}{
		{0, 0}, {1, 1}, {-1, -1}, {2047, 2047}, {-2048, -2048},
		{2048, -2048}, {-2049, 2047}, {4096, 0}, {1 << 20, 0},
	}
	for _, c := range cases {
		if got := wrap12(c.in); got != c.want {
			t.Errorf("wrap12(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestExtrapConstant(t *testing.T) {
	var e Extrapolator
	pos := [3]int32{1000000, -2000000, 3}
	e.Init(pos)
	// A stationary atom predicts exactly from the first step on.
	for i := 0; i < 5; i++ {
		r := e.Residual(pos)
		if r != [3]int32{} {
			t.Fatalf("constant trajectory residual = %v at step %d", r, i)
		}
	}
}

func TestExtrapLinearConvergesByThirdHit(t *testing.T) {
	var e Extrapolator
	x := [3]int32{5000, 5000, 5000}
	d := [3]int32{40, -17, 3}
	e.Init(x)
	var residuals [][3]int32
	for i := 0; i < 6; i++ {
		for c := 0; c < 3; c++ {
			x[c] += d[c]
		}
		residuals = append(residuals, e.Residual(x))
	}
	// Paper: constant -> linear -> quadratic with no special cases. For
	// linear motion, hits 3+ must be exact.
	for i := 2; i < len(residuals); i++ {
		if residuals[i] != [3]int32{} {
			t.Fatalf("linear trajectory residual %v at hit %d", residuals[i], i)
		}
	}
	// Hit 1 residual equals the full step (constant prediction).
	if residuals[0] != d {
		t.Fatalf("first-hit residual = %v, want %v", residuals[0], d)
	}
}

func TestExtrapQuadraticExact(t *testing.T) {
	// x[t] = a t^2 + b t + c with small a, b: after enough history the
	// quadratic predictor is exact.
	var e Extrapolator
	traj := func(tstep int32) [3]int32 {
		return [3]int32{
			3*tstep*tstep + 7*tstep + 100,
			-2*tstep*tstep + 11*tstep - 50,
			tstep * tstep,
		}
	}
	e.Init(traj(0))
	for ts := int32(1); ts < 8; ts++ {
		r := e.Residual(traj(ts))
		if ts >= 3 && r != [3]int32{} {
			t.Fatalf("quadratic residual %v at t=%d", r, ts)
		}
	}
}

func TestExtrapMatchesPaperClosedForm(t *testing.T) {
	// Once warmed with x[t-3..t-1], the prediction must equal
	// 3x[t-1] - 3x[t-2] + x[t-3] as long as differences fit in 12 bits.
	f := func(x0 int32, d1, d2, d3 int8) bool {
		x1 := x0 + int32(d1)
		x2 := x1 + int32(d2)
		x3 := x2 + int32(d3)
		var e Extrapolator
		e.Init([3]int32{x0, x0, x0})
		e.Update([3]int32{x1, x1, x1})
		e.Update([3]int32{x2, x2, x2})
		e.Update([3]int32{x3, x3, x3})
		want := 3*x3 - 3*x2 + x1
		return e.Predict() == [3]int32{want, want, want}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualReconstructDual(t *testing.T) {
	// Two extrapolators fed identical histories: whatever residual one
	// produces, the other must reconstruct the exact position — even when
	// steps overflow the 12-bit difference storage.
	f := func(seed int64, jumps []int16) bool {
		var tx, rx Extrapolator
		pos := [3]int32{int32(seed), int32(seed >> 16), int32(seed >> 32)}
		tx.Init(pos)
		rx.Init(pos)
		for _, j := range jumps {
			pos[0] += int32(j)
			pos[1] -= int32(j) * 3 // exceeds 12 bits regularly
			pos[2] += int32(j) * 17
			r := tx.Residual(pos)
			if rx.Reconstruct(r) != pos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualSmallForSmoothMotion(t *testing.T) {
	// The compression claim: for MD-like smooth motion (slowly varying
	// velocity), residuals are much smaller than raw deltas.
	var e Extrapolator
	x := int32(1 << 20)
	v := int32(900) // units/step, fits 12 bits
	e.Init([3]int32{x, x, x})
	maxResid := int32(0)
	for ts := 0; ts < 50; ts++ {
		v += int32(ts%5) - 2 // tiny acceleration wobble
		x += v
		r := e.Residual([3]int32{x, x, x})
		if r[0] < 0 {
			r[0] = -r[0]
		}
		if ts >= 3 && r[0] > maxResid {
			maxResid = r[0]
		}
	}
	if maxResid > 16 {
		t.Fatalf("smooth-motion residual %d, want tiny vs delta ~900", maxResid)
	}
}
