package pcache

// Pair models one direction of an I/O channel: a send-side cache before the
// channel and a receive-side cache after it (Figure 8). It exists so that
// users (and tests) cannot accidentally drive the two sides with different
// streams — the single Transmit entry point keeps them in lockstep.
type Pair struct {
	send *Cache
	recv *Cache
}

// NewPair builds a synchronized cache pair.
func NewPair(cfg Config) *Pair {
	return &Pair{send: New(cfg), recv: New(cfg)}
}

// Transmission describes what crossed the channel for one position packet.
type Transmission struct {
	// Compressed reports that a compressed packet (cache index + residual)
	// was sent instead of the full position packet.
	Compressed bool
	// Index and Residual are the compressed packet contents (valid when
	// Compressed).
	Index    uint16
	Residual [3]int32
}

// Transmit sends one position packet through the channel and returns what
// the receive side reconstructed along with the wire form. The returned id
// and pos always equal the inputs — lossless compression — which tests
// assert property-style.
func (p *Pair) Transmit(id uint32, pos [3]int32) (gotID uint32, gotPos [3]int32, tx Transmission) {
	res := p.send.Access(id, pos)
	if res.Hit {
		gotID, gotPos = p.recv.ApplyCompressed(res.Index, res.Residual)
		return gotID, gotPos, Transmission{Compressed: true, Index: res.Index, Residual: res.Residual}
	}
	// Full packet: the receive side performs the identical transaction.
	p.recv.Access(id, pos)
	return id, pos, Transmission{}
}

// Tick marks the end of a time step on both sides (the end-of-step packet
// traverses the same ordered channel, so both sides tick at the same point
// in the stream).
func (p *Pair) Tick() {
	p.send.Tick()
	p.recv.Tick()
}

// InSync reports whether both sides hold identical state. It is always true
// after any sequence of Transmit/Tick calls; a false return means a bug.
func (p *Pair) InSync() bool { return p.send.Equal(p.recv) }

// SendStats returns the send-side outcome counters.
func (p *Pair) SendStats() Stats { return p.send.Stats() }
