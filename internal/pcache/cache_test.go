package pcache

import (
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{Entries: 64, Ways: 4, EvictThreshold: 2}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Entries: 0, Ways: 4},
		{Entries: 64, Ways: 0},
		{Entries: 65, Ways: 4}, // not divisible
		{Entries: 48, Ways: 4}, // 12 sets, not power of two
		{Entries: -4, Ways: 4},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v should be invalid", i, c)
		}
	}
}

func TestDefaultConfigIsHardware(t *testing.T) {
	// Section IV-B1: four-way set associative with 1024 total entries.
	if DefaultConfig.Entries != 1024 || DefaultConfig.Ways != 4 {
		t.Fatalf("default config %+v does not match the paper", DefaultConfig)
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(testConfig())
	pos := [3]int32{100, 200, 300}
	res := c.Access(7, pos)
	if res.Hit || !res.Allocated {
		t.Fatalf("first access: %+v, want allocation miss", res)
	}
	res = c.Access(7, pos)
	if !res.Hit {
		t.Fatalf("second access missed")
	}
	if res.Residual != [3]int32{} {
		t.Fatalf("stationary residual = %v", res.Residual)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Allocs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionRequiresStaleness(t *testing.T) {
	cfg := Config{Entries: 4, Ways: 4, EvictThreshold: 2} // one set
	c := New(cfg)
	for id := uint32(0); id < 4; id++ {
		c.Access(id, [3]int32{int32(id), 0, 0})
	}
	// Set is full and fresh: a conflicting atom must not evict.
	res := c.Access(99, [3]int32{9, 9, 9})
	if res.Allocated || res.Hit {
		t.Fatalf("fresh entries evicted: %+v", res)
	}
	if c.Stats().AllocFails != 1 {
		t.Fatalf("AllocFails = %d, want 1", c.Stats().AllocFails)
	}
	// Age the entries past the threshold; hit atom 0 to keep it fresh.
	for i := 0; i < 3; i++ {
		c.Tick()
	}
	c.Access(0, [3]int32{0, 0, 0})
	res = c.Access(99, [3]int32{9, 9, 9})
	if !res.Allocated {
		t.Fatalf("stale entry not evicted: %+v", res)
	}
	// Atom 0 must have survived (it was fresh); one of 1..3 was evicted.
	if !c.Contains(0) {
		t.Fatal("fresh atom 0 was evicted")
	}
}

func TestEvictPrefersStalest(t *testing.T) {
	cfg := Config{Entries: 4, Ways: 4, EvictThreshold: 0}
	c := New(cfg)
	c.Access(0, [3]int32{})
	c.Tick()
	c.Access(1, [3]int32{})
	c.Tick()
	c.Access(2, [3]int32{})
	c.Access(3, [3]int32{})
	c.Tick()
	// Ages: atom0=3, atom1=2, atom2=atom3=1. Threshold 0 -> all evictable;
	// atom 0 is stalest.
	res := c.Access(50, [3]int32{})
	if !res.Allocated {
		t.Fatal("no eviction")
	}
	if c.Contains(0) {
		t.Fatal("stalest entry survived")
	}
	for id := uint32(1); id < 4; id++ {
		if !c.Contains(id) {
			t.Fatalf("fresher entry %d was evicted", id)
		}
	}
}

func TestApplyCompressedPanicsOnDesync(t *testing.T) {
	c := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyCompressed on invalid entry should panic")
		}
	}()
	c.ApplyCompressed(0, [3]int32{})
}

func TestPairLossless(t *testing.T) {
	// The core property of Section IV-B: "the packet delivered to network
	// endpoints will be the same regardless of whether that packet hit in
	// any particle caches along its route."
	p := NewPair(testConfig())
	f := func(ids []uint16, jump int16) bool {
		pos := map[uint32][3]int32{}
		for step := 0; step < 4; step++ {
			for _, id16 := range ids {
				id := uint32(id16 % 300)
				cur := pos[id]
				cur[0] += int32(jump)
				cur[1] += int32(id16)
				cur[2] -= int32(jump) * 2
				pos[id] = cur
				gid, gpos, _ := p.Transmit(id, cur)
				if gid != id || gpos != cur {
					return false
				}
			}
			p.Tick()
		}
		return p.InSync()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPairStaysInSyncUnderChurn(t *testing.T) {
	// Small cache, many atoms: constant eviction traffic must not break
	// synchronization.
	p := NewPair(Config{Entries: 16, Ways: 4, EvictThreshold: 0})
	x := int32(0)
	for step := 0; step < 20; step++ {
		for id := uint32(0); id < 100; id++ {
			x += 13
			gid, gpos, _ := p.Transmit(id, [3]int32{x, -x, x * 2})
			if gid != id || gpos != [3]int32{x, -x, x * 2} {
				t.Fatal("lossless property broken under churn")
			}
		}
		p.Tick()
		if !p.InSync() {
			t.Fatalf("desynchronized at step %d", step)
		}
	}
}

func TestHitRateImprovesWithWarmCache(t *testing.T) {
	p := NewPair(DefaultConfig)
	// 500 atoms, well under 1024 entries: after the first step everything
	// hits and residuals shrink.
	move := func(id uint32, step int32) [3]int32 {
		return [3]int32{int32(id)*1000 + step*40, step * 40, -step * 40}
	}
	for step := int32(0); step < 5; step++ {
		for id := uint32(0); id < 500; id++ {
			p.Transmit(id, move(id, step))
		}
		p.Tick()
	}
	st := p.SendStats()
	// 1 allocation miss per atom, then 4 hits each.
	if st.Misses != 500 || st.Hits != 2000 {
		t.Fatalf("stats = %+v, want 500 misses / 2000 hits", st)
	}
	if hr := st.HitRate(); hr < 0.79 || hr > 0.81 {
		t.Fatalf("hit rate = %v, want 0.8", hr)
	}
}

func TestWorkingSetBeyondCapacityThrashes(t *testing.T) {
	// The Figure 9a explanation: "more atoms per node result in a higher
	// cache miss rate". 4096 atoms through a 1024-entry cache with a tight
	// threshold must show a much lower hit rate than 512 atoms.
	run := func(atoms uint32) float64 {
		p := NewPair(DefaultConfig)
		for step := int32(0); step < 6; step++ {
			for id := uint32(0); id < atoms; id++ {
				p.Transmit(id, [3]int32{int32(id) + step*100, 0, 0})
			}
			p.Tick()
		}
		return p.SendStats().HitRate()
	}
	small, large := run(512), run(4096)
	if small < 0.8 {
		t.Fatalf("small working set hit rate = %v, want > 0.8", small)
	}
	if large > small/2 {
		t.Fatalf("large working set hit rate %v not much worse than %v", large, small)
	}
}

func TestStatsHitRateZero(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config should panic")
		}
	}()
	New(Config{Entries: 3, Ways: 2})
}

func BenchmarkTransmitHit(b *testing.B) {
	p := NewPair(DefaultConfig)
	p.Transmit(1, [3]int32{100, 200, 300})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Transmit(1, [3]int32{100 + int32(i), 200, 300})
	}
}
