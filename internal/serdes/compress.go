// Package serdes models the Anton 3 I/O channels: 16 SERDES lanes per torus
// neighbor at 29 Gb/s per lane per direction, with the Channel Adapter's
// compression stages (INZ and the particle cache) and byte-granularity
// packing of compressed payloads into fixed-length channel frames
// (Sections II-B and IV).
package serdes

import (
	"fmt"

	"anton3/internal/inz"
	"anton3/internal/packet"
	"anton3/internal/pcache"
)

// Wire format constants.
const (
	// FrameBytes is the fixed channel frame length; FrameOverheadBytes of
	// it carry CRC/sequencing, so payload efficiency is 60/64.
	FrameBytes         = 64
	FrameOverheadBytes = 4

	// FullHeaderBits is the uncompressed packet header (64-bit flit header).
	FullHeaderBits = packet.HeaderBits
	// CompressedHeaderBits is the short header of a particle-cache-hit
	// position packet: a 10-bit cache index plus type/flag bits.
	CompressedHeaderBits = 16
	// LengthNibbleBits is the per-payload valid-byte count (0-16) prepended
	// when INZ is active so the unpacker can find payload boundaries in a
	// densely packed frame.
	LengthNibbleBits = 4
)

// CompressConfig selects which compression features are active. Both can be
// independently disabled, which is how the paper isolates their benefits in
// Figure 9.
type CompressConfig struct {
	INZ    bool
	Pcache bool
	// PcacheConfig sizes the particle cache; zero value means
	// pcache.DefaultConfig.
	PcacheConfig pcache.Config
}

// EnabledString names the configuration the way the paper's figures do.
func (c CompressConfig) EnabledString() string {
	switch {
	case c.INZ && c.Pcache:
		return "inz+pcache"
	case c.INZ:
		return "inz"
	case c.Pcache:
		return "pcache"
	default:
		return "off"
	}
}

// Stats aggregates wire traffic through one compressor.
type Stats struct {
	Packets        uint64
	WireBits       uint64 // bits after compression, before framing
	BaselineBits   uint64 // bits the same packets would cost uncompressed
	PositionBits   uint64
	ForceBits      uint64
	OtherBits      uint64
	PcacheHits     uint64
	PcacheMisses   uint64
	RawINZPayloads uint64 // payloads where INZ was abandoned
}

// Reduction returns the fractional traffic reduction vs. the uncompressed
// baseline (the quantity plotted in Figure 9a).
func (s Stats) Reduction() float64 {
	if s.BaselineBits == 0 {
		return 0
	}
	return 1 - float64(s.WireBits)/float64(s.BaselineBits)
}

// Compressor is the send-side Channel Adapter compression pipeline for one
// channel direction, paired with its receive-side state. Transmit returns
// the exact packet the far Channel Adapter reconstructs; tests assert it is
// identical to the input (compression is transparent to endpoints).
type Compressor struct {
	cfg   CompressConfig
	pair  *pcache.Pair
	stats Stats
}

// pcacheConfig resolves the effective particle cache sizing: the zero
// value means pcache.DefaultConfig. NewCompressor and Reset must agree on
// this, or a reset channel would rebuild a differently-sized cache.
func (c CompressConfig) pcacheConfig() pcache.Config {
	if c.PcacheConfig == (pcache.Config{}) {
		return pcache.DefaultConfig
	}
	return c.PcacheConfig
}

// NewCompressor builds the pipeline for one channel direction.
func NewCompressor(cfg CompressConfig) *Compressor {
	c := &Compressor{cfg: cfg}
	if cfg.Pcache {
		c.pair = pcache.NewPair(cfg.pcacheConfig())
	}
	return c
}

// Stats returns a copy of the traffic counters.
func (c *Compressor) Stats() Stats { return c.stats }

// Reset clears the traffic counters and rebuilds the particle cache pair,
// returning the pipeline to its just-constructed state for machine reuse.
func (c *Compressor) Reset() {
	c.stats = Stats{}
	if c.pair != nil {
		c.pair = pcache.NewPair(c.cfg.pcacheConfig())
	}
}

// CacheStats returns particle cache outcome counters (zero Stats when the
// cache is disabled).
func (c *Compressor) CacheStats() pcache.Stats {
	if c.pair == nil {
		return pcache.Stats{}
	}
	return c.pair.SendStats()
}

// payloadBits returns the on-wire cost of a packet's payload given INZ.
func (c *Compressor) payloadBits(quad [4]uint32) int {
	if !c.cfg.INZ {
		return packet.PayloadBits
	}
	e := inz.Encode(quad)
	if e.Raw {
		c.stats.RawINZPayloads++
	}
	return LengthNibbleBits + 8*e.WireBytes()
}

// Transmit compresses one packet, accounts its wire cost, and returns the
// packet as reconstructed on the receive side plus the bits that crossed
// the channel. EndOfStep packets advance the particle cache time step
// counters on both sides.
func (c *Compressor) Transmit(p *packet.Packet) (out *packet.Packet, wireBits int) {
	c.stats.Packets++
	baseline := FullHeaderBits
	if p.Words > 0 {
		baseline += packet.PayloadBits
	}
	c.stats.BaselineBits += uint64(baseline)

	out = p
	switch {
	case p.Type == packet.EndOfStep:
		if c.pair != nil {
			c.pair.Tick()
		}
		wireBits = FullHeaderBits

	case p.Type == packet.Position && c.cfg.Pcache:
		pos := [3]int32{int32(p.Payload[0]), int32(p.Payload[1]), int32(p.Payload[2])}
		gotID, gotPos, tx := c.pair.Transmit(p.AtomID, pos)
		if gotID != p.AtomID || gotPos != pos {
			panic("serdes: particle cache was not lossless")
		}
		if tx.Compressed {
			c.stats.PcacheHits++
			resid := [4]uint32{uint32(tx.Residual[0]), uint32(tx.Residual[1]), uint32(tx.Residual[2]), 0}
			wireBits = CompressedHeaderBits + c.payloadBits(resid)
		} else {
			c.stats.PcacheMisses++
			wireBits = FullHeaderBits + c.payloadBits(p.Payload)
		}

	case p.Words > 0:
		wireBits = FullHeaderBits + c.payloadBits(p.Payload)

	default:
		wireBits = FullHeaderBits
	}

	c.stats.WireBits += uint64(wireBits)
	switch p.Type {
	case packet.Position:
		c.stats.PositionBits += uint64(wireBits)
	case packet.Force:
		c.stats.ForceBits += uint64(wireBits)
	default:
		c.stats.OtherBits += uint64(wireBits)
	}
	return out, wireBits
}

// InSync reports whether the two particle cache sides agree (always true;
// exported for invariant checks in tests and long simulations).
func (c *Compressor) InSync() bool {
	return c.pair == nil || c.pair.InSync()
}

// FramedBits converts payload bits into serialized channel bits including
// fixed-frame overhead: compressed payloads and headers pack densely at
// byte granularity into 64-byte frames of which 60 carry payload.
func FramedBits(payloadBits uint64) uint64 {
	payloadBytes := (payloadBits + 7) / 8
	framePayload := uint64(FrameBytes - FrameOverheadBytes)
	frames := (payloadBytes + framePayload - 1) / framePayload
	return frames * FrameBytes * 8
}

func (c *Compressor) String() string {
	return fmt.Sprintf("compressor(%s)", c.cfg.EnabledString())
}
