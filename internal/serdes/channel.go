package serdes

import (
	"anton3/internal/packet"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// ChannelConfig parameterizes one channel direction between torus neighbors.
type ChannelConfig struct {
	Lanes    int // SERDES lanes in this direction (16 per neighbor)
	GbpsLane int // per-lane bandwidth (29 Gb/s on Anton 3)
	// FixedLatency is the load-independent part of a channel crossing:
	// SERDES tx, wire flight, SERDES rx/CDR, and the Channel Adapter logic
	// at both ends. Calibrated in internal/core so that the measured
	// off-chip per-hop latency lands at the paper's 34.2 ns.
	FixedLatency sim.Time
	Compress     CompressConfig
}

// DefaultChannelConfig returns the production lane provisioning with the
// given fixed latency and compression settings.
func DefaultChannelConfig(fixed sim.Time, comp CompressConfig) ChannelConfig {
	return ChannelConfig{
		Lanes:        topo.SerdesPerNeighbor,
		GbpsLane:     topo.SerdesGbps,
		FixedLatency: fixed,
		Compress:     comp,
	}
}

// Channel is one direction of an inter-node link: a serialization server at
// the aggregate lane bandwidth (derated by frame overhead) preceded by the
// Channel Adapter compression pipeline. The Channel Adapter has enough
// buffering that the channel itself is the backpressure point, so the model
// queues packets in arrival order and serializes them back to back.
type Channel struct {
	k    *sim.Kernel
	cfg  ChannelConfig
	comp *Compressor

	// remote, when set, receives far-end arrivals instead of the local
	// kernel: the far end of this channel lives on another shard of a
	// sharded machine, and the arrival is merged into that shard's kernel
	// at the next window barrier. The channel's FixedLatency is the
	// lookahead that makes the deferral safe.
	remote sim.Deferrer

	// psPerBitNum/Den express picoseconds per payload bit as a ratio so
	// no floating point enters timing: ps/bit = 1000 / (lanes*gbps) scaled
	// by frame overhead 64/60.
	psNum int64
	psDen int64

	busy     sim.Time
	carried  uint64 // packets delivered
	busyTime sim.Time
	lastIdle sim.Time

	// Fault state (see internal/fault). A dead channel refuses injection —
	// the flow-control layer above must stop offering it traffic before
	// marking it dead, so transmit on a dead channel is a routing bug, not a
	// silent drop. bwDiv/latMult degrade serialization bandwidth and fixed
	// latency; zero means healthy. Degradation applies inside transmit, not
	// SerializeTime: callers use SerializeTime as the healthy load unit
	// (offered-load normalization), which must not drift when a link
	// degrades.
	dead    bool
	bwDiv   int64
	latMult int64

	// OnSend, when set, observes each serialization interval (activity
	// tracing for the Figure 12 machine activity plots).
	OnSend func(p *packet.Packet, start, end sim.Time)
}

// NewChannel builds a channel direction on kernel k.
func NewChannel(k *sim.Kernel, cfg ChannelConfig) *Channel {
	ch := &Channel{}
	ch.Init(k, cfg)
	return ch
}

// Init initializes ch in place on kernel k, for callers that lay channels
// out in one flat bank (the machine keeps all of a shape's channels in a
// single array indexed by node and dense spec index, so the serialization
// horizons the hot path bumps sit in contiguous memory instead of one heap
// object per channel).
func (ch *Channel) Init(k *sim.Kernel, cfg ChannelConfig) {
	if cfg.Lanes <= 0 || cfg.GbpsLane <= 0 {
		panic("serdes: invalid channel config")
	}
	*ch = Channel{
		k:    k,
		cfg:  cfg,
		comp: NewCompressor(cfg.Compress),
		// ps/bit = 1000/(lanes*gbps) * (FrameBytes/(FrameBytes-Overhead))
		psNum: 1000 * FrameBytes,
		psDen: int64(cfg.Lanes) * int64(cfg.GbpsLane) * (FrameBytes - FrameOverheadBytes),
	}
}

// Compressor exposes the channel's compression pipeline for statistics.
func (ch *Channel) Compressor() *Compressor { return ch.comp }

// SetRemote routes far-end arrivals through d instead of the local kernel
// (cross-shard channels of a sharded machine). Only the closure-free
// SendPacket path supports remote delivery.
func (ch *Channel) SetRemote(d sim.Deferrer) { ch.remote = d }

// Reset returns the channel to its just-built state — serialization
// horizon, utilization accounting, compression pipeline and fault state —
// so a reused machine's channels start a fresh run with no history. The
// machine re-applies its fault plan after resetting channels.
func (ch *Channel) Reset() {
	ch.busy, ch.busyTime, ch.lastIdle = 0, 0, 0
	ch.carried = 0
	ch.dead, ch.bwDiv, ch.latMult = false, 0, 0
	ch.comp.Reset()
}

// SetFault degrades the channel: bandwidth divided by bwDiv, fixed latency
// multiplied by latMult (either may be 0 or 1 for "unchanged"). The latency
// multiplier only ever lengthens FixedLatency, so a sharded executive whose
// lookahead was computed from the healthy latency stays conservative.
func (ch *Channel) SetFault(bwDiv, latMult int) {
	ch.bwDiv, ch.latMult = int64(bwDiv), int64(latMult)
}

// SetDead marks the channel dead (or revives it). Transmitting on a dead
// channel panics — upstream flow control must park traffic instead.
func (ch *Channel) SetDead(dead bool) { ch.dead = dead }

// Dead reports whether the channel has been killed by a fault.
func (ch *Channel) Dead() bool { return ch.dead }

// SerializeTime returns the time to put bits on the lanes, including frame
// overhead derating.
func (ch *Channel) SerializeTime(bits int) sim.Time {
	return sim.Time((int64(bits)*ch.psNum + ch.psDen - 1) / ch.psDen)
}

// FixedLatency reports the load-independent crossing latency (SERDES, wire
// flight, adapters). Credit-based flow control rides sideband credits over
// the reverse channel, so the machine's credit returns are timed with the
// reverse channel's FixedLatency — which is also what makes the returns
// deferrable across shard windows (it equals the executive's lookahead
// floor).
func (ch *Channel) FixedLatency() sim.Time { return ch.cfg.FixedLatency }

// Busy reports the current serialization horizon (diagnostics).
func (ch *Channel) Busy() sim.Time { return ch.busy }

// Utilization returns the fraction of time the channel has been
// serializing since construction.
func (ch *Channel) Utilization(now sim.Time) float64 {
	if now == 0 {
		return 0
	}
	return float64(ch.busyTime) / float64(now)
}

// Carried reports delivered packet count.
func (ch *Channel) Carried() uint64 { return ch.carried }

// BusyTime reports total serialization time accumulated since the last
// Reset — read post-run by the telemetry layer for per-channel busy
// accounting and the saturation heatmap, so the hot path pays nothing.
func (ch *Channel) BusyTime() sim.Time { return ch.busyTime }

// Send compresses and serializes p, delivering the reconstructed packet to
// deliver at the far end after serialization plus the fixed SERDES/wire
// latency. Delivery order always matches send order — the in-order property
// the network fence builds on.
func (ch *Channel) Send(p *packet.Packet, deliver func(*packet.Packet)) sim.Time {
	if ch.remote != nil {
		panic("serdes: closure Send on a cross-shard channel; use SendPacket")
	}
	out, arrival := ch.transmit(p)
	if deliver != nil {
		ch.k.At(arrival, func() { deliver(out) })
	}
	return arrival
}

// SendPacket is the closure-free variant of Send: the packet itself (a
// sim.Actor whose walk state encodes what arrival means) is scheduled at
// the far end. Timing and accounting are identical to Send.
func (ch *Channel) SendPacket(p *packet.Packet) sim.Time {
	out, arrival := ch.transmit(p)
	if ch.remote != nil {
		ch.remote.Defer(arrival, out)
	} else {
		ch.k.AtActor(arrival, out)
	}
	return arrival
}

func (ch *Channel) transmit(p *packet.Packet) (*packet.Packet, sim.Time) {
	if ch.dead {
		panic("serdes: transmit on a dead channel (routing/flow-control bug)")
	}
	out, bits := ch.comp.Transmit(p)
	ser := ch.SerializeTime(bits)
	if ch.bwDiv > 1 {
		ser *= sim.Time(ch.bwDiv)
	}
	lat := ch.cfg.FixedLatency
	if ch.latMult > 1 {
		lat *= sim.Time(ch.latMult)
	}
	now := ch.k.Now()
	start := ch.busy
	if start < now {
		start = now
	}
	ch.busy = start + ser
	ch.busyTime += ser
	arrival := ch.busy + lat
	ch.carried++
	if ch.OnSend != nil {
		ch.OnSend(p, start, ch.busy)
	}
	return out, arrival
}
