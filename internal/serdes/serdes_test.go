package serdes

import (
	"testing"

	"anton3/internal/packet"
	"anton3/internal/sim"
)

func posPacket(id uint32, pos [3]int32) *packet.Packet {
	p := &packet.Packet{Type: packet.Position, AtomID: id}
	p.SetQuad([4]uint32{uint32(pos[0]), uint32(pos[1]), uint32(pos[2]), 0})
	return p
}

func forcePacket(f [3]int32) *packet.Packet {
	p := &packet.Packet{Type: packet.Force}
	p.SetQuad([4]uint32{uint32(f[0]), uint32(f[1]), uint32(f[2]), 0})
	return p
}

func TestBaselineCost(t *testing.T) {
	c := NewCompressor(CompressConfig{})
	_, bits := c.Transmit(posPacket(1, [3]int32{1 << 20, 1 << 21, 1 << 22}))
	if bits != FullHeaderBits+packet.PayloadBits {
		t.Fatalf("uncompressed payload packet = %d bits, want 192", bits)
	}
	_, bits = c.Transmit(&packet.Packet{Type: packet.CountedWrite})
	if bits != FullHeaderBits {
		t.Fatalf("header-only = %d bits, want 64", bits)
	}
	if c.Stats().Reduction() != 0 {
		t.Fatalf("baseline reduction = %v, want 0", c.Stats().Reduction())
	}
}

func TestINZReducesSmallPayloads(t *testing.T) {
	c := NewCompressor(CompressConfig{INZ: true})
	_, bits := c.Transmit(forcePacket([3]int32{120000, -90000, 45000})) // ~17-bit forces
	// 3 words x ~18 bits interleaved ~ 54 bits -> 7 bytes + nibble + header.
	if bits >= FullHeaderBits+packet.PayloadBits {
		t.Fatalf("INZ did not compress: %d bits", bits)
	}
	if bits > FullHeaderBits+LengthNibbleBits+8*8 {
		t.Fatalf("INZ force packet = %d bits, want <= %d", bits, FullHeaderBits+LengthNibbleBits+64)
	}
}

func TestINZAbandonCostsNibbleExtra(t *testing.T) {
	c := NewCompressor(CompressConfig{INZ: true})
	p := &packet.Packet{Type: packet.Force}
	p.SetQuad([4]uint32{0xdeadbeef, 0xcafebabe, 0x12345678, 0x9abcdef0})
	_, bits := c.Transmit(p)
	if bits != FullHeaderBits+LengthNibbleBits+packet.PayloadBits {
		t.Fatalf("abandoned INZ = %d bits", bits)
	}
	if c.Stats().RawINZPayloads != 1 {
		t.Fatal("raw payload not counted")
	}
}

func TestPcacheHitPath(t *testing.T) {
	c := NewCompressor(CompressConfig{INZ: true, Pcache: true})
	// Miss on first sight: full packet.
	_, missBits := c.Transmit(posPacket(7, [3]int32{1 << 24, 1 << 24, 1 << 24}))
	// Smooth motion: subsequent steps hit with tiny residuals.
	var hitBits int
	for i := int32(1); i <= 4; i++ {
		_, hitBits = c.Transmit(posPacket(7, [3]int32{1<<24 + 1000*i, 1<<24 + 1000*i, 1<<24 + 1000*i}))
	}
	if hitBits >= missBits {
		t.Fatalf("hit (%d bits) not cheaper than miss (%d bits)", hitBits, missBits)
	}
	// Warmed quadratic predictor on linear motion: residual 0 ->
	// compressed header + nibble + 0 payload bytes.
	if hitBits != CompressedHeaderBits+LengthNibbleBits {
		t.Fatalf("steady-state hit = %d bits, want %d", hitBits, CompressedHeaderBits+LengthNibbleBits)
	}
	st := c.Stats()
	if st.PcacheHits != 4 || st.PcacheMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !c.InSync() {
		t.Fatal("cache sides desynchronized")
	}
}

func TestEndOfStepTicksCaches(t *testing.T) {
	c := NewCompressor(CompressConfig{Pcache: true})
	c.Transmit(posPacket(1, [3]int32{0, 0, 0}))
	_, bits := c.Transmit(&packet.Packet{Type: packet.EndOfStep})
	if bits != FullHeaderBits {
		t.Fatalf("end-of-step = %d bits", bits)
	}
	if c.pair == nil {
		t.Fatal("pcache missing")
	}
}

func TestReductionAccounting(t *testing.T) {
	c := NewCompressor(CompressConfig{INZ: true})
	for i := 0; i < 100; i++ {
		c.Transmit(forcePacket([3]int32{1000, -2000, 3000}))
	}
	r := c.Stats().Reduction()
	// ~13-bit forces: header 64 + nibble 4 + 6 payload bytes = 116 bits
	// vs 192 baseline -> ~40% reduction.
	if r < 0.35 || r > 0.45 {
		t.Fatalf("reduction = %v, want ~0.40", r)
	}
}

func TestFramedBits(t *testing.T) {
	// 1 payload bit -> one 64-byte frame.
	if FramedBits(1) != 64*8 {
		t.Fatalf("FramedBits(1) = %d", FramedBits(1))
	}
	// 60 payload bytes fit one frame; 61 need two.
	if FramedBits(60*8) != 64*8 || FramedBits(61*8) != 128*8 {
		t.Fatal("frame boundary accounting broken")
	}
}

func TestChannelSerializationRate(t *testing.T) {
	k := sim.NewKernel()
	ch := NewChannel(k, DefaultChannelConfig(0, CompressConfig{}))
	// 16 lanes x 29 Gb/s = 464 Gb/s raw; with 60/64 framing the effective
	// payload rate is 435 Gb/s -> a 192-bit packet takes ~442 ps.
	got := ch.SerializeTime(192)
	if got < 430 || got > 450 {
		t.Fatalf("192-bit serialization = %v ps, want ~441", got)
	}
}

func TestChannelDeliveryOrderAndLatency(t *testing.T) {
	k := sim.NewKernel()
	fixed := 25 * sim.Nanosecond
	ch := NewChannel(k, DefaultChannelConfig(fixed, CompressConfig{}))
	var arrivals []sim.Time
	var ids []uint64
	n := 10
	for i := 0; i < n; i++ {
		p := &packet.Packet{ID: uint64(i), Type: packet.Force}
		p.SetQuad([4]uint32{1, 2, 3, 4})
		ch.Send(p, func(q *packet.Packet) {
			arrivals = append(arrivals, k.Now())
			ids = append(ids, q.ID)
		})
	}
	k.Run()
	if len(arrivals) != n {
		t.Fatalf("delivered %d", len(arrivals))
	}
	for i := range ids {
		if ids[i] != uint64(i) {
			t.Fatalf("out of order: %v", ids)
		}
	}
	// First packet: serialization + fixed latency.
	ser := ch.SerializeTime(192)
	if arrivals[0] != ser+fixed {
		t.Fatalf("first arrival %v, want %v", arrivals[0], ser+fixed)
	}
	// Back-to-back packets are spaced by exactly one serialization time.
	for i := 1; i < n; i++ {
		if arrivals[i]-arrivals[i-1] != ser {
			t.Fatalf("spacing %v, want %v", arrivals[i]-arrivals[i-1], ser)
		}
	}
}

func TestChannelUtilization(t *testing.T) {
	k := sim.NewKernel()
	ch := NewChannel(k, DefaultChannelConfig(0, CompressConfig{}))
	p := &packet.Packet{Type: packet.Force}
	p.SetQuad([4]uint32{1, 2, 3, 4})
	ch.Send(p, nil)
	k.Run()
	if ch.Carried() != 1 {
		t.Fatal("carried count wrong")
	}
	if u := ch.Utilization(ch.Busy()); u < 0.99 {
		t.Fatalf("utilization = %v, want ~1 while draining", u)
	}
}

func TestCompressorLosslessUnderLoad(t *testing.T) {
	// Drive a compressing channel with drifting atoms and verify every
	// reconstructed packet matches its input.
	k := sim.NewKernel()
	ch := NewChannel(k, DefaultChannelConfig(10*sim.Nanosecond, CompressConfig{INZ: true, Pcache: true}))
	type sent struct {
		id  uint32
		pos [3]int32
	}
	var inputs []sent
	var outputs []sent
	for step := int32(0); step < 6; step++ {
		for id := uint32(0); id < 200; id++ {
			pos := [3]int32{int32(id)*4096 + step*700, step * 650, -step * 800}
			inputs = append(inputs, sent{id, pos})
			ch.Send(posPacket(id, pos), func(q *packet.Packet) {
				outputs = append(outputs, sent{q.AtomID,
					[3]int32{int32(q.Payload[0]), int32(q.Payload[1]), int32(q.Payload[2])}})
			})
		}
		ch.Send(&packet.Packet{Type: packet.EndOfStep}, nil)
	}
	k.Run()
	if len(outputs) != len(inputs) {
		t.Fatalf("delivered %d of %d", len(outputs), len(inputs))
	}
	for i := range inputs {
		if inputs[i] != outputs[i] {
			t.Fatalf("packet %d corrupted: sent %+v got %+v", i, inputs[i], outputs[i])
		}
	}
	st := ch.Compressor().Stats()
	if st.Reduction() < 0.3 {
		t.Fatalf("warm compressing channel reduction = %v, want > 0.3", st.Reduction())
	}
	if !ch.Compressor().InSync() {
		t.Fatal("caches desynchronized")
	}
}

func TestEnabledString(t *testing.T) {
	if (CompressConfig{}).EnabledString() != "off" ||
		(CompressConfig{INZ: true}).EnabledString() != "inz" ||
		(CompressConfig{Pcache: true}).EnabledString() != "pcache" ||
		(CompressConfig{INZ: true, Pcache: true}).EnabledString() != "inz+pcache" {
		t.Fatal("EnabledString broken")
	}
}
