package serdes

import (
	"testing"

	"anton3/internal/packet"
	"anton3/internal/sim"
)

func testChannel() (*sim.Kernel, *Channel) {
	k := sim.NewKernel()
	ch := NewChannel(k, DefaultChannelConfig(34*sim.Nanosecond, CompressConfig{}))
	return k, ch
}

func TestDegradedBandwidthAndLatency(t *testing.T) {
	_, ref := testChannel()
	_, deg := testChannel()
	deg.SetFault(4, 3)

	refArr := ref.SendPacket(posPacket(1, [3]int32{1, 2, 3}))
	degArr := deg.SendPacket(posPacket(1, [3]int32{1, 2, 3}))

	ser := ref.SerializeTime(FullHeaderBits + packet.PayloadBits)
	wantRef := ser + 34*sim.Nanosecond
	wantDeg := 4*ser + 3*34*sim.Nanosecond
	if refArr != wantRef {
		t.Fatalf("healthy arrival %d, want %d", refArr, wantRef)
	}
	if degArr != wantDeg {
		t.Fatalf("degraded arrival %d, want %d", degArr, wantDeg)
	}
	// SerializeTime stays the HEALTHY unit: offered-load normalization
	// must not drift when a link degrades.
	if ref.SerializeTime(192) != deg.SerializeTime(192) {
		t.Fatal("SerializeTime changed under degradation")
	}
}

func TestDeadChannelPanics(t *testing.T) {
	_, ch := testChannel()
	ch.SetDead(true)
	if !ch.Dead() {
		t.Fatal("Dead() false after SetDead(true)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SendPacket on a dead channel did not panic")
		}
	}()
	ch.SendPacket(posPacket(1, [3]int32{0, 0, 0}))
}

func TestResetClearsFaults(t *testing.T) {
	_, ch := testChannel()
	ch.SetFault(8, 8)
	ch.SetDead(true)
	ch.Reset()
	if ch.Dead() {
		t.Fatal("Reset did not clear dead state")
	}
	arr := ch.SendPacket(posPacket(1, [3]int32{0, 0, 0}))
	ser := ch.SerializeTime(FullHeaderBits + packet.PayloadBits)
	if arr != ser+34*sim.Nanosecond {
		t.Fatalf("post-Reset arrival %d, want healthy %d", arr, ser+34*sim.Nanosecond)
	}
}
