// Package testutil holds helpers shared by the simulator test suites.
// It imports testing, so only _test.go files should depend on it.
package testutil

import "testing"

// Size selects between the full-size and -short variants of a test
// parameter. Short mode shrinks systems rather than skipping tests, so
// the CI fast lane still exercises every assertion.
func Size(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}
