//go:build race

package testutil

// RaceEnabled reports whether the race detector is compiled in. See
// race_off.go.
const RaceEnabled = true
