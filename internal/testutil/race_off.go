//go:build !race

package testutil

// RaceEnabled reports whether the race detector is compiled in.
// Allocation-count regression tests skip under -race: the instrumentation
// itself allocates, so testing.AllocsPerRun cannot pin zero there.
const RaceEnabled = false
