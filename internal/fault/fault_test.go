package fault

import (
	"strings"
	"testing"

	"anton3/internal/sim"
	"anton3/internal/topo"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		spec, canon string
	}{
		{"0,0,0:x+:dead", "0,0,0:x+:dead"},
		{" 1,2,3:y-.0:bw/4@50ns ", "1,2,3:y-.0:bw/4@50000"},
		{"0,1,0:z+:bw/2,lat*3", "0,1,0:z+:bw/2,lat*3"},
		{"0,0,1:x-:dead@2us;0,0,0:x+:bw/2", "0,0,0:x+:bw/2;0,0,1:x-:dead@2000000"},
		{"", ""},
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if got := p.Canon(); got != c.canon {
			t.Errorf("Parse(%q).Canon() = %q, want %q", c.spec, got, c.canon)
		}
		// Canon must be re-parseable to the same canon (fixed point).
		p2, err := Parse(p.Canon())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.Canon(), err)
		}
		if p2.Canon() != p.Canon() {
			t.Errorf("canon not a fixed point: %q -> %q", p.Canon(), p2.Canon())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"0,0:x+:dead",        // two coordinates
		"0,0,0:w+:dead",      // bad dim
		"0,0,0:x*:dead",      // bad dir
		"0,0,0:x+.2:dead",    // bad slice
		"0,0,0:x+:bw/1",      // divisor < 2
		"0,0,0:x+:lat*0",     // multiplier < 2
		"0,0,0:x+:slow",      // unknown effect
		"0,0,0:x+:dead@-5ns", // negative trip
		"0,0,0:x+",           // missing effects
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	ok, err := Parse("0,0,0:x+:dead;3,3,7:z-:bw/2@10ns")
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Validate(s); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}

	cases := []struct {
		spec, want string
	}{
		{"4,0,0:x+:dead", "outside shape"},
		{"0,0,0:x+:dead;0,0,0:x+.1:bw/2", "already faulted"},
		{"0,0,0:y+:dead", "extent"},
	}
	flat := topo.Shape{X: 4, Y: 1, Z: 8}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		sh := s
		if strings.Contains(c.want, "extent") {
			sh = flat
		}
		err = p.Validate(sh)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%q) = %v, want error containing %q", c.spec, err, c.want)
		}
	}

	var empty *Plan
	if err := empty.Validate(s); err != nil {
		t.Errorf("nil plan should validate: %v", err)
	}
}

func TestTripTimeUnits(t *testing.T) {
	p, err := Parse("0,0,0:x+:dead@3ns")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Links[0].TripAt; got != 3*sim.Nanosecond {
		t.Errorf("3ns parsed to %d ps, want %d", got, 3*sim.Nanosecond)
	}
	p, err = Parse("0,0,0:x+:dead@250")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Links[0].TripAt; got != 250 {
		t.Errorf("bare 250 parsed to %d ps, want 250", got)
	}
}

func TestSeverityGridDeterministic(t *testing.T) {
	s := topo.Shape{X: 4, Y: 4, Z: 8}
	a := SeverityGrid(s, 1)
	b := SeverityGrid(s, 1)
	if len(a) != 6 {
		t.Fatalf("grid has %d rows, want 6", len(a))
	}
	names := []string{"healthy", "bw2x1", "bw4x1", "dead1", "dead4", "deadcut"}
	for i := range a {
		if a[i].Name != names[i] {
			t.Errorf("row %d named %q, want %q", i, a[i].Name, names[i])
		}
		if ac, bc := a[i].Plan.Canon(), b[i].Plan.Canon(); ac != bc {
			t.Errorf("row %s not deterministic: %q vs %q", a[i].Name, ac, bc)
		}
		if err := a[i].Plan.Validate(s); err != nil {
			t.Errorf("row %s invalid: %v", a[i].Name, err)
		}
	}
	if !a[0].Plan.Empty() {
		t.Error("healthy row must be the empty plan")
	}
	// The two bw rows must degrade the same link so their knees compare.
	stripEffect := func(c string) string { return strings.SplitN(c, ":", 3)[0] + strings.SplitN(c, ":", 3)[1] }
	if stripEffect(a[1].Plan.Canon()) != stripEffect(a[2].Plan.Canon()) {
		t.Errorf("bw rows fault different links: %q vs %q", a[1].Plan.Canon(), a[2].Plan.Canon())
	}
	if len(a[4].Plan.Links) != 4 {
		t.Errorf("dead4 has %d links, want 4", len(a[4].Plan.Links))
	}
	// Multi-link rows must be structurally wedge-free: all dead links in one
	// dimension and direction, each on a distinct ring, so a committed
	// detour (which travels the opposite direction) can never hit a second
	// dead link.
	for _, row := range []Severity{a[4], a[5]} {
		d, dir := row.Plan.Links[0].Dim, row.Plan.Links[0].Dir
		rings := map[int]bool{}
		for _, f := range row.Plan.Links {
			if f.Dim != d || f.Dir != dir {
				t.Errorf("%s mixes dims/dirs: %s", row.Name, row.Plan.Canon())
			}
			ring := s.Index(f.Node.With(d, 0))
			if rings[ring] {
				t.Errorf("%s kills two links on one ring: %s", row.Name, row.Plan.Canon())
			}
			rings[ring] = true
		}
	}
	// The plane cut kills one link per ring of its dimension.
	cutDim := a[5].Plan.Links[0].Dim
	if got, want := len(a[5].Plan.Links), s.Nodes()/s.Get(cutDim); got != want {
		t.Errorf("deadcut has %d links, want one per ring = %d", got, want)
	}
	// Different seeds draw different links (overwhelmingly likely).
	c := SeverityGrid(s, 2)
	if a[3].Plan.Canon() == c[3].Plan.Canon() && a[1].Plan.Canon() == c[1].Plan.Canon() {
		t.Error("seeds 1 and 2 drew identical grids")
	}
}
