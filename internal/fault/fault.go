// Package fault describes deterministic link-fault plans for the torus
// network: per-channel health (dead links, bandwidth divisors, latency
// multipliers), either static from t=0 or scheduled to trip at a simulated
// timestamp. A Plan is pure data — the machine layer applies it — so the
// same plan text produces byte-identical behaviour at any shard count, and
// its canonical form hashes stably into resultstore keys.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"anton3/internal/sim"
	"anton3/internal/topo"
)

// Effect is what a fault does to a link. Dead wins over degradation; a
// degraded link divides its bandwidth by BWDiv (>= 2) and/or multiplies its
// fixed latency by LatMult (>= 2). Zero-valued divisor/multiplier fields
// mean "unchanged".
type Effect struct {
	Dead    bool
	BWDiv   int
	LatMult int
}

// Trivial reports whether the effect changes nothing.
func (e Effect) Trivial() bool { return !e.Dead && e.BWDiv == 0 && e.LatMult == 0 }

func (e Effect) String() string {
	if e.Dead {
		return "dead"
	}
	var parts []string
	if e.BWDiv != 0 {
		parts = append(parts, fmt.Sprintf("bw/%d", e.BWDiv))
	}
	if e.LatMult != 0 {
		parts = append(parts, fmt.Sprintf("lat*%d", e.LatMult))
	}
	return strings.Join(parts, ",")
}

// LinkFault targets one directed inter-node link: the channel(s) leaving
// Node in direction (Dim, Dir). Slice selects one of the two physical
// slices, or -1 for both. TripAt schedules the fault to fire at a simulated
// time; zero means static (present from reset).
type LinkFault struct {
	Node   topo.Coord
	Dim    topo.Dim
	Dir    int // +1 or -1
	Slice  int // 0, 1, or -1 for both slices
	Effect Effect
	TripAt sim.Time
}

func dimLetter(d topo.Dim) string {
	switch d {
	case topo.X:
		return "x"
	case topo.Y:
		return "y"
	default:
		return "z"
	}
}

func (f LinkFault) String() string {
	dir := "+"
	if f.Dir < 0 {
		dir = "-"
	}
	s := fmt.Sprintf("%d,%d,%d:%s%s", f.Node.X, f.Node.Y, f.Node.Z, dimLetter(f.Dim), dir)
	if f.Slice >= 0 {
		s += fmt.Sprintf(".%d", f.Slice)
	}
	s += ":" + f.Effect.String()
	if f.TripAt != 0 {
		s += fmt.Sprintf("@%d", int64(f.TripAt))
	}
	return s
}

// Plan is a set of link faults. The zero value is the healthy plan.
type Plan struct {
	Links []LinkFault
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Links) == 0 }

// HasDead reports whether any fault kills a link outright.
func (p *Plan) HasDead() bool {
	if p == nil {
		return false
	}
	for _, f := range p.Links {
		if f.Effect.Dead {
			return true
		}
	}
	return false
}

// Canon returns a canonical text form of the plan: every fault rendered in
// normalized syntax, sorted, joined with ";". Two equivalent plans produce
// the same string, so it is safe to hash into cache keys. The empty plan
// canonicalizes to "".
func (p *Plan) Canon() string {
	if p.Empty() {
		return ""
	}
	parts := make([]string, len(p.Links))
	for i, f := range p.Links {
		parts[i] = f.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// Validate checks the plan against a machine shape: nodes must lie inside
// the shape, faulted dimensions must actually have links (extent >= 2),
// directions must be +-1, slices in {-1, 0, 1}, effects non-trivial with
// sane divisors/multipliers, and no two faults may target the same channel.
func (p *Plan) Validate(s topo.Shape) error {
	if p.Empty() {
		return nil
	}
	type chanKey struct {
		node  topo.Coord
		dim   topo.Dim
		dir   int
		slice int
	}
	seen := make(map[chanKey]bool, 2*len(p.Links))
	for _, f := range p.Links {
		if f.Node.X < 0 || f.Node.X >= s.X || f.Node.Y < 0 || f.Node.Y >= s.Y ||
			f.Node.Z < 0 || f.Node.Z >= s.Z {
			return fmt.Errorf("fault %q: node outside shape %s", f, s)
		}
		if f.Dim > topo.Z {
			return fmt.Errorf("fault %q: bad dimension", f)
		}
		if s.Get(f.Dim) < 2 {
			return fmt.Errorf("fault %q: dimension %s has extent %d in shape %s — no links to fault",
				f, f.Dim, s.Get(f.Dim), s)
		}
		if f.Dir != 1 && f.Dir != -1 {
			return fmt.Errorf("fault %q: direction must be +1 or -1", f)
		}
		if f.Slice < -1 || f.Slice > 1 {
			return fmt.Errorf("fault %q: slice must be 0, 1 or -1 (both)", f)
		}
		if f.Effect.Trivial() {
			return fmt.Errorf("fault %q: effect changes nothing", f)
		}
		if f.Effect.BWDiv < 0 || f.Effect.BWDiv == 1 {
			return fmt.Errorf("fault %q: bandwidth divisor must be >= 2", f)
		}
		if f.Effect.LatMult < 0 || f.Effect.LatMult == 1 {
			return fmt.Errorf("fault %q: latency multiplier must be >= 2", f)
		}
		if f.TripAt < 0 {
			return fmt.Errorf("fault %q: trip time must be >= 0", f)
		}
		slices := []int{f.Slice}
		if f.Slice < 0 {
			slices = []int{0, 1}
		}
		for _, sl := range slices {
			k := chanKey{f.Node, f.Dim, f.Dir, sl}
			if seen[k] {
				return fmt.Errorf("fault %q: channel already faulted by an earlier entry", f)
			}
			seen[k] = true
		}
	}
	return nil
}

// Parse reads a plan from its text form: ";"-separated entries, each
//
//	X,Y,Z:<dim><dir>[.<slice>]:<effect>[,<effect>...][@<trip>]
//
// where <dim> is x|y|z, <dir> is +|-, <slice> is 0|1 (omitted = both), an
// <effect> is "dead", "bw/K" or "lat*M", and <trip> is a simulated time with
// an optional ps/ns/us suffix (bare integers are picoseconds). Examples:
//
//	0,0,0:x+:dead
//	1,2,3:y-.0:bw/4@50ns
//	0,1,0:z+:bw/2,lat*3
//
// Parse only checks syntax; Validate checks the plan against a shape.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return &Plan{}, nil
	}
	var p Plan
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		f, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		p.Links = append(p.Links, f)
	}
	return &p, nil
}

func parseEntry(entry string) (LinkFault, error) {
	var f LinkFault
	bad := func(why string) (LinkFault, error) {
		return LinkFault{}, fmt.Errorf("fault entry %q: %s", entry, why)
	}
	parts := strings.SplitN(entry, ":", 3)
	if len(parts) != 3 {
		return bad(`want "X,Y,Z:<dim><dir>[.<slice>]:<effects>[@trip]"`)
	}
	coords := strings.Split(parts[0], ",")
	if len(coords) != 3 {
		return bad("node must be X,Y,Z")
	}
	vals := make([]int, 3)
	for i, c := range coords {
		v, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil {
			return bad("bad node coordinate " + c)
		}
		vals[i] = v
	}
	f.Node = topo.Coord{X: vals[0], Y: vals[1], Z: vals[2]}

	link := parts[1]
	f.Slice = -1
	if i := strings.IndexByte(link, '.'); i >= 0 {
		sl, err := strconv.Atoi(link[i+1:])
		if err != nil || sl < 0 || sl > 1 {
			return bad("slice must be 0 or 1")
		}
		f.Slice = sl
		link = link[:i]
	}
	if len(link) != 2 {
		return bad(`link must be <dim><dir>, e.g. "x+"`)
	}
	switch link[0] {
	case 'x':
		f.Dim = topo.X
	case 'y':
		f.Dim = topo.Y
	case 'z':
		f.Dim = topo.Z
	default:
		return bad("dimension must be x, y or z")
	}
	switch link[1] {
	case '+':
		f.Dir = 1
	case '-':
		f.Dir = -1
	default:
		return bad("direction must be + or -")
	}

	effects := parts[2]
	if i := strings.IndexByte(effects, '@'); i >= 0 {
		t, err := parseTime(effects[i+1:])
		if err != nil {
			return bad(err.Error())
		}
		f.TripAt = t
		effects = effects[:i]
	}
	for _, e := range strings.Split(effects, ",") {
		e = strings.TrimSpace(e)
		switch {
		case e == "dead":
			f.Effect.Dead = true
		case strings.HasPrefix(e, "bw/"):
			k, err := strconv.Atoi(e[len("bw/"):])
			if err != nil || k < 2 {
				return bad("bandwidth divisor must be an integer >= 2")
			}
			f.Effect.BWDiv = k
		case strings.HasPrefix(e, "lat*"):
			m, err := strconv.Atoi(e[len("lat*"):])
			if err != nil || m < 2 {
				return bad("latency multiplier must be an integer >= 2")
			}
			f.Effect.LatMult = m
		default:
			return bad(fmt.Sprintf(`unknown effect %q (want "dead", "bw/K" or "lat*M")`, e))
		}
	}
	if f.Effect.Trivial() {
		return bad("no effect given")
	}
	return f, nil
}

func parseTime(s string) (sim.Time, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "ps"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		s, mult = s[:len(s)-2], 1000
	case strings.HasSuffix(s, "us"):
		s, mult = s[:len(s)-2], 1000*1000
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad trip time %q (want a non-negative integer with optional ps/ns/us suffix)", s)
	}
	return sim.Time(v * mult), nil
}

// Severity is one named row of a fault-severity grid.
type Severity struct {
	Name string
	Plan Plan
}

// SeverityGrid builds the standard severity ladder for a shape, drawn
// deterministically from seed: healthy, one link at half bandwidth, one link
// at quarter bandwidth (same link, so the bw rows are comparable), one dead
// directed link, four dead directed links, and a directed plane cut (every
// link of one dimension-direction at one coordinate — the heavy row that
// visibly shifts the saturation knee).
//
// Multi-link rows keep every dead link in ONE dimension and ONE direction,
// each on a distinct ring. A packet detouring around a dead link reverses
// and commits to the opposite direction, which such a plan never touches —
// so rerouted traffic can never run into a second dead link, and delivery
// stays guaranteed for every policy exactly as in the single-link property
// sweep. (An opposite-direction pair on one ring would trap committed
// detours and wedge the run; the drawn grid never produces one.)
func SeverityGrid(s topo.Shape, seed uint64) []Severity {
	rng := sim.NewRand(seed)
	draw := func() (topo.Coord, topo.Dim, int) {
		for {
			c := s.CoordOf(rng.Intn(s.Nodes()))
			d := topo.Dim(rng.Intn(3))
			if s.Get(d) < 2 {
				continue
			}
			dir := 1
			if rng.Intn(2) == 1 {
				dir = -1
			}
			return c, d, dir
		}
	}
	bwNode, bwDim, bwDir := draw()
	deadNode, deadDim, deadDir := draw()

	// The multi-link rows use the faultable dimension with the most rings
	// (most room for distinct rings, heaviest plane cut); the direction and
	// ring positions are drawn.
	multiDim := topo.X
	rings := 0
	for d := topo.X; d <= topo.Z; d++ {
		if s.Get(d) < 2 {
			continue
		}
		if r := s.Nodes() / s.Get(d); r > rings {
			multiDim, rings = d, r
		}
	}
	multiDir := 1
	if rng.Intn(2) == 1 {
		multiDir = -1
	}

	link := func(c topo.Coord, d topo.Dim, dir int, e Effect) LinkFault {
		return LinkFault{Node: c, Dim: d, Dir: dir, Slice: -1, Effect: e}
	}
	grid := []Severity{
		{Name: "healthy"},
		{Name: "bw2x1", Plan: Plan{Links: []LinkFault{link(bwNode, bwDim, bwDir, Effect{BWDiv: 2})}}},
		{Name: "bw4x1", Plan: Plan{Links: []LinkFault{link(bwNode, bwDim, bwDir, Effect{BWDiv: 4})}}},
		{Name: "dead1", Plan: Plan{Links: []LinkFault{link(deadNode, deadDim, deadDir, Effect{Dead: true})}}},
	}

	want := 4
	if rings < want {
		want = rings
	}
	var dead4 []LinkFault
	seenRing := map[int]bool{}
	for len(dead4) < want {
		c := s.CoordOf(rng.Intn(s.Nodes()))
		ring := s.Index(c.With(multiDim, 0))
		if seenRing[ring] {
			continue
		}
		seenRing[ring] = true
		dead4 = append(dead4, link(c, multiDim, multiDir, Effect{Dead: true}))
	}
	grid = append(grid, Severity{Name: "dead4", Plan: Plan{Links: dead4}})

	cutAt := rng.Intn(s.Get(multiDim))
	var cut []LinkFault
	for i := 0; i < s.Nodes(); i++ {
		if c := s.CoordOf(i); c.Get(multiDim) == cutAt {
			cut = append(cut, link(c, multiDim, multiDir, Effect{Dead: true}))
		}
	}
	grid = append(grid, Severity{Name: "deadcut", Plan: Plan{Links: cut}})
	return grid
}
