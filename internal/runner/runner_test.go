package runner

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anton3/internal/sim"
)

// noisyJobs builds jobs whose output depends only on their own seed, like
// every experiment in this repository: each draws from its private RNG and
// sleeps a pseudo-random amount so completion order scrambles under
// parallelism.
func noisyJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name: fmt.Sprintf("job%02d", i),
			Seed: uint64(1000 + i),
			Cost: float64(i % 3),
			Run: func(rng *sim.Rand) (Output, error) {
				time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				v := rng.Uint64()
				return Output{
					Text: fmt.Sprintf("job %d drew %d", i, v),
					Data: map[string]uint64{"draw": v},
				}, nil
			},
		}
	}
	return jobs
}

func TestParallelMatchesSequential(t *testing.T) {
	seq, err := Run(noisyJobs(16), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(noisyJobs(16), 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.RenderAll() != par.RenderAll() {
		t.Fatalf("parallel output differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s",
			seq.RenderAll(), par.RenderAll())
	}
	for i := range seq.Results {
		if seq.Results[i].Name != par.Results[i].Name {
			t.Fatalf("result order differs at %d: %s vs %s",
				i, seq.Results[i].Name, par.Results[i].Name)
		}
	}
	if par.Workers != 8 || seq.Workers != 1 {
		t.Fatalf("workers recorded wrong: %d, %d", par.Workers, seq.Workers)
	}
}

func TestSeedsIndependentOfWorkerCount(t *testing.T) {
	// The RNG handed to a job must be a function of the job's seed only.
	draws := func(workers int) []uint64 {
		var out [8]uint64
		jobs := make([]Job, 8)
		for i := range jobs {
			i := i
			jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Seed: uint64(i * 7),
				Run: func(rng *sim.Rand) (Output, error) {
					out[i] = rng.Uint64()
					return Output{}, nil
				}}
		}
		if _, err := Run(jobs, workers); err != nil {
			t.Fatal(err)
		}
		return out[:]
	}
	a, b := draws(1), draws(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d drew %d at 1 worker but %d at 4", i, a[i], b[i])
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	boom := errors.New("kernel exploded")
	jobs := noisyJobs(6)
	jobs[3].Run = func(*sim.Rand) (Output, error) { return Output{}, boom }
	rep, err := Run(jobs, 4)
	if err == nil {
		t.Fatal("job error not propagated")
	}
	if want := `runner: job "job03": kernel exploded`; err.Error() != want {
		t.Fatalf("err = %q, want %q", err, want)
	}
	// The report still carries every result, with the failure marked.
	if len(rep.Results) != 6 {
		t.Fatalf("got %d results, want 6", len(rep.Results))
	}
	if rep.Results[3].Err != "kernel exploded" {
		t.Fatalf("failed job not marked: %+v", rep.Results[3])
	}
	if rep.Results[2].Text == "" || rep.Results[4].Text == "" {
		t.Fatal("healthy jobs discarded on sibling failure")
	}
}

func TestCostHintOrdersDispatchNotOutput(t *testing.T) {
	var first atomic.Value
	jobs := make([]Job, 4)
	for i := range jobs {
		i := i
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Cost: float64(i),
			Run: func(*sim.Rand) (Output, error) {
				first.CompareAndSwap(nil, i)
				return Output{Text: fmt.Sprintf("out%d", i)}, nil
			}}
	}
	rep, err := Run(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := first.Load().(int); got != 3 {
		t.Fatalf("most expensive job dispatched %dth, want first", got)
	}
	if rep.Results[0].Text != "out0" || rep.Results[3].Text != "out3" {
		t.Fatalf("output not in submission order: %+v", rep.Results)
	}
}

func TestEmitStreamsInSubmissionOrder(t *testing.T) {
	jobs := noisyJobs(12)
	var emitted []string
	rep, err := RunEmit(jobs, 4, func(r Result) {
		emitted = append(emitted, r.Name)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != len(jobs) {
		t.Fatalf("emitted %d of %d results", len(emitted), len(jobs))
	}
	for i, name := range emitted {
		if name != jobs[i].Name {
			t.Fatalf("emit order broke at %d: got %s, want %s (full order %v)",
				i, name, jobs[i].Name, emitted)
		}
	}
	if rep.Results[11].Name != "job11" {
		t.Fatalf("report results wrong: %+v", rep.Results[11])
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run(noisyJobs(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_runner.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Jobs != rep.Jobs || back.Workers != rep.Workers ||
		back.WallNs != rep.WallNs || back.SerialNs != rep.SerialNs ||
		back.CPUNs != rep.CPUNs || back.Speedup != rep.Speedup {
		t.Fatalf("header fields did not round-trip:\n%+v\n%+v", rep, back)
	}
	for i := range rep.Results {
		if back.Results[i].Name != rep.Results[i].Name ||
			back.Results[i].Seed != rep.Results[i].Seed ||
			back.Results[i].Text != rep.Results[i].Text ||
			back.Results[i].WallNs != rep.Results[i].WallNs {
			t.Fatalf("result %d did not round-trip:\n%+v\n%+v",
				i, rep.Results[i], back.Results[i])
		}
	}
	if back.Results[0].Data == nil {
		t.Fatal("data payload lost in round-trip")
	}
}

func TestEmptyAndOversubscribed(t *testing.T) {
	rep, err := Run(nil, 8)
	if err != nil || rep.Jobs != 0 || rep.Speedup != 1 {
		t.Fatalf("empty run: %+v, %v", rep, err)
	}
	// More workers than jobs must clamp, not deadlock.
	rep, err = Run(noisyJobs(2), 64)
	if err != nil || rep.Workers != 2 {
		t.Fatalf("oversubscribed run: workers=%d, %v", rep.Workers, err)
	}
}

func TestReduceJobSeesInputsInNeedsOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		jobs := []Job{
			{Name: "shard-a", Seed: 1, Hidden: true, Run: func(*sim.Rand) (Output, error) {
				time.Sleep(2 * time.Millisecond) // finish after shard-b under parallelism
				return Output{Text: "hidden-a", Data: 10}, nil
			}},
			{Name: "shard-b", Seed: 2, Hidden: true, Run: func(*sim.Rand) (Output, error) {
				return Output{Text: "hidden-b", Data: 32}, nil
			}},
			{Name: "sum", Seed: 3, Needs: []string{"shard-a", "shard-b"},
				Reduce: func(_ *sim.Rand, in []Result) (Output, error) {
					if len(in) != 2 || in[0].Name != "shard-a" || in[1].Name != "shard-b" {
						return Output{}, fmt.Errorf("inputs out of order: %v", in)
					}
					return Output{Text: fmt.Sprintf("sum=%d", in[0].Data.(int)+in[1].Data.(int))}, nil
				}},
		}
		rep, err := Run(jobs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want := "sum=42\n"; rep.RenderAll() != want {
			t.Fatalf("workers=%d: RenderAll = %q, want %q (hidden shards excluded)", workers, rep.RenderAll(), want)
		}
		if !rep.Results[0].Hidden || rep.Results[2].Hidden {
			t.Fatalf("workers=%d: hidden flags not recorded", workers)
		}
	}
}

func TestReduceChainsAndEmitOrder(t *testing.T) {
	// A diamond: two shards -> mid reducer -> final reducer, plus an
	// independent job. Emission must still be submission order.
	jobs := []Job{
		{Name: "s1", Hidden: true, Run: func(*sim.Rand) (Output, error) { return Output{Data: 1}, nil }},
		{Name: "s2", Hidden: true, Run: func(*sim.Rand) (Output, error) { return Output{Data: 2}, nil }},
		{Name: "mid", Hidden: true, Needs: []string{"s1", "s2"},
			Reduce: func(_ *sim.Rand, in []Result) (Output, error) {
				return Output{Data: in[0].Data.(int) + in[1].Data.(int)}, nil
			}},
		{Name: "final", Needs: []string{"mid"},
			Reduce: func(_ *sim.Rand, in []Result) (Output, error) {
				return Output{Text: fmt.Sprintf("final=%d", in[0].Data.(int))}, nil
			}},
		{Name: "solo", Run: func(*sim.Rand) (Output, error) { return Output{Text: "solo"}, nil }},
	}
	var emitted []string
	rep, err := RunEmit(jobs, 3, func(r Result) { emitted = append(emitted, r.Name) })
	if err != nil {
		t.Fatal(err)
	}
	if want := "final=3\nsolo\n"; rep.RenderAll() != want {
		t.Fatalf("RenderAll = %q, want %q", rep.RenderAll(), want)
	}
	want := []string{"s1", "s2", "mid", "final", "solo"}
	if len(emitted) != len(want) {
		t.Fatalf("emitted %v", emitted)
	}
	for i := range want {
		if emitted[i] != want[i] {
			t.Fatalf("emit order %v, want %v", emitted, want)
		}
	}
}

func TestDependencyValidation(t *testing.T) {
	run := func(*sim.Rand) (Output, error) { return Output{}, nil }
	red := func(*sim.Rand, []Result) (Output, error) { return Output{}, nil }
	cases := []struct {
		name string
		jobs []Job
	}{
		{"unknown need", []Job{{Name: "a", Needs: []string{"ghost"}, Reduce: red}}},
		{"duplicate name", []Job{{Name: "a", Run: run}, {Name: "a", Run: run}}},
		{"needs without reduce", []Job{{Name: "a", Run: run}, {Name: "b", Needs: []string{"a"}, Run: run}}},
		{"reduce without needs", []Job{{Name: "a", Run: run, Reduce: red}}},
		{"no run", []Job{{Name: "a"}}},
		{"self cycle via pair", []Job{
			{Name: "a", Needs: []string{"b"}, Reduce: red},
			{Name: "b", Needs: []string{"a"}, Reduce: red},
		}},
	}
	for _, c := range cases {
		if _, err := Run(c.jobs, 2); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

func TestReduceSeesDependencyError(t *testing.T) {
	jobs := []Job{
		{Name: "bad", Hidden: true, Run: func(*sim.Rand) (Output, error) {
			return Output{}, errors.New("shard failed")
		}},
		{Name: "agg", Needs: []string{"bad"},
			Reduce: func(_ *sim.Rand, in []Result) (Output, error) {
				if in[0].Err != "" {
					return Output{}, fmt.Errorf("input %s: %s", in[0].Name, in[0].Err)
				}
				return Output{Text: "ok"}, nil
			}},
	}
	rep, err := Run(jobs, 2)
	if err == nil {
		t.Fatal("expected propagated error")
	}
	if rep.Results[1].Err == "" {
		t.Fatal("reducer should have reported the shard failure")
	}
}

// TestAutoShardPromotesLongPole checks the idle-worker budgeting: with
// spare workers, the most expensive ready shardable job runs through
// ShardRun with the spare capacity; without Options.AutoShard, ShardRun is
// never used.
func TestAutoShardPromotesLongPole(t *testing.T) {
	var mu sync.Mutex
	granted := map[string]int{}
	mk := func(name string, cost float64, shardable bool) Job {
		j := Job{Name: name, Cost: cost, Run: func(*sim.Rand) (Output, error) {
			mu.Lock()
			granted[name] = 1
			mu.Unlock()
			return Output{Text: name}, nil
		}}
		if shardable {
			j.ShardRun = func(_ *sim.Rand, shards int) (Output, error) {
				mu.Lock()
				granted[name] = shards
				mu.Unlock()
				return Output{Text: name}, nil
			}
		}
		return j
	}

	// One shardable long pole, four workers, nothing else ready: the pole
	// should get all the spare capacity.
	rep, err := RunEmitOpts([]Job{mk("pole", 10, true)}, 4, Options{AutoShard: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Text != "pole" {
		t.Fatalf("unexpected result %+v", rep.Results[0])
	}
	if granted["pole"] != 4 {
		t.Fatalf("long pole granted %d shards, want 4", granted["pole"])
	}

	// Enough ready jobs to occupy every worker: no spare, no promotion.
	granted = map[string]int{}
	jobs := []Job{mk("a", 4, true), mk("b", 3, true), mk("c", 2, true), mk("d", 1, true)}
	if _, err := RunEmitOpts(jobs, 4, Options{AutoShard: true}, nil); err != nil {
		t.Fatal(err)
	}
	for name, g := range granted {
		if g != 1 {
			t.Fatalf("job %s promoted to %d shards with a full pool", name, g)
		}
	}

	// Two shardable jobs on four workers: the spare pair of cores splits,
	// one extra shard budget to each (2 + 2 = the core budget).
	granted = map[string]int{}
	if _, err := RunEmitOpts([]Job{mk("a", 2, true), mk("b", 1, true)}, 4, Options{AutoShard: true}, nil); err != nil {
		t.Fatal(err)
	}
	if granted["a"] != 2 || granted["b"] != 2 {
		t.Fatalf("2 jobs on 4 workers granted a=%d b=%d shards, want 2 and 2", granted["a"], granted["b"])
	}

	// AutoShard off: ShardRun untouched even with idle workers.
	granted = map[string]int{}
	if _, err := RunEmitOpts([]Job{mk("pole", 10, true)}, 4, Options{}, nil); err != nil {
		t.Fatal(err)
	}
	if granted["pole"] != 1 {
		t.Fatalf("ShardRun used without AutoShard (granted %d)", granted["pole"])
	}

	// Promotion accounts cores, not jobs: three shardable jobs on an
	// 8-core budget dispatch together, and the granted shard counts must
	// sum to at most the budget (the first promotion holds 4 cores, so
	// later dispatches see less spare — not 4+4+4=12 goroutines).
	granted = map[string]int{}
	jobs = []Job{mk("a", 3, true), mk("b", 2, true), mk("c", 1, true)}
	if _, err := RunEmitOpts(jobs, 8, Options{AutoShard: true}, nil); err != nil {
		t.Fatal(err)
	}
	if total := granted["a"] + granted["b"] + granted["c"]; total > 8 {
		t.Fatalf("3 jobs on 8 cores granted %d total shards (a=%d b=%d c=%d), budget 8",
			total, granted["a"], granted["b"], granted["c"])
	}
	if granted["a"] != 4 {
		t.Fatalf("most expensive job granted %d shards, want 4", granted["a"])
	}
}
