//go:build unix

package runner

import "syscall"

// processCPUNs reports the process's cumulative CPU time (user + system).
// The delta across a pool run is the work actually done, which makes the
// reported speedup honest: wall-clock parallelism, not goroutine
// time-sharing, is what divides it down.
func processCPUNs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
