//go:build !unix

package runner

// processCPUNs is unavailable off unix; Run falls back to the sum of
// per-job wall times as its serial estimate.
func processCPUNs() int64 { return 0 }
