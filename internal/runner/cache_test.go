package runner

import (
	"fmt"
	"sync/atomic"
	"testing"

	"anton3/internal/resultstore"
	"anton3/internal/sim"
)

// cacheableJobs builds n Run-only jobs with content-addressed keys and a
// shared execution counter, so tests can prove whether a run simulated or
// replayed.
func cacheableJobs(n int, executed *atomic.Int64) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name:     fmt.Sprintf("cell%02d", i),
			Seed:     uint64(3000 + i),
			CacheKey: resultstore.KeyFor("test/cell", uint64(3000+i), struct{ N int }{i}),
			Run: func(rng *sim.Rand) (Output, error) {
				executed.Add(1)
				return Output{Text: fmt.Sprintf("cell %d drew %d", i, rng.Uint64())}, nil
			},
		}
	}
	return jobs
}

// TestCacheShortCircuitsJobs checks the job-grain memoization end to end:
// a second run against the same store executes nothing, marks every
// result Cached, reports the traffic in Report.Cache, and renders output
// byte-identical to the first (uncached-path) run.
func TestCacheShortCircuitsJobs(t *testing.T) {
	store := resultstore.OpenMemory()
	var executed atomic.Int64

	first, err := RunEmitOpts(cacheableJobs(8, &executed), 4, Options{Cache: store}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 8 {
		t.Fatalf("cold run executed %d jobs, want 8", got)
	}
	if first.Cache == nil || first.Cache.Stored != 8 || first.Cache.Hits != 0 {
		t.Fatalf("cold run cache stats %+v, want 8 stored, 0 hits", first.Cache)
	}
	for _, r := range first.Results {
		if r.Cached {
			t.Fatalf("cold run result %s marked Cached", r.Name)
		}
	}

	second, err := RunEmitOpts(cacheableJobs(8, &executed), 4, Options{Cache: store}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 8 {
		t.Fatalf("warm run executed %d extra jobs, want 0", got-8)
	}
	if second.Cache == nil || second.Cache.Hits != 8 || second.Cache.Misses != 0 {
		t.Fatalf("warm run cache stats %+v, want 8 hits, 0 misses", second.Cache)
	}
	for _, r := range second.Results {
		if !r.Cached {
			t.Fatalf("warm run result %s not marked Cached", r.Name)
		}
	}
	if first.RenderAll() != second.RenderAll() {
		t.Fatalf("warm output differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s",
			first.RenderAll(), second.RenderAll())
	}
}

// TestCacheIgnoredWithoutStore checks that a valid CacheKey is inert when
// the pool runs without Options.Cache — the default path must behave
// exactly as if the key were absent.
func TestCacheIgnoredWithoutStore(t *testing.T) {
	var executed atomic.Int64
	rep, err := Run(cacheableJobs(4, &executed), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 4 {
		t.Fatalf("executed %d jobs, want 4", got)
	}
	if rep.Cache != nil {
		t.Fatalf("Report.Cache %+v without a store, want nil", rep.Cache)
	}
	for _, r := range rep.Results {
		if r.Cached {
			t.Fatalf("result %s marked Cached without a store", r.Name)
		}
	}
}

// TestCacheKeyRejectedOnReducePaths checks the static validation that
// keeps memoized Data type-faithful: a cached Data round-trips as generic
// JSON, so a Reduce job may not be memoized and a memoized job may not
// feed one.
func TestCacheKeyRejectedOnReducePaths(t *testing.T) {
	run := func(*sim.Rand) (Output, error) { return Output{}, nil }
	red := func(*sim.Rand, []Result) (Output, error) { return Output{}, nil }
	key := resultstore.KeyFor("test/cell", 1, struct{}{})
	cases := []struct {
		name string
		jobs []Job
	}{
		{"key on reduce job", []Job{
			{Name: "a", Run: run},
			{Name: "agg", Needs: []string{"a"}, CacheKey: key, Reduce: red},
		}},
		{"key on job feeding a reduce", []Job{
			{Name: "a", CacheKey: key, Run: run},
			{Name: "agg", Needs: []string{"a"}, Reduce: red},
		}},
	}
	for _, c := range cases {
		if _, err := Run(c.jobs, 2); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}
