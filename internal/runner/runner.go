// Package runner executes independent experiments on a worker pool.
//
// Every experiment in this repository is a pure function of its
// configuration and seed: it builds a private sim.Kernel, runs it, and
// returns rows. Kernels share no state, so independent experiments can run
// on separate goroutines — the runner exploits that to use every core while
// keeping output deterministic:
//
//   - each Job carries its own seed, from which the runner derives a fresh
//     sim.Rand; random streams never depend on which worker runs the job or
//     in what order jobs finish;
//   - results are collected by job index and rendered in submission order,
//     so the concatenated output is byte-identical to a sequential run.
//
// The aggregated Report records per-job wall times, the pool's wall time,
// and the speedup over the serial estimate, and serializes to JSON for CI
// artifacts (BENCH_runner.json).
package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"anton3/internal/sim"
)

// Output is what a job's Run function produces: a rendered table/figure
// plus the typed rows behind it.
type Output struct {
	Text string // rendered table or figure, as printed by cmd/anton3
	Data any    // typed result rows, serialized into the JSON artifact
}

// Job is one self-contained experiment.
type Job struct {
	// Name identifies the job in reports and artifacts ("fig5", "tables").
	Name string
	// Seed derives the job's private RNG. Jobs with the same seed produce
	// identical streams regardless of worker or completion order.
	Seed uint64
	// Cost is a relative expected-runtime hint. The pool starts expensive
	// jobs first so the long pole overlaps the small jobs instead of
	// trailing them; it has no effect on output, only on wall time.
	Cost float64
	// Run executes the experiment with the job's seeded RNG.
	Run func(rng *sim.Rand) (Output, error)
}

// Result is one job's outcome inside a Report.
type Result struct {
	Name   string `json:"name"`
	Seed   uint64 `json:"seed"`
	Text   string `json:"text"`
	Data   any    `json:"data,omitempty"`
	WallNs int64  `json:"wall_ns"`
	Err    string `json:"err,omitempty"`
}

// Report aggregates a pool run.
//
// Speedup is CPUNs/WallNs where process CPU accounting is available
// (unix): the CPU seconds a run consumes equal its sequential wall time
// for these CPU-bound jobs, so the ratio is the true wall-clock speedup
// and honestly reports ~1x on a single-core machine. SerialNs — the sum
// of per-job wall times — is the fallback divisor elsewhere; it inflates
// under core oversubscription, so prefer the CPU-based number.
type Report struct {
	Jobs     int      `json:"jobs"`
	Workers  int      `json:"workers"`
	WallNs   int64    `json:"wall_ns"`   // pool wall-clock time
	CPUNs    int64    `json:"cpu_ns"`    // process CPU consumed by the run
	SerialNs int64    `json:"serial_ns"` // sum of per-job wall times
	Speedup  float64  `json:"speedup"`   // CPUNs / WallNs (SerialNs fallback)
	Results  []Result `json:"results"`   // in submission order
}

// Run executes jobs on a pool of workers goroutines and returns the
// aggregated report. workers <= 0 means runtime.GOMAXPROCS(0). The first
// job error is returned (the report still carries every result, including
// the failed job's Err); a panicking job propagates its panic.
func Run(jobs []Job, workers int) (Report, error) {
	return RunEmit(jobs, workers, nil)
}

// RunEmit is Run with streaming: emit (if non-nil) is called on the
// caller's goroutine with each Result in submission order, as soon as
// that result and all earlier ones have completed. A driver printing
// emitted texts produces output byte-identical to a sequential run
// without waiting for the whole pool to drain.
func RunEmit(jobs []Job, workers int, emit func(Result)) (Report, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	rep := Report{Jobs: len(jobs), Workers: workers, Results: make([]Result, len(jobs))}
	if len(jobs) == 0 {
		rep.Speedup = 1
		return rep, nil
	}

	// Dispatch expensive jobs first so the longest job starts at t=0.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Cost > jobs[order[b]].Cost
	})

	start := time.Now()
	cpu0 := processCPUNs()
	next := make(chan int)
	done := make(chan int, len(jobs)) // buffered: workers never block here
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				job := jobs[idx]
				res := Result{Name: job.Name, Seed: job.Seed}
				t0 := time.Now()
				out, err := job.Run(sim.NewRand(job.Seed))
				res.WallNs = time.Since(t0).Nanoseconds()
				if err != nil {
					res.Err = err.Error()
				} else {
					res.Text = out.Text
					res.Data = out.Data
				}
				rep.Results[idx] = res
				done <- idx
			}
		}()
	}
	go func() {
		for _, idx := range order {
			next <- idx
		}
		close(next)
	}()
	// Emit the contiguous completed prefix as completions arrive; the
	// receive on done orders each Results write before its read here.
	completed := make([]bool, len(jobs))
	emitted := 0
	for range jobs {
		completed[<-done] = true
		for emitted < len(jobs) && completed[emitted] {
			if emit != nil {
				emit(rep.Results[emitted])
			}
			emitted++
		}
	}
	wg.Wait()
	rep.WallNs = time.Since(start).Nanoseconds()
	if cpu1 := processCPUNs(); cpu1 > cpu0 {
		rep.CPUNs = cpu1 - cpu0
	}

	var firstErr error
	for _, r := range rep.Results {
		rep.SerialNs += r.WallNs
		if r.Err != "" && firstErr == nil {
			firstErr = fmt.Errorf("runner: job %q: %s", r.Name, r.Err)
		}
	}
	if rep.WallNs > 0 {
		work := rep.CPUNs
		if work == 0 {
			work = rep.SerialNs
		}
		rep.Speedup = float64(work) / float64(rep.WallNs)
	}
	return rep, firstErr
}

// RenderAll concatenates the rendered outputs in submission order, one
// blank line between jobs — exactly what a sequential driver would print.
func (r Report) RenderAll() string {
	var out []byte
	for _, res := range r.Results {
		out = append(out, res.Text...)
		out = append(out, '\n')
	}
	return string(out)
}

// WriteJSON writes the report as indented JSON to path.
func (r Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadJSON loads a report previously written with WriteJSON. Data fields
// round-trip as generic JSON values (maps/slices), not the original types.
func ReadJSON(path string) (Report, error) {
	var rep Report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(b, &rep)
	return rep, err
}
