// Package runner executes independent experiments on a worker pool.
//
// Every experiment in this repository is a pure function of its
// configuration and seed: it builds a private sim.Kernel, runs it, and
// returns rows. Kernels share no state, so independent experiments can run
// on separate goroutines — the runner exploits that to use every core while
// keeping output deterministic:
//
//   - each Job carries its own seed, from which the runner derives a fresh
//     sim.Rand; random streams never depend on which worker runs the job or
//     in what order jobs finish;
//   - results are collected by job index and rendered in submission order,
//     so the concatenated output is byte-identical to a sequential run.
//
// The aggregated Report records per-job wall times, the pool's wall time,
// and the speedup over the serial estimate, and serializes to JSON for CI
// artifacts (BENCH_runner.json).
package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"anton3/internal/resultstore"
	"anton3/internal/sim"
)

// Output is what a job's Run function produces: a rendered table/figure
// plus the typed rows behind it.
type Output struct {
	Text string // rendered table or figure, as printed by cmd/anton3
	Data any    // typed result rows, serialized into the JSON artifact
}

// Job is one self-contained experiment, or a reduction over other jobs.
type Job struct {
	// Name identifies the job in reports and artifacts ("fig5", "tables").
	// Names must be unique within one Run.
	Name string
	// Seed derives the job's private RNG. Jobs with the same seed produce
	// identical streams regardless of worker or completion order.
	Seed uint64
	// Cost is a relative expected-runtime hint. The pool starts expensive
	// jobs first so the long pole overlaps the small jobs instead of
	// trailing them; it has no effect on output, only on wall time.
	Cost float64
	// Hidden marks a job whose Result is recorded in the report but whose
	// Text is excluded from RenderAll and caller display — the shape of a
	// sub-job whose rows a Reduce job folds into one figure.
	Hidden bool
	// Run executes the experiment with the job's seeded RNG. Exactly one
	// of Run and Reduce must be set.
	Run func(rng *sim.Rand) (Output, error)
	// Needs lists jobs whose Results this job consumes; the pool holds
	// the job back until all of them have completed, then calls Reduce
	// with their Results in Needs order. Sharded experiments use this to
	// split a sweep into per-slice sub-jobs plus one assembling reducer
	// while keeping output byte-identical at any worker count.
	Needs  []string
	Reduce func(rng *sim.Rand, inputs []Result) (Output, error)
	// CacheKey, when valid and the pool runs with Options.Cache, lets
	// the job short-circuit: a stored Output under the key is returned
	// without calling Run (or ShardRun), and a computed Output is stored
	// back on success. The key must capture the job's entire
	// configuration and seed (resultstore.KeyFor); the job must be a
	// pure function of them. Only Run jobs may carry a key — a cached
	// Data field round-trips through JSON as generic values
	// (maps/slices), so jobs whose Results a Reduce consumes with type
	// assertions must not be memoized, and resolveDeps rejects both a
	// keyed Reduce job and a keyed dependency.
	CacheKey resultstore.Key
	// ShardRun, when set alongside Run, lets the pool run the job with
	// extra kernel shards when workers would otherwise idle (see
	// Options.AutoShard): the pool calls ShardRun(rng, n) instead of Run
	// for some n in {2, 4} it budgeted from the spare workers. The job
	// must produce output byte-identical to Run at any shard count — the
	// guarantee the sharded simulation harnesses already carry — so the
	// promotion changes wall time only, never a digit of output.
	ShardRun func(rng *sim.Rand, shards int) (Output, error)
}

// Options tunes pool scheduling; the zero value is the historical
// behavior.
type Options struct {
	// AutoShard grants spare cores to shardable jobs at dispatch time:
	// whenever a job is handed to a worker while the core budget exceeds
	// the jobs available to run (a grid smaller than the machine, or the
	// trailing dispatches of a draining queue), it runs through ShardRun
	// with the spare capacity instead of on one core. Already-running
	// jobs are never re-sharded — the decision is made once, when the job
	// starts — so a long pole only benefits when the supply shortfall is
	// visible at its dispatch. Jobs without ShardRun are unaffected, and
	// output is byte-identical either way.
	AutoShard bool
	// Cache arms Job.CacheKey memoization: jobs with a valid key consult
	// the store before running and record their Output after. nil (the
	// zero value) disables caching entirely — keys are ignored and every
	// job runs. Because stored outputs are exactly what the job
	// produced, Text output is byte-identical with the cache on, off,
	// cold or warm.
	Cache *resultstore.Store
}

// Result is one job's outcome inside a Report.
type Result struct {
	Name   string `json:"name"`
	Seed   uint64 `json:"seed"`
	Hidden bool   `json:"hidden,omitempty"`
	Text   string `json:"text"`
	Data   any    `json:"data,omitempty"`
	WallNs int64  `json:"wall_ns"`
	Err    string `json:"err,omitempty"`
	// Cached marks a result served from Options.Cache instead of a Run
	// call. Text is byte-identical to a fresh run; Data round-trips
	// through the store as generic JSON values.
	Cached bool `json:"cached,omitempty"`
}

// Report aggregates a pool run.
//
// Speedup is CPUNs/WallNs where process CPU accounting is available
// (unix): the CPU seconds a run consumes equal its sequential wall time
// for these CPU-bound jobs, so the ratio is the true wall-clock speedup
// and honestly reports ~1x on a single-core machine. SerialNs — the sum
// of per-job wall times — is the fallback divisor elsewhere; it inflates
// under core oversubscription, so prefer the CPU-based number.
type Report struct {
	Jobs     int      `json:"jobs"`
	Workers  int      `json:"workers"`
	WallNs   int64    `json:"wall_ns"`   // pool wall-clock time
	CPUNs    int64    `json:"cpu_ns"`    // process CPU consumed by the run
	SerialNs int64    `json:"serial_ns"` // sum of per-job wall times
	Speedup  float64  `json:"speedup"`   // CPUNs / WallNs (SerialNs fallback)
	Results  []Result `json:"results"`   // in submission order
	// Cache snapshots the result store's traffic for this run (job-level
	// hits plus any probe-level traffic the jobs generated inside the
	// same store); present only when the pool ran with Options.Cache.
	Cache *resultstore.Stats `json:"cache,omitempty"`
}

// Run executes jobs on a pool of workers goroutines and returns the
// aggregated report. workers <= 0 means runtime.GOMAXPROCS(0). The first
// job error is returned (the report still carries every result, including
// the failed job's Err); a panicking job propagates its panic.
func Run(jobs []Job, workers int) (Report, error) {
	return RunEmit(jobs, workers, nil)
}

// RunEmit is Run with streaming: emit (if non-nil) is called on the
// caller's goroutine with each Result in submission order, as soon as
// that result and all earlier ones have completed. A driver printing
// emitted texts (skipping Hidden ones) produces output byte-identical to
// a sequential run without waiting for the whole pool to drain.
func RunEmit(jobs []Job, workers int, emit func(Result)) (Report, error) {
	return RunEmitOpts(jobs, workers, Options{}, emit)
}

// RunEmitOpts is RunEmit with scheduling options.
func RunEmitOpts(jobs []Job, workers int, opts Options, emit func(Result)) (Report, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// capacity is the caller's core budget; the goroutine count below is
	// clamped to the job count, but auto-shard promotion spends the full
	// budget (a lone job on a 4-core budget runs 4-sharded).
	capacity := workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	rep := Report{Jobs: len(jobs), Workers: workers, Results: make([]Result, len(jobs))}
	if len(jobs) == 0 {
		rep.Speedup = 1
		return rep, nil
	}

	var cacheStart resultstore.Stats
	if opts.Cache != nil {
		// Report.Cache is this run's traffic, so the store's counters —
		// cumulative over its lifetime, it may serve many runs — are
		// snapshotted here and the delta taken after the pool drains.
		cacheStart = opts.Cache.Stats()
	}
	deps, dependents, err := resolveDeps(jobs)
	if err != nil {
		return rep, err
	}

	// Among ready jobs, dispatch expensive ones first so the longest job
	// starts as early as its dependencies allow.
	byCostDesc := func(idxs []int) {
		sort.SliceStable(idxs, func(a, b int) bool {
			return jobs[idxs[a]].Cost > jobs[idxs[b]].Cost
		})
	}
	indeg := make([]int, len(jobs))
	var ready []int
	for i := range jobs {
		indeg[i] = len(deps[i])
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	byCostDesc(ready)

	start := time.Now()
	cpu0 := processCPUNs()
	type work struct{ idx, shards int }
	next := make(chan work, len(jobs)) // buffered: the coordinator never blocks
	done := make(chan int, len(jobs))  // buffered: workers never block here
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for wk := range next {
				idx := wk.idx
				job := jobs[idx]
				res := Result{Name: job.Name, Seed: job.Seed, Hidden: job.Hidden}
				t0 := time.Now()
				var out Output
				var err error
				memo := opts.Cache != nil && job.CacheKey.Valid()
				if memo {
					var co cachedOutput
					if opts.Cache.Get(job.CacheKey, &co) {
						out = Output{Text: co.Text, Data: co.Data}
						res.Cached = true
					}
				}
				switch {
				case res.Cached:
					// Memoized: the stored Output is what Run produced.
				case job.Reduce != nil:
					// The receive of each dependency's index on done
					// ordered its Results write before this job was
					// pushed onto next.
					inputs := make([]Result, len(deps[idx]))
					for i, d := range deps[idx] {
						inputs[i] = rep.Results[d]
					}
					out, err = job.Reduce(sim.NewRand(job.Seed), inputs)
				case wk.shards > 1:
					out, err = job.ShardRun(sim.NewRand(job.Seed), wk.shards)
				default:
					out, err = job.Run(sim.NewRand(job.Seed))
				}
				if memo && !res.Cached && err == nil {
					opts.Cache.Put(job.CacheKey, cachedOutput{Text: out.Text, Data: out.Data})
				}
				res.WallNs = time.Since(t0).Nanoseconds()
				if err != nil {
					res.Err = err.Error()
				} else {
					res.Text = out.Text
					res.Data = out.Data
				}
				rep.Results[idx] = res
				done <- idx
			}
		}()
	}
	// Ready jobs wait in a cost-sorted pending queue and are released to
	// the worker channel only up to the goroutine count: holding the rest
	// back lets every dispatch see the pool's true state, so auto-shard
	// promotion is evaluated at each job's start rather than once at
	// startup.
	dispatched, closed, inFlight := 0, false, 0
	// Core accounting for auto-shard promotion: a promoted job holds
	// `shards` cores until it completes, not one, so the spare-capacity
	// check counts cores in flight (busyCores), never just jobs. Without
	// this, back-to-back promotions each see the previous promoted job as
	// one core and a 3-job queue on an 8-core budget dispatches 12 shard
	// goroutines.
	busyCores := 0
	coresOf := make([]int, len(jobs))
	var pendingQ []int
	fill := func() {
		for len(pendingQ) > 0 && inFlight < workers {
			idx := pendingQ[0]
			pendingQ = pendingQ[1:]
			w := work{idx: idx, shards: 1}
			// Spare capacity after this job and everything still pending
			// gets a core goes to this job as extra kernel shards. The
			// promotion spends idle cores, never contends for busy ones.
			if opts.AutoShard && jobs[idx].ShardRun != nil {
				if spare := capacity - busyCores - 1 - len(pendingQ); spare >= 3 {
					w.shards = 4
				} else if spare >= 1 {
					w.shards = 2
				}
			}
			inFlight++
			busyCores += w.shards
			coresOf[idx] = w.shards
			next <- w
			dispatched++
		}
		if dispatched == len(jobs) && !closed {
			close(next)
			closed = true
		}
	}
	dispatch := func(idxs []int) {
		pendingQ = append(pendingQ, idxs...)
		byCostDesc(pendingQ)
		fill()
	}
	dispatch(ready)
	// Emit the contiguous completed prefix as completions arrive; the
	// receive on done orders each Results write before its read here.
	completed := make([]bool, len(jobs))
	emitted := 0
	for range jobs {
		idx := <-done
		inFlight--
		busyCores -= coresOf[idx]
		completed[idx] = true
		var unblocked []int
		for _, d := range dependents[idx] {
			if indeg[d]--; indeg[d] == 0 {
				unblocked = append(unblocked, d)
			}
		}
		byCostDesc(unblocked)
		dispatch(unblocked)
		for emitted < len(jobs) && completed[emitted] {
			if emit != nil {
				emit(rep.Results[emitted])
			}
			emitted++
		}
	}
	wg.Wait()
	rep.WallNs = time.Since(start).Nanoseconds()
	if cpu1 := processCPUNs(); cpu1 > cpu0 {
		rep.CPUNs = cpu1 - cpu0
	}
	if opts.Cache != nil {
		st := opts.Cache.Stats()
		st.Hits -= cacheStart.Hits
		st.Misses -= cacheStart.Misses
		st.Stored -= cacheStart.Stored
		rep.Cache = &st
	}

	var firstErr error
	for _, r := range rep.Results {
		rep.SerialNs += r.WallNs
		if r.Err != "" && firstErr == nil {
			firstErr = fmt.Errorf("runner: job %q: %s", r.Name, r.Err)
		}
	}
	if rep.WallNs > 0 {
		work := rep.CPUNs
		if work == 0 {
			work = rep.SerialNs
		}
		rep.Speedup = float64(work) / float64(rep.WallNs)
	}
	return rep, firstErr
}

// cachedOutput is the stored envelope of a memoized job: exactly the
// Output fields a fresh Run produces. Data comes back as generic JSON
// values, which is why memoization is restricted to jobs nothing
// type-asserts against.
type cachedOutput struct {
	Text string `json:"text"`
	Data any    `json:"data,omitempty"`
}

// resolveDeps validates names and Needs references and returns, per job,
// the indices it depends on and the indices depending on it. Unknown
// names, duplicate names, mis-set Run/Reduce, cache keys where a cached
// (generic-JSON) Data could leak into a Reduce's type assertions, and
// dependency cycles are errors — caught before any worker starts.
func resolveDeps(jobs []Job) (deps, dependents [][]int, err error) {
	idxByName := make(map[string]int, len(jobs))
	for i, j := range jobs {
		if _, dup := idxByName[j.Name]; dup {
			return nil, nil, fmt.Errorf("runner: duplicate job name %q", j.Name)
		}
		idxByName[j.Name] = i
	}
	deps = make([][]int, len(jobs))
	dependents = make([][]int, len(jobs))
	for i, j := range jobs {
		if len(j.Needs) == 0 {
			if j.Run == nil {
				return nil, nil, fmt.Errorf("runner: job %q has no Run function", j.Name)
			}
			if j.Reduce != nil {
				return nil, nil, fmt.Errorf("runner: job %q sets Reduce without Needs", j.Name)
			}
			continue
		}
		if j.ShardRun != nil {
			return nil, nil, fmt.Errorf("runner: job %q sets ShardRun on a Reduce job", j.Name)
		}
		if j.CacheKey.Valid() {
			return nil, nil, fmt.Errorf("runner: job %q sets CacheKey on a Reduce job", j.Name)
		}
		if j.Reduce == nil || j.Run != nil {
			return nil, nil, fmt.Errorf("runner: job %q has Needs and must set Reduce (and not Run)", j.Name)
		}
		for _, name := range j.Needs {
			d, ok := idxByName[name]
			if !ok {
				return nil, nil, fmt.Errorf("runner: job %q needs unknown job %q", j.Name, name)
			}
			if d == i {
				return nil, nil, fmt.Errorf("runner: job %q needs itself", j.Name)
			}
			deps[i] = append(deps[i], d)
			dependents[d] = append(dependents[d], i)
		}
	}
	// A memoized dependency would hand its Reduce a Data field that
	// round-tripped through the store as generic JSON; reject the
	// combination outright rather than let type assertions panic on a
	// warm cache only.
	for i, j := range jobs {
		if j.CacheKey.Valid() && len(dependents[i]) > 0 {
			return nil, nil, fmt.Errorf("runner: job %q sets CacheKey but its Result feeds a Reduce job", j.Name)
		}
	}
	// Kahn's algorithm: if the peel doesn't consume every job, the rest
	// form a cycle.
	indeg := make([]int, len(jobs))
	var queue []int
	for i := range jobs {
		indeg[i] = len(deps[i])
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		seen++
		for _, d := range dependents[i] {
			if indeg[d]--; indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != len(jobs) {
		return nil, nil, fmt.Errorf("runner: dependency cycle among jobs")
	}
	return deps, dependents, nil
}

// RenderAll concatenates the rendered outputs in submission order, one
// blank line between jobs — exactly what a sequential driver would print.
// Hidden results (sub-jobs folded by a reducer) are skipped.
func (r Report) RenderAll() string {
	var out []byte
	for _, res := range r.Results {
		if res.Hidden {
			continue
		}
		out = append(out, res.Text...)
		out = append(out, '\n')
	}
	return string(out)
}

// WriteJSON writes the report as indented JSON to path.
func (r Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadJSON loads a report previously written with WriteJSON. Data fields
// round-trip as generic JSON values (maps/slices), not the original types.
func ReadJSON(path string) (Report, error) {
	var rep Report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(b, &rep)
	return rep, err
}
