// Package anton3bench regenerates every table and figure of the paper as a
// testing.B benchmark. Run with:
//
//	go test -bench=. -benchmem
//
// Each bench executes the experiment once per iteration and logs the rows
// the paper reports; EXPERIMENTS.md records a captured run.
package anton3bench

import (
	"testing"

	"anton3/internal/experiments"
	"anton3/internal/runner"
	"anton3/internal/sim"
	"anton3/internal/topo"
)

// BenchmarkRunnerAll runs every table, figure and ablation through the
// parallel runner at reduced sizes — the orchestration path cmd/anton3
// `all` uses — and logs the pool's wall/CPU/speedup line. The CI bench
// lane regenerates the full-scale BENCH_runner.json artifact with
// `go run ./cmd/anton3 all -json BENCH_runner.json`.
func BenchmarkRunnerAll(b *testing.B) {
	p := experiments.DefaultParams()
	p.Fig5Pairs = 2
	p.Fig9aSizes = []int{8000}
	p.Fig9aWarm, p.Fig9aMeasure = 2, 2
	p.Fig9bSizes = []int{8000}
	p.Fig9bSteps = 2
	p.Fig12Atoms, p.Fig12Steps = 8000, 2
	p.AblPredictorAtoms = 4000
	p.AblPcacheAtoms = 8000
	p.AblPcacheSizes = []int{256, 1024}
	p.AblINZAtoms = 3000
	p.AblDimWrites = 40
	p.NetShapes = []topo.Shape{{X: 2, Y: 2, Z: 4}}
	p.NetLoads = []float64{0.5, 2}
	p.NetPackets, p.NetWarmup = 16, 4
	var rep runner.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = runner.Run(experiments.Jobs(p), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("%d jobs on %d workers: %.2fs wall, %.2fs CPU, speedup %.2fx",
		rep.Jobs, rep.Workers, float64(rep.WallNs)/1e9, float64(rep.CPUNs)/1e9, rep.Speedup)
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Tables()
	}
	b.Log("\n" + experiments.Tables())
}

func BenchmarkTable2(b *testing.B) {
	// Table II is part of the Tables rendering; benchmarked separately so
	// every paper artifact has a named bench target.
	for i := 0; i < b.N; i++ {
		_ = experiments.Tables()
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Tables()
	}
}

func BenchmarkFig5_LatencyVsHops(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Fig5(sim.NewRand(experiments.Fig5Seed), 4).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkFig6_LatencyBreakdown(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Fig6().Render()
	}
	b.Log("\n" + out)
}

func BenchmarkFig9a_TrafficReduction(b *testing.B) {
	sizes := []int{8000, 16000, 32751}
	if testing.Short() {
		sizes = []int{8000}
	}
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderFig9a(experiments.Fig9a(sizes, 2, 3))
	}
	b.Log("\n" + out)
}

func BenchmarkFig9b_CompressionSpeedup(b *testing.B) {
	sizes := []int{8000, 16000, 32751}
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderFig9b(experiments.Fig9b(sizes, 2, 1))
	}
	b.Log("\n" + out)
}

func BenchmarkFig11_FenceBarrier(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Fig11().Render()
	}
	b.Log("\n" + out)
}

func BenchmarkFig12_MachineActivity(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Fig12(32751, 2, 1).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkAblationPredictorOrder(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderAblation("pcache predictor order",
			experiments.AblationPredictorOrder(8000, 3, 2))
	}
	b.Log("\n" + out)
}

func BenchmarkAblationPcacheSize(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderAblation("pcache size sweep",
			experiments.AblationPcacheSize(32751, 2, 2, []int{256, 1024, 4096}))
	}
	b.Log("\n" + out)
}

func BenchmarkAblationINZInterleave(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderAblation("INZ vs per-word truncation",
			experiments.AblationINZInterleave(8000))
	}
	b.Log("\n" + out)
}

func BenchmarkAblationFenceVsPairwise(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderAblation("fence vs pairwise barrier (128 nodes)",
			experiments.AblationFenceVsPairwise(topo.Shape{X: 4, Y: 4, Z: 8}))
	}
	b.Log("\n" + out)
}

func BenchmarkAblationDimOrders(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderAblation("randomized vs fixed dimension orders",
			experiments.AblationDimOrders(60))
	}
	b.Log("\n" + out)
}
