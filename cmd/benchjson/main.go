// Command benchjson converts `go test -bench -benchmem` text output (on
// stdin) into a stable JSON report (on stdout), so CI can commit benchmark
// artifacts like BENCH_hotpath.json and diffs stay readable per PR.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH.json
//
// With -gate, the fresh results are additionally compared against a
// committed baseline report, and the run fails (exit 1, after still
// writing the fresh JSON) if any baseline bench whose name contains one of
// the comma-separated -gate-bench substrings got slower than
// ns_per_op x -gate-factor. CI runs the hot-path lane through this so a
// SendHotPath or Netsweep regression >10% cannot land with a green build,
// and the parallel lane gates NetsweepShards the same way:
//
//	... | go run ./cmd/benchjson -gate BENCH_hotpath.json -gate-bench SendHotPath,Netsweep > new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line. Extra carries custom metrics
// reported via testing.B.ReportMetric — e.g. the saturation knee loads the
// flow benchmarks attach as "knee_load" — keyed by their unit string.
type Bench struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"b_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the committed artifact shape.
type Report struct {
	GOOS    string  `json:"goos,omitempty"`
	GOARCH  string  `json:"goarch,omitempty"`
	CPU     string  `json:"cpu,omitempty"`
	Benches []Bench `json:"benches"`
}

func main() {
	gateFile := flag.String("gate", "", "committed baseline report to gate against")
	gateBench := flag.String("gate-bench", "SendHotPath", "comma-separated substrings selecting which baseline benches are gated")
	gateFactor := flag.Float64("gate-factor", 1.10, "fail if fresh ns_per_op exceeds baseline x this factor")
	flag.Parse()

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benches = append(rep.Benches, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benches) == 0 {
		// A report with no benchmarks means the -bench regex no longer
		// matches anything (e.g. a bench was renamed); failing here keeps
		// CI from committing an empty artifact with a green build.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *gateFile != "" && !gate(rep, *gateFile, *gateBench, *gateFactor) {
		os.Exit(1)
	}
}

// gate compares the fresh report against the committed baseline and
// reports whether every gated bench is within factor of its baseline
// ns_per_op. bench is a comma-separated substring list: a baseline bench is
// gated when its name contains any of them. A gated baseline bench missing
// from the fresh run fails too (a rename must not silently disarm the
// gate); a baseline file that does not exist yet passes, so the gate
// bootstraps on a fresh clone.
func gate(fresh Report, file, bench string, factor float64) bool {
	var subs []string
	for _, s := range strings.Split(bench, ",") {
		if s = strings.TrimSpace(s); s != "" {
			subs = append(subs, s)
		}
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchjson: gate baseline %s missing, skipping gate\n", file)
			return true
		}
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return false
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: gate baseline %s: %v\n", file, err)
		return false
	}
	cur := make(map[string]float64, len(fresh.Benches))
	for _, b := range fresh.Benches {
		cur[b.Name] = b.NsPerOp
	}
	ok := true
	for _, b := range base.Benches {
		if !gated(b.Name, subs) || b.NsPerOp <= 0 {
			continue
		}
		got, have := cur[b.Name]
		if !have {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %s in baseline but not in fresh results\n", b.Name)
			ok = false
			continue
		}
		if limit := b.NsPerOp * factor; got > limit {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %s regressed: %.1f ns/op vs committed %.1f (limit %.1f)\n",
				b.Name, got, b.NsPerOp, limit)
			ok = false
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %s ok: %.1f ns/op vs committed %.1f (limit %.1f)\n",
				b.Name, got, b.NsPerOp, limit)
		}
	}
	return ok
}

// gated reports whether name contains any of the gate substrings.
func gated(name string, subs []string) bool {
	for _, s := range subs {
		if strings.Contains(name, s) {
			return true
		}
	}
	return false
}

// parseBench reads lines of the form
//
//	BenchmarkName-8   1234   987.6 ns/op   64 B/op   2 allocs/op
//
// The -P GOMAXPROCS suffix is stripped so reports diff cleanly across
// runner core counts.
func parseBench(line string) (Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Bench{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Bench{Name: name}
	var err error
	if b.Iters, err = strconv.ParseInt(f[1], 10, 64); err != nil {
		return Bench{}, false
	}
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			b.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "B/op":
			b.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		default:
			// A ReportMetric custom unit; keep it so artifacts like
			// BENCH_saturation.json can carry domain numbers (knee loads).
			var v float64
			if v, err = strconv.ParseFloat(val, 64); err == nil {
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = v
			}
		}
		if err != nil {
			return Bench{}, false
		}
	}
	return b, true
}
