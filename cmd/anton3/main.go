// Command anton3 regenerates the paper's tables and figures from the
// simulator. Each subcommand prints measured values next to the published
// ones. Every experiment owns a private simulation kernel, so independent
// experiments fan out across cores (-jobs) with byte-identical output to a
// sequential run; -json records the runner's report for CI artifacts.
//
// Usage:
//
//	anton3 <tables|fig5|fig6|fig9a|fig9b|fig11|fig12|ablations|all> [flags]
package main

import (
	"flag"
	"fmt"
	"os"

	"anton3/internal/experiments"
	"anton3/internal/runner"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	jobs := fs.Int("jobs", 0, "worker count for independent experiments (0 = all cores)")
	jsonPath := fs.String("json", "", "write the runner report (timings, rows) to this file")
	quiet := fs.Bool("q", false, "suppress the runner summary on stderr")
	pairs := fs.Int("pairs", 6, "sampled GC pairs per hop count (fig5)")
	atoms := fs.Int("atoms", 32751, "atom count (fig12)")
	steps := fs.Int("steps", 3, "timestep count (fig9b, fig12)")
	warm := fs.Int("warm", 3, "warmup steps (fig9a)")
	measure := fs.Int("measure", 4, "measured steps (fig9a)")
	fs.Parse(os.Args[2:])

	p := experiments.DefaultParams()
	p.Fig5Pairs = *pairs
	p.Fig12Atoms = *atoms
	p.Fig9bSteps = *steps
	p.Fig12Steps = *steps
	p.Fig9aWarm = *warm
	p.Fig9aMeasure = *measure

	selected := experiments.SelectJobs(experiments.Jobs(p), cmd)
	if len(selected) == 0 {
		usage()
		os.Exit(2)
	}

	// Stream each result as soon as it and its predecessors finish:
	// long runs show figures incrementally, in the same byte-identical
	// order a sequential run would print them.
	rep, err := runner.RunEmit(selected, *jobs, func(res runner.Result) {
		fmt.Println(res.Text)
	})
	if !*quiet {
		fmt.Fprintf(os.Stderr, "runner: %d jobs on %d workers in %.2fs wall, %.2fs CPU (speedup %.2fx)\n",
			rep.Jobs, rep.Workers, float64(rep.WallNs)/1e9, float64(rep.CPUNs)/1e9, rep.Speedup)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "anton3:", err)
	}
	if *jsonPath != "" {
		if werr := rep.WriteJSON(*jsonPath); werr != nil {
			fmt.Fprintln(os.Stderr, "anton3:", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `anton3 — regenerate the tables and figures of
"The Specialized High-Performance Network on Anton 3" (HPCA 2022)

subcommands:
  tables     Tables I, II, III (ASIC comparison, component area, feature cost)
  fig5       end-to-end latency vs hops (128-node ping-pong)
  fig6       breakdown of the 55 ns minimum latency
  fig9a      traffic reduction from INZ and the particle cache
  fig9b      MD speedup from compression
  fig11      network fence barrier latency vs hops
  fig12      machine activity plots (compression off/on)
  ablations  design-choice ablations from DESIGN.md
  all        everything above

flags (after the subcommand):
  -jobs N    worker count; independent experiments run in parallel (0 = all cores)
  -json P    write the runner report (per-job rows and timings) to P
  -q         suppress the runner summary line on stderr
  -pairs, -atoms, -steps, -warm, -measure   experiment sizes (see -h)`)
}
