// Command anton3 regenerates the paper's tables and figures from the
// simulator and explores beyond them. Each subcommand prints measured
// values next to the published ones. Every experiment owns a private
// simulation kernel, so independent experiments fan out across cores
// (-jobs) with byte-identical output to a sequential run; -json records
// the runner's report for CI artifacts.
//
// Usage:
//
//	anton3 <tables|fig5|fig6|fig9a|fig9b|fig11|fig12|ablations|netsweep|saturate|mdsweep|faultsweep|all> [flags]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"anton3/internal/experiments"
	"anton3/internal/fault"
	"anton3/internal/packet"
	"anton3/internal/resultstore"
	"anton3/internal/runner"
	"anton3/internal/telemetry"
	"anton3/internal/topo"
)

func main() { os.Exit(run()) }

// run holds main's body so deferred cleanups (profile flushes) execute
// before the process exits.
func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	jobs := fs.Int("jobs", 0, "worker count for independent experiments (0 = all cores)")
	shards := fs.Int("shards", 1, "kernel shards per netsweep machine (parallel simulation of one machine)")
	jsonPath := fs.String("json", "", "write the runner report (timings, rows) to this file")
	quiet := fs.Bool("q", false, "suppress the runner summary on stderr")
	pairs := fs.Int("pairs", 6, "sampled GC pairs per hop count (fig5)")
	atoms := fs.Int("atoms", 32751, "atom count (fig12)")
	steps := fs.Int("steps", 3, "timestep count (fig9b, fig12)")
	warm := fs.Int("warm", 3, "warmup steps (fig9a)")
	measure := fs.Int("measure", 4, "measured steps (fig9a)")
	shapes := fs.String("shapes", "4x4x8,8x8x8", "netsweep/saturate torus shapes, comma-separated XxYxZ")
	loads := fs.String("loads", "0.5,1,2,3,4", "netsweep/saturate offered loads, comma-separated")
	npkts := fs.Int("npkts", 96, "netsweep/saturate measured packets per node (saturate: per unit load)")
	nwarm := fs.Int("nwarm", 32, "netsweep/saturate warmup packets per node")
	mdatoms := fs.Int("mdatoms", 8000, "atom count per mdsweep cell")
	mdsteps := fs.Int("mdsteps", 2, "timesteps per mdsweep cell")
	faults := fs.String("faults", "", "faultsweep custom fault plan, e.g. '0,0,0:x+:dead;1,0,0:z-:bw/2@3us' (default: drawn severity grid)")
	faultseed := fs.Uint64("faultseed", 1, "seed for the drawn faultsweep severity grid")
	vcq := fs.Int("vcq", 0, "saturate per-VC ingress queue depth in flits (0 = bandwidth-delay default)")
	injq := fs.Int("injq", 0, "saturate per-source injection window in packets (0 = default)")
	autoshard := fs.Bool("autoshard", false, "grant spare cores to netsweep/saturate cells as kernel shards at dispatch")
	metrics := fs.Bool("metrics", false, "arm the telemetry layer on sweep cells: counters + latency/park histograms, 'telemetry' lines appended to each cell")
	traceEvents := fs.String("trace-events", "", "write a Chrome trace-event JSON of sweep-cell packet lifecycles to this file (implies uncached cells)")
	cache := cacheMode("off")
	fs.Var(&cache, "cache", "memoize sweep results in the content-addressed store: -cache (read/write), -cache=readonly; default off")
	cachedir := fs.String("cachedir", "", "result-cache directory (default <user cache dir>/anton3, e.g. ~/.cache/anton3)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (after the run) to this file")
	fs.Parse(os.Args[2:])

	// The memprofile defer is registered before the cpuprofile one so that
	// (LIFO) the CPU profile stops first and its samples never include the
	// heap profile's forced GC and encoding.
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "anton3:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "anton3:", err)
			}
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anton3:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "anton3:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// Worker budgeting: a sharded netsweep machine runs shards goroutines
	// at once, so the default worker count shrinks to keep jobs x shards
	// within the core budget; explicit -jobs is respected with a warning.
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "anton3: -shards must be >= 1 (got %d)\n", *shards)
		return 2
	}
	if *vcq != 0 && *vcq < packet.MaxFlitsPerPkt {
		fmt.Fprintf(os.Stderr, "anton3: -vcq must be 0 (default depth) or >= %d flits, the largest packet (got %d)\n",
			packet.MaxFlitsPerPkt, *vcq)
		return 2
	}
	maxprocs := runtime.GOMAXPROCS(0)
	if *jobs == 0 && *shards > 1 {
		if *jobs = maxprocs / *shards; *jobs < 1 {
			*jobs = 1
		}
	}
	if *jobs**shards > maxprocs {
		fmt.Fprintf(os.Stderr, "anton3: warning: jobs(%d) x shards(%d) exceeds GOMAXPROCS(%d); workers will contend\n",
			*jobs, *shards, maxprocs)
	}

	// Trace export reruns every traced cell uncached (a cache hit would
	// skip the simulation the trace observes), so combining it with the
	// result cache is a contradiction we reject rather than silently
	// resolve.
	if *traceEvents != "" && cache != "off" {
		fmt.Fprintln(os.Stderr, "anton3: -trace-events cannot be combined with -cache (traced cells always re-simulate)")
		return 2
	}

	// The result cache is off by default, so every command's output stays
	// byte-identical to an uncached tree; with it on, memoized cells and
	// probes short-circuit — same bytes on stdout, the hit/miss/stored
	// counters land in the -json report and the stderr summary.
	var store *resultstore.Store
	if cache != "off" {
		dir := *cachedir
		if dir == "" {
			base, err := os.UserCacheDir()
			if err != nil {
				fmt.Fprintln(os.Stderr, "anton3: -cache needs -cachedir (no user cache dir):", err)
				return 2
			}
			dir = filepath.Join(base, "anton3")
		}
		var err error
		if store, err = resultstore.Open(dir, cache == "readonly"); err != nil {
			fmt.Fprintln(os.Stderr, "anton3:", err)
			return 1
		}
	}

	p := experiments.DefaultParams()
	p.Cache = store
	p.NetShards = *shards
	p.MDShards = *shards
	p.Fig5Pairs = *pairs
	p.Fig12Atoms = *atoms
	p.Fig9bSteps = *steps
	p.Fig12Steps = *steps
	p.Fig9aWarm = *warm
	p.Fig9aMeasure = *measure
	p.NetPackets = *npkts
	p.NetWarmup = *nwarm
	p.Saturate = cmd == "saturate"
	p.MDSweep = cmd == "mdsweep"
	p.FaultSweep = cmd == "faultsweep"
	p.FaultSeed = *faultseed
	p.FaultPlan = *faults
	p.MDAtoms = *mdatoms
	p.MDSteps = *mdsteps
	p.SatPackets = *npkts
	p.SatWarmup = *nwarm
	p.SatQueueFlits = *vcq
	p.SatInjDepth = *injq
	p.Metrics = *metrics
	var sink *telemetry.TraceSink
	if *traceEvents != "" {
		sink = &telemetry.TraceSink{}
		p.Trace = sink
	}
	var err error
	if p.NetShapes, err = parseShapes(*shapes); err != nil {
		fmt.Fprintln(os.Stderr, "anton3:", err)
		return 2
	}
	p.SatShapes = p.NetShapes
	if p.NetLoads, err = parseLoads(*loads); err != nil {
		fmt.Fprintln(os.Stderr, "anton3:", err)
		return 2
	}
	p.SatLoads = p.NetLoads

	// Validate a custom fault plan up front, against every selected shape:
	// a plan naming a channel outside a shape must die here with a readable
	// message, not as a panic deep inside machine construction.
	if *faults != "" {
		plan, perr := fault.Parse(*faults)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "anton3: -faults:", perr)
			return 2
		}
		for _, shape := range p.SatShapes {
			if verr := plan.Validate(shape); verr != nil {
				fmt.Fprintf(os.Stderr, "anton3: -faults plan does not fit shape %s: %v\n", shape, verr)
				return 2
			}
		}
	}

	selected := experiments.SelectJobs(experiments.Jobs(p), cmd)
	if len(selected) == 0 {
		usage()
		return 2
	}

	// Stream each result as soon as it and its predecessors finish:
	// long runs show figures incrementally, in the same byte-identical
	// order a sequential run would print them. Hidden results are the
	// sharded sub-jobs a reducer folds into one figure; their rows only
	// appear in the JSON report.
	// Auto-sharding only composes with the worker budget when cells are
	// not already explicitly sharded via -shards.
	opts := runner.Options{AutoShard: *autoshard && *shards <= 1, Cache: store}
	rep, err := runner.RunEmitOpts(selected, *jobs, opts, func(res runner.Result) {
		if !res.Hidden {
			fmt.Println(res.Text)
		}
	})
	if !*quiet {
		fmt.Fprintf(os.Stderr, "runner: %d jobs on %d workers in %.2fs wall, %.2fs CPU (speedup %.2fx)\n",
			rep.Jobs, rep.Workers, float64(rep.WallNs)/1e9, float64(rep.CPUNs)/1e9, rep.Speedup)
		if rep.Cache != nil {
			fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d stored\n",
				rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Stored)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "anton3:", err)
	}
	if sink != nil {
		f, werr := os.Create(*traceEvents)
		if werr == nil {
			werr = sink.Export(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "anton3:", werr)
			return 1
		}
	}
	if *jsonPath != "" {
		if werr := rep.WriteJSON(*jsonPath); werr != nil {
			fmt.Fprintln(os.Stderr, "anton3:", werr)
			return 1
		}
	}
	if err != nil {
		return 1
	}
	return 0
}

// cacheMode is the tri-state -cache flag: bool-like, so bare `-cache`
// means read/write and `-cache=readonly` consults without storing.
type cacheMode string

func (m *cacheMode) String() string { return string(*m) }

func (m *cacheMode) Set(v string) error {
	switch v {
	case "", "true", "on", "rw":
		*m = "on"
	case "false", "off":
		*m = "off"
	case "readonly", "ro":
		*m = "readonly"
	default:
		return fmt.Errorf("bad cache mode %q (want on, off or readonly)", v)
	}
	return nil
}

// IsBoolFlag lets bare `-cache` enable read/write mode.
func (m *cacheMode) IsBoolFlag() bool { return true }

func parseShapes(s string) ([]topo.Shape, error) {
	var out []topo.Shape
	for _, part := range strings.Split(s, ",") {
		dims := strings.Split(strings.TrimSpace(part), "x")
		if len(dims) != 3 {
			return nil, fmt.Errorf("bad shape %q (want XxYxZ)", part)
		}
		var v [3]int
		for i, d := range dims {
			n, err := strconv.Atoi(d)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad shape %q (want XxYxZ)", part)
			}
			v[i] = n
		}
		out = append(out, topo.Shape{X: v[0], Y: v[1], Z: v[2]})
	}
	return out, nil
}

func parseLoads(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad load %q", part)
		}
		out = append(out, f)
	}
	return out, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `anton3 — regenerate the tables and figures of
"The Specialized High-Performance Network on Anton 3" (HPCA 2022)

subcommands:
  tables     Tables I, II, III (ASIC comparison, component area, feature cost)
  fig5       end-to-end latency vs hops (128-node ping-pong)
  fig6       breakdown of the 55 ns minimum latency
  fig9a      traffic reduction from INZ and the particle cache
  fig9b      MD speedup from compression
  fig11      network fence barrier latency vs hops
  fig12      machine activity plots (compression off/on)
  ablations  design-choice ablations from DESIGN.md
  netsweep   synthetic-load latency sweep: routing policy x traffic pattern
             x torus shape (incl. 512 nodes; see -shapes/-loads)
  saturate   closed-loop saturation sweep: per-VC ingress queues + credit
             backpressure, offered vs accepted throughput, auto-located
             saturation knee, 4 policies (incl. credit-echo) x 6 patterns
  mdsweep    closed-loop MD backpressure: real timestep traffic against
             bounded per-VC queues, per routing policy x queue depth
  faultsweep link-fault knee-shift grid: saturation knee under degraded and
             dead links (drawn severity grid or a custom -faults plan),
             reported as percent shift vs the healthy baseline, 4 policies
             x 6 patterns with fault-aware escape rerouting
  all        everything above except saturate/mdsweep/faultsweep (kept
             byte-stable across PRs)

flags (after the subcommand):
  -jobs N    worker count; independent experiments run in parallel (0 = all cores)
  -shards N  kernel shards per machine for netsweep/saturate cells and the
             MD timestep jobs (fig9b, fig12, mdsweep): one simulated machine
             runs across N cores via conservative-lookahead parallel
             simulation, byte-identical to -shards 1; default jobs = cores/N
  -autoshard when a shardable job (netsweep/saturate cell, fig9b, fig12,
             mdsweep cell) starts while the core budget exceeds the runnable
             jobs, run it sharded across the spare cores (byte-identical
             output; running cells never re-shard)
  -cache     memoize sweep results (netsweep/saturate/mdsweep cells and
             every closed-loop knee probe) in a content-addressed store
             keyed by (experiment, full config, seed, schema version):
             warm re-runs and revisited probe loads become cache hits
             with byte-identical stdout; -cache=readonly consults without
             storing; default off (output byte-identical to older trees)
  -cachedir P  store directory (default <user cache dir>/anton3)
  -metrics   arm the deterministic telemetry layer on sweep cells (netsweep/
             saturate/faultsweep): sharded counters and latency/park
             histograms, rendered as 'telemetry' lines after each table
             (plus hottest-links at the saturation knee); byte-identical
             at every -shards/-jobs, off by default (zero overhead)
  -trace-events P  write a Chrome trace-event JSON (Perfetto-loadable) of
             sweep-cell packet lifecycles to P: one process per cell, one
             track per node channel plus park/escape/detour phase tracks;
             traced cells always re-simulate, so -cache is rejected
  -json P    write the runner report (per-job rows and timings) to P
  -q         suppress the runner summary line on stderr
  -pairs, -atoms, -steps, -warm, -measure   experiment sizes (see -h)
  -shapes, -loads, -npkts, -nwarm           netsweep/saturate grid (see -h)
  -vcq N, -injq N                           saturate queue/window depths
  -mdatoms N, -mdsteps N                    mdsweep cell size
  -faults PLAN  faultsweep custom plan: ';'-separated link faults, each
             X,Y,Z:<dim><dir>[.<slice>]:<effect,...>[@trip] with effects
             dead, bw/K, lat*M and an optional trip time (ps/ns/us);
             default is the severity grid drawn from -faultseed
  -faultseed N  seed for the drawn faultsweep severity grid
  -cpuprofile P, -memprofile P              write pprof profiles of the run`)
}
