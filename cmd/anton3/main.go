// Command anton3 regenerates the paper's tables and figures from the
// simulator. Each subcommand prints measured values next to the published
// ones.
//
// Usage:
//
//	anton3 <tables|fig5|fig6|fig9a|fig9b|fig11|fig12|ablations|all> [flags]
package main

import (
	"flag"
	"fmt"
	"os"

	"anton3/internal/experiments"
	"anton3/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	pairs := fs.Int("pairs", 6, "sampled GC pairs per hop count (fig5)")
	atoms := fs.Int("atoms", 32751, "atom count (fig12)")
	steps := fs.Int("steps", 3, "timestep count (fig9b, fig12)")
	warm := fs.Int("warm", 3, "warmup steps (fig9a)")
	measure := fs.Int("measure", 4, "measured steps (fig9a)")
	fs.Parse(os.Args[2:])

	fig9aSizes := []int{8000, 16000, 32751, 65000, 131000}
	fig9bSizes := []int{8000, 16000, 32751, 65000}

	var run func(name string)
	run = func(name string) {
		switch name {
		case "tables":
			fmt.Println(experiments.Tables())
		case "fig5":
			fmt.Println(experiments.Fig5(*pairs).Render())
		case "fig6":
			fmt.Println(experiments.Fig6().Render())
		case "fig9a":
			fmt.Println(experiments.RenderFig9a(experiments.Fig9a(fig9aSizes, *warm, *measure)))
		case "fig9b":
			fmt.Println(experiments.RenderFig9b(experiments.Fig9b(fig9bSizes, *steps)))
		case "fig11":
			fmt.Println(experiments.Fig11().Render())
		case "fig12":
			fmt.Println(experiments.Fig12(*atoms, *steps).Render())
		case "ablations":
			fmt.Println(experiments.RenderAblation("Ablation: pcache predictor order (8k atoms)",
				experiments.AblationPredictorOrder(8000, 3, 3)))
			fmt.Println(experiments.RenderAblation("Ablation: pcache size sweep (32751 atoms)",
				experiments.AblationPcacheSize(32751, 2, 2, []int{256, 512, 1024, 2048, 4096})))
			fmt.Println(experiments.RenderAblation("Ablation: INZ interleave vs truncation (8k atoms)",
				experiments.AblationINZInterleave(8000)))
			fmt.Println(experiments.RenderAblation("Ablation: fence vs pairwise barrier (128 nodes)",
				experiments.AblationFenceVsPairwise(topo.Shape{X: 4, Y: 4, Z: 8})))
			fmt.Println(experiments.RenderAblation("Ablation: randomized vs fixed dimension orders",
				experiments.AblationDimOrders(60)))
		case "all":
			for _, n := range []string{"tables", "fig5", "fig6", "fig9a", "fig9b", "fig11", "fig12", "ablations"} {
				run(n)
			}
		default:
			usage()
			os.Exit(2)
		}
	}
	run(cmd)
}

func usage() {
	fmt.Fprintln(os.Stderr, `anton3 — regenerate the tables and figures of
"The Specialized High-Performance Network on Anton 3" (HPCA 2022)

subcommands:
  tables     Tables I, II, III (ASIC comparison, component area, feature cost)
  fig5       end-to-end latency vs hops (128-node ping-pong)
  fig6       breakdown of the 55 ns minimum latency
  fig9a      traffic reduction from INZ and the particle cache
  fig9b      MD speedup from compression
  fig11      network fence barrier latency vs hops
  fig12      machine activity plots (compression off/on)
  ablations  design-choice ablations from DESIGN.md
  all        everything above`)
}
